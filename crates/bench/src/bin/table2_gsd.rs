//! Regenerates **Table 2 — Three Unhealthy Situations for GSD** on the
//! paper testbed (detection by the ring successor in the GSD meta-group).
//!
//! Paper row shape: process 30 s / 0.29 s / 2.03 s; node 30 s / 0.3 s /
//! 2.95 s (migration to a backup node); network 30 s / 348 µs / 0.

use phoenix_bench::ft::{paper_testbed, print_table, run_table, small_testbed, Component};
use phoenix_bench::report::{cross_check_histograms, exercise_services, table_json, write_report};

fn main() {
    phoenix_telemetry::reset();
    // `--small` runs the same pipeline on the 15-node fast-parameter
    // testbed (CI / verify.sh smoke); default is the paper's 136 nodes.
    let small = std::env::args().any(|a| a == "--small");
    let (topo, params) = if small { small_testbed() } else { paper_testbed() };
    println!(
        "Testbed: {} nodes, {} partitions, heartbeat interval {}",
        topo.node_count(),
        topo.partitions.len(),
        params.ft.hb_interval
    );
    let rows = run_table(topo, params, Component::Gsd);
    print_table("Table 2: Three Unhealthy Situations for GSD", &rows);
    println!("\nPaper reference: process 30s/0.29s/2.03s=32.32s; node 30s/0.3s/2.95s=33.25s; network 30s/348us/0s=30s");
    // Before the exercise pass adds more fault samples: the trace-mined
    // rows must agree with the kernel's own histograms.
    cross_check_histograms(&rows, Component::Gsd);
    exercise_services(42);
    write_report("table2_gsd", vec![("table2", table_json(&rows))]);
}
