//! Timing benches for the Sec 5.4 comparison: wall cost of running the
//! same job workload under PWS (event-driven) and PBS (polling), with the
//! HA assertion riding along.

use phoenix_bench::pws_pbs::run;
use phoenix_bench::timing::bench;

fn main() {
    bench("job_management", "pws_workload", 10, || {
        run(false, 2, 4, 3, 20, false, 61)
    });
    bench("job_management", "pbs_workload", 10, || {
        run(true, 2, 4, 3, 20, false, 62)
    });
    bench("job_management", "pws_with_scheduler_fault", 10, || {
        let s = run(false, 2, 4, 2, 15, true, 63);
        assert!(s.survived_scheduler_fault);
        s
    });
}
