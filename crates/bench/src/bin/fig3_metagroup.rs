//! Regenerates **Figure 3 — Meta-group Structures with Five Members**:
//! a five-partition meta-group ring with Leader / Princess roles, driven
//! through the takeover chain the paper describes:
//!
//! * "In case of failure of Leader, other members of meta-group select
//!   Princess to take over it."
//! * "If Princess fails, the next member to Princess will take over it."
//! * "If one of the members fails, the member next to it will take over."

use phoenix_bench::report::{exercise_services, write_report};
use phoenix_kernel::boot::boot_and_stabilize;
use phoenix_kernel::KernelParams;
use phoenix_proto::ClusterTopology;
use phoenix_sim::{SimDuration, TraceEvent};
use phoenix_telemetry::Json;

fn main() {
    phoenix_telemetry::reset();
    // Five partitions of four nodes: five meta-group members, like Fig 3.
    let topo = ClusterTopology::uniform(5, 4, 1);
    let (mut w, cluster) = boot_and_stabilize(topo, KernelParams::fast(), 33);
    w.run_for(SimDuration::from_secs(2));

    println!("Meta-group with five members (partitions 0..5); ring order = partition order.");
    let show_roles = |w: &phoenix_sim::World<phoenix_proto::KernelMsg>, title: &str| {
        println!("\n== {title} ==");
        // Latest role per pid.
        let mut roles: Vec<(phoenix_sim::Pid, &'static str)> = Vec::new();
        for r in w.trace().records() {
            if let TraceEvent::RoleChange { pid, role } = r.event {
                roles.retain(|(p, _)| *p != pid);
                roles.push((pid, role));
            }
        }
        roles.sort();
        for (pid, role) in roles {
            if w.is_alive(pid) {
                println!("  {pid}: {role}");
            }
        }
    };

    show_roles(&w, "initial ring");

    println!("\n>> killing the Leader (partition 0's GSD)...");
    w.kill_process(cluster.gsd(0));
    w.run_for(SimDuration::from_secs(3));
    show_roles(&w, "after Leader failure: Princess took over");

    println!("\n>> killing the new Leader (the old Princess)...");
    // Current leader is partition 1's GSD.
    w.kill_process(cluster.gsd(1));
    w.run_for(SimDuration::from_secs(3));
    show_roles(&w, "after Princess failure: next member took over");

    println!("\n>> letting the restarted GSDs rejoin...");
    w.run_for(SimDuration::from_secs(8));
    show_roles(&w, "ring healed (restarted members rejoined)");

    let takeovers = w
        .trace()
        .count(|e| matches!(e, TraceEvent::RoleChange { role: "leader", .. }));
    println!("\nleader role transitions observed: {takeovers}");
    exercise_services(33);
    write_report(
        "fig3_metagroup",
        vec![(
            "fig3",
            Json::obj().set("leader_transitions", Json::UInt(takeovers as u64)),
        )],
    );
}
