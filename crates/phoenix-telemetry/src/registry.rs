//! The metrics registry: counters, gauges, latency histograms, spans, and
//! cross-actor mark/measure pairs.
//!
//! All names are `&'static str` — instrumentation sites use literals, so
//! the registry never allocates for keys and map order (BTreeMap) is the
//! literal's lexicographic order, keeping report output deterministic.
//!
//! Two latency idioms:
//!
//! * **Spans** ([`MetricsRegistry::span_start`]/[`span_end`]) for regions
//!   whose start and end the *same* actor observes — e.g. a GSD membership
//!   scan that begins on one timer event and concludes on a later one.
//!   Closing a span records its virtual-time duration into the `path`
//!   histogram and appends a [`SpanRecord`] to the flight recorder.
//! * **Mark/measure** ([`MetricsRegistry::mark`]/[`measure`]) for
//!   latencies that cross actors — a heartbeat in flight, a federated
//!   query fan-out — where no span id can ride along in the message; the
//!   two sides agree on a `u64` key derived from message fields.
//!
//! [`span_end`]: MetricsRegistry::span_end
//! [`measure`]: MetricsRegistry::measure

use std::collections::BTreeMap;

use crate::clock;
use crate::hist::Histogram;
use crate::recorder::{FlightRecorder, SpanRecord};

/// Opaque span handle. `SpanId::NONE` (0) means "no parent".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const NONE: SpanId = SpanId(0);
}

#[derive(Clone, Debug)]
struct OpenSpan {
    parent: SpanId,
    path: &'static str,
    service: &'static str,
    node: u32,
    start_ns: u64,
}

/// A histogram plus the service label it was first recorded under.
#[derive(Clone, Debug)]
pub struct PathStats {
    pub service: &'static str,
    pub hist: Histogram,
}

/// Default TTL for outstanding marks, in virtual nanoseconds. Legitimate
/// cross-actor flights (heartbeats, probes, detect→diagnose episodes) are
/// milliseconds-to-seconds scale even under the paper's 30 s-heartbeat
/// profile, so 120 virtual seconds only ever reaps marks whose measuring
/// message was lost.
pub const DEFAULT_MARK_TTL_NS: u64 = 120_000_000_000;

#[derive(Debug)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, PathStats>,
    marks: BTreeMap<(&'static str, u64), u64>,
    open: BTreeMap<SpanId, OpenSpan>,
    next_span: u64,
    recorder: FlightRecorder,
    mark_ttl_ns: u64,
    last_mark_sweep_ns: u64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            marks: BTreeMap::new(),
            open: BTreeMap::new(),
            next_span: 1,
            recorder: FlightRecorder::default(),
            mark_ttl_ns: DEFAULT_MARK_TTL_NS,
            last_mark_sweep_ns: 0,
        }
    }

    // --- counters / gauges -------------------------------------------------

    pub fn counter_add(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    // --- histograms --------------------------------------------------------

    /// Record a raw latency observation (nanoseconds) under `path`.
    pub fn observe(&mut self, path: &'static str, service: &'static str, nanos: u64) {
        self.hists
            .entry(path)
            .or_insert_with(|| PathStats { service, hist: Histogram::new() })
            .hist
            .record(nanos);
    }

    pub fn histogram(&self, path: &str) -> Option<&Histogram> {
        self.hists.get(path).map(|p| &p.hist)
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &PathStats)> + '_ {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    // --- spans -------------------------------------------------------------

    /// Open a span at the current virtual time ([`clock::now`]).
    pub fn span_start(
        &mut self,
        path: &'static str,
        service: &'static str,
        node: u32,
        parent: SpanId,
    ) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        self.open.insert(id, OpenSpan { parent, path, service, node, start_ns: clock::now() });
        id
    }

    /// Close a span. Unknown ids (double-close, or a span opened before a
    /// `reset`) are ignored.
    pub fn span_end(&mut self, id: SpanId) {
        let Some(span) = self.open.remove(&id) else { return };
        let end_ns = clock::now();
        self.observe(span.path, span.service, end_ns.saturating_sub(span.start_ns));
        self.recorder.push(SpanRecord {
            id,
            parent: span.parent,
            path: span.path,
            service: span.service,
            node: span.node,
            start_ns: span.start_ns,
            end_ns,
            aborted: false,
        });
    }

    /// Abandon a span without recording a latency observation: the region
    /// never completed (its node died mid-flight). The span still lands in
    /// the flight recorder — with `aborted: true` and the abort time as
    /// `end_ns` — so post-mortems can see what was in progress, but the
    /// `path` histogram stays untouched. Unknown ids are ignored.
    pub fn span_abort(&mut self, id: SpanId) {
        let Some(span) = self.open.remove(&id) else { return };
        self.counter_add("telemetry.spans.aborted", 1);
        self.recorder.push(SpanRecord {
            id,
            parent: span.parent,
            path: span.path,
            service: span.service,
            node: span.node,
            start_ns: span.start_ns,
            end_ns: clock::now(),
            aborted: true,
        });
    }

    /// Abort every open span owned by `node` (chaos killed it). Returns
    /// the number of spans aborted.
    pub fn abort_node_spans(&mut self, node: u32) -> usize {
        let mut doomed: Vec<SpanId> =
            self.open.iter().filter(|(_, s)| s.node == node).map(|(&id, _)| id).collect();
        // Sorted: `open` is a HashMap, and the abort order decides how the
        // records land in the flight recorder (same abort timestamp).
        doomed.sort_unstable();
        for id in &doomed {
            self.span_abort(*id);
        }
        doomed.len()
    }

    /// Spans opened but not yet closed (leak detector for tests).
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        &mut self.recorder
    }

    // --- cross-actor mark/measure ------------------------------------------

    /// Stamp the current virtual time under `(path, key)`. A second mark
    /// with the same key overwrites (latest send wins — matches
    /// retransmission semantics).
    ///
    /// Marks whose measuring message was lost would otherwise live
    /// forever, so every `mark_ttl_ns` of virtual time this lazily sweeps
    /// out entries older than the TTL (see [`expire_marks_older_than`]).
    ///
    /// [`expire_marks_older_than`]: MetricsRegistry::expire_marks_older_than
    pub fn mark(&mut self, path: &'static str, key: u64) {
        let now = clock::now();
        if now < self.last_mark_sweep_ns {
            // Virtual clock rewound (fresh run on a reused registry).
            self.last_mark_sweep_ns = now;
        } else if now.saturating_sub(self.last_mark_sweep_ns) >= self.mark_ttl_ns {
            self.expire_marks_older_than(self.mark_ttl_ns);
            self.last_mark_sweep_ns = now;
        }
        self.marks.insert((path, key), now);
    }

    /// Drop every outstanding mark older than `age_ns` (virtual time),
    /// bumping the `telemetry.marks.expired` counter per reaped entry.
    /// Returns how many were expired. Called lazily from [`mark`] with the
    /// TTL; tests and invariant checks may call it directly with a tighter
    /// window.
    ///
    /// [`mark`]: MetricsRegistry::mark
    pub fn expire_marks_older_than(&mut self, age_ns: u64) -> u64 {
        let now = clock::now();
        let cutoff = now.saturating_sub(age_ns);
        let before = self.marks.len();
        self.marks.retain(|_, &mut stamped| stamped >= cutoff);
        let expired = (before - self.marks.len()) as u64;
        if expired > 0 {
            self.counter_add("telemetry.marks.expired", expired);
        }
        expired
    }

    /// Override the stale-mark TTL (virtual nanoseconds). Mostly for
    /// tests; the default is [`DEFAULT_MARK_TTL_NS`].
    pub fn set_mark_ttl(&mut self, ttl_ns: u64) {
        self.mark_ttl_ns = ttl_ns.max(1);
    }

    /// Consume the mark for `(path, key)`: records `now - mark` under
    /// `path` and returns the elapsed nanoseconds. `None` if no mark is
    /// outstanding (e.g. the originating message was dropped or the mark
    /// was already measured).
    pub fn measure(
        &mut self,
        path: &'static str,
        service: &'static str,
        node: u32,
        key: u64,
    ) -> Option<u64> {
        let start = self.marks.remove(&(path, key))?;
        let end = clock::now();
        let elapsed = end.saturating_sub(start);
        self.observe(path, service, elapsed);
        self.recorder.push(SpanRecord {
            id: SpanId(self.next_span),
            parent: SpanId::NONE,
            path,
            service,
            node,
            start_ns: start,
            end_ns: end,
            aborted: false,
        });
        self.next_span += 1;
        Some(elapsed)
    }

    /// Drop an outstanding mark without recording a measurement — the
    /// flight was retracted (e.g. a suspicion cleared mid-probe), not
    /// completed or lost. Returns whether a mark was outstanding.
    pub fn unmark(&mut self, path: &'static str, key: u64) -> bool {
        self.marks.remove(&(path, key)).is_some()
    }

    /// Marks stamped but never measured (messages still in flight or lost).
    pub fn outstanding_marks(&self) -> usize {
        self.marks.len()
    }

    // --- shard merge -------------------------------------------------------

    /// Merge another registry (a per-thread/per-partition shard) into this
    /// one. Merge order is the caller's contract: merging shards in
    /// ascending shard-id (work-item) order is what makes a sharded run's
    /// report byte-identical to the serial run's. Semantics per family:
    ///
    /// * **counters** — added;
    /// * **gauges** — last write wins: `other`'s value replaces ours for
    ///   shared names (the later shard in merge order is "most recent");
    /// * **histograms** — exact [`Histogram::merge`] (shard-merge == whole
    ///   is pinned by the histogram tests);
    /// * **marks** — union, `other` wins on key collision (same
    ///   latest-send-wins rule as re-marking);
    /// * **open spans** — re-numbered into this registry's id space and
    ///   kept open (shards handed to `merge` at end-of-run normally have
    ///   zero — the leak invariants gate that);
    /// * **flight recorder** — per-node interleave by `start_ns`, then
    ///   re-bounded ([`FlightRecorder::merge`]).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (&name, &v) in &other.counters {
            self.counter_add(name, v);
        }
        for (&name, &v) in &other.gauges {
            self.gauges.insert(name, v);
        }
        for (&path, stats) in &other.hists {
            self.hists
                .entry(path)
                .or_insert_with(|| PathStats { service: stats.service, hist: Histogram::new() })
                .hist
                .merge(&stats.hist);
        }
        for (&key, &stamped) in &other.marks {
            self.marks.insert(key, stamped);
        }
        for span in other.open.values() {
            let id = SpanId(self.next_span);
            self.next_span += 1;
            self.open.insert(id, span.clone());
        }
        self.next_span = self.next_span.max(other.next_span);
        self.recorder.merge(&other.recorder);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_land_in_histogram_and_recorder() {
        let mut r = MetricsRegistry::new();
        clock::set_now(100);
        let root = r.span_start("outer", "gsd", 3, SpanId::NONE);
        clock::set_now(150);
        let child = r.span_start("inner", "gsd", 3, root);
        clock::set_now(180);
        r.span_end(child);
        clock::set_now(300);
        r.span_end(root);

        assert_eq!(r.histogram("inner").unwrap().summary().max_ns, 30);
        assert_eq!(r.histogram("outer").unwrap().summary().max_ns, 200);
        assert_eq!(r.open_spans(), 0);

        let recs: Vec<_> = r.recorder().node(3).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].path, "inner");
        assert_eq!(recs[0].parent, root);
        assert_eq!(recs[1].path, "outer");
        assert_eq!(recs[1].parent, SpanId::NONE);
    }

    #[test]
    fn span_ids_are_sequential_and_double_close_is_ignored() {
        let mut r = MetricsRegistry::new();
        clock::set_now(0);
        let a = r.span_start("p", "s", 0, SpanId::NONE);
        let b = r.span_start("p", "s", 0, SpanId::NONE);
        assert_eq!(b.0, a.0 + 1);
        r.span_end(a);
        r.span_end(a);
        assert_eq!(r.histogram("p").unwrap().count(), 1);
    }

    #[test]
    fn measure_without_mark_is_none() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.measure("p", "s", 0, 9), None);
        r.mark("p", 9);
        assert_eq!(r.outstanding_marks(), 1);
    }

    #[test]
    fn stale_marks_expire_after_ttl() {
        let mut r = MetricsRegistry::new();
        r.set_mark_ttl(1_000);
        clock::set_now(0);
        r.mark("lost", 1); // its measure will never arrive
        clock::set_now(100);
        r.mark("lost", 2);
        clock::set_now(2_000); // > last sweep (0) + ttl -> lazy sweep fires
        r.mark("fresh", 3);
        assert_eq!(r.outstanding_marks(), 1, "stale marks reaped, fresh kept");
        assert_eq!(r.counter("telemetry.marks.expired"), 2);
        // The fresh mark is still measurable.
        clock::set_now(2_050);
        assert_eq!(r.measure("fresh", "s", 0, 3), Some(50));
    }

    #[test]
    fn expire_marks_older_than_is_callable_directly() {
        let mut r = MetricsRegistry::new();
        clock::set_now(0);
        r.mark("a", 1);
        clock::set_now(500);
        r.mark("b", 2);
        clock::set_now(600);
        assert_eq!(r.expire_marks_older_than(200), 1, "only the 600ns-old mark reaped");
        assert_eq!(r.outstanding_marks(), 1);
    }

    #[test]
    fn span_abort_lands_in_recorder_not_histogram() {
        let mut r = MetricsRegistry::new();
        clock::set_now(10);
        let id = r.span_start("doomed", "gsd", 4, SpanId::NONE);
        clock::set_now(90);
        r.span_abort(id);
        assert_eq!(r.open_spans(), 0);
        assert!(r.histogram("doomed").is_none(), "aborted span records no latency");
        let rec: Vec<_> = r.recorder().node(4).collect();
        assert_eq!(rec.len(), 1);
        assert!(rec[0].aborted);
        assert_eq!(rec[0].end_ns, 90);
        assert_eq!(r.counter("telemetry.spans.aborted"), 1);
        r.span_abort(id); // double-abort ignored
        assert_eq!(r.counter("telemetry.spans.aborted"), 1);
    }

    #[test]
    fn abort_node_spans_only_hits_that_node() {
        let mut r = MetricsRegistry::new();
        clock::set_now(0);
        let _a = r.span_start("p", "s", 1, SpanId::NONE);
        let _b = r.span_start("p", "s", 2, SpanId::NONE);
        let _c = r.span_start("p", "s", 1, SpanId::NONE);
        assert_eq!(r.abort_node_spans(1), 2);
        assert_eq!(r.open_spans(), 1, "node 2's span untouched");
    }

    #[test]
    fn merge_counters_gauges_hists_marks() {
        clock::set_now(0);
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 2);
        a.gauge_set("g", 1.0);
        a.observe("h", "s", 100);
        a.mark("m", 7);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 3);
        b.counter_add("only_b", 1);
        b.gauge_set("g", 9.0);
        b.observe("h", "s", 300);
        clock::set_now(40);
        b.mark("m", 7); // collides: other's (later) stamp must win

        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.gauge("g"), Some(9.0), "gauge: later shard in merge order wins");
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.summary().max_ns, 300);
        clock::set_now(100);
        assert_eq!(a.measure("m", "s", 0, 7), Some(60), "other's mark stamp won");
    }

    #[test]
    fn merge_keeps_span_ids_allocatable() {
        clock::set_now(0);
        let mut a = MetricsRegistry::new();
        let _ = a.span_start("p", "s", 0, SpanId::NONE);
        let mut b = MetricsRegistry::new();
        for _ in 0..5 {
            let id = b.span_start("p", "s", 0, SpanId::NONE);
            b.span_end(id);
        }
        a.merge(&b);
        let next = a.span_start("p", "s", 0, SpanId::NONE);
        assert!(next.0 >= 6, "post-merge ids never collide with either shard's");
        assert_eq!(a.open_spans(), 2, "a's open span + the fresh one");
    }
}
