//! Event-service types: event classes, payloads, and consumer filters.
//!
//! The paper's event service provides "the registration of the event
//! supplier and event types it produces, the registration of the event
//! consumer and event types it feels interested in", plus filtering and
//! real-time notification (Sec 4.2).

use crate::ids::{JobId, PartitionId, ServiceKind};
use phoenix_sim::{NicId, NodeId, Pid};

/// The classes of event flowing through the Phoenix kernel.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EventType {
    /// A node stopped responding (GSD diagnosis: node failure).
    NodeFault,
    /// A previously failed node is back.
    NodeRecovery,
    /// One network interface of a node failed.
    NetworkFault,
    /// A network interface recovered.
    NetworkRecovery,
    /// A network interface is degraded (lossy) but not down: heartbeats
    /// still arrive on it, just with a loss share high enough that the
    /// NIC-health layer stopped preferring it for routed traffic.
    NetworkDegraded,
    /// A kernel or user-environment service instance failed.
    ServiceFault,
    /// A failed service instance was restarted or migrated.
    ServiceRecovery,
    /// An application's state changed (started, exited, SLA breach, ...).
    AppStateChange,
    /// A job changed scheduling state (queued, running, done, ...).
    JobStateChange,
    /// Cluster configuration was changed at runtime.
    ConfigChange,
    /// A resource gauge crossed an alarm threshold.
    ResourceAlarm,
    /// Application-defined event class.
    Custom(u16),
}

/// Structured payload attached to an event.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum EventPayload {
    #[default]
    None,
    Node(NodeId),
    Nic(NodeId, NicId),
    Service(ServiceKind, NodeId),
    Job(JobId),
    /// A task of `job` started (`up = true`) or stopped on `node`.
    AppLifecycle {
        job: JobId,
        node: NodeId,
        up: bool,
    },
    Metric(f64),
    Text(String),
}

/// An event instance published to the event service.
#[derive(Clone, PartialEq, Debug)]
pub struct Event {
    pub etype: EventType,
    /// Node the event concerns or originated from.
    pub origin: NodeId,
    /// Partition where the event was published.
    pub partition: PartitionId,
    /// Per-event-service monotone sequence number (assigned on publish).
    pub seq: u64,
    pub payload: EventPayload,
}

impl Event {
    /// Construct an event; the sequence number is filled in by the event
    /// service at publish time.
    pub fn new(etype: EventType, origin: NodeId, payload: EventPayload) -> Event {
        Event {
            etype,
            origin,
            partition: PartitionId(0),
            seq: 0,
            payload,
        }
    }
}

/// What a consumer is interested in.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EventFilter {
    /// Receive every event.
    All,
    /// Receive only the listed event classes.
    Types(Vec<EventType>),
}

impl EventFilter {
    /// Does this filter accept the event?
    pub fn accepts(&self, event: &Event) -> bool {
        match self {
            EventFilter::All => true,
            EventFilter::Types(types) => types.contains(&event.etype),
        }
    }

    /// Convenience constructor from a slice of types.
    pub fn types(types: &[EventType]) -> EventFilter {
        EventFilter::Types(types.to_vec())
    }
}

/// A consumer registration held by the event service (and checkpointed so
/// a restarted instance keeps notifying its consumers).
#[derive(Clone, PartialEq, Debug)]
pub struct ConsumerReg {
    pub consumer: Pid,
    pub filter: EventFilter,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: EventType) -> Event {
        Event::new(t, NodeId(1), EventPayload::None)
    }

    #[test]
    fn all_filter_accepts_everything() {
        let f = EventFilter::All;
        assert!(f.accepts(&ev(EventType::NodeFault)));
        assert!(f.accepts(&ev(EventType::Custom(9))));
    }

    #[test]
    fn typed_filter_selects() {
        let f = EventFilter::types(&[EventType::NodeFault, EventType::NetworkFault]);
        assert!(f.accepts(&ev(EventType::NodeFault)));
        assert!(f.accepts(&ev(EventType::NetworkFault)));
        assert!(!f.accepts(&ev(EventType::NodeRecovery)));
    }

    #[test]
    fn custom_types_distinguished_by_code() {
        let f = EventFilter::types(&[EventType::Custom(1)]);
        assert!(f.accepts(&ev(EventType::Custom(1))));
        assert!(!f.accepts(&ev(EventType::Custom(2))));
    }

    #[test]
    fn empty_typed_filter_accepts_nothing() {
        let f = EventFilter::Types(vec![]);
        assert!(!f.accepts(&ev(EventType::NodeFault)));
    }
}
