//! Synthetic batch-workload generation.
//!
//! The paper's testbed served real Dawning 4000A users; for experiments we
//! generate statistically similar job streams: exponential inter-arrival
//! times (Poisson arrivals), log-uniform node counts, and bounded
//! log-uniform run times — the standard shape of HPC batch traces.
//! Deterministic per seed.

use phoenix_proto::{JobSpec, TaskSpec};
use phoenix_sim::SimRng;

/// Parameters of a synthetic job stream.
#[derive(Clone, Debug)]
pub struct WorkloadParams {
    /// Mean inter-arrival time in virtual seconds.
    pub mean_interarrival_s: f64,
    /// Inclusive node-count bounds (log-uniform).
    pub min_nodes: u32,
    pub max_nodes: u32,
    /// Inclusive run-time bounds in virtual seconds (log-uniform).
    pub min_runtime_s: f64,
    pub max_runtime_s: f64,
    /// Users submitting jobs (round-robin-ish by weight).
    pub users: Vec<&'static str>,
    /// Target pool name stamped into the specs.
    pub pool: String,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            mean_interarrival_s: 4.0,
            min_nodes: 1,
            max_nodes: 4,
            min_runtime_s: 2.0,
            max_runtime_s: 20.0,
            users: vec!["alice", "bob"],
            pool: "batch".to_string(),
        }
    }
}

/// A generated job with its arrival time.
#[derive(Clone, Debug)]
pub struct Arrival {
    /// Virtual arrival time in nanoseconds from stream start.
    pub at_ns: u64,
    pub spec: JobSpec,
}

/// Generate `count` arrivals. Deterministic per `(params, seed)`.
pub fn generate(params: &WorkloadParams, count: usize, seed: u64) -> Vec<Arrival> {
    assert!(params.min_nodes >= 1 && params.max_nodes >= params.min_nodes);
    assert!(params.min_runtime_s > 0.0 && params.max_runtime_s >= params.min_runtime_s);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut t_ns = 0u64;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        // Exponential inter-arrival via inverse transform.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap_s = -params.mean_interarrival_s * u.ln();
        t_ns += (gap_s * 1e9) as u64;

        let nodes = log_uniform_u32(&mut rng, params.min_nodes, params.max_nodes);
        let runtime_s = log_uniform_f64(&mut rng, params.min_runtime_s, params.max_runtime_s);
        let user = params.users[rng.gen_range(0..params.users.len())];
        out.push(Arrival {
            at_ns: t_ns,
            spec: JobSpec {
                task: TaskSpec {
                    cpus: 1,
                    cpu_load: rng.gen_range(0.5..0.95),
                    mem_load: rng.gen_range(0.1..0.4),
                    duration_ns: Some((runtime_s * 1e9) as u64),
                },
                ..JobSpec::simple(i as u64 + 1, user, &params.pool, nodes)
            },
        });
    }
    out
}

fn log_uniform_u32(rng: &mut SimRng, lo: u32, hi: u32) -> u32 {
    if lo == hi {
        return lo;
    }
    let x = rng.gen_range((lo as f64).ln()..=(hi as f64).ln());
    (x.exp().round() as u32).clamp(lo, hi)
}

fn log_uniform_f64(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    if lo == hi {
        return lo;
    }
    rng.gen_range(lo.ln()..=hi.ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let p = WorkloadParams::default();
        let a = generate(&p, 50, 9);
        let b = generate(&p, 50, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_ns, y.at_ns);
            assert_eq!(x.spec, y.spec);
        }
        let c = generate(&p, 50, 10);
        assert!(a.iter().zip(&c).any(|(x, y)| x.at_ns != y.at_ns));
    }

    #[test]
    fn arrivals_are_monotone_and_bounded() {
        let p = WorkloadParams::default();
        let jobs = generate(&p, 200, 3);
        let mut prev = 0;
        for a in &jobs {
            assert!(a.at_ns >= prev);
            prev = a.at_ns;
            assert!(a.spec.nodes >= p.min_nodes && a.spec.nodes <= p.max_nodes);
            let d = a.spec.task.duration_ns.unwrap() as f64 / 1e9;
            assert!(d >= p.min_runtime_s * 0.99 && d <= p.max_runtime_s * 1.01);
        }
    }

    #[test]
    fn mean_interarrival_is_roughly_right() {
        let p = WorkloadParams {
            mean_interarrival_s: 10.0,
            ..WorkloadParams::default()
        };
        let jobs = generate(&p, 2_000, 7);
        let total_s = jobs.last().unwrap().at_ns as f64 / 1e9;
        let mean = total_s / jobs.len() as f64;
        assert!(
            (mean - 10.0).abs() < 1.0,
            "empirical mean {mean:.2}s should be ≈10s"
        );
    }

    #[test]
    fn ids_are_unique_and_sequential() {
        let jobs = generate(&WorkloadParams::default(), 20, 1);
        for (i, a) in jobs.iter().enumerate() {
            assert_eq!(a.spec.id.0, i as u64 + 1);
        }
    }
}
