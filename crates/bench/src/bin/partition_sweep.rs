//! Partition sweep: split-brain survival measured end to end.
//!
//! The paper's testbed never splits its switched Ethernet in half; this
//! bench asks what the regroup layer (`KernelParams::fast_partition`)
//! delivers when it does. For each seeded episode one whole topology
//! partition is severed onto an island (`Fault::Partition`) for six
//! virtual seconds and then healed, alternating which side is cut:
//!
//! * **minority freeze time** — cut → the minority island's GSD reports
//!   the `"frozen"` pseudo-role (suspicion + regroup round latency);
//! * **double-leader instants** — sampled every 20 ms across the split
//!   and the heal; any instant with two live unfrozen leaders is a
//!   split-brain violation and fails the run;
//! * **heal → convergence time** — heal → one live GSD per partition,
//!   exactly one leader, nobody frozen;
//! * **heal → directory convergence** — heal → the config service
//!   answers with a complete live directory and an empty stale set.
//!
//! Results go to `results/BENCH_partition.json` (sections `partition` and
//! `episodes`); the exit status is non-zero if any double-leader instant
//! was sampled, a minority failed to freeze, or an episode failed to
//! converge — which lets `scripts/verify.sh` gate on all three.
//!
//! All episodes run through the parallel sweep runner (one registry shard
//! per episode, merged in work-item order), so the report is
//! byte-identical to `--serial` for the same seed set.
//!
//! ```text
//! partition_sweep [--small] [--serial]
//! ```

use std::path::PathBuf;

use phoenix_bench::sweep::run_sweep;
use phoenix_kernel::boot::boot_and_stabilize;
use phoenix_kernel::config::ConfigService;
use phoenix_kernel::group::Gsd;
use phoenix_kernel::{ClientHandle, KernelParams, PhoenixCluster};
use phoenix_proto::{ClusterTopology, KernelMsg, RequestId};
use phoenix_sim::{Fault, NodeId, Pid, SimDuration, World};
use phoenix_telemetry::Json;

fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

fn boot(seed: u64) -> (World<KernelMsg>, PhoenixCluster) {
    boot_and_stabilize(
        ClusterTopology::uniform(3, 4, 1),
        KernelParams::fast_partition(),
        seed,
    )
}

/// Bitmask of every node belonging to the given topology partition.
fn island_mask(cluster: &PhoenixCluster, part: usize) -> u64 {
    let mut mask = 0u64;
    for n in cluster.topology.partitions[part].all_nodes() {
        mask |= 1u64 << n.0;
    }
    mask
}

/// Every live GSD in the world: (pid, partition it serves, role name).
fn gsd_views(w: &World<KernelMsg>) -> Vec<(Pid, u32, &'static str)> {
    let mut out = Vec::new();
    for node in 0..w.node_count() {
        for pid in w.pids_on(NodeId(node as u32)) {
            if let Some(g) = w.actor_as::<Gsd>(pid) {
                out.push((pid, g.partition_id().0, g.role_name()));
            }
        }
    }
    out
}

/// Post-heal steady state on the role level: one live GSD per partition,
/// exactly one leader, nobody frozen.
fn roles_converged(w: &World<KernelMsg>, cluster: &PhoenixCluster) -> bool {
    let views = gsd_views(w);
    let parts = cluster.topology.partitions.len();
    (0..parts).all(|p| views.iter().filter(|(_, part, _)| *part == p as u32).count() == 1)
        && views.iter().filter(|(_, _, r)| *r == "leader").count() == 1
        && views.iter().all(|(_, _, r)| *r != "frozen")
}

/// Ask the config service for the directory and check it is complete,
/// live, and carries no stale marks. Spawns a throwaway client and runs
/// the world ~50 virtual ms for the answer.
fn directory_converged(w: &mut World<KernelMsg>, cluster: &PhoenixCluster, req: u64) -> bool {
    let client = ClientHandle::spawn(w, cluster.topology.partitions[1].server);
    client.send(w, cluster.config(), KernelMsg::CfgQueryDirectory { req: RequestId(req) });
    w.run_for(SimDuration::from_millis(50));
    let Some(dir) = client.drain().into_iter().find_map(|(_, m)| match m {
        KernelMsg::CfgDirectory { directory, .. } => Some(*directory),
        _ => None,
    }) else {
        return false;
    };
    let stale_clear = w
        .actor_as::<ConfigService>(cluster.config())
        .map(|c| c.stale_partitions().is_empty())
        .unwrap_or(false);
    dir.partitions.len() == cluster.topology.partitions.len()
        && dir.partitions.iter().all(|m| w.is_alive(m.gsd))
        && stale_clear
}

struct Episode {
    minority_froze: bool,
    freeze_ms: Option<f64>,
    double_leader_instants: u64,
    converge_ms: Option<f64>,
    dir_converge_ms: Option<f64>,
}

/// One partition → regroup → heal cycle: sever `minority`, sample across
/// the six-second split, heal, and time re-convergence.
fn episode(seed: u64, minority: usize) -> Episode {
    let (mut w, cluster) = boot(seed);
    w.run_for(SimDuration::from_secs(3));

    let t_cut = w.now();
    w.apply_fault(Fault::Partition { island: island_mask(&cluster, minority) });
    let mut freeze_ms = None;
    let mut double = 0u64;
    while w.now().since(t_cut) < SimDuration::from_secs(6) {
        w.run_for(SimDuration::from_millis(20));
        let views = gsd_views(&w);
        if freeze_ms.is_none()
            && views.iter().any(|(_, p, r)| *p == minority as u32 && *r == "frozen")
        {
            freeze_ms = Some(w.now().since(t_cut).as_nanos() as f64 / 1e6);
        }
        if views.iter().filter(|(_, _, r)| *r == "leader").count() > 1 {
            double += 1;
        }
    }

    let t_heal = w.now();
    w.apply_fault(Fault::Heal);
    let mut converge_ms = None;
    let mut dir_converge_ms = None;
    let mut req = seed * 1_000;
    while w.now().since(t_heal) < SimDuration::from_secs(15) {
        w.run_for(SimDuration::from_millis(100));
        if gsd_views(&w).iter().filter(|(_, _, r)| *r == "leader").count() > 1 {
            double += 1;
        }
        if converge_ms.is_none() && roles_converged(&w, &cluster) {
            converge_ms = Some(w.now().since(t_heal).as_nanos() as f64 / 1e6);
        }
        if converge_ms.is_some() {
            req += 1;
            if directory_converged(&mut w, &cluster, req) {
                dir_converge_ms = Some(w.now().since(t_heal).as_nanos() as f64 / 1e6);
                break;
            }
        }
    }

    Episode {
        minority_froze: freeze_ms.is_some(),
        freeze_ms,
        double_leader_instants: double,
        converge_ms,
        dir_converge_ms,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let serial = std::env::args().any(|a| a == "--serial");
    let seeds: u64 = if small { 4 } else { 10 };
    // Alternate which side is severed: partition 0 carries the meta
    // leader *and* the config service (the hard case); partition 2 is a
    // plain member whose directory entry must go stale and come back.
    let minorities = [0usize, 2];
    println!(
        "partition_sweep: {seeds} seeds x {} islands (15-node testbed, \
         regroup profile, 6 s split + heal per episode)",
        minorities.len()
    );

    let mut jobs = Vec::new();
    for seed in 1..=seeds {
        for &minority in &minorities {
            jobs.push((seed, minority));
        }
    }
    let outcome = run_sweep(&jobs, serial, |&(seed, minority)| episode(seed, minority));
    println!(
        "sweep: {} episodes on {} thread(s), {} ms wall",
        jobs.len(),
        outcome.threads,
        outcome.wall.as_millis()
    );

    let mut rows = Vec::new();
    let mut total_double = 0u64;
    let mut unfrozen = 0u64;
    let mut unconverged = 0u64;
    for &minority in &minorities {
        let mut freeze = Vec::new();
        let mut converge = Vec::new();
        let mut dir = Vec::new();
        for (&(seed, m), ep) in jobs.iter().zip(&outcome.results) {
            if m != minority {
                continue;
            }
            total_double += ep.double_leader_instants;
            unfrozen += !ep.minority_froze as u64;
            unconverged += ep.dir_converge_ms.is_none() as u64;
            freeze.extend(ep.freeze_ms);
            converge.extend(ep.converge_ms);
            dir.extend(ep.dir_converge_ms);
            rows.push(
                Json::obj()
                    .set("seed", Json::Num(seed as f64))
                    .set("minority_partition", Json::Num(minority as f64))
                    .set("freeze_ms", ep.freeze_ms.map(Json::Num).unwrap_or(Json::Null))
                    .set("heal_converge_ms", ep.converge_ms.map(Json::Num).unwrap_or(Json::Null))
                    .set(
                        "dir_converge_ms",
                        ep.dir_converge_ms.map(Json::Num).unwrap_or(Json::Null),
                    )
                    .set("double_leader_instants", Json::Num(ep.double_leader_instants as f64)),
            );
        }
        println!(
            "  island p{minority}: freeze {:>7.1} ms | heal->roles {:>7.1} ms | \
             heal->directory {:>7.1} ms  (n={})",
            mean(&freeze),
            mean(&converge),
            mean(&dir),
            converge.len()
        );
    }

    let summary = Json::obj()
        .set("shape", Json::str(if small { "small" } else { "full" }))
        .set("seeds", Json::Num(seeds as f64))
        .set("episodes", Json::Num(jobs.len() as f64))
        .set("double_leader_instants", Json::Num(total_double as f64))
        .set("unfrozen_minorities", Json::Num(unfrozen as f64))
        .set("unconverged_episodes", Json::Num(unconverged as f64));

    let mut rep = phoenix_telemetry::BenchReport::new("partition_sweep");
    rep.section("partition", summary);
    rep.section("episodes", Json::Arr(rows));
    let path = rep
        .write_to(&outcome.merged, workspace_root().join("results/BENCH_partition.json"))
        .expect("write BENCH_partition.json");
    println!("report written: {}", path.display());

    if total_double > 0 || unfrozen > 0 || unconverged > 0 {
        eprintln!(
            "partition_sweep: {total_double} double-leader instant(s), {unfrozen} \
             unfrozen minorit(ies), {unconverged} unconverged episode(s) — \
             split-brain survival regressed"
        );
        std::process::exit(1);
    }
}
