//! Log-bucketed latency histogram.
//!
//! 64 power-of-two buckets cover the full `u64` nanosecond range: value
//! `v` lands in bucket `64 - v.leading_zeros()` (bucket 0 holds only
//! zero). Alongside the buckets we keep exact count/sum/min/max, so
//! merging shards is pure addition and a merged histogram reports exactly
//! the same summary as one fed the union of observations — the property
//! the shard-merge test pins.

/// Number of buckets: one for zero plus one per bit of a `u64`.
pub const BUCKETS: usize = 65;

#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Point-in-time digest of a histogram, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub count: u64,
    pub sum_ns: u64,
    pub min_ns: u64,
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Upper bound (inclusive representative) of a bucket: the largest value
/// that maps into it. Used as the percentile estimate.
fn bucket_ceiling(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one observation (nanoseconds).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold another histogram into this one. Bucket-wise addition plus
    /// min/max/sum merge: the result is indistinguishable from a single
    /// histogram that saw every observation.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimate the value at quantile `q` in `[0, 1]`: the ceiling of the
    /// bucket containing the `ceil(q * count)`-th observation, clamped to
    /// the exact observed max (so p100 == max and a one-bucket histogram
    /// reports its true extreme).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_ceiling(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            sum_ns: self.sum,
            min_ns: if self.count == 0 { 0 } else { self.min },
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p99_ns: self.quantile(0.99),
            max_ns: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_ceiling(2), 3);
        assert_eq!(bucket_ceiling(64), u64::MAX);
    }

    #[test]
    fn summary_of_known_distribution() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum_ns, 5050 * 1000);
        assert_eq!(s.min_ns, 1000);
        assert_eq!(s.max_ns, 100_000);
        // Log buckets: estimates are bucket ceilings, so only assert
        // ordering and range.
        assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns && s.p99_ns <= s.max_ns);
        assert!(s.p50_ns >= 1000);
    }

    #[test]
    fn merge_of_shards_equals_whole() {
        let vals: Vec<u64> = (0..500u64).map(|i| i.wrapping_mul(2654435761) % 1_000_000).collect();
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &v) in vals.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 { a.record(v) } else { b.record(v) }
        }
        a.merge(&b);
        assert_eq!(a.summary(), whole.summary());
        assert_eq!(a.buckets, whole.buckets);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min_ns, 0);
        assert_eq!(s.p99_ns, 0);
        assert_eq!(s.max_ns, 0);
    }
}
