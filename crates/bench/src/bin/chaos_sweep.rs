//! Chaos-testing sweep with a JSON report: runs N random fault schedules
//! through `phoenix-chaos`, shrinks any failures, and records schedule /
//! fault / shrink statistics to `results/BENCH_chaos.json`.
//!
//! This is the bench-suite face of the chaos harness: where the `chaos`
//! binary is the interactive explore/replay tool, this bin produces the
//! machine-readable artifact the verify pipeline asserts on.
//!
//! Seeds run through the parallel sweep runner (`phoenix_bench::sweep`):
//! each seeded schedule (plus its shrink, if it fails) is one work item
//! under its own registry shard, merged in seed order, so the report is
//! byte-identical to a `--serial` run.
//!
//! ```text
//! chaos_sweep [--seeds N] [--seed-base S] [--small|--paper] [--serial]
//! ```

use std::path::PathBuf;

use phoenix_bench::sweep::run_sweep;
use phoenix_chaos::{full_mask, replay_command, run_schedule, shrink, ChaosConfig};
use phoenix_telemetry::Json;

fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

fn main() {
    let mut seeds = 50u64;
    let mut seed_base = 1u64;
    let mut cfg = ChaosConfig::small();
    let mut shape = "small";
    let mut serial = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => seeds = args.next().and_then(|v| v.parse().ok()).expect("--seeds N"),
            "--seed-base" => {
                seed_base = args.next().and_then(|v| v.parse().ok()).expect("--seed-base S")
            }
            "--small" => {
                cfg = ChaosConfig::small();
                shape = "small";
            }
            "--paper" => {
                cfg = ChaosConfig::paper();
                shape = "paper";
            }
            "--serial" => serial = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    println!(
        "chaos_sweep: {seeds} schedules ({shape} topology {}x{}), seeds {seed_base}..{}",
        cfg.partitions,
        cfg.nodes_per_partition,
        seed_base + seeds - 1
    );

    // One work item per seed: run the schedule and, if it fails, shrink it
    // in the same job (the shrink re-runs are deterministic per seed).
    // Printing happens after the join, in seed order.
    let seed_list: Vec<u64> = (seed_base..seed_base + seeds).collect();
    let cfg_ref = &cfg;
    let outcome = run_sweep(&seed_list, serial, |&seed| {
        let out = run_schedule(seed, cfg_ref, u64::MAX, false);
        let shrunk = if out.failed() {
            Some(shrink(seed, cfg_ref, full_mask(out.total_steps), out.total_steps))
        } else {
            None
        };
        (out, shrunk)
    });
    println!(
        "sweep: {} schedules on {} thread(s), {} ms wall",
        seed_list.len(),
        outcome.threads,
        outcome.wall.as_millis()
    );

    let mut schedules = Vec::new();
    let mut total_faults = 0usize;
    let mut total_steps = 0usize;
    let mut failures = 0u64;
    let mut shrink_runs = 0usize;
    let mut shrunk_steps = 0usize;
    for (&seed, (out, shrunk)) in seed_list.iter().zip(&outcome.results) {
        total_faults += out.faults_injected;
        total_steps += out.applied_steps;
        let mut row = Json::obj()
            .set("seed", Json::Num(seed as f64))
            .set("steps", Json::Num(out.applied_steps as f64))
            .set("faults", Json::Num(out.faults_injected as f64))
            .set("gsd_died", Json::Bool(out.gsd_died))
            .set("quiesced", Json::Bool(out.quiesced))
            .set("virtual_s", Json::Num(out.virtual_ns as f64 / 1e9))
            .set("violations", Json::Num(out.violations.len() as f64));
        if let Some(s) = shrunk {
            failures += 1;
            shrink_runs += s.runs;
            shrunk_steps += s.steps;
            println!(
                "  seed {seed}: FAIL — {} violation(s), shrunk {} -> {} steps in {} runs",
                out.violations.len(),
                out.total_steps,
                s.steps,
                s.runs
            );
            for v in &out.violations {
                println!("    {v}");
            }
            let cmd = replay_command(
                seed,
                s.mask,
                out.total_steps,
                if shape == "small" { "--small" } else { "--paper" },
            );
            println!("    replay: {cmd}");
            row = row
                .set(
                    "violation_details",
                    Json::Arr(
                        out.violations
                            .iter()
                            .map(|v| Json::str(format!("{v}")))
                            .collect(),
                    ),
                )
                .set("shrunk_mask", Json::str(format!("{:#x}", s.mask)))
                .set("shrunk_steps", Json::Num(s.steps as f64))
                .set("shrink_runs", Json::Num(s.runs as f64))
                .set("replay", Json::str(cmd));
        }
        schedules.push(row);
    }

    let summary = Json::obj()
        .set("shape", Json::str(shape))
        .set("schedules_run", Json::Num(seeds as f64))
        .set("steps_applied", Json::Num(total_steps as f64))
        .set("faults_injected", Json::Num(total_faults as f64))
        .set("violating_schedules", Json::Num(failures as f64))
        .set(
            "shrink",
            Json::obj()
                .set("schedules_shrunk", Json::Num(failures as f64))
                .set("total_shrink_runs", Json::Num(shrink_runs as f64))
                .set("minimal_steps_total", Json::Num(shrunk_steps as f64)),
        );

    let mut rep = phoenix_telemetry::BenchReport::new("chaos_sweep");
    rep.section("chaos", summary);
    rep.section("schedules", Json::Arr(schedules));
    let path = rep
        .write_to(&outcome.merged, workspace_root().join("results/BENCH_chaos.json"))
        .expect("write BENCH_chaos.json");
    println!(
        "chaos_sweep done: {}/{} schedules clean, {} faults injected; report: {}",
        seeds - failures,
        seeds,
        total_faults,
        path.display()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
