//! Chaos sweep / replay driver.
//!
//! Sweep mode: run N random fault schedules and check invariants:
//!
//! ```text
//! chaos --seeds 100 --small
//! ```
//!
//! Any violation is shrunk to a minimal schedule and reported with the
//! exact `--replay SEED[:MASK]` command that reproduces it. Replay mode
//! re-runs one schedule verbosely and dumps the telemetry flight recorder:
//!
//! ```text
//! chaos --small --replay 1337:2c
//! ```
//!
//! Exit status is non-zero iff any schedule violated an invariant.

use phoenix_chaos::{
    dump_flight_recorder, full_mask, generate_schedule, parse_replay, replay_command,
    run_schedule, shrink, ChaosConfig,
};
use phoenix_kernel::boot_cluster;

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seeds N] [--seed-base S] [--small] [--paper] [--partition] \
         [--quorum] [--slow] [--lossy PERMILLE] [--max-faults K] [--replay SEED[:MASK_HEX]]"
    );
    std::process::exit(2);
}

fn main() {
    let mut seeds = 50u64;
    let mut seed_base = 1u64;
    let mut cfg = ChaosConfig::small();
    let mut mode = String::from("--small");
    let mut lossy: Option<u16> = None;
    let mut replay: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => {
                seeds = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--seed-base" => {
                seed_base = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--small" => {
                cfg = ChaosConfig::small();
                mode = "--small".into();
            }
            "--paper" => {
                cfg = ChaosConfig::paper();
                mode = "--paper".into();
            }
            "--partition" => {
                cfg = ChaosConfig::small_partition();
                mode = "--partition".into();
            }
            "--quorum" => {
                cfg = ChaosConfig::small_quorum();
                mode = "--quorum".into();
            }
            "--slow" => {
                cfg = ChaosConfig::small_slow();
                mode = "--slow".into();
            }
            "--lossy" => {
                lossy = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()))
            }
            "--max-faults" => {
                cfg.max_faults =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--replay" => replay = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    // Applied after the parse loop: --small/--paper replace the whole
    // config, so the lossy overlay must win regardless of flag order.
    if let Some(permille) = lossy {
        let max_faults = cfg.max_faults;
        cfg = ChaosConfig::small_lossy(permille);
        cfg.max_faults = max_faults;
        mode = format!("--lossy {permille}");
    }

    if let Some(spec) = replay {
        let (seed, mask) = match parse_replay(&spec) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("chaos: {e}");
                std::process::exit(2);
            }
        };
        std::process::exit(run_replay(seed, mask, &cfg));
    }

    println!(
        "chaos sweep: {seeds} schedules, seeds {seed_base}..{}, topology {}x{} \
         ({} faults max per schedule)",
        seed_base + seeds - 1,
        cfg.partitions,
        cfg.nodes_per_partition,
        cfg.max_faults
    );
    if cfg.net.loss_permille > 0 {
        println!(
            "  unreliable network: {}‰ loss, {}‰ duplication, loss bursts in schedules",
            cfg.net.loss_permille, cfg.net.dup_permille
        );
    }
    let mut failures = 0u64;
    let mut total_faults = 0usize;
    for seed in seed_base..seed_base + seeds {
        let out = run_schedule(seed, &cfg, u64::MAX, false);
        total_faults += out.faults_injected;
        if !out.failed() {
            println!(
                "  seed {seed:>5}: ok   ({} steps, {} faults, settled at {:.1}s virtual)",
                out.applied_steps,
                out.faults_injected,
                out.virtual_ns as f64 / 1e9
            );
            continue;
        }
        failures += 1;
        println!(
            "  seed {seed:>5}: FAIL ({} steps, {} faults) — {} violation(s):",
            out.applied_steps,
            out.faults_injected,
            out.violations.len()
        );
        for v in &out.violations {
            println!("      {v}");
        }
        let start = full_mask(out.total_steps);
        let s = shrink(seed, &cfg, start, out.total_steps);
        println!(
            "      shrunk {} -> {} steps in {} runs; minimal mask {:#x}",
            out.total_steps, s.steps, s.runs, s.mask
        );
        println!(
            "      replay: {}",
            replay_command(seed, s.mask, out.total_steps, &mode)
        );
    }
    println!(
        "chaos sweep done: {}/{} schedules clean, {} faults injected",
        seeds - failures,
        seeds,
        total_faults
    );
    std::process::exit(if failures > 0 { 1 } else { 0 });
}

fn run_replay(seed: u64, mask: Option<u64>, cfg: &ChaosConfig) -> i32 {
    // Print the schedule first so the operator sees what will be applied.
    let (_world, cluster) = boot_cluster(cfg.topology(), cfg.params.clone(), seed);
    let steps = generate_schedule(seed, cfg, &cluster);
    let mask = mask.unwrap_or_else(|| full_mask(steps.len()));
    println!("replay seed {seed} mask {mask:#x} — schedule ({} steps):", steps.len());
    for (i, step) in steps.iter().enumerate() {
        let selected = mask & (1u64 << i) != 0;
        println!("  {} [{i:>2}] {step}", if selected { "*" } else { " " });
    }
    println!("running:");
    let out = run_schedule(seed, cfg, mask, true);
    println!(
        "result: {} steps applied, {} faults, quiesced={}, {:.1}s virtual",
        out.applied_steps,
        out.faults_injected,
        out.quiesced,
        out.virtual_ns as f64 / 1e9
    );
    if out.violations.is_empty() {
        println!("no invariant violations.");
    } else {
        for v in &out.violations {
            println!("VIOLATION {v}");
        }
    }
    println!("flight recorder (most recent spans):");
    dump_flight_recorder(40);
    if out.failed() {
        1
    } else {
        0
    }
}
