//! Deterministic chaos testing for the Phoenix kernel.
//!
//! The paper evaluates the kernel by injecting single, hand-picked faults
//! (Tables 1-3). This crate explores the space the paper could not: random
//! *schedules* of overlapping faults — process kills, node crashes and
//! restarts, NIC failures, link partitions and heals — generated from a
//! seed, applied to a booted simulated cluster, and checked against
//! kernel-level invariants once the fault cascade quiesces.
//!
//! Because the simulator is fully deterministic (one `SimRng`, a virtual
//! clock, FIFO tie-breaking), a seed *is* a reproducer: any violation can
//! be replayed bit-for-bit with `chaos --replay SEED[:MASK]`, and a failing
//! schedule is greedily shrunk (drop one step at a time, keep the drop if
//! the violation persists) to a minimal mask before being reported.
//!
//! Invariants checked after quiescence:
//!
//! 1. **meta-leader** — every partition runs exactly one live GSD, exactly
//!    one GSD in the whole cluster holds the meta-group Leader role, and
//!    all live GSDs agree on who that is.
//! 2. **wd-convergence** — the WD of every live node heartbeats a live GSD
//!    of its own partition (detection would silently stop otherwise).
//! 3. **takeover** — the `gsd.takeover` histogram grew iff a GSD actually
//!    died (no missed takeovers; no spurious ones on clean networks).
//! 4. **bulletin** — the single-access-point resource query completes and
//!    covers every live node.
//! 5. **event-delivery** — a consumer registered on every partition's event
//!    service receives a freshly published event (federation forwards it).
//! 6. **quiescence** — the cluster reaches trace silence at all: a cascade
//!    that never settles is itself a bug.
//! 7. **arena-leak** — the scheduler's event pool balances: live pooled
//!    slots equal pending queue events and `allocs - frees == live`, so a
//!    full fault schedule leaks no message slots (the event-core analogue
//!    of the telemetry-leak invariant).

use std::fmt;

use phoenix_kernel::group::{Gsd, Wd};
use phoenix_kernel::{boot_cluster_custom, ClientHandle, KernelParams, PhoenixCluster};
use phoenix_proto::{
    BulletinKey, BulletinQuery, ClusterTopology, ConsumerReg, Event, EventFilter, EventPayload,
    EventType, KernelMsg, NodeOp, PartitionId, PartitionSpec, RequestId, ServiceDirectory,
};
use phoenix_sim::{
    Diagnosis, Fault, FaultTarget, NetParams, NicId, NodeId, Pid, SchedulerKind, SimDuration,
    SimRng, SimTime, TraceEvent, World,
};

/// Salt mixed into the schedule RNG so the schedule stream is independent
/// of the boot/network RNG stream seeded from the same user-facing seed.
const SCHEDULE_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Salt for the flapping-NIC step stream. Flap steps are drawn from their
/// own RNG and *appended* to the schedule, so enabling them leaves every
/// seed's pre-existing steps (and the main schedule stream) untouched.
const FLAP_SALT: u64 = 0x6c62_272e_07bb_0142;

/// Salt for the island-partition storm stream. Like flap steps, partition
/// cycles ride their own RNG and are appended, keeping every other stream
/// byte-identical per seed whether or not storms are enabled.
const PARTITION_SALT: u64 = 0x2545_f491_4f6c_dd1d;

/// Salt for the even-split storm stream (exact half/half islands for the
/// weighted/witness quorum). Appended from its own RNG like the other
/// optional shapes, so every pre-existing stream stays byte-identical.
const QUORUM_SALT: u64 = 0x94d0_49bb_1331_11eb;

/// Salt for the fail-slow (gray failure) storm stream: nodes that stay
/// alive and keep answering — late. Appended from its own RNG like the
/// other optional shapes, so every pre-existing stream stays
/// byte-identical per seed whether or not slow storms are enabled.
const SLOW_SALT: u64 = 0xd6e8_feb8_6659_fd93;

/// Schedules are capped at 64 steps so a subset is a `u64` bitmask.
pub const MAX_STEPS: usize = 64;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Everything that shapes a chaos run besides the seed.
#[derive(Clone)]
pub struct ChaosConfig {
    pub partitions: usize,
    pub nodes_per_partition: usize,
    pub backups: usize,
    /// Upper bound on primary faults per schedule (repairs/heals ride along).
    pub max_faults: usize,
    /// Virtual-time window over which fault offsets are drawn.
    pub horizon: SimDuration,
    /// Trace-silence window that counts as quiescent.
    pub settle_window: SimDuration,
    /// Give up waiting for quiescence after this much extra virtual time.
    pub settle_deadline: SimDuration,
    pub params: KernelParams,
    /// Baseline network unreliability for the whole run (loss, duplication,
    /// reordering). All-zero by default, which keeps every pre-existing
    /// schedule byte-for-byte identical.
    pub net: NetParams,
    /// Include loss-burst steps in generated schedules. Off by default:
    /// enabling it widens the fault-kind draw, which changes the schedule
    /// of every seed — pinned regression seeds rely on it staying off for
    /// the small/paper configurations.
    pub loss_steps: bool,
    /// Append flapping-NIC storms (degrade/restore cycles on one interface
    /// of one node) to generated schedules. Drawn from a separate salted
    /// RNG stream, so the main schedule steps stay identical per seed.
    pub nic_flap_steps: bool,
    /// Append island-partition storms (whole topology partitions severed
    /// into a link-level island, then healed) to generated schedules. Only
    /// meaningful with regroup-enabled kernel parameters
    /// (`KernelParams::fast_partition()`); off by default so every pinned
    /// seed's schedule stays byte-identical.
    pub partition_steps: bool,
    /// Append even-split storms: exactly half the configured partitions
    /// severed into an island, held past the regroup takeover delay, then
    /// healed. Only meaningful with vote-table kernel parameters
    /// (`KernelParams::fast_quorum()`) — without a witness both sides of
    /// an even split freeze by design. Off by default; rides its own
    /// salted stream like the other optional shapes.
    pub quorum_steps: bool,
    /// Append fail-slow storms: a node's send/serve latency stretched by a
    /// large factor for a bounded window, then cleared. Only meaningful
    /// with the fail-slow detector on (`KernelParams::fast_slow()`) —
    /// without it the kernel has no quarantine to converge. Off by
    /// default; rides its own salted stream like the other shapes.
    pub slow_steps: bool,
    /// Which event-queue implementation the simulated world runs on. Runs
    /// must be byte-identical under every kind — the differential suite
    /// replays pinned seeds under each and compares the streams.
    pub scheduler: SchedulerKind,
    /// Record the per-event dispatch log and rendered trace into
    /// [`RunOutcome::streams`] for byte comparison. Off by default (the
    /// log allocates per event).
    pub record_streams: bool,
}

impl ChaosConfig {
    /// 3 partitions x 5 nodes, fast fault-tolerance parameters. This is the
    /// tier-1 / smoke configuration (`chaos --small`).
    pub fn small() -> ChaosConfig {
        ChaosConfig {
            partitions: 3,
            nodes_per_partition: 5,
            backups: 1,
            max_faults: 6,
            horizon: SimDuration::from_secs(10),
            settle_window: SimDuration::from_secs(8),
            settle_deadline: SimDuration::from_secs(120),
            params: KernelParams::fast(),
            net: NetParams::default(),
            loss_steps: false,
            nic_flap_steps: false,
            partition_steps: false,
            quorum_steps: false,
            slow_steps: false,
            scheduler: SchedulerKind::default(),
            record_streams: false,
        }
    }

    /// The small topology on an unreliable network: a baseline random-loss
    /// rate, loss-tolerant kernel parameters (retrying RPCs, K-of-N
    /// suspicion), and loss-burst steps mixed into the schedules.
    pub fn small_lossy(loss_permille: u16) -> ChaosConfig {
        ChaosConfig {
            params: KernelParams::fast_lossy(),
            net: NetParams::unreliable(loss_permille),
            loss_steps: true,
            nic_flap_steps: true,
            ..ChaosConfig::small()
        }
    }

    /// The small topology with quorum regroup enabled and island-partition
    /// storms mixed into the schedules (`chaos --partition`). The horizon
    /// stretches so a storm's hold time (long enough for suspicion *and*
    /// the held-majority takeover delay to engage) plus the post-heal
    /// reconvergence fits before settling.
    pub fn small_partition() -> ChaosConfig {
        ChaosConfig {
            params: KernelParams::fast_partition(),
            horizon: SimDuration::from_secs(20),
            partition_steps: true,
            ..ChaosConfig::small()
        }
    }

    /// An even-partition-count topology (4 × 3 nodes) with the vote table
    /// and adaptive takeover delay on, and even-split storms in the
    /// schedules (`chaos --quorum`). The witness is designated away from
    /// the config partition (p1) so ordinary crash steps can also hit the
    /// witness's server, exercising rescue-under-witness and the
    /// witness-dead shapes.
    pub fn small_quorum() -> ChaosConfig {
        let mut params = KernelParams::fast_quorum();
        params.ft.regroup.votes.witness = Some(PartitionId(1));
        ChaosConfig {
            partitions: 4,
            nodes_per_partition: 3,
            backups: 1,
            max_faults: 5,
            horizon: SimDuration::from_secs(20),
            params,
            quorum_steps: true,
            ..ChaosConfig::small()
        }
    }

    /// The small topology with the fail-slow detector on and gray-failure
    /// storms mixed into the schedules (`chaos --slow`). Slow nodes stay
    /// alive the whole time, so on top of the ordinary crash/kill shapes
    /// the run must show quarantine + drain + reinstatement converging —
    /// and never a dead verdict for a node that merely answered late.
    pub fn small_slow() -> ChaosConfig {
        ChaosConfig {
            params: KernelParams::fast_slow(),
            horizon: SimDuration::from_secs(20),
            slow_steps: true,
            ..ChaosConfig::small()
        }
    }

    /// The paper's testbed shape (8 partitions x 17 nodes) with the paper's
    /// 30 s heartbeat. Virtual time is cheap; wall-clock cost comes from
    /// node count, so this is the `--seeds`-few deep configuration.
    pub fn paper() -> ChaosConfig {
        ChaosConfig {
            partitions: 8,
            nodes_per_partition: 17,
            backups: 1,
            max_faults: 8,
            horizon: SimDuration::from_secs(120),
            settle_window: SimDuration::from_secs(70),
            settle_deadline: SimDuration::from_secs(1200),
            params: KernelParams::default(),
            net: NetParams::default(),
            loss_steps: false,
            nic_flap_steps: false,
            partition_steps: false,
            quorum_steps: false,
            slow_steps: false,
            scheduler: SchedulerKind::default(),
            record_streams: false,
        }
    }

    pub fn topology(&self) -> ClusterTopology {
        ClusterTopology::uniform(self.partitions, self.nodes_per_partition, self.backups)
    }
}

// ---------------------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------------------

/// One scheduled action: a simulator fault, or a repair request sent to the
/// configuration service (paper Sec 3: node management via the config
/// service's single access point).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum StepAction {
    Fault(Fault),
    RepairNode(NodeId),
}

/// An action at a virtual-time offset from the end of stabilization.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Step {
    pub offset: SimDuration,
    pub action: StepAction,
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.offset.as_nanos() / 1_000_000;
        match self.action {
            StepAction::Fault(fault) => write!(f, "+{ms:>6}ms  {fault:?}"),
            StepAction::RepairNode(n) => write!(f, "+{ms:>6}ms  RepairNode({})", n.0),
        }
    }
}

/// Generate the fault schedule for `seed`. Deterministic: the same seed and
/// config always produce the same schedule, and the pids it references are
/// the boot-time pids (boot is itself deterministic per seed).
pub fn generate_schedule(seed: u64, cfg: &ChaosConfig, cluster: &PhoenixCluster) -> Vec<Step> {
    let mut rng = SimRng::seed_from_u64(seed ^ SCHEDULE_SALT);
    let dir = &cluster.directory;
    let topo = &cluster.topology;
    let horizon_ms = (cfg.horizon.as_nanos() / 1_000_000).max(1);

    // Node-crash candidates: compute nodes anywhere, plus servers of
    // partitions >= 1. Partition 0's server hosts the config and security
    // services (single-instance by design, paper Sec 3.1) and backup nodes
    // are the migration targets the takeover invariant depends on.
    let mut crashable: Vec<NodeId> = Vec::new();
    for (i, p) in topo.partitions.iter().enumerate() {
        if i > 0 {
            crashable.push(p.server);
        }
        crashable.extend(p.compute.iter().copied());
    }

    // Killable pids: per-node daemons and per-partition services. Config and
    // security are deliberately excluded (single-instance services; their
    // loss is a different experiment than kernel self-healing).
    let mut killable: Vec<Pid> = Vec::new();
    for ns in &dir.nodes {
        killable.extend([ns.wd, ns.detector, ns.ppm]);
    }
    for m in &dir.partitions {
        killable.extend([m.gsd, m.event, m.bulletin, m.checkpoint]);
    }

    let all_nodes: Vec<NodeId> = topo
        .partitions
        .iter()
        .flat_map(|p| p.all_nodes())
        .collect();

    let n_faults = rng.gen_range(1..=cfg.max_faults.min(16) as u64) as usize;
    let mut steps: Vec<Step> = Vec::new();
    let mut crashed: Vec<NodeId> = Vec::new();
    for _ in 0..n_faults {
        if steps.len() + 2 > MAX_STEPS {
            break;
        }
        let at = SimDuration::from_millis(rng.gen_range(0..horizon_ms));
        // The extra loss-burst kind is only in the draw when enabled, so
        // schedules of the default configurations are unchanged.
        let kinds = if cfg.loss_steps { 5u64 } else { 4 };
        match rng.gen_range(0..kinds) {
            0 => {
                let pid = killable[rng.gen_range(0..killable.len() as u64) as usize];
                steps.push(Step {
                    offset: at,
                    action: StepAction::Fault(Fault::KillProcess(pid)),
                });
            }
            1 => {
                let node = crashable[rng.gen_range(0..crashable.len() as u64) as usize];
                if crashed.contains(&node) {
                    continue;
                }
                crashed.push(node);
                steps.push(Step {
                    offset: at,
                    action: StepAction::Fault(Fault::CrashNode(node)),
                });
                // Usually repair the node later so schedules also exercise
                // the config-service restart path (and WD re-wiring).
                if rng.gen_range(0..10u64) < 7 {
                    let delay = SimDuration::from_millis(rng.gen_range(2_000u64..20_000));
                    steps.push(Step {
                        offset: at + delay,
                        action: StepAction::RepairNode(node),
                    });
                }
            }
            2 => {
                let node = all_nodes[rng.gen_range(0..all_nodes.len() as u64) as usize];
                let nic = NicId(rng.gen_range(0..3u64) as u8);
                steps.push(Step {
                    offset: at,
                    action: StepAction::Fault(Fault::NicDown(node, nic)),
                });
                let delay = SimDuration::from_millis(rng.gen_range(1_000u64..4_000));
                steps.push(Step {
                    offset: at + delay,
                    action: StepAction::Fault(Fault::NicUp(node, nic)),
                });
            }
            3 => {
                let a = all_nodes[rng.gen_range(0..all_nodes.len() as u64) as usize];
                let mut b = all_nodes[rng.gen_range(0..all_nodes.len() as u64) as usize];
                if a == b {
                    b = all_nodes[(a.0 as usize + 1) % all_nodes.len()];
                }
                steps.push(Step {
                    offset: at,
                    action: StepAction::Fault(Fault::PartitionLink(a, b)),
                });
                let delay = SimDuration::from_millis(rng.gen_range(1_000u64..5_000));
                steps.push(Step {
                    offset: at + delay,
                    action: StepAction::Fault(Fault::HealLink(a, b)),
                });
            }
            _ => {
                // A cluster-wide loss burst (congestion spike): random loss
                // jumps to 5-30% for a bounded window, then clears back to
                // the configured baseline.
                let permille = 50 + rng.gen_range(0..251u64) as u16;
                steps.push(Step {
                    offset: at,
                    action: StepAction::Fault(Fault::LossBurst { permille }),
                });
                let delay = SimDuration::from_millis(rng.gen_range(1_000u64..6_000));
                steps.push(Step {
                    offset: at + delay,
                    action: StepAction::Fault(Fault::LossClear),
                });
            }
        }
    }
    // Flapping-NIC storms: one interface of one node oscillates between
    // heavy loss and clean several times — the adversarial input for the
    // NIC-health hysteresis (a naive scorer would flip routing every
    // cycle; a naive detector would declare the NIC down). Drawn from a
    // separate salted stream and appended, so the steps above are
    // byte-identical whether or not flaps are enabled.
    if cfg.nic_flap_steps {
        let mut frng = SimRng::seed_from_u64(seed ^ FLAP_SALT);
        let storms = 1 + frng.gen_range(0..2u64);
        for _ in 0..storms {
            if steps.len() + 2 > MAX_STEPS {
                break;
            }
            let node = all_nodes[frng.gen_range(0..all_nodes.len() as u64) as usize];
            let nic = NicId(frng.gen_range(0..3u64) as u8);
            let mut at = SimDuration::from_millis(frng.gen_range(0..horizon_ms));
            let cycles = 2 + frng.gen_range(0..3u64);
            for _ in 0..cycles {
                if steps.len() + 2 > MAX_STEPS {
                    break;
                }
                // 10-50% loss while degraded: bad enough to bleed through
                // K-of-N suspicion if routing ignores it, not a hard outage.
                let permille = 100 + frng.gen_range(0..401u64) as u16;
                steps.push(Step {
                    offset: at,
                    action: StepAction::Fault(Fault::NicDegrade(node, nic, permille)),
                });
                let hold = SimDuration::from_millis(frng.gen_range(300..2_000u64));
                steps.push(Step {
                    offset: at + hold,
                    action: StepAction::Fault(Fault::NicRestore(node, nic)),
                });
                at = at + hold + SimDuration::from_millis(frng.gen_range(200..1_500u64));
            }
        }
    }
    // Island-partition storms: one or two cycles of "sever a random subset
    // of whole topology partitions into an island, hold long enough for
    // suspicion and the regroup takeover delay to engage, heal, let the
    // cluster reconverge". Cycles are sequential in their own salted
    // stream (`Fault::Partition` replaces any active island, so ordering
    // stays well-defined even interleaved with other steps).
    if cfg.partition_steps {
        let mut prng = SimRng::seed_from_u64(seed ^ PARTITION_SALT);
        let cycles = 1 + prng.gen_range(0..2u64);
        let mut at = SimDuration::from_millis(prng.gen_range(0..horizon_ms));
        for _ in 0..cycles {
            if steps.len() + 2 > MAX_STEPS {
                break;
            }
            // The island is a nonempty proper subset of the configured
            // partitions, so one side always holds a strict majority or
            // the split is even (both sides freeze).
            let k = 1 + prng.gen_range(0..(topo.partitions.len() - 1) as u64) as usize;
            let mut chosen: Vec<usize> = Vec::new();
            while chosen.len() < k {
                let p = prng.gen_range(0..topo.partitions.len() as u64) as usize;
                if !chosen.contains(&p) {
                    chosen.push(p);
                }
            }
            let mut island = 0u64;
            for &p in &chosen {
                for n in topo.partitions[p].all_nodes() {
                    if n.0 < 64 {
                        island |= 1u64 << n.0;
                    }
                }
            }
            steps.push(Step {
                offset: at,
                action: StepAction::Fault(Fault::Partition { island }),
            });
            let hold = SimDuration::from_millis(prng.gen_range(4_000..8_000u64));
            steps.push(Step {
                offset: at + hold,
                action: StepAction::Fault(Fault::Heal),
            });
            at = at + hold + SimDuration::from_millis(prng.gen_range(10_000..16_000u64));
        }
    }
    // Even-split storms: exactly half the configured partitions islanded
    // at once — the shape count-majority regroup cannot win (both sides
    // freeze) and the vote table must (the witness's side stays live).
    // Random halves cover witness-in-island and witness-in-rest alike.
    // Holds run longer than partition storms: the winning side may need a
    // full suspicion + held-majority + election pipeline before its
    // leader stands, and the sampled exactly-one-live-side check needs
    // instants past that deadline to bite on.
    if cfg.quorum_steps && cfg.partitions >= 2 {
        let mut qrng = SimRng::seed_from_u64(seed ^ QUORUM_SALT);
        let cycles = 1 + qrng.gen_range(0..2u64);
        let mut at = SimDuration::from_millis(qrng.gen_range(0..horizon_ms));
        for _ in 0..cycles {
            if steps.len() + 2 > MAX_STEPS {
                break;
            }
            let k = topo.partitions.len() / 2;
            let mut chosen: Vec<usize> = Vec::new();
            while chosen.len() < k {
                let p = qrng.gen_range(0..topo.partitions.len() as u64) as usize;
                if !chosen.contains(&p) {
                    chosen.push(p);
                }
            }
            let mut island = 0u64;
            for &p in &chosen {
                for n in topo.partitions[p].all_nodes() {
                    if n.0 < 64 {
                        island |= 1u64 << n.0;
                    }
                }
            }
            steps.push(Step {
                offset: at,
                action: StepAction::Fault(Fault::Partition { island }),
            });
            let hold = SimDuration::from_millis(qrng.gen_range(9_000..12_000u64));
            steps.push(Step {
                offset: at + hold,
                action: StepAction::Fault(Fault::Heal),
            });
            at = at + hold + SimDuration::from_millis(qrng.gen_range(12_000..18_000u64));
        }
    }
    // Fail-slow storms: a node turns gray — alive, answering, late — for a
    // bounded window, then heals. Factors run 5x-49x: far past the
    // detector's slow-after gate, far under anything that could starve the
    // fail-stop pipeline's probe timeouts (so a dead verdict during a
    // clean slow window is unambiguously a false positive). Each episode
    // is paired with its `SlowClear` so every schedule ends healed and the
    // quarantine-convergence invariant is meaningful.
    if cfg.slow_steps {
        let mut srng = SimRng::seed_from_u64(seed ^ SLOW_SALT);
        let episodes = 1 + srng.gen_range(0..2u64);
        let mut slowed: Vec<NodeId> = Vec::new();
        for _ in 0..episodes {
            if steps.len() + 2 > MAX_STEPS {
                break;
            }
            let node = all_nodes[srng.gen_range(0..all_nodes.len() as u64) as usize];
            if slowed.contains(&node) {
                continue;
            }
            slowed.push(node);
            let at = SimDuration::from_millis(srng.gen_range(0..horizon_ms));
            let factor_permille = (4_000 + srng.gen_range(0..44_001u64)) as u16;
            steps.push(Step {
                offset: at,
                action: StepAction::Fault(Fault::SlowNode {
                    node,
                    factor_permille,
                }),
            });
            let hold = SimDuration::from_millis(srng.gen_range(8_000..16_000u64));
            steps.push(Step {
                offset: at + hold,
                action: StepAction::Fault(Fault::SlowClear(node)),
            });
        }
    }
    steps.sort_by_key(|s| s.offset.as_nanos());
    steps
}

/// Bitmask selecting every step of a schedule of `n` steps.
pub fn full_mask(n: usize) -> u64 {
    debug_assert!(n <= MAX_STEPS);
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

// ---------------------------------------------------------------------------
// Schedule classification (used by the pinned regression scenarios to prove
// a seed still exhibits the shape it was pinned for)
// ---------------------------------------------------------------------------

/// Partitions whose boot-time GSD the schedule kills — directly via
/// `KillProcess`, or by crashing the node hosting it.
pub fn gsd_kills(steps: &[Step], cluster: &PhoenixCluster) -> Vec<PartitionId> {
    let mut out = Vec::new();
    for m in &cluster.directory.partitions {
        let hit = steps.iter().any(|s| match s.action {
            StepAction::Fault(Fault::KillProcess(pid)) => pid == m.gsd,
            StepAction::Fault(Fault::CrashNode(node)) => node == m.node,
            _ => false,
        });
        if hit && !out.contains(&m.partition) {
            out.push(m.partition);
        }
    }
    out
}

/// Nodes with two overlapping NIC-outage windows (a second interface fails
/// while another is still down — the diagnosis ambiguity case).
pub fn double_nic_nodes(steps: &[Step], horizon: SimDuration) -> Vec<NodeId> {
    let mut windows: Vec<(NodeId, NicId, u64, u64)> = Vec::new();
    for s in steps {
        if let StepAction::Fault(Fault::NicDown(node, nic)) = s.action {
            let down = s.offset.as_nanos();
            let up = steps
                .iter()
                .filter_map(|t| match t.action {
                    StepAction::Fault(Fault::NicUp(n, c)) if n == node && c == nic => {
                        Some(t.offset.as_nanos())
                    }
                    _ => None,
                })
                .find(|&u| u > down)
                .unwrap_or(horizon.as_nanos());
            windows.push((node, nic, down, up));
        }
    }
    let mut out = Vec::new();
    for (i, &(node, nic, d0, u0)) in windows.iter().enumerate() {
        for &(n2, c2, d1, u1) in &windows[i + 1..] {
            let overlaps = d0 < u1 && d1 < u0;
            if node == n2 && nic != c2 && overlaps && !out.contains(&node) {
                out.push(node);
            }
        }
    }
    out
}

/// Number of NIC-degrade faults (flapping-NIC storm steps) in the schedule.
pub fn nic_flaps(steps: &[Step]) -> usize {
    steps
        .iter()
        .filter(|s| matches!(s.action, StepAction::Fault(Fault::NicDegrade(..))))
        .count()
}

/// Number of loss-burst faults in the schedule.
pub fn loss_bursts(steps: &[Step]) -> usize {
    steps
        .iter()
        .filter(|s| matches!(s.action, StepAction::Fault(Fault::LossBurst { .. })))
        .count()
}

/// Number of link-partition faults in the schedule.
pub fn link_partitions(steps: &[Step]) -> usize {
    steps
        .iter()
        .filter(|s| matches!(s.action, StepAction::Fault(Fault::PartitionLink(..))))
        .count()
}

/// Number of island-partition storms (`Fault::Partition`) in the schedule.
pub fn island_partitions(steps: &[Step]) -> usize {
    steps
        .iter()
        .filter(|s| matches!(s.action, StepAction::Fault(Fault::Partition { .. })))
        .count()
}

/// Number of fail-slow storms (`Fault::SlowNode`) in the schedule.
pub fn slow_storms(steps: &[Step]) -> usize {
    steps
        .iter()
        .filter(|s| matches!(s.action, StepAction::Fault(Fault::SlowNode { .. })))
        .count()
}

/// Crash/repair pairs: nodes the schedule crashes and later repairs through
/// the configuration service.
pub fn crash_repair_nodes(steps: &[Step]) -> Vec<NodeId> {
    let mut out = Vec::new();
    for s in steps {
        if let StepAction::Fault(Fault::CrashNode(node)) = s.action {
            let repaired = steps.iter().any(|t| {
                matches!(t.action, StepAction::RepairNode(n) if n == node)
                    && t.offset.as_nanos() > s.offset.as_nanos()
            });
            if repaired && !out.contains(&node) {
                out.push(node);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Running a schedule
// ---------------------------------------------------------------------------

/// A single invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    pub invariant: &'static str,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// The byte-comparison streams of a run, captured when
/// [`ChaosConfig::record_streams`] is set. Two runs of the same seed are
/// byte-identical iff both streams match.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunStreams {
    /// One line per dispatched simulator event (time, sequence, routing).
    pub events: String,
    /// The rendered structured trace log.
    pub trace: String,
}

/// Everything a schedule run produced.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    pub seed: u64,
    pub total_steps: usize,
    pub applied_steps: usize,
    pub faults_injected: usize,
    /// A step killed a live GSD (directly or by crashing its node).
    pub gsd_died: bool,
    pub quiesced: bool,
    /// Virtual time consumed by the whole run.
    pub virtual_ns: u64,
    pub violations: Vec<Violation>,
    /// Recorded event/trace streams (`None` unless
    /// `ChaosConfig::record_streams`).
    pub streams: Option<RunStreams>,
}

impl RunOutcome {
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

fn takeover_count() -> u64 {
    phoenix_telemetry::with(|reg| {
        reg.histogram("gsd.takeover").map(|h| h.count()).unwrap_or(0)
    })
}

/// Does applying `fault` right now kill a live GSD?
fn kills_live_gsd(world: &World<KernelMsg>, fault: Fault) -> bool {
    match fault {
        Fault::KillProcess(pid) => world.actor_as::<Gsd>(pid).is_some(),
        Fault::CrashNode(node) => world
            .pids_on(node)
            .iter()
            .any(|&p| world.actor_as::<Gsd>(p).is_some()),
        _ => false,
    }
}

/// One fail-slow episode as applied to the world. `clean` means no network
/// fault touched the node (or the whole network) while it was slow, so a
/// dead-diagnosis inside the window is unambiguously a false positive of
/// the fail-stop pipeline — the node was answering the whole time, late.
struct SlowWindow {
    node: NodeId,
    from: SimTime,
    to: Option<SimTime>,
    clean: bool,
}

/// Boot a cluster, apply the masked subset of the seed's schedule, wait for
/// quiescence, and check every invariant.
pub fn run_schedule(seed: u64, cfg: &ChaosConfig, mask: u64, verbose: bool) -> RunOutcome {
    let (mut world, cluster) = boot_cluster_custom(
        cfg.topology(),
        cfg.params.clone(),
        seed,
        cfg.net.clone(),
        cfg.scheduler,
        cfg.record_streams,
    );
    let hb = cfg.params.ft.hb_interval;
    world.run_until(SimTime::ZERO + hb * 2 + SimDuration::from_millis(10));

    let steps = generate_schedule(seed, cfg, &cluster);
    let t0 = world.now();
    let client = ClientHandle::spawn(&mut world, cluster.topology.partitions[0].server);
    world.run_for(SimDuration::from_millis(1));

    let takeovers_before = takeover_count();
    let mut applied = 0usize;
    let mut faults_injected = 0usize;
    let mut gsd_died = false;
    // Baseline random loss already makes the network "dirty": a lost
    // heartbeat run can legitimately raise suspicion.
    let mut clean_network = cfg.net.loss_permille == 0;
    let mut violations = Vec::new();
    let mut island_since: Option<SimTime> = None;
    let mut slow_windows: Vec<SlowWindow> = Vec::new();
    // The sampled checks grant the protocol a reaction window after *any*
    // schedule step, not just island formation: a GSD kill or node repair
    // mid-split shifts the weighted verdict instantly in the oracle, while
    // the cluster needs a detection pipeline to catch up.
    let mut last_step = t0;

    for (i, step) in steps.iter().enumerate() {
        if mask & (1u64 << i) == 0 {
            continue;
        }
        advance_sampled(
            &mut world,
            &cluster,
            cfg,
            t0 + step.offset,
            island_since,
            last_step,
            &mut violations,
        );
        match step.action {
            StepAction::Fault(fault) => {
                if kills_live_gsd(&world, fault) {
                    gsd_died = true;
                }
                if matches!(
                    fault,
                    Fault::NicDown(..)
                        | Fault::PartitionLink(..)
                        | Fault::LossBurst { .. }
                        | Fault::NicDegrade(..)
                        | Fault::Partition { .. }
                ) {
                    clean_network = false;
                }
                match fault {
                    Fault::Partition { .. } => island_since = Some(world.now()),
                    Fault::Heal => island_since = None,
                    _ => {}
                }
                // Fail-slow window bookkeeping for the slow-not-dead
                // invariant. Slowing an already-dead node opens no window
                // (it answers nothing, late or otherwise, and its dead
                // verdict is correct); a crash ends the window (the node
                // really is dead from then on); a network fault taints it
                // (a dead verdict could then be the network's fault, not
                // the detector's).
                match fault {
                    Fault::SlowNode { node, .. } if world.node(node).up => {
                        slow_windows.push(SlowWindow {
                            node,
                            from: world.now(),
                            to: None,
                            clean: true,
                        })
                    }
                    Fault::SlowClear(node) | Fault::CrashNode(node) => {
                        for w in slow_windows.iter_mut().filter(|w| w.node == node) {
                            w.to.get_or_insert(world.now());
                        }
                    }
                    Fault::NicDown(node, _) | Fault::NicDegrade(node, _, _) => {
                        for w in slow_windows
                            .iter_mut()
                            .filter(|w| w.node == node && w.to.is_none())
                        {
                            w.clean = false;
                        }
                    }
                    Fault::PartitionLink(a, b) => {
                        for w in slow_windows
                            .iter_mut()
                            .filter(|w| (w.node == a || w.node == b) && w.to.is_none())
                        {
                            w.clean = false;
                        }
                    }
                    Fault::LossBurst { .. } | Fault::Partition { .. } => {
                        for w in slow_windows.iter_mut().filter(|w| w.to.is_none()) {
                            w.clean = false;
                        }
                    }
                    _ => {}
                }
                if verbose {
                    println!("  t={:>9} apply {:?}", fmt_ns(world.now().0), fault);
                }
                world.apply_fault(fault);
                faults_injected += 1;
            }
            StepAction::RepairNode(node) => {
                // The config service spawns fresh daemons unconditionally;
                // repairing a node that is already up would duplicate them.
                if world.node(node).up {
                    continue;
                }
                if verbose {
                    println!("  t={:>9} repair node {}", fmt_ns(world.now().0), node.0);
                }
                client.send(
                    &mut world,
                    cluster.config(),
                    KernelMsg::CfgNodeOp {
                        req: RequestId(90_000 + i as u64),
                        node,
                        op: NodeOp::Start,
                    },
                );
            }
        }
        applied += 1;
        last_step = world.now();
    }

    // A shrunk mask may keep a `Partition` step but drop its `Heal`: a
    // cluster left split forever can never reconverge, so every run heals
    // any leftover island before settling (exactly like the generated
    // schedules always pair the two).
    if world.island() != 0 {
        world.apply_fault(Fault::Heal);
    }
    // Same for leftover slowness: a shrunk mask may keep a `SlowNode` but
    // drop its `SlowClear`. A cluster with a permanently slow node would
    // (correctly) hold its quarantine forever, so heal before settling —
    // the convergence invariant then asserts the quarantine warms out.
    for n in 0..world.node_count() {
        let node = NodeId(n as u32);
        if world.slow_factor(node) != 0 {
            world.apply_fault(Fault::SlowClear(node));
            for w in slow_windows.iter_mut().filter(|w| w.node == node) {
                w.to.get_or_insert(world.now());
            }
        }
    }

    let deadline = world.now() + cfg.settle_deadline;
    let quiesced = world.run_until_quiet(cfg.settle_window, deadline);
    client.drain(); // discard CfgAcks before the invariant queries

    if !quiesced {
        violations.push(Violation {
            invariant: "quiescence",
            detail: format!(
                "trace never went quiet for {} within {} after last step",
                fmt_ns(cfg.settle_window.as_nanos()),
                fmt_ns(cfg.settle_deadline.as_nanos())
            ),
        });
    }
    let takeover_delta = takeover_count() - takeovers_before;
    check_invariants(
        &mut world,
        &cluster,
        &client,
        gsd_died,
        clean_network,
        takeover_delta,
        &mut violations,
    );
    check_slow_invariants(&world, cfg, &slow_windows, &mut violations);

    let streams = cfg.record_streams.then(|| RunStreams {
        events: world.take_event_log(),
        trace: world.trace().render(),
    });

    RunOutcome {
        seed,
        total_steps: steps.len(),
        applied_steps: applied,
        faults_injected,
        gsd_died,
        quiesced,
        virtual_ns: world.now().0,
        violations,
        streams,
    }
}

fn fmt_ns(ns: u64) -> String {
    format!("{:.3}s", ns as f64 / 1e9)
}

/// Advance virtual time to `target`. While an island split is active the
/// advance happens in 100 ms slices, checking the split-brain invariants at
/// every sampled instant — not just after quiescence, because a split brain
/// is precisely a *transient* with two sides acting at once.
fn advance_sampled(
    world: &mut World<KernelMsg>,
    cluster: &PhoenixCluster,
    cfg: &ChaosConfig,
    target: SimTime,
    island_since: Option<SimTime>,
    last_step: SimTime,
    violations: &mut Vec<Violation>,
) {
    let slice = SimDuration::from_millis(100);
    while world.now().0 < target.0 {
        if world.island() == 0 {
            world.run_until(target);
            return;
        }
        let next = world.now() + slice;
        world.run_until(if next.0 < target.0 { next } else { target });
        sampled_split_brain_check(world, cluster, cfg, island_since, last_step, violations);
    }
}

/// The two sampled invariants of an island split: never two simultaneous
/// live meta-leaders, and — once the split has out-lived the worst-case
/// detect→regroup→freeze pipeline — no leader at all on a minority island.
fn sampled_split_brain_check(
    world: &World<KernelMsg>,
    cluster: &PhoenixCluster,
    cfg: &ChaosConfig,
    island_since: Option<SimTime>,
    last_step: SimTime,
    violations: &mut Vec<Violation>,
) {
    let gsds = live_gsds(world);
    let leaders: Vec<&GsdView> = gsds.iter().filter(|g| g.role == "leader").collect();
    if leaders.len() > 1 && !violations.iter().any(|v| v.invariant == "split-brain") {
        violations.push(Violation {
            invariant: "split-brain",
            detail: format!(
                "{} simultaneous meta-leaders at {} during an island split \
                 (partitions {:?})",
                leaders.len(),
                fmt_ns(world.now().0),
                leaders.iter().map(|g| g.partition.0).collect::<Vec<_>>()
            ),
        });
    }
    // Worst-case pipeline: suspicion (suspect-beats missed heartbeats plus
    // one in-flight interval) + a regroup round + freeze fanout. Five
    // heartbeat intervals bounds it with margin for every profile.
    let deadline = cfg.params.ft.hb_interval * 5;
    let held = island_since.map_or(SimDuration::ZERO, |s| world.now().since(s));
    if held <= deadline || world.now().since(last_step) <= deadline {
        return;
    }
    let island = world.island();
    let side = |n: NodeId| n.0 < 64 && (island >> n.0) & 1 == 1;
    let votes = &cfg.params.ft.regroup.votes;
    if votes.enabled {
        // Weighted rule: a side may lead iff it wins the weighted vote
        // (witness doubled, ties to the witness side then the lowest
        // configured partition) — the exact rule `Regroup::conclude`
        // applies. The witness may have failed over mid-run, so read the
        // freshest witness view off the live GSDs instead of the config.
        let witness = gsds
            .iter()
            .filter_map(|g| world.actor_as::<Gsd>(g.pid).and_then(|a| a.witness_view()))
            .max_by_key(|&(_, e)| e)
            .map(|(w, _)| w)
            .or(votes.witness)
            .unwrap_or(PartitionId(0));
        let weight_of = |p: PartitionId| -> u32 {
            let w = votes
                .weights
                .iter()
                .find(|(id, _)| *id == p)
                .map(|&(_, w)| w)
                .unwrap_or(1);
            if p == witness {
                w * 2
            } else {
                w
            }
        };
        // Per-side verdict, mirroring `Regroup::conclude` including the
        // home-node dead discount: a partition with no live GSD anywhere
        // is excluded from a side's quorum denominator iff at least one
        // of its home nodes is up on that side (those WDs would testify
        // its GSD dead in the side's regroup rounds). A side's reachable
        // votes come from the partitions whose live GSDs actually sit on
        // it — a migrated GSD votes where it runs, not where its home
        // server is.
        let side_wins = |inside: bool| -> bool {
            let members: Vec<PartitionId> = {
                let mut m: Vec<PartitionId> = gsds
                    .iter()
                    .filter(|g| side(g.node) == inside)
                    .map(|g| g.partition)
                    .collect();
                m.sort();
                m.dedup();
                m
            };
            let dead_for_side = |p: &PartitionSpec| -> bool {
                gsds.iter().all(|g| g.partition != p.id)
                    && p.all_nodes()
                        .iter()
                        .any(|&n| world.node(n).up && side(n) == inside)
            };
            let live_parts: Vec<PartitionId> = cluster
                .topology
                .partitions
                .iter()
                .filter(|p| !dead_for_side(p))
                .map(|p| p.id)
                .collect();
            let tv: u32 = live_parts.iter().map(|&p| weight_of(p)).sum();
            let lowest = live_parts.first().copied().unwrap_or(PartitionId(0));
            let v: u32 = members.iter().map(|&p| weight_of(p)).sum();
            2 * v > tv
                || (2 * v == tv
                    && v > 0
                    && (members.contains(&witness) || members.contains(&lowest)))
        };
        for g in &leaders {
            if !side_wins(side(g.node))
                && !violations.iter().any(|v| v.invariant == "minority-leader")
            {
                violations.push(Violation {
                    invariant: "minority-leader",
                    detail: format!(
                        "partition {}'s GSD still leads on the weighted-losing \
                         side at {} (witness {})",
                        g.partition.0,
                        fmt_ns(world.now().0),
                        witness.0
                    ),
                });
            }
        }
        // Exactly-one-live-side, part 2: once past a full election
        // pipeline (suspicion + held-majority delay + takeover), the
        // weighted winner's side must not sit entirely frozen — that
        // would be the very total-outage the vote table exists to
        // prevent. Gated on the winner side still hosting a live GSD
        // (a crash storm may have taken its daemons out entirely).
        let dark_deadline = cfg.params.ft.hb_interval * 8;
        if held > dark_deadline && world.now().since(last_step) > dark_deadline {
            for inside in [true, false] {
                if !side_wins(inside) {
                    continue;
                }
                let on_side: Vec<&GsdView> =
                    gsds.iter().filter(|g| side(g.node) == inside).collect();
                if !on_side.is_empty()
                    && on_side.iter().all(|g| g.role == "frozen")
                    && !violations.iter().any(|v| v.invariant == "quorum-dark")
                {
                    violations.push(Violation {
                        invariant: "quorum-dark",
                        detail: format!(
                            "the weighted-winning side (island={inside}) is \
                             entirely frozen at {} under witness {} — both \
                             sides of the split are dark",
                            fmt_ns(world.now().0),
                            witness.0
                        ),
                    });
                }
            }
        }
        return;
    }
    let total = cluster.topology.partitions.len();
    let inside = cluster
        .topology
        .partitions
        .iter()
        .filter(|p| side(p.server))
        .count();
    for g in leaders {
        let count = if side(g.node) { inside } else { total - inside };
        if 2 * count <= total && !violations.iter().any(|v| v.invariant == "minority-leader") {
            violations.push(Violation {
                invariant: "minority-leader",
                detail: format!(
                    "partition {}'s GSD still leads on a minority island at {} \
                     ({count}/{total} partitions on its side)",
                    g.partition.0,
                    fmt_ns(world.now().0)
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

struct GsdView {
    pid: Pid,
    node: NodeId,
    partition: PartitionId,
    role: &'static str,
    leader: Option<PartitionId>,
}

fn live_gsds(world: &World<KernelMsg>) -> Vec<GsdView> {
    let mut out = Vec::new();
    for node in 0..world.node_count() {
        let node = NodeId(node as u32);
        for pid in world.pids_on(node) {
            if let Some(g) = world.actor_as::<Gsd>(pid) {
                out.push(GsdView {
                    pid,
                    node,
                    partition: g.partition_id(),
                    role: g.role_name(),
                    leader: g.leader_view(),
                });
            }
        }
    }
    out
}

fn check_invariants(
    world: &mut World<KernelMsg>,
    cluster: &PhoenixCluster,
    client: &ClientHandle,
    gsd_died: bool,
    clean_network: bool,
    takeover_delta: u64,
    violations: &mut Vec<Violation>,
) {
    // -- 1. meta-leader ----------------------------------------------------
    let gsds = live_gsds(world);
    for p in 0..cluster.topology.partitions.len() {
        let n = gsds
            .iter()
            .filter(|g| g.partition == PartitionId(p as u32))
            .count();
        if n != 1 {
            violations.push(Violation {
                invariant: "meta-leader",
                detail: format!("partition {p} has {n} live GSDs (want exactly 1)"),
            });
        }
    }
    let leaders: Vec<&GsdView> = gsds.iter().filter(|g| g.role == "leader").collect();
    if leaders.len() != 1 {
        violations.push(Violation {
            invariant: "meta-leader",
            detail: format!(
                "{} meta-group leaders among {} live GSDs: {:?}",
                leaders.len(),
                gsds.len(),
                leaders.iter().map(|g| g.partition.0).collect::<Vec<_>>()
            ),
        });
    } else {
        let lead = leaders[0].partition;
        for g in &gsds {
            if g.role == "orphan" {
                violations.push(Violation {
                    invariant: "meta-leader",
                    detail: format!(
                        "GSD of partition {} (pid {} on node {}) is still an orphan \
                         after quiescence",
                        g.partition.0, g.pid.0, g.node.0
                    ),
                });
            } else if g.leader != Some(lead) {
                violations.push(Violation {
                    invariant: "meta-leader",
                    detail: format!(
                        "GSD of partition {} thinks leader is {:?}, cluster leader is {}",
                        g.partition.0,
                        g.leader.map(|p| p.0),
                        lead.0
                    ),
                });
            }
        }
    }

    // A fresh directory from the config service underpins invariants 2-5.
    let Some(dir) = query_directory(world, client, cluster) else {
        violations.push(Violation {
            invariant: "wd-convergence",
            detail: "config service did not answer CfgQueryDirectory".into(),
        });
        return;
    };

    // -- 2. wd-convergence -------------------------------------------------
    for state in world.nodes() {
        if !state.up {
            continue;
        }
        let node = state.id;
        let Some(ns) = dir.node(node) else {
            violations.push(Violation {
                invariant: "wd-convergence",
                detail: format!("live node {} missing from the service directory", node.0),
            });
            continue;
        };
        let Some(wd) = world.actor_as::<Wd>(ns.wd) else {
            violations.push(Violation {
                invariant: "wd-convergence",
                detail: format!("WD {} of live node {} is dead", ns.wd.0, node.0),
            });
            continue;
        };
        let gsd_pid = wd.gsd_pid();
        let part = cluster.topology.partition_of(node);
        match world.actor_as::<Gsd>(gsd_pid) {
            None => violations.push(Violation {
                invariant: "wd-convergence",
                detail: format!(
                    "WD on node {} heartbeats pid {} which is not a live GSD",
                    node.0, gsd_pid.0
                ),
            }),
            Some(g) if Some(g.partition_id()) != part => violations.push(Violation {
                invariant: "wd-convergence",
                detail: format!(
                    "WD on node {} (partition {:?}) heartbeats the GSD of partition {}",
                    node.0,
                    part.map(|p| p.0),
                    g.partition_id().0
                ),
            }),
            Some(_) => {}
        }
    }

    // -- 3. takeover -------------------------------------------------------
    if gsd_died && takeover_delta == 0 {
        violations.push(Violation {
            invariant: "takeover",
            detail: "a GSD died but the gsd.takeover histogram never grew".into(),
        });
    }
    // On a clean network a takeover without a GSD death is a false positive
    // in the detection pipeline. With NIC/link faults in the schedule,
    // takeovers triggered by (legitimate) network-failure suspicion are
    // expected, so the spurious check only runs on clean-network schedules.
    if !gsd_died && clean_network && takeover_delta > 0 {
        violations.push(Violation {
            invariant: "takeover",
            detail: format!(
                "{takeover_delta} takeover(s) recorded with no GSD death and no network faults"
            ),
        });
    }

    // -- 4. bulletin -------------------------------------------------------
    check_bulletin(world, client, &dir, violations);

    // -- 5. event-delivery -------------------------------------------------
    check_event_delivery(world, &dir, violations);

    // -- 6. telemetry-leak -------------------------------------------------
    // The measurement layer itself must not leak across fault schedules:
    // every span opened on a node that died must have been closed or
    // aborted (open_spans == 0 — post-quiescence no probe is legitimately
    // mid-flight), and outstanding marks must be bounded by what can be in
    // flight *right now*, not by the run's history of lost messages. The
    // background TTL is 120 virtual seconds; here we force a much tighter
    // sweep — any mark older than 5 virtual seconds is a lost flight (the
    // longest legitimate flight, a detect→diagnose episode, resolves
    // within a probe timeout, ~2 s) — and bound what remains.
    let node_count = world.node_count();
    let (open_spans, recent_marks) = phoenix_telemetry::with(|reg| {
        reg.expire_marks_older_than(5_000_000_000);
        (reg.open_spans(), reg.outstanding_marks())
    });
    if open_spans != 0 {
        violations.push(Violation {
            invariant: "telemetry-leak",
            detail: format!(
                "{open_spans} span(s) still open after quiescence (spans on killed \
                 nodes must be aborted, not leaked)"
            ),
        });
    }
    let mark_bound = node_count * 4 + 32;
    if recent_marks > mark_bound {
        violations.push(Violation {
            invariant: "telemetry-leak",
            detail: format!(
                "{recent_marks} marks outstanding within the 5s in-flight window \
                 (bound {mark_bound} for {node_count} nodes) — mark/measure pairs \
                 are leaking"
            ),
        });
    }

    // -- 7. arena-leak -----------------------------------------------------
    // The event core's message pool must balance after a full schedule:
    // every pooled slot either holds a genuinely pending event or has been
    // returned to the free list. A mismatch means dispatched events leaked
    // their slots (or a slot was double-freed).
    let pool = world.scheduler_stats();
    if pool.live != world.queue_len() || pool.allocs - pool.frees != pool.live as u64 {
        violations.push(Violation {
            invariant: "arena-leak",
            detail: format!(
                "event pool out of balance: {} live slots vs {} queued events \
                 ({} allocs, {} frees)",
                pool.live,
                world.queue_len(),
                pool.allocs,
                pool.frees
            ),
        });
    }
}

/// The fail-slow invariants, checked after quiescence.
///
/// 8. slow-not-dead: "slow ≠ down" — no node was ever diagnosed dead while
///    fail-slow, alive, and untouched by network faults. Slowness stretches
///    latency; it drops nothing — a dead verdict inside a clean window
///    means the fail-stop pipeline mistook lateness for death.
/// 9. slow-quarantine: every slow episode healed before settling, so every
///    live GSD's quarantine view must have warmed back to empty — the
///    hysteresis must not latch a recovered node out of the ring forever.
fn check_slow_invariants(
    world: &World<KernelMsg>,
    cfg: &ChaosConfig,
    windows: &[SlowWindow],
    violations: &mut Vec<Violation>,
) {
    // -- 8. slow-not-dead --------------------------------------------------
    for r in world.trace().records() {
        let TraceEvent::FaultDiagnosed {
            target: FaultTarget::Node(node),
            diagnosis: Diagnosis::NodeFailure,
            ..
        } = r.event
        else {
            continue;
        };
        let in_clean_window = windows.iter().any(|w| {
            w.clean && w.node == node && w.from <= r.at && r.at <= w.to.unwrap_or(r.at)
        });
        if in_clean_window && !violations.iter().any(|v| v.invariant == "slow-not-dead") {
            violations.push(Violation {
                invariant: "slow-not-dead",
                detail: format!(
                    "node {} diagnosed dead at {} while fail-slow but alive and \
                     answering (late)",
                    node.0,
                    fmt_ns(r.at.0)
                ),
            });
        }
    }

    // -- 9. slow-quarantine ------------------------------------------------
    if !cfg.params.ft.slow.enabled {
        return;
    }
    for g in live_gsds(world) {
        let Some(actor) = world.actor_as::<Gsd>(g.pid) else {
            continue;
        };
        let (_, quarantined) = actor.quarantine_view();
        if !quarantined.is_empty() {
            violations.push(Violation {
                invariant: "slow-quarantine",
                detail: format!(
                    "partition {}'s GSD still quarantines {:?} after quiescence \
                     with all slowness healed",
                    g.partition.0,
                    quarantined.iter().map(|p| p.0).collect::<Vec<_>>()
                ),
            });
        }
    }
}

fn query_directory(
    world: &mut World<KernelMsg>,
    client: &ClientHandle,
    cluster: &PhoenixCluster,
) -> Option<ServiceDirectory> {
    // The harness query itself crosses the (possibly lossy) network, so it
    // retries; on a reliable network the first attempt always answers and
    // the extra attempts send nothing.
    for attempt in 0..3u64 {
        client.send(
            &mut *world,
            cluster.config(),
            KernelMsg::CfgQueryDirectory {
                req: RequestId(91_000 + attempt),
            },
        );
        world.run_for(SimDuration::from_millis(200));
        for (_, msg) in client.drain() {
            if let KernelMsg::CfgDirectory { directory, .. } = msg {
                return Some(*directory);
            }
        }
    }
    None
}

fn check_bulletin(
    world: &mut World<KernelMsg>,
    client: &ClientHandle,
    dir: &ServiceDirectory,
    violations: &mut Vec<Violation>,
) {
    let bulletin = dir.partitions[0].bulletin;
    let mut seen: Vec<NodeId> = Vec::new();
    let mut answered = false;
    let mut complete_seen = false;
    // Retried like the directory query: a lost DbQuery or DbResp must not
    // read as a bulletin failure. Only the last answer's completeness
    // counts (earlier attempts may have been cut short by loss).
    for attempt in 0..3u64 {
        client.send(
            &mut *world,
            bulletin,
            KernelMsg::DbQuery {
                req: RequestId(92_000 + attempt),
                query: BulletinQuery::Resources,
            },
        );
        world.run_for(SimDuration::from_millis(500));
        for (_, msg) in client.drain() {
            if let KernelMsg::DbResp {
                entries, complete, ..
            } = msg
            {
                answered = true;
                complete_seen = complete;
                for e in entries.iter() {
                    if let BulletinKey::Resource(n) = e.key {
                        seen.push(n);
                    }
                }
            }
        }
        if answered {
            break;
        }
    }
    if answered && !complete_seen {
        violations.push(Violation {
            invariant: "bulletin",
            detail: "single-access-point Resources query returned complete=false \
                     after quiescence"
                .into(),
        });
    }
    if !answered {
        violations.push(Violation {
            invariant: "bulletin",
            detail: format!("bulletin {} never answered the Resources query", bulletin.0),
        });
        return;
    }
    for state in world.nodes() {
        if state.up && !seen.contains(&state.id) {
            violations.push(Violation {
                invariant: "bulletin",
                detail: format!(
                    "live node {} has no resource entry in the federated bulletin",
                    state.id.0
                ),
            });
        }
    }
}

fn check_event_delivery(
    world: &mut World<KernelMsg>,
    dir: &ServiceDirectory,
    violations: &mut Vec<Violation>,
) {
    let etype = EventType::Custom(4242);
    // One consumer per partition, registered at that partition's ES on the
    // node the directory says hosts it. Registrations are acknowledged
    // (req != 0) and re-sent until acked so a lost registration does not
    // read as a federation failure; registration is idempotent server-side.
    let mut consumers: Vec<(PartitionId, Pid, ClientHandle)> = Vec::new();
    for m in &dir.partitions {
        if !world.is_alive(m.event) || !world.node(m.node).up {
            continue;
        }
        let c = ClientHandle::spawn(world, m.node);
        world.run_for(SimDuration::from_millis(1));
        consumers.push((m.partition, m.event, c));
    }
    if consumers.is_empty() {
        violations.push(Violation {
            invariant: "event-delivery",
            detail: "no live event service found in any partition".into(),
        });
        return;
    }
    let mut acked = vec![false; consumers.len()];
    for attempt in 0..3u64 {
        for (i, (_, es, c)) in consumers.iter().enumerate() {
            if acked[i] {
                continue;
            }
            c.send(
                &mut *world,
                *es,
                KernelMsg::EsRegisterConsumer {
                    req: RequestId(93_000 + attempt),
                    reg: ConsumerReg {
                        consumer: c.pid,
                        filter: EventFilter::Types(vec![etype]),
                    },
                },
            );
        }
        world.run_for(SimDuration::from_millis(100));
        for (i, (_, _, c)) in consumers.iter().enumerate() {
            if c.drain()
                .into_iter()
                .any(|(_, m)| matches!(m, KernelMsg::EsRegisterAck { .. }))
            {
                acked[i] = true;
            }
        }
        if acked.iter().all(|&a| a) {
            break;
        }
    }
    // Publish (re-publishing if loss swallowed the probe); a consumer
    // counts as served once it sees any copy of the event.
    let mut got = vec![false; consumers.len()];
    for _attempt in 0..3 {
        let publisher = &consumers[0].2;
        publisher.send(
            &mut *world,
            dir.partitions[0].event,
            KernelMsg::EsPublish {
                event: Event::new(etype, NodeId(0), EventPayload::Text("chaos-probe".into())),
            },
        );
        world.run_for(SimDuration::from_millis(500));
        for (i, (_, _, c)) in consumers.iter().enumerate() {
            if c.drain()
                .into_iter()
                .any(|(_, m)| matches!(m, KernelMsg::EsNotify { event } if event.etype == etype))
            {
                got[i] = true;
            }
        }
        if got.iter().all(|&g| g) {
            break;
        }
    }
    for (i, (partition, _, _)) in consumers.iter().enumerate() {
        if !got[i] {
            violations.push(Violation {
                invariant: "event-delivery",
                detail: format!(
                    "consumer registered at partition {}'s event service missed the \
                     published event",
                    partition.0
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// Result of greedily shrinking a failing schedule.
#[derive(Clone, Copy, Debug)]
pub struct ShrinkOutcome {
    /// Minimal failing mask found.
    pub mask: u64,
    /// Steps remaining in the minimal schedule.
    pub steps: usize,
    /// Schedule executions spent shrinking.
    pub runs: usize,
}

/// Greedy ddmin-lite: repeatedly try dropping one selected step; keep the
/// drop if the run still violates an invariant; stop at a fixpoint. The
/// result is 1-minimal with respect to single-step removal.
pub fn shrink(seed: u64, cfg: &ChaosConfig, start_mask: u64, total_steps: usize) -> ShrinkOutcome {
    let mut mask = start_mask;
    let mut runs = 0usize;
    loop {
        let mut improved = false;
        for i in 0..total_steps.min(MAX_STEPS) {
            let bit = 1u64 << i;
            if mask & bit == 0 {
                continue;
            }
            let candidate = mask & !bit;
            runs += 1;
            if run_schedule(seed, cfg, candidate, false).failed() {
                mask = candidate;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    ShrinkOutcome {
        mask,
        steps: mask.count_ones() as usize,
        runs,
    }
}

// ---------------------------------------------------------------------------
// Replay support
// ---------------------------------------------------------------------------

/// Parse a `SEED` or `SEED:MASK_HEX` replay spec.
pub fn parse_replay(spec: &str) -> Result<(u64, Option<u64>), String> {
    let mut parts = spec.splitn(2, ':');
    let seed = parts
        .next()
        .unwrap_or("")
        .parse::<u64>()
        .map_err(|_| format!("bad seed in replay spec {spec:?}"))?;
    match parts.next() {
        None => Ok((seed, None)),
        Some(hex) => {
            let mask = u64::from_str_radix(hex.trim_start_matches("0x"), 16)
                .map_err(|_| format!("bad hex mask in replay spec {spec:?}"))?;
            Ok((seed, Some(mask)))
        }
    }
}

/// The exact command that reproduces a (possibly shrunk) failure.
/// `mode_flag` is the CLI flag selecting the configuration the failure was
/// found under (`"--small"`, `"--partition"`, `"--lossy 20"`, …).
pub fn replay_command(seed: u64, mask: u64, total_steps: usize, mode_flag: &str) -> String {
    let flag = if mode_flag.is_empty() {
        String::new()
    } else {
        format!(" {mode_flag}")
    };
    if mask == full_mask(total_steps) {
        format!("cargo run --release -p phoenix-chaos --bin chaos --{flag} --replay {seed}")
    } else {
        format!(
            "cargo run --release -p phoenix-chaos --bin chaos --{flag} --replay {seed}:{mask:x}"
        )
    }
}

/// Render the tail of the telemetry flight recorder (most recent spans
/// last, in virtual-time order of span end) as one line per span. Also the
/// byte-comparison surface of the differential suite: two runs with
/// identical recorders render identically.
pub fn flight_recorder_dump(limit: usize) -> String {
    use std::fmt::Write as _;
    phoenix_telemetry::with(|reg| {
        let mut out = String::new();
        let mut spans: Vec<_> = reg.recorder().iter().collect();
        spans.sort_by_key(|s| s.end_ns);
        let skip = spans.len().saturating_sub(limit);
        if skip > 0 || reg.recorder().evicted() > 0 {
            let _ = writeln!(
                out,
                "  ... ({} earlier spans not shown, {} evicted from rings)",
                skip,
                reg.recorder().evicted()
            );
        }
        for s in spans.into_iter().skip(skip) {
            let _ = writeln!(
                out,
                "  [{:>10} - {:>10}] node {:>2} {:<12} {}{}",
                fmt_ns(s.start_ns),
                fmt_ns(s.end_ns),
                s.node,
                s.service,
                s.path,
                if s.aborted { " (aborted: node died)" } else { "" }
            );
        }
        out
    })
}

/// Dump the tail of the telemetry flight recorder (most recent spans first
/// in wall order), for replay-mode post-mortems.
pub fn dump_flight_recorder(limit: usize) {
    print!("{}", flight_recorder_dump(limit));
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_kernel::{boot_cluster, boot_cluster_with_net};

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let cfg = ChaosConfig::small();
        let (_w1, c1) = boot_cluster(cfg.topology(), cfg.params.clone(), 7);
        let (_w2, c2) = boot_cluster(cfg.topology(), cfg.params.clone(), 7);
        let s1 = generate_schedule(7, &cfg, &c1);
        let s2 = generate_schedule(7, &cfg, &c2);
        assert!(!s1.is_empty());
        assert_eq!(s1, s2);
        let other = generate_schedule(8, &cfg, &c1);
        assert_ne!(s1, other, "different seeds should differ");
    }

    #[test]
    fn empty_mask_runs_clean() {
        let cfg = ChaosConfig::small();
        let out = run_schedule(3, &cfg, 0, false);
        assert_eq!(out.faults_injected, 0);
        assert!(out.quiesced, "fault-free cluster must quiesce");
        assert!(
            out.violations.is_empty(),
            "fault-free run violated invariants: {:?}",
            out.violations
        );
    }

    #[test]
    fn replay_spec_round_trips() {
        assert_eq!(parse_replay("42").unwrap(), (42, None));
        assert_eq!(parse_replay("42:1f").unwrap(), (42, Some(0x1f)));
        assert_eq!(parse_replay("42:0x1f").unwrap(), (42, Some(0x1f)));
        assert!(parse_replay("x").is_err());
        assert!(parse_replay("1:zz").is_err());
    }

    /// Not a test: a helper scan for maintainers picking new pinned seeds
    /// for `tests/chaos_regressions.rs`. Run with
    /// `cargo test -p phoenix-chaos --release -- --ignored --nocapture scan`.
    #[test]
    #[ignore]
    fn scan_for_interesting_seeds() {
        let cfg = ChaosConfig::small();
        for seed in 1..=3000u64 {
            let (_w, cluster) = boot_cluster(cfg.topology(), cfg.params.clone(), seed);
            let steps = generate_schedule(seed, &cfg, &cluster);
            let gsd = gsd_kills(&steps, &cluster);
            let nic = double_nic_nodes(&steps, cfg.horizon);
            let links = link_partitions(&steps);
            let repairs = crash_repair_nodes(&steps);
            let mut tags = Vec::new();
            if gsd.contains(&PartitionId(0)) && gsd.len() >= 2 {
                tags.push("leader+gsd-kill".to_string());
            } else if gsd.contains(&PartitionId(0)) {
                tags.push("leader-kill".to_string());
            }
            if !nic.is_empty() {
                tags.push(format!("double-nic(n{})", nic[0].0));
            }
            if links >= 2 {
                tags.push(format!("links({links})"));
            }
            if !repairs.is_empty() {
                tags.push(format!("crash-repair({})", repairs.len()));
            }
            if !tags.is_empty() {
                println!("seed {seed:>4}: {} steps  {}", steps.len(), tags.join(" "));
            }
        }
    }

    /// Not a test: scan for lossy-mode pin candidates (a loss burst in the
    /// same schedule as a GSD kill). Run with
    /// `cargo test -p phoenix-chaos --release -- --ignored --nocapture lossy_scan`.
    #[test]
    #[ignore]
    fn lossy_scan_for_interesting_seeds() {
        let cfg = ChaosConfig::small_lossy(20);
        for seed in 1..=400u64 {
            let (_w, cluster) =
                boot_cluster_with_net(cfg.topology(), cfg.params.clone(), seed, cfg.net.clone());
            let steps = generate_schedule(seed, &cfg, &cluster);
            let gsd = gsd_kills(&steps, &cluster);
            let bursts = loss_bursts(&steps);
            if bursts > 0 && !gsd.is_empty() {
                println!(
                    "seed {seed:>4}: {} steps, {} burst(s), gsd kills {:?}",
                    steps.len(),
                    bursts,
                    gsd.iter().map(|p| p.0).collect::<Vec<_>>()
                );
            }
        }
    }

    /// Not a test: scan for partition-storm pin candidates (an island
    /// storm in the same schedule as a GSD kill or node crash/repair).
    /// Run with
    /// `cargo test -p phoenix-chaos --release -- --ignored --nocapture partition_scan`.
    #[test]
    #[ignore]
    fn partition_scan_for_interesting_seeds() {
        let cfg = ChaosConfig::small_partition();
        for seed in 1..=400u64 {
            let (_w, cluster) = boot_cluster(cfg.topology(), cfg.params.clone(), seed);
            let steps = generate_schedule(seed, &cfg, &cluster);
            let storms = island_partitions(&steps);
            let gsd = gsd_kills(&steps, &cluster);
            let repairs = crash_repair_nodes(&steps);
            if storms >= 2 && (!gsd.is_empty() || !repairs.is_empty()) {
                println!(
                    "seed {seed:>4}: {} steps, {} storm(s), gsd kills {:?}, repairs {}",
                    steps.len(),
                    storms,
                    gsd.iter().map(|p| p.0).collect::<Vec<_>>(),
                    repairs.len()
                );
            }
        }
    }

    #[test]
    fn full_mask_covers_schedule() {
        assert_eq!(full_mask(0), 0);
        assert_eq!(full_mask(3), 0b111);
        assert_eq!(full_mask(64), u64::MAX);
    }
}
