//! Cluster topology: the partition layout the group service is built on.
//!
//! Paper Sec 4.3: "the whole cluster system is divided into several cluster
//! partitions, each of which is composed of one server node, at least one
//! server backup node, and other computing nodes."

use crate::ids::PartitionId;
use phoenix_sim::NodeId;

/// One partition: a server node hosting the per-partition services (GSD,
/// event, bulletin, checkpoint), backup server nodes the GSD can migrate
/// to, and the computing nodes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PartitionSpec {
    pub id: PartitionId,
    pub server: NodeId,
    pub backups: Vec<NodeId>,
    pub compute: Vec<NodeId>,
}

impl PartitionSpec {
    /// Every node in the partition: server, backups, then compute.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        let mut v = Vec::with_capacity(1 + self.backups.len() + self.compute.len());
        v.push(self.server);
        v.extend_from_slice(&self.backups);
        v.extend_from_slice(&self.compute);
        v
    }

    /// Number of nodes in the partition.
    pub fn len(&self) -> usize {
        1 + self.backups.len() + self.compute.len()
    }

    /// Partitions are never empty (they always have a server).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The whole cluster layout.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ClusterTopology {
    pub partitions: Vec<PartitionSpec>,
}

impl ClusterTopology {
    /// Build a uniform topology: `partitions` partitions of
    /// `nodes_per_partition` nodes each; within a partition, node 0 is the
    /// server, the next `backups` nodes are backup servers, and the rest
    /// compute. Node ids are assigned contiguously.
    ///
    /// The paper's fault-tolerance testbed was `ClusterTopology::uniform(8,
    /// 17, 1)` (136 nodes, "16 computing nodes and 1 server node per
    /// partition" plus a backup drawn from the pool).
    pub fn uniform(partitions: usize, nodes_per_partition: usize, backups: usize) -> Self {
        assert!(
            nodes_per_partition >= 1 + backups,
            "partition too small for server + backups"
        );
        let mut out = Vec::with_capacity(partitions);
        let mut next = 0u32;
        for p in 0..partitions {
            let server = NodeId(next);
            next += 1;
            let backup_ids: Vec<NodeId> = (0..backups)
                .map(|_| {
                    let id = NodeId(next);
                    next += 1;
                    id
                })
                .collect();
            let compute: Vec<NodeId> = (0..nodes_per_partition - 1 - backups)
                .map(|_| {
                    let id = NodeId(next);
                    next += 1;
                    id
                })
                .collect();
            out.push(PartitionSpec {
                id: PartitionId(p as u32),
                server,
                backups: backup_ids,
                compute,
            });
        }
        ClusterTopology { partitions: out }
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.partitions.iter().map(|p| p.len()).sum()
    }

    /// The partition a node belongs to.
    pub fn partition_of(&self, node: NodeId) -> Option<PartitionId> {
        self.partitions
            .iter()
            .find(|p| p.server == node || p.backups.contains(&node) || p.compute.contains(&node))
            .map(|p| p.id)
    }

    /// The spec of one partition.
    pub fn partition(&self, id: PartitionId) -> Option<&PartitionSpec> {
        self.partitions.get(id.index())
    }

    /// All server nodes, in partition order.
    pub fn servers(&self) -> Vec<NodeId> {
        self.partitions.iter().map(|p| p.server).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_assigns_contiguous_ids() {
        let t = ClusterTopology::uniform(2, 4, 1);
        assert_eq!(t.node_count(), 8);
        let p0 = &t.partitions[0];
        assert_eq!(p0.server, NodeId(0));
        assert_eq!(p0.backups, vec![NodeId(1)]);
        assert_eq!(p0.compute, vec![NodeId(2), NodeId(3)]);
        let p1 = &t.partitions[1];
        assert_eq!(p1.server, NodeId(4));
    }

    #[test]
    fn paper_testbed_shape() {
        // 136 nodes: 8 partitions of 17 (server + backup + 15 compute).
        let t = ClusterTopology::uniform(8, 17, 1);
        assert_eq!(t.node_count(), 136);
        assert_eq!(t.partitions.len(), 8);
        assert_eq!(t.servers().len(), 8);
    }

    #[test]
    fn partition_of_finds_all_roles() {
        let t = ClusterTopology::uniform(2, 4, 1);
        assert_eq!(t.partition_of(NodeId(0)), Some(PartitionId(0)));
        assert_eq!(t.partition_of(NodeId(1)), Some(PartitionId(0)));
        assert_eq!(t.partition_of(NodeId(3)), Some(PartitionId(0)));
        assert_eq!(t.partition_of(NodeId(4)), Some(PartitionId(1)));
        assert_eq!(t.partition_of(NodeId(99)), None);
    }

    #[test]
    #[should_panic(expected = "partition too small")]
    fn too_small_partition_panics() {
        ClusterTopology::uniform(1, 1, 1);
    }

    #[test]
    fn all_nodes_order() {
        let t = ClusterTopology::uniform(1, 5, 2);
        let p = &t.partitions[0];
        assert_eq!(
            p.all_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_eq!(p.len(), 5);
    }
}
