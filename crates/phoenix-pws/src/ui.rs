//! Text rendering of the PWS management console.
//!
//! Our stand-in for the paper's "Integrated Web GUI for Phoenix-PWS"
//! (Fig 9: start/shutdown nodes, queue overview): the same operations go
//! through the same kernel interfaces, rendered as text tables instead of
//! HTML.

use phoenix_proto::{JobState, QueueRow};
use phoenix_sim::NodeState;

/// Render the job queue as a fixed-width table.
pub fn render_queue(rows: &[QueueRow]) -> String {
    let mut out = String::from(
        "JOB      POOL         USER         STATE      NODES\n\
         -------- ------------ ------------ ---------- -----\n",
    );
    for r in rows {
        let state = match r.state {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        };
        out.push_str(&format!(
            "{:<8} {:<12} {:<12} {:<10} {}\n",
            r.job.to_string(),
            r.pool,
            r.user.to_string(),
            state,
            r.nodes.len(),
        ));
    }
    out
}

/// Render the node board (the Fig 9 start/shutdown view): one cell per
/// node, `#` up, `.` down.
pub fn render_node_board(nodes: &[NodeState], per_row: usize) -> String {
    let mut out = String::new();
    for chunk in nodes.chunks(per_row) {
        for n in chunk {
            out.push(if n.up { '#' } else { '.' });
        }
        let first = chunk.first().map(|n| n.id.0).unwrap_or(0);
        let last = chunk.last().map(|n| n.id.0).unwrap_or(0);
        out.push_str(&format!("   nodes {first}-{last}\n"));
    }
    let up = nodes.iter().filter(|n| n.up).count();
    out.push_str(&format!("{up}/{} nodes up\n", nodes.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_proto::{JobId, UserId};
    use phoenix_sim::{NodeId, NodeSpec};

    #[test]
    fn queue_table_contains_rows() {
        let rows = vec![QueueRow {
            job: JobId(7),
            pool: "batch".into(),
            user: UserId::new("alice"),
            state: JobState::Running,
            nodes: vec![NodeId(1), NodeId(2)],
        }];
        let s = render_queue(&rows);
        assert!(s.contains("job7"));
        assert!(s.contains("batch"));
        assert!(s.contains("alice"));
        assert!(s.contains("running"));
    }

    #[test]
    fn node_board_marks_down_nodes() {
        let mut nodes: Vec<NodeState> = (0..4)
            .map(|i| NodeState::new(NodeId(i), NodeSpec::default()))
            .collect();
        nodes[2].up = false;
        let s = render_node_board(&nodes, 4);
        assert!(s.contains("##.#"));
        assert!(s.contains("3/4 nodes up"));
    }
}
