//! PWS-vs-PBS harness (paper Sec 5.4, Figs 7–8): equal job workloads under
//! the event-driven PWS and the polling PBS baseline, comparing resource
//! collection traffic and high-availability behaviour.

use phoenix_kernel::boot::boot_cluster;
use phoenix_kernel::client::ClientHandle;
use phoenix_kernel::KernelParams;
use phoenix_proto::{ClusterTopology, JobSpec, TaskSpec};
use phoenix_pws::{install_pbs, install_pws, login, queue_status, submit, PolicyKind, PoolConfig};
use phoenix_sim::{NodeId, SimDuration, TraceEvent};

/// Traffic and outcome of one run.
#[derive(Clone, Debug)]
pub struct RunStats {
    pub system: &'static str,
    pub nodes: usize,
    pub jobs_submitted: usize,
    pub jobs_completed: usize,
    /// Bytes of resource-collection + job-control traffic.
    pub collection_bytes: u64,
    pub collection_msgs: u64,
    /// Did the job manager survive a scheduler-process kill?
    pub survived_scheduler_fault: bool,
    pub virtual_secs: f64,
}

fn workload(count: usize, duration_s: u64, pool: &str) -> Vec<JobSpec> {
    (0..count)
        .map(|i| JobSpec {
            task: TaskSpec {
                duration_ns: Some(duration_s * 1_000_000_000),
                ..TaskSpec::default()
            },
            ..JobSpec::simple(i as u64 + 1, "alice", pool, 1)
        })
        .collect()
}

/// Run the workload under PWS or PBS; `inject_fault` kills the scheduler
/// mid-run to compare HA.
pub fn run(
    use_pbs: bool,
    partitions: usize,
    per_partition: usize,
    jobs: usize,
    secs: u64,
    inject_fault: bool,
    seed: u64,
) -> RunStats {
    let topo = ClusterTopology::uniform(partitions, per_partition, 1);
    let params = KernelParams::fast();
    let (mut w, cluster) = boot_cluster(topo, params, seed);
    w.run_for(SimDuration::from_millis(100));
    let nodes: Vec<NodeId> = cluster
        .topology
        .partitions
        .iter()
        .flat_map(|p| p.compute.iter().copied())
        .collect();
    let n_nodes = cluster.topology.node_count();

    let (target, pws_handle) = if use_pbs {
        (
            install_pbs(
                &mut w,
                &cluster,
                cluster.topology.partitions[0].server,
                nodes.clone(),
                // PBS polls continuously; a 2 s period on a 1 s-heartbeat
                // fast profile mirrors the paper's relative rates.
                SimDuration::from_secs(2),
            ),
            None,
        )
    } else {
        let h = install_pws(
            &mut w,
            &cluster,
            vec![PoolConfig::new("batch", nodes.clone(), PolicyKind::Backfill)],
        );
        w.run_for(SimDuration::from_millis(100));
        (h.scheduler("batch").unwrap(), Some(h))
    };

    let client = ClientHandle::spawn(&mut w, nodes[0]);
    let token = login(&mut w, &cluster, &client, "alice", "alice-secret");
    let specs = workload(jobs, 2, "batch");
    let mut submitted = 0;
    for s in specs {
        if submit(&mut w, &client, target, token.clone(), s) {
            submitted += 1;
        }
    }

    let mut survived = true;
    if inject_fault {
        w.run_for(SimDuration::from_secs(2));
        w.kill_process(target);
        w.run_for(SimDuration::from_secs(5));
        // Is anyone answering queue queries afterwards?
        let now_target = pws_handle
            .as_ref()
            .and_then(|h| h.scheduler("batch"))
            .unwrap_or(target);
        let rows = queue_status(&mut w, &client, now_target);
        survived = w.is_alive(now_target) && (now_target != target || !rows.is_empty());
    }

    let t0 = w.now();
    w.run_for(SimDuration::from_secs(secs));
    let virtual_secs = w.now().as_secs_f64();
    let _ = t0;

    let m = w.metrics();
    let (collection_msgs, collection_bytes) = if use_pbs {
        let s = m.label("pbs");
        (s.sent, s.sent_bytes)
    } else {
        let e = m.label("event");
        let p = m.label("pws");
        (e.sent + p.sent, e.sent_bytes + p.sent_bytes)
    };
    let completed_label = if use_pbs {
        "pbs-job-completed"
    } else {
        "job-completed"
    };
    let jobs_completed = w
        .trace()
        .count(|e| matches!(e, TraceEvent::Milestone { label, .. } if *label == completed_label));

    RunStats {
        system: if use_pbs { "PBS" } else { "PWS" },
        nodes: n_nodes,
        jobs_submitted: submitted,
        jobs_completed,
        collection_bytes,
        collection_msgs,
        survived_scheduler_fault: survived,
        virtual_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pws_survives_fault_pbs_does_not() {
        let pws = run(false, 2, 4, 2, 10, true, 51);
        let pbs = run(true, 2, 4, 2, 10, true, 52);
        assert!(pws.survived_scheduler_fault, "{pws:?}");
        assert!(!pbs.survived_scheduler_fault, "{pbs:?}");
    }

    #[test]
    fn both_complete_jobs_without_faults() {
        let pws = run(false, 2, 4, 3, 20, false, 53);
        let pbs = run(true, 2, 4, 3, 20, false, 54);
        assert_eq!(pws.jobs_completed, 3, "{pws:?}");
        assert_eq!(pbs.jobs_completed, 3, "{pbs:?}");
        assert!(pbs.collection_bytes > pws.collection_bytes);
    }
}
