//! Asymmetric-NIC sweep: one lossy interface, the rest clean.
//!
//! The paper's testbed put three parallel networks in every node so the
//! kernel could tell a NIC failure from a node failure. This bench
//! degrades *one* of them (NIC 0 at 0–10% loss, NICs 1–2 clean) under the
//! loss-tolerant profile and measures what the adaptive multi-NIC routing
//! layer buys:
//!
//! * **spurious takeovers** — fault-free runs must record zero GSD
//!   takeovers at every swept rate: the clean interfaces keep carrying
//!   heartbeats, so one bad wire must never look like a dead node;
//! * **detection time** — a WD process is killed and the kill →
//!   `FaultDiagnosed` latency is mined from the trace; the acceptance bar
//!   is a mean within 25% of the clean (0‰) baseline, because detection
//!   rides the healthy interfaces;
//! * **routing shift** — per-NIC routed/dropped counters
//!   (`net.routed.nic*`, `net.loss.dropped.nic*`) and the GSD's demotion
//!   count show single-path traffic draining away from the sick interface.
//!
//! Results go to `results/BENCH_nic.json` (sections `nic`, `nic_curve`);
//! the exit status is non-zero if any spurious takeover fired or the
//! detection mean drifted past the 25% bar, which lets `scripts/verify.sh`
//! gate on it.
//!
//! All `(rate, seed)` runs execute through the parallel sweep runner
//! (`phoenix_bench::sweep`) with per-run registry shards merged in
//! work-item order; `--serial` runs the same items on one thread and
//! produces a byte-identical report.
//!
//! ```text
//! nic_asymmetry [--small] [--serial]
//! ```

use std::path::PathBuf;

use phoenix_bench::sweep::run_sweep;
use phoenix_kernel::boot::boot_cluster_with_net;
use phoenix_kernel::KernelParams;
use phoenix_proto::{ClusterTopology, KernelMsg};
use phoenix_sim::{FaultTarget, NetParams, NicId, SimDuration, TraceEvent, World};
use phoenix_telemetry::Json;

fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

fn boot(seed: u64, nic0_permille: u16) -> (World<KernelMsg>, phoenix_kernel::PhoenixCluster) {
    let topo = ClusterTopology::uniform(3, 5, 1);
    // Baseline network is clean; only NIC 0 is degraded.
    let net = NetParams::unreliable(0).with_nic_loss(NicId(0), nic0_permille);
    boot_cluster_with_net(topo, KernelParams::fast_lossy(), seed, net)
}

/// Kill one WD and mine the trace for the kill → `FaultDiagnosed`
/// latency. Detection must ride the clean interfaces, so the diagnosis is
/// expected to land (and stay a process diagnosis) at every swept rate.
fn detection_ms(seed: u64, nic0_permille: u16) -> Option<f64> {
    let (mut w, cluster) = boot(seed, nic0_permille);
    w.run_for(SimDuration::from_secs(2));
    // A compute node's WD in partition 1 (not the meta leader's server).
    let victim = cluster.directory.nodes[6].wd;
    let victim_node = cluster.directory.nodes[6].node;
    let t_kill = w.now();
    w.kill_process(victim);
    w.run_for(SimDuration::from_secs(10));
    let hit = w.trace().records().iter().find(|r| {
        r.at >= t_kill
            && match r.event {
                TraceEvent::FaultDiagnosed { target: FaultTarget::Process(p), .. } => p == victim,
                TraceEvent::FaultDiagnosed { target: FaultTarget::Node(n), .. } => n == victim_node,
                _ => false,
            }
    });
    hit.map(|rec| rec.at.since(t_kill).as_nanos() as f64 / 1e6)
}

struct CleanStats {
    spurious_takeovers: u64,
    routed: [u64; 3],
    dropped_nic0: u64,
    demotions: u64,
    promotions: u64,
}

/// Run a fault-free cluster for 20 virtual seconds and read the counters.
fn fault_free(seed: u64, nic0_permille: u16) -> CleanStats {
    let (mut w, _cluster) = boot(seed, nic0_permille);
    w.run_for(SimDuration::from_secs(20));
    phoenix_telemetry::with(|reg| CleanStats {
        spurious_takeovers: reg.counter("gsd.takeovers")
            + reg.histogram("gsd.takeover").map(|h| h.count()).unwrap_or(0),
        routed: [
            reg.counter("net.routed.nic0"),
            reg.counter("net.routed.nic1"),
            reg.counter("net.routed.nic2"),
        ],
        dropped_nic0: reg.counter("net.loss.dropped.nic0"),
        demotions: reg.counter("gsd.nic.demotions"),
        promotions: reg.counter("gsd.nic.promotions"),
    })
}

/// One sweep work item: a seeded run at one NIC0 loss rate.
enum Job {
    Detect { rate: u16, seed: u64 },
    Clean { rate: u16, seed: u64 },
}

enum JobOut {
    Detect(Option<f64>),
    Clean(CleanStats),
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let serial = std::env::args().any(|a| a == "--serial");
    let rates: &[u16] = if small {
        &[0, 50, 100]
    } else {
        &[0, 25, 50, 75, 100]
    };
    let (detect_seeds, clean_seeds) = if small { (2u64, 3u64) } else { (5, 8) };
    println!(
        "nic_asymmetry: NIC0 loss {rates:?}‰ (NICs 1-2 clean), {detect_seeds} \
         detection seeds + {clean_seeds} fault-free seeds per rate \
         (15-node testbed, lossy profile)"
    );

    let mut jobs = Vec::new();
    for &rate in rates {
        for seed in 1..=detect_seeds {
            jobs.push(Job::Detect { rate, seed });
        }
        for seed in 100..100 + clean_seeds {
            jobs.push(Job::Clean { rate, seed });
        }
    }
    let outcome = run_sweep(&jobs, serial, |job| match *job {
        Job::Detect { rate, seed } => JobOut::Detect(detection_ms(seed, rate)),
        Job::Clean { rate, seed } => JobOut::Clean(fault_free(seed, rate)),
    });
    println!(
        "sweep: {} runs on {} thread(s), {} ms wall",
        jobs.len(),
        outcome.threads,
        outcome.wall.as_millis()
    );

    let mut curve = Vec::new();
    let mut total_spurious = 0u64;
    let mut baseline_ms = f64::NAN;
    let mut worst_ratio = 0.0f64;
    for &rate in rates {
        let mut detect: Vec<f64> = Vec::new();
        let mut missed = 0u64;
        let mut spurious = 0u64;
        let mut routed = [0u64; 3];
        let mut dropped = 0u64;
        let mut demotions = 0u64;
        let mut promotions = 0u64;
        for (job, out) in jobs.iter().zip(&outcome.results) {
            match (job, out) {
                (Job::Detect { rate: r, .. }, JobOut::Detect(ms)) if *r == rate => match ms {
                    Some(ms) => detect.push(*ms),
                    None => missed += 1,
                },
                (Job::Clean { rate: r, .. }, JobOut::Clean(s)) if *r == rate => {
                    spurious += s.spurious_takeovers;
                    for (acc, r) in routed.iter_mut().zip(s.routed) {
                        *acc += r;
                    }
                    dropped += s.dropped_nic0;
                    demotions += s.demotions;
                    promotions += s.promotions;
                }
                _ => {}
            }
        }
        let detect_mean = if detect.is_empty() {
            f64::NAN
        } else {
            detect.iter().sum::<f64>() / detect.len() as f64
        };
        if rate == 0 {
            baseline_ms = detect_mean;
        }
        let ratio = detect_mean / baseline_ms;
        worst_ratio = worst_ratio.max(ratio);
        total_spurious += spurious;
        let routed_total: u64 = routed.iter().sum();
        let nic0_share = if routed_total > 0 {
            routed[0] as f64 / routed_total as f64
        } else {
            f64::NAN
        };

        println!(
            "  nic0 {:>4}‰: detect {:>7.1} ms (x{:.2} of clean, n={}, missed={}) \
             | spurious {} | nic0 routed share {:>5.1}% | nic0 dropped {:>5} | \
             demote/promote {}/{}",
            rate,
            detect_mean,
            ratio,
            detect.len(),
            missed,
            spurious,
            nic0_share * 100.0,
            dropped,
            demotions,
            promotions
        );
        curve.push(
            Json::obj()
                .set("nic0_loss_permille", Json::Num(rate as f64))
                .set("detect_ms_mean", Json::Num(detect_mean))
                .set("detect_ratio_vs_clean", Json::Num(ratio))
                .set("detect_samples", Json::Num(detect.len() as f64))
                .set("detect_missed", Json::Num(missed as f64))
                .set("spurious_takeovers", Json::Num(spurious as f64))
                .set("nic0_routed_share", Json::Num(nic0_share))
                .set("nic0_dropped", Json::Num(dropped as f64))
                .set("nic_demotions", Json::Num(demotions as f64))
                .set("nic_promotions", Json::Num(promotions as f64)),
        );
    }

    // Acceptance bars: zero spurious takeovers across the sweep, and mean
    // detection within 25% of the clean baseline at every rate.
    let detect_ok = worst_ratio.is_finite() && worst_ratio <= 1.25;
    let summary = Json::obj()
        .set("shape", Json::str(if small { "small" } else { "full" }))
        .set(
            "rates_permille",
            Json::Arr(rates.iter().map(|&r| Json::Num(r as f64)).collect()),
        )
        .set("detect_seeds_per_rate", Json::Num(detect_seeds as f64))
        .set("clean_seeds_per_rate", Json::Num(clean_seeds as f64))
        .set("baseline_detect_ms", Json::Num(baseline_ms))
        .set("worst_detect_ratio", Json::Num(worst_ratio))
        .set("detect_within_bar", Json::Bool(detect_ok))
        .set("spurious_takeovers", Json::Num(total_spurious as f64));

    let mut rep = phoenix_telemetry::BenchReport::new("nic_asymmetry");
    rep.section("nic", summary);
    rep.section("nic_curve", Json::Arr(curve));
    let path = rep
        .write_to(&outcome.merged, workspace_root().join("results/BENCH_nic.json"))
        .expect("write BENCH_nic.json");
    println!("report written: {}", path.display());

    if total_spurious > 0 {
        eprintln!(
            "nic_asymmetry: {total_spurious} spurious takeover(s) — one lossy \
             NIC must never look like a dead node"
        );
        std::process::exit(1);
    }
    if !detect_ok {
        eprintln!(
            "nic_asymmetry: detection degraded x{worst_ratio:.2} vs clean \
             baseline (bar: 1.25) — routing is not avoiding the sick interface"
        );
        std::process::exit(1);
    }
}
