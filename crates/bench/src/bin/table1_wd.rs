//! Regenerates **Table 1 — Three Unhealthy Situations for WD** on the
//! paper testbed: 136 nodes, 8 partitions (16 compute + 1 server each),
//! 30 s heartbeat interval.
//!
//! Paper row shape: detecting ≈ 30 s, diagnosing 0.29 s (process) / 2 s
//! (node) / 348 µs (network), recovery ≈ 0.

use phoenix_bench::ft::{paper_testbed, print_table, run_table, small_testbed, Component};
use phoenix_bench::report::{cross_check_histograms, exercise_services, table_json, write_report};

fn main() {
    phoenix_telemetry::reset();
    // `--small` runs the same pipeline on the 15-node fast-parameter
    // testbed (CI / verify.sh smoke); default is the paper's 136 nodes.
    let small = std::env::args().any(|a| a == "--small");
    let (topo, params) = if small { small_testbed() } else { paper_testbed() };
    println!(
        "Testbed: {} nodes, {} partitions, heartbeat interval {}",
        topo.node_count(),
        topo.partitions.len(),
        params.ft.hb_interval
    );
    let rows = run_table(topo, params, Component::Wd);
    print_table("Table 1: Three Unhealthy Situations for WD", &rows);
    println!("\nPaper reference: process 30s/0.29s/0us=30.29s; node 30s/2s/0s=32s; network 30s/348us/0s=30s");
    // Before the exercise pass adds more fault samples: the trace-mined
    // rows must agree with the kernel's own histograms.
    cross_check_histograms(&rows, Component::Wd);
    exercise_services(41);
    write_report("table1_wd", vec![("table1", table_json(&rows))]);
}
