//! # phoenix-bench — experiment harnesses for the paper's evaluation
//!
//! Each module regenerates part of Sec 5:
//!
//! * [`ft`] — Tables 1–3 (fault detection / diagnosis / recovery for WD,
//!   GSD, and the event service on the 136-node testbed shape);
//! * [`scale`] — Sec 5.3 monitoring scalability and the Sec 4.3 flat-vs-
//!   partitioned membership ablation;
//! * [`pws_pbs`] — Sec 5.4 / Figs 7–8, PWS vs the PBS baseline.
//!
//! Table 4 (Linpack impact) lives in `phoenix-hpl::measure_impact` since
//! it runs on real threads, not the simulator.
//!
//! The `src/bin/` binaries print the corresponding paper artifacts;
//! `benches/` holds dependency-free timing benches built on [`timing`]
//! (gated behind the off-by-default `heavy-deps` feature).

pub mod ft;
pub mod pws_pbs;
pub mod report;
pub mod scale;
pub mod sweep;
pub mod timing;
