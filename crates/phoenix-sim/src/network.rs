//! The simulated interconnect.
//!
//! The cluster has `k` parallel networks; NIC `i` of every node attaches to
//! network `i` (mirroring the Dawning 4000A, where each node had three
//! networks). A message travels over exactly one network, chosen either
//! explicitly by the sender (heartbeats probe every interface) or by default
//! routing (first interface healthy on both endpoints).
//!
//! Failures modelled here:
//! * NIC down — messages over that interface are dropped in either direction;
//! * node crash — handled by the world (all NICs effectively gone);
//! * link partition — ordered node pairs that cannot exchange messages;
//! * probabilistic unreliability — uniform message loss, duplication and
//!   extra reorder jitter, driven by the world's seeded RNG so lossy runs
//!   stay deterministic and replayable.

use crate::ids::{NicId, NodeId};
use crate::rng::SimRng;
use crate::time::SimDuration;
use std::collections::HashSet;

/// Latency and unreliability parameters of the interconnect.
#[derive(Clone, Debug)]
pub struct NetParams {
    /// One-way latency for messages between actors on the same node.
    pub local_latency: SimDuration,
    /// Base one-way latency across the LAN.
    pub lan_latency: SimDuration,
    /// Uniform jitter added on top of `lan_latency` (0..=jitter).
    pub jitter: SimDuration,
    /// Probability (in permille, 0..=1000) that a cross-node message is
    /// silently lost. Zero (the default) draws no randomness at all, so
    /// pre-existing seeded runs reproduce byte-for-byte.
    pub loss_permille: u16,
    /// Probability (in permille) that a cross-node message is delivered
    /// twice, the copy with an independently drawn latency.
    pub dup_permille: u16,
    /// Extra uniform jitter (0..=reorder_extra) added per cross-node
    /// message when non-zero: widens the reorder window well beyond the
    /// base `jitter` without shifting the latency floor.
    pub reorder_extra: SimDuration,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            // Loopback / unix socket cost.
            local_latency: SimDuration::from_micros(5),
            // Typical 2005-era cluster ethernet one-way latency.
            lan_latency: SimDuration::from_micros(120),
            jitter: SimDuration::from_micros(30),
            loss_permille: 0,
            dup_permille: 0,
            reorder_extra: SimDuration::ZERO,
        }
    }
}

impl NetParams {
    /// A lossy profile: `loss_permille` uniform loss, a quarter of that as
    /// duplication, and a reorder window an order of magnitude wider than
    /// the base jitter.
    pub fn unreliable(loss_permille: u16) -> NetParams {
        NetParams {
            loss_permille,
            dup_permille: loss_permille / 4,
            reorder_extra: SimDuration::from_micros(300),
            ..NetParams::default()
        }
    }
}

/// Reasons a message could not be carried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    SenderNicDown,
    ReceiverNicDown,
    Partitioned,
    NodeDown,
    DeadProcess,
    NoRoute,
    /// Probabilistic loss from the unreliability model (base rate or an
    /// injected loss burst).
    RandomLoss,
}

/// Connectivity state of the interconnect (partitions between node pairs).
#[derive(Debug, Default)]
pub struct Network {
    pub params: NetParams,
    /// Unordered blocked pairs, stored with min id first.
    blocked: HashSet<(NodeId, NodeId)>,
    /// Transient loss burst (`Fault::LossBurst`); the effective loss rate
    /// is the max of this and the configured base rate.
    burst_permille: u16,
}

impl Network {
    pub fn new(params: NetParams) -> Network {
        Network {
            params,
            blocked: HashSet::new(),
            burst_permille: 0,
        }
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Block all traffic between `a` and `b` (both directions, all networks).
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.blocked.insert(Self::key(a, b));
    }

    /// Restore traffic between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.blocked.remove(&Self::key(a, b));
    }

    /// Remove every partition.
    pub fn heal_all(&mut self) {
        self.blocked.clear();
    }

    /// Is the pair currently partitioned?
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.blocked.contains(&Self::key(a, b))
    }

    /// Degrade the whole interconnect to at least `permille` loss
    /// (`Fault::LossBurst`).
    pub fn set_loss_burst(&mut self, permille: u16) {
        self.burst_permille = permille.min(1000);
    }

    /// End a loss burst (`Fault::LossClear`); the configured base rate
    /// stays in effect.
    pub fn clear_loss_burst(&mut self) {
        self.burst_permille = 0;
    }

    /// Loss probability currently in effect, in permille.
    pub fn effective_loss_permille(&self) -> u16 {
        self.params.loss_permille.max(self.burst_permille)
    }

    /// Roll the dice for one cross-node message: `true` means the message
    /// is lost. Draws from the RNG only when a loss rate is in effect, so
    /// reliable runs consume exactly the same random stream as before the
    /// unreliability model existed.
    pub fn loss_roll(&self, rng: &mut SimRng) -> bool {
        let permille = self.effective_loss_permille();
        permille > 0 && rng.gen_range(0..1000u64) < permille as u64
    }

    /// Roll for duplication: `true` means deliver a second copy.
    pub fn dup_roll(&self, rng: &mut SimRng) -> bool {
        let permille = self.params.dup_permille.min(1000);
        permille > 0 && rng.gen_range(0..1000u64) < permille as u64
    }

    /// Extra reorder jitter for one cross-node message (ZERO when the
    /// model is off; no RNG draw in that case).
    pub fn reorder_extra(&self, rng: &mut SimRng) -> SimDuration {
        if self.params.reorder_extra.as_nanos() == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(rng.gen_range(0..=self.params.reorder_extra.as_nanos()))
        }
    }

    /// Draw the one-way latency for a message from `src` to `dst`.
    pub fn latency(&self, src: NodeId, dst: NodeId, rng: &mut SimRng) -> SimDuration {
        if src == dst {
            self.params.local_latency
        } else {
            let jitter_ns = if self.params.jitter.as_nanos() == 0 {
                0
            } else {
                rng.gen_range(0..=self.params.jitter.as_nanos())
            };
            self.params.lan_latency + SimDuration::from_nanos(jitter_ns)
        }
    }

    /// Decide whether a message may travel from (`src`, `src_nic`) to
    /// (`dst`, same network). Same-node messages never touch the wire.
    pub fn route(
        &self,
        src: NodeId,
        dst: NodeId,
        nic: NicId,
        src_nic_up: bool,
        dst_nic_up: bool,
    ) -> Result<(), DropReason> {
        if src == dst {
            return Ok(());
        }
        if !src_nic_up {
            return Err(DropReason::SenderNicDown);
        }
        if !dst_nic_up {
            return Err(DropReason::ReceiverNicDown);
        }
        let _ = nic;
        if self.is_partitioned(src, dst) {
            return Err(DropReason::Partitioned);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_symmetric() {
        let mut net = Network::new(NetParams::default());
        net.partition(NodeId(3), NodeId(1));
        assert!(net.is_partitioned(NodeId(1), NodeId(3)));
        assert!(net.is_partitioned(NodeId(3), NodeId(1)));
        net.heal(NodeId(1), NodeId(3));
        assert!(!net.is_partitioned(NodeId(1), NodeId(3)));
    }

    #[test]
    fn heal_all_clears_everything() {
        let mut net = Network::new(NetParams::default());
        net.partition(NodeId(0), NodeId(1));
        net.partition(NodeId(2), NodeId(3));
        net.heal_all();
        assert!(!net.is_partitioned(NodeId(0), NodeId(1)));
        assert!(!net.is_partitioned(NodeId(2), NodeId(3)));
    }

    #[test]
    fn local_latency_is_constant() {
        let net = Network::new(NetParams::default());
        let mut rng = SimRng::seed_from_u64(1);
        let l = net.latency(NodeId(0), NodeId(0), &mut rng);
        assert_eq!(l, NetParams::default().local_latency);
    }

    #[test]
    fn lan_latency_within_bounds() {
        let p = NetParams::default();
        let net = Network::new(p.clone());
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            let l = net.latency(NodeId(0), NodeId(1), &mut rng);
            assert!(l >= p.lan_latency);
            assert!(l <= p.lan_latency + p.jitter);
        }
    }

    #[test]
    fn route_drops_on_nic_failure() {
        let net = Network::new(NetParams::default());
        assert_eq!(
            net.route(NodeId(0), NodeId(1), NicId(0), false, true),
            Err(DropReason::SenderNicDown)
        );
        assert_eq!(
            net.route(NodeId(0), NodeId(1), NicId(0), true, false),
            Err(DropReason::ReceiverNicDown)
        );
        assert_eq!(net.route(NodeId(0), NodeId(1), NicId(0), true, true), Ok(()));
    }

    #[test]
    fn route_same_node_ignores_nics() {
        let net = Network::new(NetParams::default());
        assert_eq!(
            net.route(NodeId(0), NodeId(0), NicId(0), false, false),
            Ok(())
        );
    }

    #[test]
    fn route_respects_partition() {
        let mut net = Network::new(NetParams::default());
        net.partition(NodeId(0), NodeId(1));
        assert_eq!(
            net.route(NodeId(0), NodeId(1), NicId(0), true, true),
            Err(DropReason::Partitioned)
        );
    }

    #[test]
    fn zero_rates_draw_no_randomness() {
        let net = Network::new(NetParams::default());
        let mut rng = SimRng::seed_from_u64(11);
        let before = rng.next_u64();
        let mut rng = SimRng::seed_from_u64(11);
        assert!(!net.loss_roll(&mut rng));
        assert!(!net.dup_roll(&mut rng));
        assert_eq!(net.reorder_extra(&mut rng), SimDuration::ZERO);
        // The rolls consumed nothing: the next draw matches a fresh rng.
        assert_eq!(rng.next_u64(), before);
    }

    #[test]
    fn loss_roll_tracks_configured_rate() {
        let net = Network::new(NetParams {
            loss_permille: 100, // 10%
            ..NetParams::default()
        });
        let mut rng = SimRng::seed_from_u64(42);
        let lost = (0..10_000).filter(|_| net.loss_roll(&mut rng)).count();
        assert!((800..1200).contains(&lost), "10% loss drew {lost}/10000");
    }

    #[test]
    fn burst_overrides_lower_base_rate() {
        let mut net = Network::new(NetParams::default());
        assert_eq!(net.effective_loss_permille(), 0);
        net.set_loss_burst(300);
        assert_eq!(net.effective_loss_permille(), 300);
        net.clear_loss_burst();
        assert_eq!(net.effective_loss_permille(), 0);
        // A burst never lowers a higher base rate.
        net.params.loss_permille = 500;
        net.set_loss_burst(300);
        assert_eq!(net.effective_loss_permille(), 500);
    }

    #[test]
    fn unreliable_profile_scales_with_loss() {
        let p = NetParams::unreliable(80);
        assert_eq!(p.loss_permille, 80);
        assert_eq!(p.dup_permille, 20);
        assert!(p.reorder_extra > SimDuration::ZERO);
    }
}
