//! Workspace-level telemetry integration tests: the observability
//! subsystem measured against the live kernel rather than synthetic
//! inputs — shard-merge associativity of the histograms, bit-identical
//! span streams across identically seeded runs, and flight-recorder
//! eviction behaviour at capacity.

use phoenix::kernel::boot::boot_and_stabilize;
use phoenix::kernel::KernelParams;
use phoenix::proto::ClusterTopology;
use phoenix::sim::{Fault, SimDuration, SimRng};
use phoenix::telemetry::{
    BenchReport, FlightRecorder, Histogram, MetricsRegistry, SpanRecord, SpanId,
};
use phoenix_bench::sweep::run_sweep;

/// Merging per-shard histograms must equal the histogram of the whole
/// stream: the property that makes per-node registries aggregatable.
#[test]
fn histogram_merge_of_shards_equals_whole() {
    let mut rng = SimRng::seed_from_u64(0x7E1E_0001);
    let samples: Vec<u64> = (0..4096).map(|_| rng.gen_range(1u64..100_000_000)).collect();

    let mut whole = Histogram::new();
    for &s in &samples {
        whole.record(s);
    }

    let mut shards = vec![Histogram::new(); 4];
    for (i, &s) in samples.iter().enumerate() {
        shards[i % 4].record(s);
    }
    let mut merged = Histogram::new();
    for sh in &shards {
        merged.merge(sh);
    }

    let (w, m) = (whole.summary(), merged.summary());
    assert_eq!(w.count, m.count);
    assert_eq!(w.sum_ns, m.sum_ns);
    assert_eq!(w.min_ns, m.min_ns);
    assert_eq!(w.max_ns, m.max_ns);
    assert_eq!(w.p50_ns, m.p50_ns);
    assert_eq!(w.p90_ns, m.p90_ns);
    assert_eq!(w.p99_ns, m.p99_ns);
}

/// One boot + fault + recovery scenario, returning the completed span
/// stream (path, node, start, end) the kernel instrumentation produced.
fn span_stream(seed: u64) -> Vec<(&'static str, u32, u64, u64)> {
    phoenix::telemetry::reset();
    let (mut w, cluster) = boot_and_stabilize(
        ClusterTopology::uniform(2, 4, 1),
        KernelParams::fast(),
        seed,
    );
    w.run_for(SimDuration::from_secs(2));
    let node = cluster.topology.partitions[0].compute[0];
    let wd = cluster.directory.node(node).unwrap().wd;
    w.apply_fault(Fault::KillProcess(wd));
    w.run_for(SimDuration::from_secs(5));
    let spans = phoenix::telemetry::with(|r| {
        r.recorder()
            .iter()
            .map(|rec| (rec.path, rec.node, rec.start_ns, rec.end_ns))
            .collect::<Vec<_>>()
    });
    phoenix::telemetry::reset();
    spans
}

/// The simulator is deterministic and spans are keyed to virtual time, so
/// two identically seeded runs must produce bit-identical span streams —
/// and a different seed must not (the stream carries real information).
#[test]
fn span_stream_is_deterministic_across_runs() {
    let a = span_stream(71);
    let b = span_stream(71);
    assert!(!a.is_empty(), "scenario produced spans");
    assert!(
        a.iter().any(|(p, ..)| *p == "wd.heartbeat.flight"),
        "heartbeat spans present: {:?}",
        &a[..a.len().min(5)]
    );
    assert_eq!(a, b, "identical seeds → identical span streams");
    let c = span_stream(72);
    assert_ne!(a, c, "different seed → different span stream");
}

/// Run one boot + WD-kill scenario against the live kernel, leaving its
/// telemetry in the current thread-local registry.
fn run_scenario(seed: u64) {
    let (mut w, cluster) = boot_and_stabilize(
        ClusterTopology::uniform(2, 4, 1),
        KernelParams::fast(),
        seed,
    );
    w.run_for(SimDuration::from_secs(2));
    let node = cluster.topology.partitions[0].compute[0];
    let wd = cluster.directory.node(node).unwrap().wd;
    w.apply_fault(Fault::KillProcess(wd));
    w.run_for(SimDuration::from_secs(5));
}

/// Shard-merge == whole for counters, gauges, and histograms on real
/// kernel telemetry: two seeded runs recorded into one registry must equal
/// the same two runs recorded into per-run shards merged in run order.
#[test]
fn registry_merge_of_shards_equals_whole_on_kernel_runs() {
    let seeds = [71u64, 72];

    let whole_shard = phoenix::telemetry::shard_begin();
    for &seed in &seeds {
        phoenix::telemetry::clock::set_now(0);
        run_scenario(seed);
    }
    let whole = whole_shard.take();

    let mut merged = MetricsRegistry::new();
    for &seed in &seeds {
        let shard = phoenix::telemetry::shard_begin();
        phoenix::telemetry::clock::set_now(0);
        run_scenario(seed);
        merged.merge(&shard.take());
    }

    let counters: Vec<_> = whole.counters().collect();
    assert!(!counters.is_empty(), "scenario recorded counters");
    for (name, v) in counters {
        assert_eq!(merged.counter(name), v, "counter {name} must add across shards");
    }
    let gauges: Vec<_> = whole.gauges().collect();
    assert!(!gauges.is_empty(), "scenario recorded gauges");
    for (name, v) in gauges {
        assert_eq!(merged.gauge(name), Some(v), "gauge {name}: last shard in order wins");
    }
    let mut hist_paths = 0;
    for (path, stats) in whole.histograms() {
        hist_paths += 1;
        let (w, m) = (stats.hist.summary(), merged.histogram(path).unwrap().summary());
        assert_eq!((w.count, w.sum_ns, w.min_ns, w.max_ns), (m.count, m.sum_ns, m.min_ns, m.max_ns),
            "histogram {path} must merge exactly");
    }
    assert!(hist_paths > 0, "scenario recorded histograms");
}

/// Flight-recorder shard merge interleaves rings by `start_ns`: merging
/// two shards whose spans alternate in time must dump exactly like one
/// registry fed the same spans in time order — down to the rendered
/// report bytes.
#[test]
fn recorder_merge_interleaves_shards_like_the_whole() {
    let span = |r: &mut MetricsRegistry, node: u32, t: u64| {
        phoenix::telemetry::clock::set_now(t);
        let id = r.span_start("interleave.test", "test", node, SpanId::NONE);
        phoenix::telemetry::clock::set_now(t + 10);
        r.span_end(id);
    };

    // Whole: all spans in time order.
    let mut whole = MetricsRegistry::new();
    for t in 0..8u64 {
        span(&mut whole, (t % 2) as u32, t * 100);
    }
    // Shards: even-numbered instants in shard A, odd in shard B.
    let mut a = MetricsRegistry::new();
    let mut b = MetricsRegistry::new();
    for t in 0..8u64 {
        let shard = if t % 2 == 0 { &mut a } else { &mut b };
        span(shard, (t % 2) as u32, t * 100);
    }
    let mut merged = MetricsRegistry::new();
    merged.merge(&a);
    merged.merge(&b);

    let rep = BenchReport::new("interleave");
    assert_eq!(
        rep.to_json(&whole).render(),
        rep.to_json(&merged).render(),
        "merged flight-recorder dump must be byte-identical to the whole"
    );
}

/// The tentpole determinism gate in miniature: a small multi-seed sweep
/// over live kernel runs produces a byte-identical report whether it ran
/// serially or on forced worker threads.
#[test]
fn parallel_sweep_report_is_byte_identical_to_serial() {
    let seeds = [71u64, 72, 73];
    let job = |&seed: &u64| {
        run_scenario(seed);
        phoenix::telemetry::with(|r| r.counter("gsd.takeovers"))
    };

    let serial = run_sweep(&seeds, true, job);
    std::env::set_var("PHOENIX_SWEEP_THREADS", "3");
    let parallel = run_sweep(&seeds, false, job);
    std::env::remove_var("PHOENIX_SWEEP_THREADS");

    assert_eq!(serial.results, parallel.results);
    let rep = BenchReport::new("sweep-gate");
    assert_eq!(
        rep.to_json(&serial.merged).render(),
        rep.to_json(&parallel.merged).render(),
        "parallel sweep report must be byte-identical to serial"
    );
}

/// The ring keeps the newest `capacity` records per node and counts what
/// it dropped.
#[test]
fn flight_recorder_evicts_oldest_at_capacity() {
    let mut ring = FlightRecorder::with_capacity(8);
    for i in 0..20u64 {
        ring.push(SpanRecord {
            id: SpanId(i),
            parent: SpanId::NONE,
            path: "test.path",
            service: "test",
            node: (i % 2) as u32,
            start_ns: i * 100,
            end_ns: i * 100 + 50,
            aborted: false,
        });
    }
    // 20 spans over 2 nodes: each node saw 10, keeps 8, evicted 2.
    assert_eq!(ring.len(), 16);
    assert_eq!(ring.evicted(), 4);
    let kept: Vec<u64> = ring.iter().map(|r| r.id.0).collect();
    assert!(
        !kept.contains(&0) && !kept.contains(&1),
        "oldest spans evicted: {kept:?}"
    );
    assert!(
        kept.contains(&18) && kept.contains(&19),
        "newest spans kept: {kept:?}"
    );
}
