//! Simulated nodes: power state, network interfaces, resource gauges.

use crate::ids::{NicId, NodeId};

/// Instantaneous resource readings on a node, as fractions in `0.0..=1.0`
/// (percentages / 100). These are the quantities the paper's physical
/// resource detector samples: CPU, memory, swap, disk I/O and network I/O.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct ResourceUsage {
    pub cpu: f64,
    pub memory: f64,
    pub swap: f64,
    pub disk_io: f64,
    pub net_io: f64,
}

impl ResourceUsage {
    /// An idle node.
    pub const IDLE: ResourceUsage = ResourceUsage {
        cpu: 0.0,
        memory: 0.0,
        swap: 0.0,
        disk_io: 0.0,
        net_io: 0.0,
    };

    /// Clamp all gauges into `0.0..=1.0`.
    pub fn clamped(mut self) -> ResourceUsage {
        for v in [
            &mut self.cpu,
            &mut self.memory,
            &mut self.swap,
            &mut self.disk_io,
            &mut self.net_io,
        ] {
            *v = v.clamp(0.0, 1.0);
        }
        self
    }
}

/// Static description of a node used when building a cluster.
#[derive(Clone, Debug)]
pub struct NodeSpec {
    /// Number of network interfaces. The Dawning 4000A had three networks.
    pub nics: usize,
    /// Number of CPUs, used by compute models and job scheduling.
    pub cpus: u32,
    /// Memory capacity in MiB (reported by the configuration service).
    pub memory_mib: u64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        NodeSpec {
            nics: 3,
            cpus: 4,
            memory_mib: 8192,
        }
    }
}

/// Mutable runtime state of a node inside the world.
#[derive(Debug)]
pub struct NodeState {
    pub id: NodeId,
    pub spec: NodeSpec,
    pub up: bool,
    pub nic_up: Vec<bool>,
    pub usage: ResourceUsage,
}

impl NodeState {
    pub fn new(id: NodeId, spec: NodeSpec) -> NodeState {
        let nics = spec.nics;
        NodeState {
            id,
            spec,
            up: true,
            nic_up: vec![true; nics],
            usage: ResourceUsage::IDLE,
        }
    }

    /// Is the given NIC present and healthy (node must be up too)?
    pub fn nic_healthy(&self, nic: NicId) -> bool {
        self.up && self.nic_up.get(nic.0 as usize).copied().unwrap_or(false)
    }

    /// First healthy NIC, if any.
    pub fn first_healthy_nic(&self) -> Option<NicId> {
        if !self.up {
            return None;
        }
        self.nic_up
            .iter()
            .position(|&ok| ok)
            .map(|i| NicId(i as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_is_fully_up() {
        let n = NodeState::new(NodeId(0), NodeSpec::default());
        assert!(n.up);
        assert_eq!(n.nic_up.len(), 3);
        assert!(n.nic_healthy(NicId(0)));
        assert_eq!(n.first_healthy_nic(), Some(NicId(0)));
    }

    #[test]
    fn nic_failure_reroutes_first_healthy() {
        let mut n = NodeState::new(NodeId(0), NodeSpec::default());
        n.nic_up[0] = false;
        assert!(!n.nic_healthy(NicId(0)));
        assert_eq!(n.first_healthy_nic(), Some(NicId(1)));
        n.nic_up[1] = false;
        n.nic_up[2] = false;
        assert_eq!(n.first_healthy_nic(), None);
    }

    #[test]
    fn downed_node_has_no_healthy_nic() {
        let mut n = NodeState::new(NodeId(0), NodeSpec::default());
        n.up = false;
        assert!(!n.nic_healthy(NicId(0)));
        assert_eq!(n.first_healthy_nic(), None);
    }

    #[test]
    fn out_of_range_nic_is_unhealthy() {
        let n = NodeState::new(NodeId(0), NodeSpec::default());
        assert!(!n.nic_healthy(NicId(9)));
    }

    #[test]
    fn usage_clamps() {
        let u = ResourceUsage {
            cpu: 1.7,
            memory: -0.2,
            swap: 0.5,
            disk_io: 2.0,
            net_io: 0.0,
        }
        .clamped();
        assert_eq!(u.cpu, 1.0);
        assert_eq!(u.memory, 0.0);
        assert_eq!(u.swap, 0.5);
        assert_eq!(u.disk_io, 1.0);
    }
}
