//! Randomized fault churn: a seeded storm of process kills, node crashes
//! and NIC flaps against a live cluster, followed by repair — the kernel
//! must converge back to a fully serving state. This is the "production
//! soak test" the Dawning 4000A effectively ran for the paper's authors.

use phoenix::kernel::boot::boot_and_stabilize;
use phoenix::kernel::client::ClientHandle;
use phoenix::kernel::KernelParams;
use phoenix::proto::{BulletinQuery, ClusterTopology, KernelMsg, NodeOp, RequestId};
use phoenix::sim::{Fault, NicId, NodeId, SimDuration};
use phoenix::sim::SimRng;

fn complete_query(
    world: &mut phoenix::sim::World<KernelMsg>,
    client: &ClientHandle,
    bulletin: phoenix::sim::Pid,
    req: u64,
) -> bool {
    client.send(
        world,
        bulletin,
        KernelMsg::DbQuery {
            req: RequestId(req),
            query: BulletinQuery::Resources,
        },
    );
    world.run_for(SimDuration::from_millis(400));
    client
        .drain()
        .into_iter()
        .find_map(|(_, m)| match m {
            KernelMsg::DbResp { complete, .. } => Some(complete),
            _ => None,
        })
        .unwrap_or(false)
}

fn churn_round(seed: u64) {
    let topology = ClusterTopology::uniform(3, 5, 1);
    let (mut world, cluster) = boot_and_stabilize(topology, KernelParams::fast(), seed);
    let mut rng = SimRng::seed_from_u64(seed ^ 0xC0FFEE);
    let n = cluster.topology.node_count() as u32;
    world.run_for(SimDuration::from_secs(2));

    // ---- storm: 10 random faults, spaced ~1 virtual second -----------------
    let mut crashed: Vec<NodeId> = Vec::new();
    for _ in 0..10 {
        match rng.gen_range(0..3) {
            0 => {
                // Kill a random process on a random node (whatever lives
                // there — daemon or service).
                let node = NodeId(rng.gen_range(0..n));
                let pids = world.pids_on(node);
                if let Some(&pid) = pids.get(rng.gen_range(0..pids.len().max(1)).min(pids.len().saturating_sub(1))) {
                    world.kill_process(pid);
                }
            }
            1 => {
                // Crash a random *compute* node (keep at least one backup
                // alive per partition so migration always has a target).
                let part = &cluster.topology.partitions[rng.gen_range(0usize..3)];
                let node = part.compute[rng.gen_range(0..part.compute.len())];
                if !crashed.contains(&node) {
                    crashed.push(node);
                    world.apply_fault(Fault::CrashNode(node));
                }
            }
            _ => {
                // Flap a NIC.
                let node = NodeId(rng.gen_range(0..n));
                let nic = NicId(rng.gen_range(0u8..3));
                world.apply_fault(Fault::NicDown(node, nic));
                world
                    .schedule_fault(
                        world.now() + SimDuration::from_secs(3),
                        Fault::NicUp(node, nic),
                    )
                    .expect("repair is scheduled in the future");
            }
        }
        world.run_for(SimDuration::from_secs(1));
    }

    // ---- repair: bring crashed nodes back, let supervision settle ----------
    let client = ClientHandle::spawn(&mut world, cluster.topology.partitions[0].server);
    for (i, &node) in crashed.iter().enumerate() {
        client.send(
            &mut world,
            cluster.config(),
            KernelMsg::CfgNodeOp {
                req: RequestId(9_000 + i as u64),
                node,
                op: NodeOp::Start,
            },
        );
    }
    // Generous settle time: several heartbeat intervals + restart costs +
    // the leader's rescue sweep if a takeover plan was lost.
    world.run_for(SimDuration::from_secs(40));

    // ---- invariants ----------------------------------------------------------
    // 1. Every node is powered and carries its three daemons.
    for node in world.nodes() {
        assert!(node.up, "seed {seed}: {:?} still down", node.id);
    }
    // 2. The bulletin federation answers completely from partition 0's
    //    current instance (ask config for the live directory first).
    client.send(
        &mut world,
        cluster.config(),
        KernelMsg::CfgQueryDirectory { req: RequestId(1) },
    );
    world.run_for(SimDuration::from_millis(50));
    let directory = client
        .drain()
        .into_iter()
        .find_map(|(_, m)| match m {
            KernelMsg::CfgDirectory { directory, .. } => Some(*directory),
            _ => None,
        })
        .expect("config answers");
    // 3. Every partition has a live GSD in the directory.
    assert_eq!(directory.partitions.len(), 3, "seed {seed}");
    for m in &directory.partitions {
        assert!(
            world.is_alive(m.gsd),
            "seed {seed}: {:?} GSD dead in directory",
            m.partition
        );
    }
    let complete = complete_query(&mut world, &client, directory.partitions[0].bulletin, 2);
    assert!(complete, "seed {seed}: federation incomplete after repair");
}

#[test]
fn churn_seed_1() {
    churn_round(1);
}

#[test]
fn churn_seed_2() {
    churn_round(2);
}

#[test]
fn churn_seed_3() {
    churn_round(3);
}

#[test]
fn churn_seed_4() {
    churn_round(4);
}
