//! The watch daemon (WD).
//!
//! Paper Sec 4.3: "Within a partition, the daemons responsible for sending
//! heartbeat are watch daemons (WD) which reside on every node. WD sends
//! heartbeat to GSD periodically through all network interfaces of the
//! node. Through receiving and analyzing heartbeat from WD, GSD can
//! monitor status of nodes and networks in a partition."

use crate::nic_health::NicHealth;
use crate::params::FtParams;
use phoenix_proto::{KernelMsg, PartitionId};
use phoenix_sim::{
    Actor, Ctx, FaultTarget, NicId, NodeId, Pid, RecoveryAction, TraceEvent,
};

const TOK_HB: u64 = 1;

/// The watch-daemon actor.
pub struct Wd {
    node: NodeId,
    partition: PartitionId,
    gsd: Pid,
    params: FtParams,
    seq: u64,
    /// Whether the heartbeat timer chain is running. `Boot` may arrive
    /// more than once (config re-asserts node wiring under a lossy
    /// profile); only the first may start the chain or beats double up.
    beating: bool,
    /// Set on a respawned instance; emits the recovery trace on start.
    recovery: Option<RecoveryAction>,
    /// Per-NIC delivery evidence from GSD heartbeat acks (only fed when
    /// the NIC-health layer is enabled; otherwise permanently pristine).
    nic_health: NicHealth,
    /// Highest acked heartbeat seq per NIC, for gap detection.
    acked_seq: Vec<u64>,
}

/// A round-trip seq this far behind the current beat is a stale straggler
/// (or an ack for a previous WD incarnation), not loss evidence.
const ACK_RESTART_WINDOW: u64 = 64;

impl Wd {
    /// Boot-time WD; the GSD pid arrives via `Boot`.
    pub fn new(node: NodeId, partition: PartitionId, params: FtParams) -> Self {
        let nic = params.nic.clone();
        Wd {
            node,
            partition,
            gsd: Pid(0),
            params,
            seq: 0,
            beating: false,
            recovery: None,
            nic_health: NicHealth::new(nic, 0),
            acked_seq: Vec::new(),
        }
    }

    /// A WD restarted by its GSD after a process failure.
    pub fn respawn(
        node: NodeId,
        partition: PartitionId,
        params: FtParams,
        gsd: Pid,
        action: RecoveryAction,
    ) -> Self {
        let mut wd = Wd::new(node, partition, params);
        wd.gsd = gsd;
        wd.recovery = Some(action);
        wd
    }

    /// Send one heartbeat over every network interface of the node. The
    /// per-NIC fan-out is what lets the GSD distinguish a NIC failure
    /// (some interfaces silent) from a node failure (all silent).
    fn beat(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        self.beating = true;
        self.seq += 1;
        let nics = ctx.nic_count(self.node);
        if self.nic_health.nic_count() < nics {
            // Sized on first beat, when the node's NIC count is known.
            self.nic_health = NicHealth::new(self.params.nic.clone(), nics);
            self.acked_seq = vec![0; nics];
        }
        phoenix_telemetry::counter_add("wd.heartbeats.sent", nics as u64);
        for i in 0..nics {
            phoenix_telemetry::mark(
                "wd.heartbeat.flight",
                phoenix_telemetry::key(&[self.node.0 as u64, i as u64, self.seq]),
            );
            ctx.send_via(
                self.gsd,
                NicId(i as u8),
                KernelMsg::WdHeartbeat {
                    node: self.node,
                    nic: NicId(i as u8),
                    seq: self.seq,
                },
            );
        }
        ctx.set_timer(self.params.hb_interval, TOK_HB);
    }

    /// The GSD this WD currently heartbeats (read-only introspection for
    /// the chaos harness's convergence invariant). `Pid(0)` before boot.
    pub fn gsd_pid(&self) -> Pid {
        self.gsd
    }

    /// Per-NIC health scores as observed from this WD's ack stream
    /// (read-only introspection; all 1.0 when the layer is disabled).
    pub fn nic_scores(&self) -> Vec<f64> {
        (0..self.nic_health.nic_count())
            .map(|i| self.nic_health.score(NicId(i as u8)))
            .collect()
    }

    /// An ack for heartbeat `seq` came back over `nic`: the round trip on
    /// that interface worked. A gap since the last acked seq on the same
    /// interface means earlier beats (or their acks) died on that wire —
    /// per-NIC loss evidence the WD gets without any extra probe traffic.
    fn on_ack(&mut self, nic: NicId, seq: u64) {
        if !self.nic_health.enabled() {
            return;
        }
        let Some(last) = self.acked_seq.get_mut(nic.0 as usize) else {
            return;
        };
        if seq <= *last || seq > self.seq {
            return; // duplicate, reordered straggler, or foreign incarnation
        }
        let gap = seq - *last - 1;
        if *last > 0 && gap > 0 && gap < ACK_RESTART_WINDOW {
            self.nic_health.observe_misses(nic, gap);
        }
        *last = seq;
        self.nic_health.observe_delivery(nic);
    }
}

impl Actor<KernelMsg> for Wd {
    fn on_start(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        ctx.trace(TraceEvent::ServiceUp {
            pid: ctx.pid(),
            service: "wd",
            node: ctx.node(),
        });
        if let Some(action) = self.recovery.take() {
            ctx.trace(TraceEvent::Recovered {
                target: FaultTarget::Process(ctx.pid()),
                action,
            });
        }
        if self.gsd != Pid(0) {
            self.beat(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, KernelMsg>, from: Pid, msg: KernelMsg) {
        match msg {
            KernelMsg::Boot(dir) => {
                if let Some(me) = dir.partition(self.partition) {
                    self.gsd = me.gsd;
                }
                if !self.beating {
                    self.beat(ctx);
                }
            }
            KernelMsg::PartitionView { local, .. } => {
                // A restarted or migrated GSD announces itself here.
                self.gsd = local.gsd;
            }
            KernelMsg::ProbeReq { req } => {
                ctx.send(from, KernelMsg::ProbeResp { req });
            }
            KernelMsg::SlowPing { seq } => {
                // RTT echo for the fail-slow detector: the leader samples
                // placement-candidate nodes through their watch daemons.
                ctx.send(from, KernelMsg::SlowPong { seq });
            }
            KernelMsg::RegroupProbe { round } => {
                // Home-node testimony for a peer GSD's regroup round: the
                // GSD pid this daemon heartbeats, and whether that pid is
                // still alive (the sim shortcut for "K consecutive
                // heartbeat acks missing"). An unbooted WD abstains — it
                // tracks no pid and has no ack stream to testify from.
                if self.gsd != Pid(0) {
                    ctx.send(
                        from,
                        KernelMsg::RegroupProbeAck {
                            round,
                            partition: self.partition,
                            gsd: self.gsd,
                            alive: ctx.process_is_alive(self.gsd),
                        },
                    );
                }
            }
            KernelMsg::WdHeartbeatAck { nic, seq } => {
                self.on_ack(nic, seq);
            }
            KernelMsg::CfgSetParam { key, value, .. } => {
                // Dynamic reconfiguration pushed by the config service.
                if key == "hb_interval_ms" {
                    if let Ok(ms) = value.parse::<u64>() {
                        self.params.hb_interval =
                            phoenix_sim::SimDuration::from_millis(ms.max(1));
                        // Takes effect at the next beat (the pending timer
                        // still fires on the old schedule once).
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, KernelMsg>, token: u64) {
        if token == TOK_HB {
            self.beat(ctx);
        }
    }

    fn name(&self) -> &str {
        "wd"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientHandle;
    use phoenix_sim::{ClusterBuilder, Fault, NodeSpec, SimDuration};

    #[test]
    fn heartbeats_flow_on_every_nic() {
        let mut w = ClusterBuilder::new()
            .nodes(2, NodeSpec::default())
            .build::<KernelMsg>();
        let gsd = ClientHandle::spawn(&mut w, NodeId(0));
        let wd = Wd::respawn(
            NodeId(1),
            PartitionId(0),
            FtParams::fast(),
            gsd.pid,
            RecoveryAction::NoneNeeded,
        );
        w.spawn(NodeId(1), Box::new(wd));
        w.run_for(SimDuration::from_millis(2100));
        let beats: Vec<(NicId, u64)> = gsd
            .drain()
            .into_iter()
            .filter_map(|(_, m)| match m {
                KernelMsg::WdHeartbeat { nic, seq, .. } => Some((nic, seq)),
                _ => None,
            })
            .collect();
        // 3 beats (t≈0, 1s, 2s) × 3 NICs.
        assert_eq!(beats.len(), 9);
        for nic in 0..3 {
            assert_eq!(beats.iter().filter(|(n, _)| n.0 == nic).count(), 3);
        }
    }

    #[test]
    fn nic_failure_silences_only_that_interface() {
        let mut w = ClusterBuilder::new()
            .nodes(2, NodeSpec::default())
            .build::<KernelMsg>();
        let gsd = ClientHandle::spawn(&mut w, NodeId(0));
        let wd = Wd::respawn(
            NodeId(1),
            PartitionId(0),
            FtParams::fast(),
            gsd.pid,
            RecoveryAction::NoneNeeded,
        );
        w.spawn(NodeId(1), Box::new(wd));
        w.apply_fault(Fault::NicDown(NodeId(1), NicId(0)));
        w.run_for(SimDuration::from_millis(1100));
        let nics: Vec<u8> = gsd
            .drain()
            .into_iter()
            .filter_map(|(_, m)| match m {
                KernelMsg::WdHeartbeat { nic, .. } => Some(nic.0),
                _ => None,
            })
            .collect();
        assert!(!nics.contains(&0), "NIC 0 heartbeats must be dropped");
        assert!(nics.contains(&1) && nics.contains(&2));
    }

    #[test]
    fn acks_feed_per_nic_health() {
        let mut w = ClusterBuilder::new()
            .nodes(2, NodeSpec::default())
            .build::<KernelMsg>();
        let gsd = ClientHandle::spawn(&mut w, NodeId(0));
        let wd_pid = w.spawn(
            NodeId(1),
            Box::new(Wd::respawn(
                NodeId(1),
                PartitionId(0),
                FtParams::fast_lossy(),
                gsd.pid,
                RecoveryAction::NoneNeeded,
            )),
        );
        w.run_for(SimDuration::from_millis(10_500)); // seq reaches 11
        gsd.drain();
        // NIC 0: every beat acked. NIC 1: only 1, 5 and 11 came back —
        // the gaps are loss evidence against that interface. Spaced out in
        // virtual time so latency jitter cannot reorder them.
        for seq in 1..=11u64 {
            gsd.send(&mut w, wd_pid, KernelMsg::WdHeartbeatAck { nic: NicId(0), seq });
            w.run_for(SimDuration::from_millis(5));
        }
        for seq in [1u64, 5, 11] {
            gsd.send(&mut w, wd_pid, KernelMsg::WdHeartbeatAck { nic: NicId(1), seq });
            w.run_for(SimDuration::from_millis(5));
        }
        let scores = w.actor_as::<Wd>(wd_pid).unwrap().nic_scores();
        assert_eq!(scores[0], 1.0, "fully acked NIC stays perfect");
        assert!(scores[1] < scores[0], "gappy NIC scores below: {scores:?}");
        assert_eq!(scores[2], 1.0, "no evidence, no penalty");
    }

    #[test]
    fn probe_is_answered() {
        let mut w = ClusterBuilder::new()
            .nodes(2, NodeSpec::default())
            .build::<KernelMsg>();
        let wd_pid = w.spawn(
            NodeId(1),
            Box::new(Wd::new(NodeId(1), PartitionId(0), FtParams::fast())),
        );
        let client = ClientHandle::spawn(&mut w, NodeId(0));
        client.send(
            &mut w,
            wd_pid,
            KernelMsg::ProbeReq {
                req: phoenix_proto::RequestId(3),
            },
        );
        w.run_for(SimDuration::from_millis(5));
        assert!(matches!(
            client.drain()[..],
            [(_, KernelMsg::ProbeResp { .. })]
        ));
    }
}
