//! Structured trace log.
//!
//! Services emit [`TraceEvent`]s (fault detected, diagnosis completed,
//! service recovered, leader elected, ...) and the experiment harnesses mine
//! the log to compute the detecting / diagnosing / recovery times reported
//! in the paper's Tables 1–3.

use crate::ids::{NicId, NodeId, Pid};
use crate::time::SimTime;

/// What happened. The variants map onto the observable milestones of the
/// paper's fault-tolerance pipeline plus generic service lifecycle markers.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A failure was first noticed (a heartbeat deadline expired, a ring
    /// neighbour went silent, ...). `target` names the suspected entity.
    FaultDetected {
        observer: Pid,
        target: FaultTarget,
    },
    /// The failure was classified (process vs node vs network).
    FaultDiagnosed {
        observer: Pid,
        target: FaultTarget,
        diagnosis: Diagnosis,
    },
    /// The failed component is back in service (restarted or migrated, state
    /// restored).
    Recovered {
        target: FaultTarget,
        action: RecoveryAction,
    },
    /// A meta-group member took a new role.
    RoleChange {
        pid: Pid,
        role: &'static str,
    },
    /// Generic milestone with a label and an optional numeric payload;
    /// used by experiments that need custom markers.
    Milestone {
        label: &'static str,
        value: f64,
    },
    /// Service started serving (after spawn + initialization).
    ServiceUp {
        pid: Pid,
        service: &'static str,
        node: NodeId,
    },
}

/// The entity a fault event refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTarget {
    Process(Pid),
    Node(NodeId),
    Nic(NodeId, NicId),
}

/// Classification of an observed failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Diagnosis {
    ProcessFailure,
    NodeFailure,
    NetworkFailure,
}

/// How the failure was repaired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryAction {
    /// Restarted in place on the same node.
    RestartedInPlace,
    /// Migrated to another node and restarted there.
    Migrated(NodeId),
    /// No action required (e.g. one of several redundant networks failed,
    /// or the WD dies with its node and is meaningless to migrate).
    NoneNeeded,
}

/// A timestamped trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    pub at: SimTime,
    pub event: TraceEvent,
}

/// Append-only in-memory trace log.
#[derive(Debug, Default)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
}

impl TraceLog {
    pub(crate) fn push(&mut self, at: SimTime, event: TraceEvent) {
        self.records.push(TraceRecord { at, event });
    }

    /// All records in order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records (cheap progress cursor for quiescence checks).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records have been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// First record (at or after `after`) matching `pred`.
    pub fn find_after<F>(&self, after: SimTime, mut pred: F) -> Option<&TraceRecord>
    where
        F: FnMut(&TraceEvent) -> bool,
    {
        self.records
            .iter()
            .find(|r| r.at >= after && pred(&r.event))
    }

    /// Number of records matching `pred`.
    pub fn count<F>(&self, mut pred: F) -> usize
    where
        F: FnMut(&TraceEvent) -> bool,
    {
        self.records.iter().filter(|r| pred(&r.event)).count()
    }

    /// Drop all records (between experiment phases).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Render every record as one line of text. The format is stable and
    /// fully determined by the record contents (virtual time + `Debug` of
    /// the event), so two runs are trace-byte-identical iff their rendered
    /// logs are equal — the comparison stream of the differential harness.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.records {
            let _ = writeln!(out, "{} {:?}", r.at.0, r.event);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_after_respects_time_and_pred() {
        let mut log = TraceLog::default();
        log.push(
            SimTime(10),
            TraceEvent::Milestone {
                label: "a",
                value: 1.0,
            },
        );
        log.push(
            SimTime(20),
            TraceEvent::Milestone {
                label: "b",
                value: 2.0,
            },
        );
        let hit = log
            .find_after(SimTime(15), |e| {
                matches!(e, TraceEvent::Milestone { label: "b", .. })
            })
            .unwrap();
        assert_eq!(hit.at, SimTime(20));
        assert!(log
            .find_after(SimTime(25), |e| matches!(e, TraceEvent::Milestone { .. }))
            .is_none());
    }

    #[test]
    fn count_filters() {
        let mut log = TraceLog::default();
        for i in 0..5 {
            log.push(
                SimTime(i),
                TraceEvent::Milestone {
                    label: "x",
                    value: i as f64,
                },
            );
        }
        assert_eq!(
            log.count(|e| matches!(e, TraceEvent::Milestone { value, .. } if *value >= 3.0)),
            2
        );
    }

    #[test]
    fn render_is_one_stable_line_per_record() {
        let mut log = TraceLog::default();
        log.push(
            SimTime(7),
            TraceEvent::Milestone {
                label: "x",
                value: 1.5,
            },
        );
        log.push(
            SimTime(9),
            TraceEvent::RoleChange {
                pid: Pid(3),
                role: "leader",
            },
        );
        let text = log.render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("7 Milestone"));
        assert!(text.contains("9 RoleChange"));
    }

    #[test]
    fn clear_empties() {
        let mut log = TraceLog::default();
        log.push(
            SimTime(1),
            TraceEvent::Milestone {
                label: "x",
                value: 0.0,
            },
        );
        log.clear();
        assert!(log.records().is_empty());
    }
}
