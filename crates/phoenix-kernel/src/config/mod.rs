//! The configuration service.
//!
//! Paper Sec 4.2: "It provides cluster-wide configuration information,
//! including information of physical resources, Phoenix kernel and user
//! environments. Configuration service has a self-introspection mechanism
//! to automatically find and diagnose cluster resources, and provides
//! documented interface for dynamic reconfiguration."
//!
//! One instance runs cluster-wide. It is the authoritative copy of the
//! topology and the live service directory (GSDs report every restart and
//! migration), answers queries, applies dynamic parameter changes, and
//! executes administrative node operations (paper Fig 9's start/shutdown
//! nodes), respawning node daemons when a node comes back up.

use crate::detect::Detector;
use crate::group::Wd;
use crate::params::KernelParams;
use crate::ppm::PpmAgent;
use crate::rpc::DedupWindow;
use phoenix_proto::{
    ClusterTopology, Event, EventPayload, EventType, KernelMsg, NodeOp, NodeServices,
    RequestId, ServiceDirectory,
};
use phoenix_sim::{Actor, Ctx, NodeId, Pid, SimDuration, TraceEvent};
use std::collections::HashMap;

/// Under a retrying profile, a restarted node's wiring pushes (`Boot` to
/// its daemons, `DirectoryUpdateNode` to the GSD and PPM agents) are
/// re-asserted this many times: each push is fire-and-forget, and a single
/// lost `Boot` otherwise leaves the fresh WD pointed at `Pid(0)` forever.
/// Every push is idempotent, so blind re-sends are safe.
const REWIRE_RESENDS: u32 = 3;

/// Timer-token namespace for per-node rewire timers (token = base + node).
const REWIRE_TOK_BASE: u64 = 1 << 32;

/// The configuration-service actor.
pub struct ConfigService {
    topology: ClusterTopology,
    params: KernelParams,
    directory: ServiceDirectory,
    /// Dynamic key/value parameters set through `CfgSetParam`.
    kv: HashMap<String, String>,
    /// Idempotency window for `CfgNodeOp`: `start_node` spawns daemons and
    /// fans directory updates cluster-wide, so a retried request must
    /// replay the cached ack instead of re-executing.
    node_ops_seen: DedupWindow<(Pid, RequestId), bool>,
    /// Remaining wiring re-assertions per recently started node.
    rewire: HashMap<NodeId, u32>,
    /// Partitions flagged by the majority side's regroup as unreachable:
    /// their directory entries are kept (for rescue hints) but marked
    /// stale — clients should not route to daemons nobody holding quorum
    /// can vouch for. Cleared by the partition's next `DirectoryUpdate`
    /// or an explicit `stale = false`.
    stale: std::collections::BTreeSet<phoenix_proto::PartitionId>,
    /// Latest witness identity reported by the majority side's regroup
    /// (`CfgSetParam` key `regroup_witness`, value `partition:epoch`).
    /// The higher witness epoch wins, mirroring the gossip rule, so
    /// replayed or reordered reports cannot roll the view back.
    witness: Option<(phoenix_proto::PartitionId, u64)>,
}

impl ConfigService {
    pub fn new(topology: ClusterTopology, params: KernelParams) -> Self {
        ConfigService {
            topology,
            params,
            directory: ServiceDirectory::default(),
            kv: HashMap::new(),
            node_ops_seen: DedupWindow::new(64),
            rewire: HashMap::new(),
            stale: std::collections::BTreeSet::new(),
            witness: None,
        }
    }

    /// Partitions currently flagged stale by a regroup round (sorted).
    pub fn stale_partitions(&self) -> Vec<phoenix_proto::PartitionId> {
        self.stale.iter().copied().collect()
    }

    /// The regroup witness last reported by the majority side, with its
    /// witness epoch. `None` until a failover has been reported (the
    /// initial witness is implicit in the vote-table configuration).
    pub fn regroup_witness(&self) -> Option<(phoenix_proto::PartitionId, u64)> {
        self.witness
    }

    /// Spacing between wiring re-assertions: 4× the retry base keeps them
    /// off the hot retry path but well inside the detection window.
    fn rewire_interval(&self) -> SimDuration {
        SimDuration::from_nanos(
            self.params.rpc.base.as_nanos().saturating_mul(4).max(1_000_000),
        )
    }

    /// (Re-)send the full wiring batch for a node's daemons: `Boot` with
    /// the current directory to WD/detector/PPM, and the directory update
    /// to the supervising GSD and every other PPM agent.
    fn wire_node(&self, ctx: &mut Ctx<'_, KernelMsg>, services: NodeServices) {
        let boot = KernelMsg::Boot(self.directory.clone().into());
        ctx.send(services.wd, boot.clone());
        ctx.send(services.detector, boot.clone());
        ctx.send(services.ppm, boot);
        if let Some(partition) = self.topology.partition_of(services.node) {
            if let Some(member) = self.directory.partition(partition) {
                ctx.send(member.gsd, KernelMsg::DirectoryUpdateNode { services });
            }
            // Vote-table profiles: every *other* GSD also learns the new
            // WD pids, because regroup rounds probe foreign home-node
            // WDs for dead-GSD testimony and a stale pid would silence a
            // repaired node's testimony forever. Gated so pre-existing
            // profiles stay byte-identical.
            if self.params.ft.regroup.votes.enabled {
                for m in &self.directory.partitions {
                    if m.partition != partition && m.gsd != Pid(0) {
                        ctx.send(m.gsd, KernelMsg::DirectoryUpdateNode { services });
                    }
                }
            }
        }
        for ns in &self.directory.nodes {
            if ns.node != services.node {
                ctx.send(ns.ppm, KernelMsg::DirectoryUpdateNode { services });
            }
        }
    }

    /// Event service of the first known partition (used to publish
    /// configuration-change events).
    fn any_event_service(&self) -> Option<Pid> {
        self.directory
            .partitions
            .first()
            .map(|m| m.event)
            .filter(|&p| p != Pid(0))
    }

    /// Bring a node back: power it on and respawn its daemons, then tell
    /// the partition GSD and all PPM agents about the new pids.
    fn start_node(&mut self, ctx: &mut Ctx<'_, KernelMsg>, node: NodeId) -> bool {
        if !ctx.node_same_island(node) {
            // An island split separates us from the node's power controller:
            // the start request cannot reach it, so spawning daemons there
            // would plant processes across a severed link. Refuse; the
            // operator retries after the heal.
            phoenix_telemetry::counter_add("config.repair_unreachable", 1);
            ctx.trace(TraceEvent::Milestone {
                label: "node-start-unreachable",
                value: node.0 as f64,
            });
            return false;
        }
        ctx.set_node_power(node, true);
        let Some(partition) = self.topology.partition_of(node) else {
            return false;
        };
        let wd = ctx.spawn(
            node,
            Box::new(Wd::new(node, partition, self.params.ft.clone())),
        );
        let detector = ctx.spawn(
            node,
            Box::new(Detector::new(node, partition, self.params.clone())),
        );
        let ppm = ctx.spawn(node, Box::new(PpmAgent::new(node)));
        let services = NodeServices {
            node,
            wd,
            detector,
            ppm,
        };
        // Update the directory.
        self.directory.nodes.retain(|n| n.node != node);
        self.directory.nodes.push(services);
        // Wire the new daemons: `Boot` for them, directory updates for the
        // supervising GSD (resumes monitoring, publishes NodeRecovery) and
        // every PPM agent (routing tables).
        self.wire_node(ctx, services);
        if self.params.rpc.retries_enabled() {
            // Lossy profile: any wiring push may be dropped; re-assert.
            self.rewire.insert(node, REWIRE_RESENDS);
            ctx.set_timer(self.rewire_interval(), REWIRE_TOK_BASE + node.0 as u64);
        }
        ctx.trace(TraceEvent::Milestone {
            label: "node-started",
            value: node.0 as f64,
        });
        true
    }

    fn shutdown_node(&mut self, ctx: &mut Ctx<'_, KernelMsg>, node: NodeId) {
        self.rewire.remove(&node);
        ctx.set_node_power(node, false);
        ctx.trace(TraceEvent::Milestone {
            label: "node-shutdown",
            value: node.0 as f64,
        });
    }
}

impl Actor<KernelMsg> for ConfigService {
    fn on_start(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        ctx.trace(TraceEvent::ServiceUp {
            pid: ctx.pid(),
            service: "config",
            node: ctx.node(),
        });
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, KernelMsg>, from: Pid, msg: KernelMsg) {
        match msg {
            KernelMsg::Boot(dir) => {
                self.directory = dir.unwrap_or_clone();
            }
            KernelMsg::CfgQueryTopology { req } => {
                ctx.send(
                    from,
                    KernelMsg::CfgTopology {
                        req,
                        topology: Box::new(self.topology.clone()),
                    },
                );
            }
            KernelMsg::CfgQueryDirectory { req } => {
                ctx.send(
                    from,
                    KernelMsg::CfgDirectory {
                        req,
                        directory: Box::new(self.directory.clone()),
                    },
                );
            }
            KernelMsg::CfgSetParam { req, key, value } => {
                self.kv.insert(key.clone(), value.clone());
                ctx.send(from, KernelMsg::CfgAck { req, ok: true });
                // Dynamic reconfiguration: push tunables to the daemons
                // that consume them ("the interval for sending heartbeat
                // can be configured as a system parameter").
                if key == "hb_interval_ms" {
                    let push = KernelMsg::CfgSetParam {
                        req: RequestId(0),
                        key: key.clone(),
                        value,
                    };
                    for m in &self.directory.partitions {
                        ctx.send(m.gsd, push.clone());
                    }
                    for n in &self.directory.nodes {
                        ctx.send(n.wd, push.clone());
                    }
                } else if key == "regroup_witness" {
                    // Majority-side witness failover report. Adopt only a
                    // higher witness epoch (gossip rule) so a delayed
                    // duplicate cannot roll the view back.
                    if let Some((p, e)) = value.split_once(':') {
                        if let (Ok(p), Ok(e)) = (p.parse::<u32>(), e.parse::<u64>()) {
                            if self.witness.map_or(true, |(_, cur)| e > cur) {
                                self.witness = Some((phoenix_proto::PartitionId(p), e));
                                phoenix_telemetry::counter_add("config.witness_reports", 1);
                            }
                        }
                    }
                }
                if let Some(es) = self.any_event_service() {
                    ctx.send(
                        es,
                        KernelMsg::EsPublish {
                            event: Event::new(
                                EventType::ConfigChange,
                                ctx.node(),
                                EventPayload::Text(key),
                            ),
                        },
                    );
                }
            }
            KernelMsg::DirectoryUpdate { partition, member } => {
                self.directory.partitions.retain(|m| m.partition != partition);
                self.directory.partitions.push(member);
                self.directory.partitions.sort_by_key(|m| m.partition);
                // A fresh entry is vouched-for again: whoever pushed it is
                // alive and reachable from us.
                self.stale.remove(&partition);
            }
            KernelMsg::DirectoryStale { partition, stale } => {
                if stale {
                    if self.stale.insert(partition) {
                        phoenix_telemetry::counter_add("config.stale_marks", 1);
                    }
                } else {
                    self.stale.remove(&partition);
                }
            }
            KernelMsg::DirectoryUpdateNode { services } => {
                self.directory.nodes.retain(|n| n.node != services.node);
                self.directory.nodes.push(services);
            }
            KernelMsg::CfgNodeOp { req, node, op } => {
                // Retried request (req 0 marks fire-and-forget callers that
                // never retry): replay the ack without re-running the op.
                if req != RequestId(0) {
                    if let Some(&ok) = self.node_ops_seen.replay(&(from, req)) {
                        ctx.send(from, KernelMsg::CfgAck { req, ok });
                        return;
                    }
                }
                let ok = match op {
                    NodeOp::Start => self.start_node(ctx, node),
                    NodeOp::Shutdown => {
                        self.shutdown_node(ctx, node);
                        true
                    }
                };
                // A refused op is not recorded as seen: the caller's retry
                // after the heal must re-execute it, not replay the refusal.
                if req != RequestId(0) && ok {
                    self.node_ops_seen.record((from, req), true);
                }
                ctx.send(from, KernelMsg::CfgAck { req, ok });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, KernelMsg>, token: u64) {
        if token < REWIRE_TOK_BASE {
            return;
        }
        let node = NodeId((token - REWIRE_TOK_BASE) as u32);
        let Some(left) = self.rewire.get_mut(&node) else {
            return;
        };
        *left -= 1;
        let again = *left > 0;
        if !again {
            self.rewire.remove(&node);
        }
        // Re-send with the *current* directory entry: the GSD may have
        // restarted the WD (new pid) since the node came up.
        let Some(services) = self
            .directory
            .nodes
            .iter()
            .find(|n| n.node == node)
            .copied()
        else {
            return;
        };
        self.wire_node(ctx, services);
        if again {
            ctx.set_timer(self.rewire_interval(), token);
        }
    }

    fn name(&self) -> &str {
        "config"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientHandle;
    use phoenix_proto::RequestId;
    use phoenix_sim::{ClusterBuilder, NodeSpec, SimDuration};

    #[test]
    fn topology_and_params_query() {
        let mut w = ClusterBuilder::new()
            .nodes(4, NodeSpec::default())
            .build::<KernelMsg>();
        let topo = ClusterTopology::uniform(2, 2, 1);
        let cfg = w.spawn(
            NodeId(0),
            Box::new(ConfigService::new(topo.clone(), KernelParams::fast())),
        );
        let client = ClientHandle::spawn(&mut w, NodeId(1));
        client.send(&mut w, cfg, KernelMsg::CfgQueryTopology { req: RequestId(1) });
        client.send(
            &mut w,
            cfg,
            KernelMsg::CfgSetParam {
                req: RequestId(2),
                key: "hb_interval".into(),
                value: "30s".into(),
            },
        );
        w.run_for(SimDuration::from_millis(5));
        let msgs = client.drain();
        assert!(msgs.iter().any(|(_, m)| matches!(
            m,
            KernelMsg::CfgTopology { topology, .. } if **topology == topo
        )));
        assert!(msgs
            .iter()
            .any(|(_, m)| matches!(m, KernelMsg::CfgAck { ok: true, .. })));
    }

    #[test]
    fn witness_reports_adopt_higher_epoch_only() {
        let mut w = ClusterBuilder::new()
            .nodes(2, NodeSpec::default())
            .build::<KernelMsg>();
        let topo = ClusterTopology::uniform(2, 2, 1);
        let cfg = w.spawn(
            NodeId(0),
            Box::new(ConfigService::new(topo, KernelParams::fast())),
        );
        let client = ClientHandle::spawn(&mut w, NodeId(1));
        let report = |val: &str| KernelMsg::CfgSetParam {
            req: RequestId(0),
            key: "regroup_witness".into(),
            value: val.into(),
        };
        client.send(&mut w, cfg, report("2:1"));
        w.run_for(SimDuration::from_millis(5));
        let svc = w.actor_as::<ConfigService>(cfg).unwrap();
        assert_eq!(svc.regroup_witness(), Some((phoenix_proto::PartitionId(2), 1)));
        // A stale duplicate (same epoch) must not roll the view back.
        client.send(&mut w, cfg, report("0:1"));
        client.send(&mut w, cfg, report("garbage"));
        w.run_for(SimDuration::from_millis(5));
        let svc = w.actor_as::<ConfigService>(cfg).unwrap();
        assert_eq!(svc.regroup_witness(), Some((phoenix_proto::PartitionId(2), 1)));
        client.send(&mut w, cfg, report("3:2"));
        w.run_for(SimDuration::from_millis(5));
        let svc = w.actor_as::<ConfigService>(cfg).unwrap();
        assert_eq!(svc.regroup_witness(), Some((phoenix_proto::PartitionId(3), 2)));
    }

    #[test]
    fn shutdown_and_start_node_round_trip() {
        let mut w = ClusterBuilder::new()
            .nodes(4, NodeSpec::default())
            .build::<KernelMsg>();
        let topo = ClusterTopology::uniform(1, 4, 1);
        let cfg = w.spawn(
            NodeId(0),
            Box::new(ConfigService::new(topo, KernelParams::fast())),
        );
        let client = ClientHandle::spawn(&mut w, NodeId(0));
        client.send(
            &mut w,
            cfg,
            KernelMsg::CfgNodeOp {
                req: RequestId(3),
                node: NodeId(3),
                op: NodeOp::Shutdown,
            },
        );
        w.run_for(SimDuration::from_millis(5));
        assert!(!w.node(NodeId(3)).up);
        client.send(
            &mut w,
            cfg,
            KernelMsg::CfgNodeOp {
                req: RequestId(4),
                node: NodeId(3),
                op: NodeOp::Start,
            },
        );
        w.run_for(SimDuration::from_millis(5));
        assert!(w.node(NodeId(3)).up);
        // Node daemons respawned: WD, detector, PPM live on node 3.
        assert_eq!(w.pids_on(NodeId(3)).len(), 3);
        let acks = client
            .drain()
            .into_iter()
            .filter(|(_, m)| matches!(m, KernelMsg::CfgAck { ok: true, .. }))
            .count();
        assert_eq!(acks, 2);
    }

    #[test]
    fn duplicate_node_op_replays_ack_without_reexecuting() {
        let mut w = ClusterBuilder::new()
            .nodes(4, NodeSpec::default())
            .build::<KernelMsg>();
        let topo = ClusterTopology::uniform(1, 4, 1);
        let cfg = w.spawn(
            NodeId(0),
            Box::new(ConfigService::new(topo, KernelParams::fast())),
        );
        let client = ClientHandle::spawn(&mut w, NodeId(0));
        let op = KernelMsg::CfgNodeOp {
            req: RequestId(7),
            node: NodeId(3),
            op: NodeOp::Start,
        };
        // The same request arrives twice (a retry after a lost ack).
        client.send(&mut w, cfg, op.clone());
        client.send(&mut w, cfg, op);
        w.run_for(SimDuration::from_millis(5));
        // Both copies are acked, but the node was started only once: a
        // re-executed start would spawn a second set of daemons.
        let acks = client
            .drain()
            .into_iter()
            .filter(|(_, m)| matches!(m, KernelMsg::CfgAck { ok: true, .. }))
            .count();
        assert_eq!(acks, 2);
        assert_eq!(w.pids_on(NodeId(3)).len(), 3);
        let starts = w.trace().count(|e| {
            matches!(e, phoenix_sim::TraceEvent::Milestone { label: "node-started", .. })
        });
        assert_eq!(starts, 1);
    }
}
