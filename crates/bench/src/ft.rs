//! Fault-tolerance experiment harness: regenerates the paper's Tables 1–3
//! on the paper's testbed shape — "136 nodes in Dawning 4000A with 16
//! computing nodes and 1 server node per partition, so it is divided into
//! 8 partitions. The interval for sending heartbeat ... 30 seconds is set
//! for testing."

use phoenix_kernel::boot::{boot_cluster, PhoenixCluster};
use phoenix_kernel::KernelParams;
use phoenix_proto::{ClusterTopology, KernelMsg};
use phoenix_sim::{
    Diagnosis, Fault, FaultTarget, NicId, Pid, SimDuration, SimTime, TraceEvent, World,
};

/// Which daemon Tables 1–3 inject faults into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Component {
    /// Watch daemon on a computing node (Table 1).
    Wd,
    /// Group service daemon of a partition (Table 2).
    Gsd,
    /// Event service of a partition (Table 3).
    Es,
}

/// The three "unhealthy situations" per component.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    Process,
    Node,
    Network,
}

/// One row of a Table 1–3: seconds per phase.
#[derive(Clone, Debug)]
pub struct FtRow {
    pub component: Component,
    pub kind: FaultKind,
    pub detect_s: f64,
    pub diagnose_s: f64,
    pub recover_s: f64,
    pub sum_s: f64,
}

impl FtRow {
    fn fmt_secs(v: f64) -> String {
        if v == 0.0 {
            "0".to_string()
        } else if v < 0.001 {
            format!("{:.0}us", v * 1e6)
        } else if v < 1.0 {
            format!("{:.2}ms", v * 1e3)
        } else {
            format!("{v:.2}s")
        }
    }

    /// Render like the paper's table rows.
    pub fn render(&self) -> String {
        format!(
            "{:<8} {:>10} {:>12} {:>10} {:>10}",
            format!("{:?}", self.kind),
            Self::fmt_secs(self.detect_s),
            Self::fmt_secs(self.diagnose_s),
            Self::fmt_secs(self.recover_s),
            Self::fmt_secs(self.sum_s),
        )
    }
}

/// Paper-testbed parameters: 8 partitions × 17 nodes, 30 s heartbeats.
pub fn paper_testbed() -> (ClusterTopology, KernelParams) {
    (ClusterTopology::uniform(8, 17, 1), KernelParams::default())
}

/// A smaller testbed for quick runs (same mechanism, less virtual time).
pub fn small_testbed() -> (ClusterTopology, KernelParams) {
    (ClusterTopology::uniform(3, 5, 1), KernelParams::fast())
}

struct Injection {
    fault: Fault,
    /// Trace filters for the three milestones.
    observer: Option<Pid>,
    detect_target: FaultTarget,
    diagnosis: Diagnosis,
}

/// Run one fault-injection experiment and extract the three phase times.
pub fn run_one(
    topology: ClusterTopology,
    params: KernelParams,
    component: Component,
    kind: FaultKind,
    seed: u64,
) -> FtRow {
    let hb = params.ft.hb_interval;
    let (mut world, cluster) = boot_cluster(topology, params, seed);
    // Stabilize for two heartbeat rounds.
    world.run_until(SimTime::ZERO + hb * 2 + SimDuration::from_millis(10));

    let inj = plan_injection(&world, &cluster, component, kind);
    // Inject just after the heartbeat round at 2×interval, as the paper's
    // numbers imply (detecting time ≈ the full interval).
    let t0 = world.now();
    world.apply_fault(inj.fault);
    // Long enough for detection (1 interval) + diagnosis + recovery.
    world.run_for(hb * 2 + SimDuration::from_secs(8));

    extract_row(&world, t0, &inj, component, kind, &cluster)
}

fn plan_injection(
    world: &World<KernelMsg>,
    cluster: &PhoenixCluster,
    component: Component,
    kind: FaultKind,
) -> Injection {
    let _ = world;
    match component {
        Component::Wd => {
            // A computing node of partition 0.
            let node = cluster.topology.partitions[0].compute[0];
            let wd = cluster.directory.node(node).unwrap().wd;
            match kind {
                FaultKind::Process => Injection {
                    fault: Fault::KillProcess(wd),
                    observer: None,
                    detect_target: FaultTarget::Process(wd),
                    diagnosis: Diagnosis::ProcessFailure,
                },
                FaultKind::Node => Injection {
                    fault: Fault::CrashNode(node),
                    observer: None,
                    detect_target: FaultTarget::Process(wd),
                    diagnosis: Diagnosis::NodeFailure,
                },
                FaultKind::Network => Injection {
                    fault: Fault::NicDown(node, NicId(1)),
                    observer: None,
                    detect_target: FaultTarget::Nic(node, NicId(1)),
                    diagnosis: Diagnosis::NetworkFailure,
                },
            }
        }
        Component::Gsd => {
            // Partition 1's GSD; its ring observer is partition 2's GSD.
            let member = cluster.directory.partitions[1];
            let observer = cluster.directory.partitions[2].gsd;
            match kind {
                FaultKind::Process => Injection {
                    fault: Fault::KillProcess(member.gsd),
                    observer: Some(observer),
                    detect_target: FaultTarget::Process(member.gsd),
                    diagnosis: Diagnosis::ProcessFailure,
                },
                FaultKind::Node => Injection {
                    fault: Fault::CrashNode(member.node),
                    observer: Some(observer),
                    detect_target: FaultTarget::Process(member.gsd),
                    diagnosis: Diagnosis::NodeFailure,
                },
                FaultKind::Network => Injection {
                    fault: Fault::NicDown(member.node, NicId(1)),
                    observer: Some(observer),
                    detect_target: FaultTarget::Nic(member.node, NicId(1)),
                    diagnosis: Diagnosis::NetworkFailure,
                },
            }
        }
        Component::Es => {
            let member = cluster.directory.partitions[1];
            let local_gsd = member.gsd;
            match kind {
                FaultKind::Process => Injection {
                    fault: Fault::KillProcess(member.event),
                    observer: Some(local_gsd),
                    detect_target: FaultTarget::Process(member.event),
                    diagnosis: Diagnosis::ProcessFailure,
                },
                FaultKind::Node => Injection {
                    // Same injection as Table 2's node row (ES dies with
                    // its node); recovery is the migrated ES coming up.
                    fault: Fault::CrashNode(member.node),
                    observer: Some(cluster.directory.partitions[2].gsd),
                    detect_target: FaultTarget::Process(member.gsd),
                    diagnosis: Diagnosis::NodeFailure,
                },
                FaultKind::Network => Injection {
                    // Local GSD introspects its own node's NIC (12 µs path).
                    fault: Fault::NicDown(member.node, NicId(2)),
                    observer: Some(local_gsd),
                    detect_target: FaultTarget::Nic(member.node, NicId(2)),
                    diagnosis: Diagnosis::NetworkFailure,
                },
            }
        }
    }
}

fn matches_observer(ev_observer: Pid, want: Option<Pid>) -> bool {
    want.map(|w| w == ev_observer).unwrap_or(true)
}

fn extract_row(
    world: &World<KernelMsg>,
    t0: SimTime,
    inj: &Injection,
    component: Component,
    kind: FaultKind,
    cluster: &PhoenixCluster,
) -> FtRow {
    let detect = world
        .trace()
        .find_after(t0, |e| {
            matches!(e, TraceEvent::FaultDetected { observer, target }
                if *target == inj.detect_target && matches_observer(*observer, inj.observer))
        })
        .map(|r| r.at)
        .unwrap_or_else(|| panic!("no detection for {component:?}/{kind:?}"));
    let diagnose = world
        .trace()
        .find_after(detect, |e| {
            matches!(e, TraceEvent::FaultDiagnosed { observer, diagnosis, .. }
                if *diagnosis == inj.diagnosis && matches_observer(*observer, inj.observer))
        })
        .map(|r| r.at)
        .unwrap_or_else(|| panic!("no diagnosis for {component:?}/{kind:?}"));

    // Recovery milestone depends on the component under test.
    let recover = match (component, kind) {
        // WD node/network and GSD/ES network rows: recovery is a no-op.
        (Component::Wd, FaultKind::Node)
        | (_, FaultKind::Network) => world
            .trace()
            .find_after(diagnose, |e| {
                matches!(
                    e,
                    TraceEvent::Recovered {
                        action: phoenix_sim::RecoveryAction::NoneNeeded,
                        ..
                    }
                )
            })
            .map(|r| r.at)
            .unwrap_or(diagnose),
        (Component::Es, FaultKind::Node) => {
            // The migrated ES announces itself: map pid via ServiceUp.
            let backup = cluster.topology.partitions[1].backups[0];
            let es_pid = world
                .trace()
                .find_after(diagnose, |e| {
                    matches!(e, TraceEvent::ServiceUp { service: "event", node, .. } if *node == backup)
                })
                .and_then(|r| match r.event {
                    TraceEvent::ServiceUp { pid, .. } => Some(pid),
                    _ => None,
                })
                .expect("migrated ES came up");
            world
                .trace()
                .find_after(diagnose, |e| {
                    matches!(e, TraceEvent::Recovered { target: FaultTarget::Process(p), .. } if *p == es_pid)
                })
                .map(|r| r.at)
                .expect("migrated ES recovered")
        }
        _ => world
            .trace()
            .find_after(diagnose, |e| {
                matches!(
                    e,
                    TraceEvent::Recovered {
                        target: FaultTarget::Process(_),
                        ..
                    }
                )
            })
            .map(|r| r.at)
            .expect("component recovered"),
    };

    let detect_s = detect.since(t0).as_secs_f64();
    let diagnose_s = diagnose.since(detect).as_secs_f64();
    let recover_s = recover.since(diagnose).as_secs_f64();
    FtRow {
        component,
        kind,
        detect_s,
        diagnose_s,
        recover_s,
        sum_s: recover.since(t0).as_secs_f64(),
    }
}

/// Regenerate a whole table (three rows) for one component.
pub fn run_table(
    topology: ClusterTopology,
    params: KernelParams,
    component: Component,
) -> Vec<FtRow> {
    [FaultKind::Process, FaultKind::Node, FaultKind::Network]
        .into_iter()
        .enumerate()
        .map(|(i, kind)| {
            run_one(
                topology.clone(),
                params.clone(),
                component,
                kind,
                100 + i as u64,
            )
        })
        .collect()
}

/// Print a table with the paper's column headers.
pub fn print_table(title: &str, rows: &[FtRow]) {
    println!("\n{title}");
    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>10}",
        "Fault", "Detecting", "Diagnosing", "Recovery", "Sum"
    );
    for r in rows {
        println!("{}", r.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full pipeline on the small testbed: sane phase ordering.
    #[test]
    fn small_testbed_wd_process_row() {
        let (topo, params) = small_testbed();
        let row = run_one(topo, params, Component::Wd, FaultKind::Process, 1);
        assert!(row.detect_s > 0.5 && row.detect_s < 1.5);
        assert!(row.diagnose_s < 0.2);
        assert!(row.recover_s < 0.1);
        assert!((row.sum_s - (row.detect_s + row.diagnose_s + row.recover_s)).abs() < 1e-9);
    }

    #[test]
    fn small_testbed_es_table_runs() {
        let (topo, params) = small_testbed();
        let rows = run_table(topo, params, Component::Es);
        assert_eq!(rows.len(), 3);
        // Node row includes migration: slowest recovery.
        let node = rows.iter().find(|r| r.kind == FaultKind::Node).unwrap();
        let net = rows.iter().find(|r| r.kind == FaultKind::Network).unwrap();
        assert!(node.recover_s > 1.0, "migration cost: {}", node.recover_s);
        assert_eq!(net.recover_s, 0.0, "network recovery is free");
    }
}
