//! Reference-counted wire payloads for cheap fan-out.
//!
//! Broadcast-heavy messages carry their bulk behind [`Shared`]: an `Arc`
//! whose clone is a pointer bump, so `do_send` duplication and
//! multi-recipient fan-out (boot directory pushes, membership epochs,
//! bulletin result pages) never deep-copy the payload. The wrapper is
//! wire-transparent — it encodes exactly the bytes its payload would, so
//! swapping `Box<T>`/`Vec<T>` for `Shared<T>` in a message is invisible on
//! the wire — and it memoizes one sizing walk per value, so repeated
//! `wire_size()` calls on the same broadcast payload are O(1) after the
//! first (see [`crate::wire::Wire::fixed_size`]).

use crate::wire::{Reader, Sink, Wire, WireError};
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// Immutable shared payload: `Arc` fan-out plus a memoized encoded size.
pub struct Shared<T> {
    inner: Arc<Inner<T>>,
}

struct Inner<T> {
    value: T,
    /// Encoded size of `value`, computed on first demand. Safe to memoize
    /// because the payload is immutable once wrapped.
    size: OnceLock<usize>,
}

impl<T> Shared<T> {
    pub fn new(value: T) -> Self {
        Shared {
            inner: Arc::new(Inner {
                value,
                size: OnceLock::new(),
            }),
        }
    }

    /// The wrapped value. `Deref` also works; this reads better in matches.
    pub fn get_ref(&self) -> &T {
        &self.inner.value
    }

    /// Take the value out of the wrapper: a move when this is the only
    /// reference (the common case for a freshly decoded message), a clone
    /// only when the payload is genuinely still shared.
    pub fn unwrap_or_clone(self) -> T
    where
        T: Clone,
    {
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner.value,
            Err(arc) => arc.value.clone(),
        }
    }
}

impl<T> From<T> for Shared<T> {
    fn from(value: T) -> Self {
        Shared::new(value)
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        // The whole point: a fan-out clone is a refcount bump.
        Shared {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Deref for Shared<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner.value
    }
}

impl<T: PartialEq> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner.value == other.inner.value
    }
}

impl<T: Eq> Eq for Shared<T> {}

impl<T: fmt::Debug> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.value.fmt(f)
    }
}

impl<T: Default> Default for Shared<T> {
    fn default() -> Self {
        Shared::new(T::default())
    }
}

impl<T: Wire> Wire for Shared<T> {
    fn put<S: Sink>(&self, sink: &mut S) {
        self.inner.value.put(sink)
    }

    fn get(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Shared::new(T::get(reader)?))
    }

    fn fixed_size(&self) -> Option<usize> {
        // One walk per wrapped value, ever: every later `encoded_size` /
        // `encode` of any clone of this payload is a load.
        Some(
            *self
                .inner
                .size
                .get_or_init(|| crate::wire::encoded_size(&self.inner.value)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{decode, encode, encoded_size};

    #[test]
    fn shared_is_wire_transparent() {
        let plain: Vec<u64> = vec![3, 1, 4, 1, 5];
        let shared = Shared::new(plain.clone());
        assert_eq!(encode(&shared), encode(&plain));
        assert_eq!(encoded_size(&shared), encoded_size(&plain));
        let back: Shared<Vec<u64>> = decode(&encode(&plain)).expect("decode");
        assert_eq!(back, shared);
    }

    #[test]
    fn shared_memoizes_size_across_clones() {
        let shared = Shared::new(vec![String::from("alpha"), String::from("beta")]);
        let first = shared.fixed_size().expect("memoized");
        let clone = shared.clone();
        assert_eq!(clone.fixed_size(), Some(first));
        assert_eq!(first, encoded_size(&*shared));
    }

    #[test]
    fn shared_eq_compares_values_across_allocations() {
        let a = Shared::new(vec![1u32, 2, 3]);
        let b = Shared::new(vec![1u32, 2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, Shared::new(vec![9u32]));
    }
}
