//! Minimal wall-clock timing harness for the `benches/` targets.
//!
//! The workspace builds with no external dependencies, so the bench
//! targets use this hand-rolled loop instead of Criterion: warm up once,
//! run a fixed number of samples, and print min/mean/max per iteration.
//! The output is line-oriented (`group/name: mean=… min=… max=…`) so runs
//! can be diffed or grepped; statistical rigor is traded for zero deps,
//! which is fine for the relative comparisons these benches make.

use std::time::Instant;

/// Result of one benchmark: per-iteration wall times in seconds.
#[derive(Clone, Debug)]
pub struct Sample {
    pub name: String,
    pub iters: usize,
    pub min_s: f64,
    pub mean_s: f64,
    pub max_s: f64,
}

impl Sample {
    fn fmt_s(s: f64) -> String {
        if s >= 1.0 {
            format!("{s:.3}s")
        } else if s >= 1e-3 {
            format!("{:.3}ms", s * 1e3)
        } else {
            format!("{:.1}µs", s * 1e6)
        }
    }
}

impl std::fmt::Display for Sample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: mean={} min={} max={} ({} iters)",
            self.name,
            Sample::fmt_s(self.mean_s),
            Sample::fmt_s(self.min_s),
            Sample::fmt_s(self.max_s),
            self.iters
        )
    }
}

/// Time `f` over `iters` samples (plus one untimed warm-up) and print the
/// summary line. The closure's return value is consumed with
/// [`std::hint::black_box`] so the work is not optimized away.
pub fn bench<T>(group: &str, name: &str, iters: usize, mut f: impl FnMut() -> T) -> Sample {
    assert!(iters >= 1);
    std::hint::black_box(f()); // warm-up
    let mut times = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        times.push(t0.elapsed().as_secs_f64());
    }
    let min_s = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_s = times.iter().cloned().fold(0.0f64, f64::max);
    let mean_s = times.iter().sum::<f64>() / times.len() as f64;
    let sample = Sample {
        name: format!("{group}/{name}"),
        iters,
        min_s,
        mean_s,
        max_s,
    };
    println!("{sample}");
    sample
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut calls = 0u32;
        let s = bench("t", "noop", 3, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 4, "warm-up + 3 samples");
        assert_eq!(s.iters, 3);
        assert!(s.min_s <= s.mean_s && s.mean_s <= s.max_s);
    }

    #[test]
    fn display_uses_sensible_units() {
        let s = Sample {
            name: "g/n".into(),
            iters: 1,
            min_s: 2e-6,
            mean_s: 2e-3,
            max_s: 2.0,
        };
        let line = s.to_string();
        assert!(line.contains("µs") && line.contains("ms") && line.contains("2.000s"));
    }
}
