//! Flight recorder: bounded per-node rings of recently completed spans.
//!
//! After a fault-injection run the interesting question is "what was the
//! kernel doing on node N right before/after the fault" — the recorder
//! keeps the last `capacity` completed spans per node and evicts the
//! oldest, black-box style. BTreeMap keyed by node id keeps dump order
//! deterministic.

use std::collections::{BTreeMap, VecDeque};

use crate::registry::SpanId;

/// A completed span as stored in the flight recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub id: SpanId,
    /// `SpanId::NONE` for root spans.
    pub parent: SpanId,
    pub path: &'static str,
    pub service: &'static str,
    pub node: u32,
    pub start_ns: u64,
    pub end_ns: u64,
    /// True when the span was abandoned (its node died) rather than
    /// closed by the instrumented code; `end_ns` is the abort time.
    pub aborted: bool,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[derive(Clone, Debug)]
pub struct FlightRecorder {
    capacity: usize,
    rings: BTreeMap<u32, VecDeque<SpanRecord>>,
    evicted: u64,
}

/// Default per-node ring capacity.
pub const DEFAULT_CAPACITY: usize = 1024;

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder { capacity: capacity.max(1), rings: BTreeMap::new(), evicted: 0 }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total spans evicted across all nodes since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    pub fn push(&mut self, record: SpanRecord) {
        let ring = self.rings.entry(record.node).or_default();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.evicted += 1;
        }
        ring.push_back(record);
    }

    /// Recent spans for one node, oldest first.
    pub fn node(&self, node: u32) -> impl Iterator<Item = &SpanRecord> {
        self.rings.get(&node).into_iter().flatten()
    }

    /// All retained spans, grouped by node id ascending, oldest first
    /// within a node.
    pub fn iter(&self) -> impl Iterator<Item = &SpanRecord> {
        self.rings.values().flatten()
    }

    pub fn len(&self) -> usize {
        self.rings.values().map(|r| r.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge another recorder's rings into this one. Per node, the union
    /// of both rings is interleaved by `start_ns` (stable: on ties, this
    /// recorder's spans sort before `other`'s) and then re-bounded to
    /// `self.capacity`, evicting from the oldest end exactly as `push`
    /// would have. `other`'s eviction count carries over so the merged
    /// total still answers "how many spans were lost to the ring bound".
    pub fn merge(&mut self, other: &FlightRecorder) {
        for (&node, ring) in &other.rings {
            let ours = self.rings.entry(node).or_default();
            ours.extend(ring.iter().cloned());
            let mut all: Vec<SpanRecord> = std::mem::take(ours).into();
            all.sort_by_key(|r| r.start_ns);
            let over = all.len().saturating_sub(self.capacity);
            if over > 0 {
                all.drain(..over);
                self.evicted += over as u64;
            }
            *ours = all.into();
        }
        self.evicted += other.evicted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32, id: u64, start: u64) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: SpanId::NONE,
            path: "p",
            service: "s",
            node,
            start_ns: start,
            end_ns: start + 10,
            aborted: false,
        }
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut fr = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            fr.push(rec(0, i + 1, i * 100));
        }
        let kept: Vec<u64> = fr.node(0).map(|r| r.id.0).collect();
        assert_eq!(kept, vec![3, 4, 5]);
        assert_eq!(fr.evicted(), 2);
        assert_eq!(fr.len(), 3);
    }

    #[test]
    fn rings_are_per_node() {
        let mut fr = FlightRecorder::with_capacity(2);
        fr.push(rec(1, 1, 0));
        fr.push(rec(2, 2, 0));
        fr.push(rec(1, 3, 50));
        fr.push(rec(1, 4, 90));
        assert_eq!(fr.node(1).count(), 2, "node 1 ring evicted independently");
        assert_eq!(fr.node(2).count(), 1);
        let all: Vec<u32> = fr.iter().map(|r| r.node).collect();
        assert_eq!(all, vec![1, 1, 2], "dump order: node id ascending");
    }

    #[test]
    fn merge_interleaves_by_start_and_rebounds() {
        let mut a = FlightRecorder::with_capacity(3);
        a.push(rec(7, 1, 100));
        a.push(rec(7, 2, 300));
        let mut b = FlightRecorder::with_capacity(3);
        b.push(rec(7, 3, 200));
        b.push(rec(7, 4, 400));
        b.push(rec(8, 5, 50));
        a.merge(&b);
        // Node 7 union is 4 spans; capacity 3 evicts the oldest (start 100).
        let kept: Vec<u64> = a.node(7).map(|r| r.start_ns).collect();
        assert_eq!(kept, vec![200, 300, 400]);
        assert_eq!(a.node(8).count(), 1);
        assert_eq!(a.evicted(), 1);
    }

    #[test]
    fn merge_ties_keep_self_before_other() {
        let mut a = FlightRecorder::with_capacity(8);
        a.push(rec(1, 10, 500));
        let mut b = FlightRecorder::with_capacity(8);
        b.push(rec(1, 20, 500));
        a.merge(&b);
        let ids: Vec<u64> = a.node(1).map(|r| r.id.0).collect();
        assert_eq!(ids, vec![10, 20], "stable: self's span first on tied start_ns");
    }
}
