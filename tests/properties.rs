//! Property-style tests over the core data structures and invariants of
//! the reproduction. Each property is exercised over many seeded-random
//! cases drawn from the workspace's own [`SimRng`] — deterministic,
//! offline, and reproducible by seed.

use phoenix::hpl::{lu_factor, lu_solve, vec_norm_inf, Matrix, DEFAULT_NB};
use phoenix::kernel::security::{keyed_hash, xor_stream};
use phoenix::proto::{encoded_size, ClusterTopology, EventFilter, EventType, JobSpec};
use phoenix::pws::{pick, PolicyCtx, PolicyKind};
use phoenix::sim::{SimDuration, SimRng, SimTime};
use std::collections::HashMap;

const CASES: usize = 128;

// ---- virtual time ----------------------------------------------------------

#[test]
fn time_addition_is_monotone() {
    let mut rng = SimRng::seed_from_u64(0x7141);
    for _ in 0..CASES {
        let base = rng.gen_range(0..u64::MAX / 4);
        let d = rng.gen_range(0..u64::MAX / 4);
        let t = SimTime(base);
        let later = t + SimDuration(d);
        assert!(later >= t);
        assert_eq!(later.since(t), SimDuration(d));
    }
}

#[test]
fn duration_sub_saturates() {
    let mut rng = SimRng::seed_from_u64(0xD0_0D);
    for _ in 0..CASES {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let d = SimDuration(a).saturating_sub(SimDuration(b));
        assert_eq!(d.as_nanos(), a.saturating_sub(b));
    }
}

// ---- wire-size estimator ---------------------------------------------------

#[test]
fn encoded_size_grows_with_string_payload() {
    let mut rng = SimRng::seed_from_u64(0x5712);
    for _ in 0..CASES {
        let s: String = (0..rng.gen_range(0usize..64)).map(|_| 'x').collect();
        let extra: String = (0..rng.gen_range(1usize..=16)).map(|_| 'y').collect();
        let small = encoded_size(&s);
        let big = encoded_size(&format!("{s}{extra}"));
        assert!(big > small);
    }
}

#[test]
fn encoded_size_of_vec_is_linear() {
    let mut rng = SimRng::seed_from_u64(0x11EC);
    for _ in 0..CASES {
        let v: Vec<u32> = (0..rng.gen_range(0usize..100)).map(|_| rng.next_u64() as u32).collect();
        assert_eq!(encoded_size(&v), 8 + 4 * v.len());
    }
}

// ---- topology --------------------------------------------------------------

#[test]
fn uniform_topology_partitions_all_nodes() {
    let mut rng = SimRng::seed_from_u64(0x7090);
    for _ in 0..32 {
        let parts = rng.gen_range(1usize..8);
        let per = rng.gen_range(2usize..12);
        let t = ClusterTopology::uniform(parts, per, 1);
        assert_eq!(t.node_count(), parts * per);
        // Every node id in range belongs to exactly one partition.
        for i in 0..(parts * per) as u32 {
            assert!(t.partition_of(phoenix::sim::NodeId(i)).is_some());
        }
        // And ids outside do not.
        assert!(t.partition_of(phoenix::sim::NodeId((parts * per) as u32)).is_none());
    }
}

// ---- security primitives ---------------------------------------------------

#[test]
fn xor_stream_is_an_involution() {
    let mut rng = SimRng::seed_from_u64(0x5EC1);
    for _ in 0..CASES {
        let key = rng.next_u64();
        let mut data: Vec<u8> =
            (0..rng.gen_range(0usize..256)).map(|_| rng.next_u64() as u8).collect();
        let orig = data.clone();
        xor_stream(key, &mut data);
        xor_stream(key, &mut data);
        assert_eq!(data, orig);
    }
}

#[test]
fn keyed_hash_separates_keys() {
    let mut rng = SimRng::seed_from_u64(0x5EC2);
    for _ in 0..CASES {
        let a = rng.next_u64();
        let b = rng.next_u64();
        if a == b {
            continue;
        }
        let data: Vec<u8> =
            (0..rng.gen_range(1usize..64)).map(|_| rng.next_u64() as u8).collect();
        // Not a cryptographic claim — just no trivial key-independence.
        assert_ne!(keyed_hash(a, &data), keyed_hash(b, &data));
    }
}

// ---- event filtering -------------------------------------------------------

#[test]
fn filter_types_accept_exactly_their_types() {
    let mut rng = SimRng::seed_from_u64(0xF117);
    for _ in 0..CASES {
        let codes: Vec<u16> =
            (0..rng.gen_range(0usize..5)).map(|_| rng.gen_range(0u16..8)).collect();
        let probe = rng.gen_range(0u16..8);
        let types: Vec<EventType> = codes.iter().map(|&c| EventType::Custom(c)).collect();
        let f = EventFilter::Types(types);
        let ev = phoenix::proto::Event::new(
            EventType::Custom(probe),
            phoenix::sim::NodeId(0),
            phoenix::proto::EventPayload::None,
        );
        assert_eq!(f.accepts(&ev), codes.contains(&probe));
    }
}

// ---- scheduling policies ---------------------------------------------------

#[test]
fn picked_job_always_fits() {
    let mut rng = SimRng::seed_from_u64(0x9011C4);
    for _ in 0..CASES {
        let sizes: Vec<u32> =
            (0..rng.gen_range(1usize..12)).map(|_| rng.gen_range(1u32..10)).collect();
        let free = rng.gen_range(0usize..12);
        let policy = [
            PolicyKind::Fifo,
            PolicyKind::Priority,
            PolicyKind::FairShare,
            PolicyKind::Backfill,
        ][rng.gen_range(0usize..4)];
        let queued: Vec<JobSpec> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| JobSpec::simple(i as u64, "u", "p", n))
            .collect();
        let usage = HashMap::new();
        let ctx = PolicyCtx { free_nodes: free, usage: &usage };
        if let Some(i) = pick(policy, &queued, &ctx) {
            assert!(i < queued.len());
            assert!(queued[i].nodes as usize <= free);
            // Strict FIFO may only ever pick the head.
            if policy == PolicyKind::Fifo {
                assert_eq!(i, 0);
            }
        } else if policy == PolicyKind::Backfill {
            // Backfill returning None means nothing fits.
            assert!(queued.iter().all(|j| j.nodes as usize > free));
        }
    }
}

// ---- LU factorization ------------------------------------------------------

#[test]
fn lu_solves_diagonally_dominant_systems() {
    let mut rng = SimRng::seed_from_u64(0x10_F4C7);
    for _ in 0..24 {
        let n = rng.gen_range(2usize..24);
        let seed = rng.gen_range(0u64..500);
        let mut a = Matrix::random(n, seed);
        // Make it comfortably non-singular.
        for i in 0..n {
            let v = a.get(i, i) + n as f64;
            a.set(i, i, v);
        }
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let b = a.matvec(&x_true);
        let mut lu = a.clone();
        let r = lu_factor(&mut lu, 1, DEFAULT_NB.min(n));
        let x = lu_solve(&lu, &r.pivots, &b);
        let err: Vec<f64> = x.iter().zip(&x_true).map(|(p, q)| p - q).collect();
        assert!(vec_norm_inf(&err) < 1e-8, "residual too large: {:?}", vec_norm_inf(&err));
    }
}

#[test]
fn lu_parallel_equals_sequential() {
    let mut rng = SimRng::seed_from_u64(0x10_9A6);
    for _ in 0..16 {
        let n = rng.gen_range(4usize..32);
        let seed = rng.gen_range(0u64..100);
        let a = Matrix::random(n, seed);
        let mut s = a.clone();
        let mut p = a.clone();
        let rs = lu_factor(&mut s, 1, 8);
        let rp = lu_factor(&mut p, 3, 8);
        assert_eq!(rs.pivots, rp.pivots);
        for (x, y) in s.data.iter().zip(p.data.iter()) {
            assert_eq!(x, y);
        }
    }
}

// ---- determinism of the whole simulated kernel (three seeds suffice;
// each case is expensive) ----------------------------------------------------

#[test]
fn booted_cluster_is_deterministic() {
    use phoenix::kernel::boot::boot_and_stabilize;
    use phoenix::kernel::KernelParams;
    for seed in [1u64, 7, 1234] {
        let run = |seed: u64| {
            let (mut w, _c) = boot_and_stabilize(
                ClusterTopology::uniform(2, 4, 1),
                KernelParams::fast(),
                seed,
            );
            w.run_for(SimDuration::from_secs(5));
            (
                w.metrics().total.sent,
                w.metrics().total.sent_bytes,
                w.metrics().events_processed,
            )
        };
        assert_eq!(run(seed), run(seed), "seed {seed} diverged");
    }
}
