//! Criterion benches for the fault-tolerance pipeline (Tables 1–3
//! machinery): how fast the simulator executes a full failure →
//! detection → diagnosis → recovery cycle, and how the virtual-time sum
//! tracks the heartbeat interval (the paper's Sec 5.1 claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phoenix_bench::ft::{run_one, small_testbed, Component, FaultKind};
use phoenix_kernel::KernelParams;
use phoenix_proto::ClusterTopology;
use phoenix_sim::SimDuration;

fn bench_pipelines(c: &mut Criterion) {
    let mut g = c.benchmark_group("ft_pipeline");
    g.sample_size(10);
    for (component, name) in [
        (Component::Wd, "wd"),
        (Component::Gsd, "gsd"),
        (Component::Es, "es"),
    ] {
        g.bench_function(BenchmarkId::new("process_fault", name), |b| {
            b.iter(|| {
                let (topo, params) = small_testbed();
                run_one(topo, params, component, FaultKind::Process, 1)
            })
        });
    }
    g.finish();
}

/// The Sec 5.1 claim: the failure-handling sum is dominated by (and
/// configurable through) the heartbeat interval. Criterion measures the
/// wall cost of verifying it at three intervals.
fn bench_interval_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("ft_sum_vs_interval");
    g.sample_size(10);
    for interval_ms in [500u64, 1_000, 2_000] {
        g.bench_function(BenchmarkId::from_parameter(interval_ms), |b| {
            b.iter(|| {
                let mut params = KernelParams::fast();
                params.ft.hb_interval = SimDuration::from_millis(interval_ms);
                let row = run_one(
                    ClusterTopology::uniform(2, 4, 1),
                    params,
                    Component::Wd,
                    FaultKind::Process,
                    7,
                );
                // Shape check rides along with the measurement.
                assert!(row.sum_s < 2.0 * interval_ms as f64 / 1_000.0 + 1.0);
                row
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipelines, bench_interval_sweep);
criterion_main!(benches);
