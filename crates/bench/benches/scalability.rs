//! Criterion benches for Sec 5.3 / Sec 4.3: simulator throughput of the
//! monitoring stack as the cluster grows, and the flat-vs-partitioned
//! membership ablation (the paper's key scalability design decision).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phoenix_bench::scale::{membership_compare, monitor_run};
use phoenix_kernel::{FtParams, KernelParams};

fn bench_monitoring(c: &mut Criterion) {
    let mut g = c.benchmark_group("monitoring_scale");
    g.sample_size(10);
    for partitions in [2usize, 4, 8] {
        let nodes = partitions * 16;
        g.throughput(Throughput::Elements(nodes as u64));
        g.bench_function(BenchmarkId::from_parameter(nodes), |b| {
            b.iter(|| monitor_run(partitions, 16, 10, KernelParams::default(), 5))
        });
    }
    g.finish();
}

fn bench_membership(c: &mut Criterion) {
    let mut g = c.benchmark_group("membership_ablation");
    g.sample_size(10);
    for nodes in [32usize, 64] {
        g.bench_function(BenchmarkId::new("flat_vs_partitioned", nodes), |b| {
            b.iter(|| {
                let p = membership_compare(nodes, FtParams::fast(), 4, 3);
                assert!(p.ratio > 1.0, "partitioned must win: {p:?}");
                p
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_monitoring, bench_membership);
criterion_main!(benches);
