//! # phoenix-kernel — the Fire Phoenix cluster OS kernel
//!
//! The paper's contribution: "a minimum set of cluster core functions with
//! scalability and fault-tolerance support" (paper Sec 1). The kernel
//! stack (paper Fig 2) maps onto modules as follows:
//!
//! | Paper component | Module |
//! |---|---|
//! | Configuration service | [`config`] |
//! | Security service | [`security`] |
//! | Parallel process management | [`ppm`] |
//! | Detector services | [`detect`] (+ heartbeat analysis in [`group`]) |
//! | Group service (GSD/WD, meta-group ring) | [`group`] |
//! | Checkpoint service | [`checkpoint`] |
//! | Event service | [`event`] |
//! | Data bulletin service | [`bulletin`] |
//! | System construction tool | [`boot`] |
//!
//! Build a whole cluster with [`boot::boot_cluster`] and interact with it
//! through [`client::ClientHandle`] — the same message interfaces the
//! paper's user environments (GridView, Phoenix-PWS) are built on.

pub mod boot;
pub mod bulletin;
pub mod checkpoint;
pub mod client;
pub mod config;
pub mod detect;
pub mod event;
pub mod group;
pub mod nic_health;
pub mod params;
pub mod ppm;
pub mod regroup;
pub mod rpc;
pub mod security;
pub mod slow_detect;

pub use boot::{
    boot_and_stabilize, boot_cluster, boot_cluster_custom, boot_cluster_with_net, boot_onto,
    PhoenixCluster,
};
pub use client::ClientHandle;
pub use nic_health::{HealthTransition, NicHealth, NicHealthParams};
pub use params::{FtParams, KernelParams};
pub use regroup::{Regroup, RegroupParams, Verdict};
pub use rpc::{DedupWindow, Retrier, RetryPolicy};
pub use slow_detect::{SlowDetect, SlowDetectParams, SlowTransition, Verdict as SlowVerdict};
