//! # phoenix-proto — the Fire Phoenix wire protocol
//!
//! Shared vocabulary of the reproduction: protocol identifiers, event and
//! bulletin types, job descriptions, security principals, the cluster
//! topology, and the [`KernelMsg`] enum every service speaks. Also provides
//! [`wire::encoded_size`], a dependency-free byte counter used to charge
//! realistic wire sizes to the simulated network.

pub mod bulletin;
pub mod checkpoint;
pub mod event;
pub mod ids;
pub mod job;
pub mod msg;
pub mod security;
pub mod shared;
pub mod topology;
pub mod view;
pub mod wire;

pub use bulletin::{AppState, AppStatus, BulletinEntry, BulletinKey, BulletinQuery, BulletinValue};
pub use checkpoint::CheckpointData;
pub use event::{ConsumerReg, Event, EventFilter, EventPayload, EventType};
pub use ids::{JobId, PartitionId, RequestId, ServiceKind, UserId};
pub use job::{JobSpec, JobState, TaskSpec};
pub use msg::{KernelMsg, MemberInfo, NodeOp, NodeServices, QueueRow, ServiceDirectory};
pub use security::{Action, AuthToken, Role};
pub use shared::Shared;
pub use topology::{ClusterTopology, PartitionSpec};
pub use view::KernelMsgView;
pub use wire::{encoded_size, Wire, WireVariants};
