//! Regenerates the paper's **Sec 5.1 headline claim**: "the sum of
//! detecting time, diagnosing time and recovery time is almost equal to
//! the interval of sending heartbeat, while the interval for sending
//! heartbeat can be configured as system parameter."
//!
//! Sweeps the heartbeat interval and prints the WD process-fault pipeline
//! at each setting; the sum column should track the interval column.

use phoenix_bench::ft::{run_one, Component, FaultKind};
use phoenix_kernel::KernelParams;
use phoenix_proto::ClusterTopology;
use phoenix_sim::SimDuration;

fn main() {
    println!("Sec 5.1: failure-handling sum vs configured heartbeat interval");
    println!("(WD process fault, 3 partitions x 5 nodes)\n");
    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>10} {:>8}",
        "interval", "detect", "diagnose", "recover", "sum", "sum/int"
    );
    for secs in [5u64, 10, 20, 30, 60] {
        let mut params = KernelParams::default();
        params.ft.hb_interval = SimDuration::from_secs(secs);
        let row = run_one(
            ClusterTopology::uniform(3, 5, 1),
            params,
            Component::Wd,
            FaultKind::Process,
            400 + secs,
        );
        println!(
            "{:>9}s {:>9.2}s {:>11.3}s {:>9.2}s {:>9.2}s {:>7.2}x",
            secs,
            row.detect_s,
            row.diagnose_s,
            row.recover_s,
            row.sum_s,
            row.sum_s / secs as f64
        );
    }
    println!("\nThe sum tracks the interval (ratio → 1.0 as the interval grows):");
    println!("fault-handling latency is a configuration choice, not a system constant —");
    println!("exactly the paper's conclusion for Tables 1–3.");
}
