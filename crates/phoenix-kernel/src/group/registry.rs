//! The respawn-factory registry.
//!
//! Paper Sec 4.4: services "call the interface of group service to create
//! service group and register policies of how to deal with faults." In
//! this reproduction the *policy* is a factory closure: given the respawn
//! context (node, partition, current membership, recovery action), it
//! builds a replacement actor. GSDs share one registry; the simulation is
//! single-threaded, so `Rc<RefCell<…>>` is the right tool.

use crate::params::KernelParams;
use phoenix_proto::{KernelMsg, MemberInfo, PartitionId, ServiceKind};
use phoenix_sim::{Actor, NodeId, Pid, RecoveryAction};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Everything a factory needs to rebuild a service instance.
#[derive(Clone, Debug)]
pub struct RespawnArgs {
    pub kind: ServiceKind,
    pub partition: PartitionId,
    /// Node the replacement will run on.
    pub node: NodeId,
    /// The supervising GSD.
    pub gsd: Pid,
    /// The partition's (possibly freshly spawned) checkpoint instance.
    pub checkpoint: Pid,
    /// Current meta-group membership (for federation peer lists).
    pub members: Vec<MemberInfo>,
    pub action: RecoveryAction,
    pub params: KernelParams,
}

/// A respawn recipe.
pub type Factory = Box<dyn FnMut(&RespawnArgs) -> Box<dyn Actor<KernelMsg>>>;

/// Factory registry shared by every GSD (and by user environments that
/// want their services supervised).
#[derive(Default)]
pub struct FactoryRegistry {
    map: HashMap<String, Factory>,
}

impl FactoryRegistry {
    /// Register (or replace) a recipe under `key`.
    pub fn register(&mut self, key: impl Into<String>, factory: Factory) {
        self.map.insert(key.into(), factory);
    }

    /// Build a replacement actor, if a recipe exists.
    pub fn build(&mut self, key: &str, args: &RespawnArgs) -> Option<Box<dyn Actor<KernelMsg>>> {
        self.map.get_mut(key).map(|f| f(args))
    }

    /// Is a recipe registered?
    pub fn contains(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Number of registered recipes.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no recipes are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Shared handle to the registry.
pub type SharedRegistry = Rc<RefCell<FactoryRegistry>>;

/// Create an empty shared registry.
pub fn shared_registry() -> SharedRegistry {
    Rc::new(RefCell::new(FactoryRegistry::default()))
}

/// Conventional factory keys for the per-partition kernel services.
pub fn kernel_factory_key(kind: ServiceKind, partition: PartitionId) -> String {
    match kind {
        ServiceKind::Event => format!("event:p{}", partition.0),
        ServiceKind::DataBulletin => format!("bulletin:p{}", partition.0),
        ServiceKind::Checkpoint => format!("checkpoint:p{}", partition.0),
        other => format!("{}:p{}", other.label(), partition.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_sim::Ctx;

    struct Nop;
    impl Actor<KernelMsg> for Nop {
        fn on_message(&mut self, _: &mut Ctx<'_, KernelMsg>, _: Pid, _: KernelMsg) {}
    }

    fn args() -> RespawnArgs {
        RespawnArgs {
            kind: ServiceKind::Event,
            partition: PartitionId(0),
            node: NodeId(0),
            gsd: Pid(1),
            checkpoint: Pid(2),
            members: vec![],
            action: RecoveryAction::RestartedInPlace,
            params: KernelParams::fast(),
        }
    }

    #[test]
    fn register_and_build() {
        let reg = shared_registry();
        reg.borrow_mut()
            .register("event:p0", Box::new(|_| Box::new(Nop)));
        assert!(reg.borrow().contains("event:p0"));
        assert_eq!(reg.borrow().len(), 1);
        let built = reg.borrow_mut().build("event:p0", &args());
        assert!(built.is_some());
        assert!(reg.borrow_mut().build("missing", &args()).is_none());
    }

    #[test]
    fn keys_are_per_partition() {
        assert_ne!(
            kernel_factory_key(ServiceKind::Event, PartitionId(0)),
            kernel_factory_key(ServiceKind::Event, PartitionId(1))
        );
        assert_eq!(
            kernel_factory_key(ServiceKind::DataBulletin, PartitionId(3)),
            "bulletin:p3"
        );
    }
}
