//! Fail-slow sweep: gray-failure detection, quarantine, and handoff.
//!
//! `quorum_sweep` and `partition_sweep` cover fail-stop: a node is up or
//! it is down, and the regroup machinery votes on which side lives. This
//! bench drives the orthogonal gray-failure axis against the
//! `KernelParams::fast_slow()` profile: a node that answers *every*
//! probe, only `factor` times slower than its own baseline. The tentpole
//! claims under test:
//!
//! * **slow is never dead** — across every slowness factor, zero
//!   `NodeFailure` diagnoses of the slowed node (the fail-stop pipeline
//!   must not be fooled by stretched RTTs);
//! * **slow is acted on** — the detector suspects the node, the leader
//!   quarantines its partition, and the resident GSD drains to a healthy
//!   home node;
//! * **a slow leader hands off** — when the victim hosts the meta
//!   leader, the princess-observed suspicion plus the leader's own
//!   gray-inversion corroboration produce exactly one yield, never a
//!   dead diagnosis and never two leaders;
//! * **recovery is clean** — after the slowness clears, the quarantine
//!   empties everywhere and roles reconverge to one GSD per partition
//!   with a single leader.
//!
//! Two victim shapes per seed × factor on the 3 × 5-node testbed:
//! **member-gray** slows the p2 partition server; **leader-gray** slows
//! the p0 server hosting the meta leader. Factors sweep 6× – 48×,
//! i.e. from "double the `slow_after` bar" up to near the `u16`
//! permille envelope exercised by `chaos --slow`.
//!
//! Measured per episode from trace milestones:
//!
//! * **suspect** — `SlowNode` → first `slow-suspected` of the victim;
//! * **quarantine** — `SlowNode` → first non-empty `slow-quarantine`;
//! * **drain** — `SlowNode` → `slow-drain` of the victim's partition;
//! * **yield** — `SlowNode` → `slow-leader-yield` (leader shape only);
//! * **reinstate** — `SlowClear` → every live GSD reports an empty
//!   quarantine view and roles have reconverged.
//!
//! Results go to `results/BENCH_slow.json` (sections `slow`, `curve`,
//! `episodes`); exit status is non-zero on any dead diagnosis of a
//! slow-but-alive node, an undrained member episode, an unyielded
//! leader episode, or an unreinstated recovery — `scripts/verify.sh`
//! gates on all four.
//!
//! ```text
//! slow_sweep [--small] [--serial]
//! ```

use std::path::PathBuf;

use phoenix_bench::sweep::run_sweep;
use phoenix_kernel::boot::boot_and_stabilize;
use phoenix_kernel::group::Gsd;
use phoenix_kernel::{KernelParams, PhoenixCluster};
use phoenix_proto::{ClusterTopology, KernelMsg};
use phoenix_sim::{
    Diagnosis, Fault, FaultTarget, NodeId, Pid, SimDuration, SimTime, TraceEvent, World,
};
use phoenix_telemetry::Json;

fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

/// Same testbed as `chaos --slow`: 3 partitions × 5 nodes, fail-slow
/// detector enabled on top of the fast fail-stop profile.
fn boot(seed: u64) -> (World<KernelMsg>, PhoenixCluster) {
    boot_and_stabilize(ClusterTopology::uniform(3, 5, 1), KernelParams::fast_slow(), seed)
}

/// Every live GSD: (pid, node, partition it serves, role name).
fn gsd_views(w: &World<KernelMsg>) -> Vec<(Pid, u32, u32, &'static str)> {
    let mut out = Vec::new();
    for node in 0..w.node_count() {
        for pid in w.pids_on(NodeId(node as u32)) {
            if let Some(g) = w.actor_as::<Gsd>(pid) {
                out.push((pid, node as u32, g.partition_id().0, g.role_name()));
            }
        }
    }
    out
}

/// Post-clear steady state: one live GSD per partition, exactly one
/// leader, nobody frozen, and every live GSD's quarantine view empty.
fn recovered(w: &World<KernelMsg>, cluster: &PhoenixCluster) -> bool {
    let views = gsd_views(w);
    let parts = cluster.topology.partitions.len();
    (0..parts).all(|p| views.iter().filter(|(_, _, part, _)| *part == p as u32).count() == 1)
        && views.iter().filter(|(_, _, _, r)| *r == "leader").count() == 1
        && views.iter().all(|(_, _, _, r)| *r != "frozen")
        && views.iter().all(|&(pid, ..)| {
            w.actor_as::<Gsd>(pid).map(|g| g.quarantine_view().1.is_empty()).unwrap_or(true)
        })
}

/// Dead diagnoses of the victim — the zero-tolerance counter: the node
/// answered every probe, so any `NodeFailure` verdict is a false kill.
fn dead_diagnoses(w: &World<KernelMsg>, node: NodeId) -> usize {
    w.trace().count(|e| {
        matches!(
            e,
            TraceEvent::FaultDiagnosed {
                target: FaultTarget::Node(n),
                diagnosis: Diagnosis::NodeFailure,
                ..
            } if *n == node
        )
    })
}

/// Milliseconds from `from` to the first matching milestone after it.
fn milestone_ms<F>(w: &World<KernelMsg>, from: SimTime, pred: F) -> Option<f64>
where
    F: FnMut(&TraceEvent) -> bool,
{
    w.trace().find_after(from, pred).map(|r| r.at.since(from).as_nanos() as f64 / 1e6)
}

/// Which node gets slowed: a plain partition server, or the one hosting
/// the meta leader (forcing the yield path on top of the quarantine
/// path).
struct Shape {
    name: &'static str,
    victim_part: usize,
    is_leader: bool,
}

const SHAPES: [Shape; 2] = [
    Shape { name: "member-gray", victim_part: 2, is_leader: false },
    Shape { name: "leader-gray", victim_part: 0, is_leader: true },
];

struct Episode {
    suspect_ms: Option<f64>,
    quarantine_ms: Option<f64>,
    drain_ms: Option<f64>,
    yield_ms: Option<f64>,
    reinstate_ms: Option<f64>,
    false_dead: usize,
    relocated: bool,
}

/// One SlowNode → detect → quarantine → drain (→ yield) → SlowClear →
/// reinstate cycle at the given slowness factor.
fn episode(seed: u64, factor_permille: u16, shape: &Shape) -> Episode {
    let (mut w, cluster) = boot(seed);
    w.run_for(SimDuration::from_secs(3));

    let victim = cluster.topology.partitions[shape.victim_part].server;
    let part = shape.victim_part as f64;
    let t_slow = w.now();
    w.apply_fault(Fault::SlowNode { node: victim, factor_permille });

    // Detection phase: run until the victim's partition has drained (the
    // last milestone of the reaction chain) or the window closes.
    while w.now().since(t_slow) < SimDuration::from_secs(25) {
        w.run_for(SimDuration::from_millis(100));
        let drained = w.trace().find_after(t_slow, |e| {
            matches!(e, TraceEvent::Milestone { label: "slow-drain", value } if *value == part)
        });
        if drained.is_some() {
            // Give the drained clone a beat to land before clearing.
            w.run_for(SimDuration::from_secs(2));
            break;
        }
    }

    let suspect_ms = milestone_ms(&w, t_slow, |e| {
        matches!(
            e,
            TraceEvent::Milestone { label: "slow-suspected", value } if *value == victim.0 as f64
        )
    });
    let quarantine_ms = milestone_ms(&w, t_slow, |e| {
        matches!(e, TraceEvent::Milestone { label: "slow-quarantine", value } if *value > 0.0)
    });
    let drain_ms = milestone_ms(&w, t_slow, |e| {
        matches!(e, TraceEvent::Milestone { label: "slow-drain", value } if *value == part)
    });
    let yield_ms = milestone_ms(&w, t_slow, |e| {
        matches!(e, TraceEvent::Milestone { label: "slow-leader-yield", value } if *value == part)
    });

    let t_clear = w.now();
    w.apply_fault(Fault::SlowClear(victim));
    let mut reinstate_ms = None;
    while w.now().since(t_clear) < SimDuration::from_secs(40) {
        w.run_for(SimDuration::from_millis(100));
        if recovered(&w, &cluster) {
            reinstate_ms = Some(w.now().since(t_clear).as_nanos() as f64 / 1e6);
            break;
        }
    }

    let relocated = gsd_views(&w)
        .iter()
        .any(|&(_, node, p, _)| p == shape.victim_part as u32 && node != victim.0);

    Episode {
        suspect_ms,
        quarantine_ms,
        drain_ms,
        yield_ms,
        reinstate_ms,
        false_dead: dead_diagnoses(&w, victim),
        relocated,
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// 6× sits at double the detector's `slow_after` bar (3×); 48× is near
/// the top of the `u16` permille envelope `chaos --slow` injects.
const FACTORS: [u16; 4] = [6_000, 12_000, 24_000, 48_000];

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let serial = std::env::args().any(|a| a == "--serial");
    let seeds: u64 = if small { 3 } else { 6 };
    println!(
        "slow_sweep: {seeds} seeds x {} factors x {} victim shapes (15-node \
         testbed, fail-slow profile, 6x-48x slowness, clear + reinstate per \
         episode)",
        FACTORS.len(),
        SHAPES.len()
    );

    let mut jobs = Vec::new();
    for seed in 1..=seeds {
        for (fi, _) in FACTORS.iter().enumerate() {
            for (si, _) in SHAPES.iter().enumerate() {
                jobs.push((seed, fi, si));
            }
        }
    }
    let out = run_sweep(&jobs, serial, |&(seed, fi, si)| {
        episode(seed, FACTORS[fi], &SHAPES[si])
    });
    println!(
        "sweep: {} episodes on {} thread(s), {} ms wall",
        jobs.len(),
        out.threads,
        out.wall.as_millis()
    );

    let mut rows = Vec::new();
    let mut curve = Vec::new();
    let mut false_dead_total = 0usize;
    let mut unsuspected = 0u64;
    let mut unquarantined = 0u64;
    let mut undrained_member = 0u64;
    let mut unyielded_leader = 0u64;
    let mut unreinstated = 0u64;
    for (si, shape) in SHAPES.iter().enumerate() {
        for (fi, &factor) in FACTORS.iter().enumerate() {
            let mut suspect = Vec::new();
            let mut quarantine = Vec::new();
            let mut drain = Vec::new();
            let mut yields = Vec::new();
            let mut reinstate = Vec::new();
            for (&(seed, f, s), ep) in jobs.iter().zip(&out.results) {
                if s != si || f != fi {
                    continue;
                }
                false_dead_total += ep.false_dead;
                unsuspected += ep.suspect_ms.is_none() as u64;
                unquarantined += ep.quarantine_ms.is_none() as u64;
                if shape.is_leader {
                    unyielded_leader += ep.yield_ms.is_none() as u64;
                } else {
                    undrained_member += ep.drain_ms.is_none() as u64;
                }
                unreinstated += ep.reinstate_ms.is_none() as u64;
                suspect.extend(ep.suspect_ms);
                quarantine.extend(ep.quarantine_ms);
                drain.extend(ep.drain_ms);
                yields.extend(ep.yield_ms);
                reinstate.extend(ep.reinstate_ms);
                rows.push(
                    Json::obj()
                        .set("seed", Json::Num(seed as f64))
                        .set("shape", Json::str(shape.name))
                        .set("factor_permille", Json::Num(factor as f64))
                        .set("suspect_ms", ep.suspect_ms.map(Json::Num).unwrap_or(Json::Null))
                        .set("quarantine_ms", ep.quarantine_ms.map(Json::Num).unwrap_or(Json::Null))
                        .set("drain_ms", ep.drain_ms.map(Json::Num).unwrap_or(Json::Null))
                        .set("yield_ms", ep.yield_ms.map(Json::Num).unwrap_or(Json::Null))
                        .set("reinstate_ms", ep.reinstate_ms.map(Json::Num).unwrap_or(Json::Null))
                        .set("false_dead", Json::Num(ep.false_dead as f64))
                        .set("relocated", Json::Num(ep.relocated as u8 as f64)),
                );
            }
            curve.push(
                Json::obj()
                    .set("shape", Json::str(shape.name))
                    .set("factor_permille", Json::Num(factor as f64))
                    .set("suspect_ms_mean", Json::Num(mean(&suspect)))
                    .set("quarantine_ms_mean", Json::Num(mean(&quarantine)))
                    .set("reinstate_ms_mean", Json::Num(mean(&reinstate))),
            );
            println!(
                "  {:>11} {:>5}x: suspect {:>7.1} ms | quarantine {:>7.1} ms | \
                 {} {:>7.1} ms | reinstate {:>8.1} ms  (n={})",
                shape.name,
                factor / 1000,
                mean(&suspect),
                mean(&quarantine),
                if shape.is_leader { "yield" } else { "drain" },
                if shape.is_leader { mean(&yields) } else { mean(&drain) },
                mean(&reinstate),
                suspect.len()
            );
        }
    }

    let summary = Json::obj()
        .set("shape", Json::str(if small { "small" } else { "full" }))
        .set("seeds", Json::Num(seeds as f64))
        .set("episodes", Json::Num(jobs.len() as f64))
        .set("false_dead_diagnoses", Json::Num(false_dead_total as f64))
        .set("unsuspected_episodes", Json::Num(unsuspected as f64))
        .set("unquarantined_episodes", Json::Num(unquarantined as f64))
        .set("undrained_member_episodes", Json::Num(undrained_member as f64))
        .set("unyielded_leader_episodes", Json::Num(unyielded_leader as f64))
        .set("unreinstated_episodes", Json::Num(unreinstated as f64));

    let mut rep = phoenix_telemetry::BenchReport::new("slow_sweep");
    rep.section("slow", summary);
    rep.section("curve", Json::Arr(curve));
    rep.section("episodes", Json::Arr(rows));
    let path = rep
        .write_to(&out.merged, workspace_root().join("results/BENCH_slow.json"))
        .expect("write BENCH_slow.json");
    println!("report written: {}", path.display());

    if false_dead_total > 0
        || unsuspected > 0
        || unquarantined > 0
        || undrained_member > 0
        || unyielded_leader > 0
        || unreinstated > 0
    {
        eprintln!(
            "slow_sweep: {false_dead_total} dead diagnosis(es) of a slow-but-\
             alive node, {unsuspected} unsuspected, {unquarantined} \
             unquarantined, {undrained_member} undrained member, \
             {unyielded_leader} unyielded leader, {unreinstated} unreinstated \
             episode(s) — fail-slow handling regressed"
        );
        std::process::exit(1);
    }
}
