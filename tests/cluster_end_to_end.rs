//! Workspace-level end-to-end test: everything the paper's stack does, in
//! one scenario — boot, monitor, submit jobs, inject faults at every
//! layer, and verify the system keeps its promises throughout.

use phoenix::gridview::GridView;
use phoenix::kernel::boot::boot_and_stabilize;
use phoenix::kernel::client::ClientHandle;
use phoenix::kernel::KernelParams;
use phoenix::proto::{
    BulletinQuery, ClusterTopology, JobSpec, KernelMsg, NodeOp, RequestId, TaskSpec,
};
use phoenix::pws::{install_pws, login, queue_status, submit, PolicyKind, PoolConfig};
use phoenix::sim::{Fault, NodeId, SimDuration, TraceEvent};

#[test]
fn full_stack_scenario() {
    // ---- boot ------------------------------------------------------------
    let topology = ClusterTopology::uniform(3, 6, 1);
    let (mut world, cluster) = boot_and_stabilize(topology, KernelParams::fast(), 2024);
    let n_nodes = cluster.topology.node_count();
    assert_eq!(n_nodes, 18);

    // ---- monitoring online ------------------------------------------------
    let console = cluster.topology.partitions[0].compute[0];
    let gv = GridView::spawn(
        &mut world,
        console,
        cluster.bulletin(),
        cluster.event(),
        SimDuration::from_millis(700),
    );
    world.run_for(SimDuration::from_secs(3));
    assert_eq!(gv.snapshot().nodes_reporting, n_nodes);

    // ---- job management online ---------------------------------------------
    let compute: Vec<NodeId> = cluster
        .topology
        .partitions
        .iter()
        .flat_map(|p| p.compute.iter().copied())
        .collect();
    let pws = install_pws(
        &mut world,
        &cluster,
        vec![PoolConfig::new("batch", compute, PolicyKind::Backfill)],
    );
    world.run_for(SimDuration::from_millis(300));
    let sched = pws.scheduler("batch").unwrap();
    let client = ClientHandle::spawn(&mut world, console);
    let token = login(&mut world, &cluster, &client, "alice", "alice-secret");
    for i in 1..=4u64 {
        let accepted = submit(
            &mut world,
            &client,
            sched,
            token.clone(),
            JobSpec {
                task: TaskSpec {
                    duration_ns: Some(6_000_000_000),
                    ..TaskSpec::default()
                },
                ..JobSpec::simple(i, "alice", "batch", 2)
            },
        );
        assert!(accepted);
    }
    world.run_for(SimDuration::from_secs(1));
    assert!(
        !queue_status(&mut world, &client, sched).is_empty(),
        "jobs running or queued"
    );

    // ---- fault storm while jobs run -----------------------------------------
    // 1. compute node crash (kills one job's task),
    // 2. event-service process kill,
    // 3. server-node crash (partition services migrate).
    world.apply_fault(Fault::CrashNode(cluster.topology.partitions[2].compute[0]));
    world.run_for(SimDuration::from_secs(2));
    world.kill_process(cluster.event());
    world.run_for(SimDuration::from_secs(2));
    world.apply_fault(Fault::CrashNode(cluster.topology.partitions[1].server));
    world.run_for(SimDuration::from_secs(12));

    // ---- the system healed ----------------------------------------------------
    // Jobs finished (some possibly failed due to the node crash, but the
    // scheduler processed all of them).
    world.run_for(SimDuration::from_secs(15));
    let rows = queue_status(&mut world, &client, pws.scheduler("batch").unwrap());
    assert!(rows.is_empty(), "queue drained after faults: {rows:?}");
    let done = world
        .trace()
        .count(|e| matches!(e, TraceEvent::Milestone { label: "job-completed", .. }));
    let failed = world
        .trace()
        .count(|e| matches!(e, TraceEvent::Milestone { label: "job-failed", .. }));
    assert_eq!(done + failed, 4, "every job reached a terminal state");
    assert!(done >= 3, "at most one job lost to the crashed node");

    // Monitoring still sees the whole cluster (minus the two dead nodes,
    // whose stale entries the federation still carries or dropped —
    // either way queries complete).
    let (entries, complete) = {
        client.send(
            &mut world,
            cluster.directory.partitions[0].bulletin,
            KernelMsg::DbQuery {
                req: RequestId(777),
                query: BulletinQuery::Resources,
            },
        );
        world.run_for(SimDuration::from_millis(400));
        let mut out = (0usize, false);
        for (_, m) in client.drain() {
            if let KernelMsg::DbResp {
                entries, complete, ..
            } = m
            {
                out = (entries.len(), complete);
            }
        }
        out
    };
    assert!(complete, "bulletin federation healed after migration");
    assert!(entries >= n_nodes - 2);

    // GridView received fault + recovery events through it all.
    assert!(gv.events_received() > 0);
    let feed = gv.feed();
    assert!(feed
        .iter()
        .any(|f| f.etype == phoenix::proto::EventType::NodeFault));

    // ---- bring the dead nodes back ------------------------------------------
    for node in [
        cluster.topology.partitions[2].compute[0],
        cluster.topology.partitions[1].server,
    ] {
        client.send(
            &mut world,
            cluster.config(),
            KernelMsg::CfgNodeOp {
                req: RequestId(800 + node.0 as u64),
                node,
                op: NodeOp::Start,
            },
        );
    }
    world.run_for(SimDuration::from_secs(5));
    assert!(world.nodes().iter().all(|n| n.up), "whole cluster back up");
    let recoveries = feed_recoveries(&gv);
    assert!(recoveries >= 1, "NodeRecovery events reached the console");
}

fn feed_recoveries(gv: &phoenix::gridview::GridViewHandle) -> usize {
    gv.feed()
        .iter()
        .filter(|f| f.etype == phoenix::proto::EventType::NodeRecovery)
        .count()
}
