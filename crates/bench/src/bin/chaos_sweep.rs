//! Chaos-testing sweep with a JSON report: runs N random fault schedules
//! through `phoenix-chaos`, shrinks any failures, and records schedule /
//! fault / shrink statistics to `results/BENCH_chaos.json`.
//!
//! This is the bench-suite face of the chaos harness: where the `chaos`
//! binary is the interactive explore/replay tool, this bin produces the
//! machine-readable artifact the verify pipeline asserts on.
//!
//! ```text
//! chaos_sweep [--seeds N] [--seed-base S] [--small|--paper]
//! ```

use std::path::PathBuf;

use phoenix_chaos::{full_mask, replay_command, run_schedule, shrink, ChaosConfig};
use phoenix_telemetry::Json;

fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

fn main() {
    phoenix_telemetry::reset();
    let mut seeds = 50u64;
    let mut seed_base = 1u64;
    let mut cfg = ChaosConfig::small();
    let mut shape = "small";
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seeds" => seeds = args.next().and_then(|v| v.parse().ok()).expect("--seeds N"),
            "--seed-base" => {
                seed_base = args.next().and_then(|v| v.parse().ok()).expect("--seed-base S")
            }
            "--small" => {
                cfg = ChaosConfig::small();
                shape = "small";
            }
            "--paper" => {
                cfg = ChaosConfig::paper();
                shape = "paper";
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    println!(
        "chaos_sweep: {seeds} schedules ({shape} topology {}x{}), seeds {seed_base}..{}",
        cfg.partitions,
        cfg.nodes_per_partition,
        seed_base + seeds - 1
    );

    let mut schedules = Vec::new();
    let mut total_faults = 0usize;
    let mut total_steps = 0usize;
    let mut failures = 0u64;
    let mut shrink_runs = 0usize;
    let mut shrunk_steps = 0usize;
    for seed in seed_base..seed_base + seeds {
        let out = run_schedule(seed, &cfg, u64::MAX, false);
        total_faults += out.faults_injected;
        total_steps += out.applied_steps;
        let mut row = Json::obj()
            .set("seed", Json::Num(seed as f64))
            .set("steps", Json::Num(out.applied_steps as f64))
            .set("faults", Json::Num(out.faults_injected as f64))
            .set("gsd_died", Json::Bool(out.gsd_died))
            .set("quiesced", Json::Bool(out.quiesced))
            .set("virtual_s", Json::Num(out.virtual_ns as f64 / 1e9))
            .set("violations", Json::Num(out.violations.len() as f64));
        if out.failed() {
            failures += 1;
            let s = shrink(seed, &cfg, full_mask(out.total_steps), out.total_steps);
            shrink_runs += s.runs;
            shrunk_steps += s.steps;
            println!(
                "  seed {seed}: FAIL — {} violation(s), shrunk {} -> {} steps in {} runs",
                out.violations.len(),
                out.total_steps,
                s.steps,
                s.runs
            );
            for v in &out.violations {
                println!("    {v}");
            }
            let cmd = replay_command(seed, s.mask, out.total_steps, shape == "small");
            println!("    replay: {cmd}");
            row = row
                .set(
                    "violation_details",
                    Json::Arr(
                        out.violations
                            .iter()
                            .map(|v| Json::str(format!("{v}")))
                            .collect(),
                    ),
                )
                .set("shrunk_mask", Json::str(format!("{:#x}", s.mask)))
                .set("shrunk_steps", Json::Num(s.steps as f64))
                .set("shrink_runs", Json::Num(s.runs as f64))
                .set("replay", Json::str(cmd));
        }
        schedules.push(row);
    }

    let summary = Json::obj()
        .set("shape", Json::str(shape))
        .set("schedules_run", Json::Num(seeds as f64))
        .set("steps_applied", Json::Num(total_steps as f64))
        .set("faults_injected", Json::Num(total_faults as f64))
        .set("violating_schedules", Json::Num(failures as f64))
        .set(
            "shrink",
            Json::obj()
                .set("schedules_shrunk", Json::Num(failures as f64))
                .set("total_shrink_runs", Json::Num(shrink_runs as f64))
                .set("minimal_steps_total", Json::Num(shrunk_steps as f64)),
        );

    let mut rep = phoenix_telemetry::BenchReport::new("chaos_sweep");
    rep.section("chaos", summary);
    rep.section("schedules", Json::Arr(schedules));
    let path = phoenix_telemetry::with(|reg| {
        rep.write_to(reg, workspace_root().join("results/BENCH_chaos.json"))
    })
    .expect("write BENCH_chaos.json");
    println!(
        "chaos_sweep done: {}/{} schedules clean, {} faults injected; report: {}",
        seeds - failures,
        seeds,
        total_faults,
        path.display()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
