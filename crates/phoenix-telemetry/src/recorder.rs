//! Flight recorder: bounded per-node rings of recently completed spans.
//!
//! After a fault-injection run the interesting question is "what was the
//! kernel doing on node N right before/after the fault" — the recorder
//! keeps the last `capacity` completed spans per node and evicts the
//! oldest, black-box style. BTreeMap keyed by node id keeps dump order
//! deterministic.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::registry::SpanId;

/// A completed span as stored in the flight recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    pub id: SpanId,
    /// `SpanId::NONE` for root spans.
    pub parent: SpanId,
    pub path: &'static str,
    pub service: &'static str,
    pub node: u32,
    pub start_ns: u64,
    pub end_ns: u64,
    /// True when the span was abandoned (its node died) rather than
    /// closed by the instrumented code; `end_ns` is the abort time.
    pub aborted: bool,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A span with its children, assembled by [`FlightRecorder::span_forest`].
#[derive(Clone, Debug)]
pub struct SpanNode {
    pub record: SpanRecord,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Depth-first walk (self before children), calling `f(depth, record)`.
    pub fn walk(&self, f: &mut impl FnMut(usize, &SpanRecord)) {
        self.walk_at(0, f);
    }

    fn walk_at(&self, depth: usize, f: &mut impl FnMut(usize, &SpanRecord)) {
        f(depth, &self.record);
        for child in &self.children {
            child.walk_at(depth + 1, f);
        }
    }
}

#[derive(Clone, Debug)]
pub struct FlightRecorder {
    capacity: usize,
    rings: BTreeMap<u32, VecDeque<SpanRecord>>,
    evicted: u64,
}

/// Default per-node ring capacity.
pub const DEFAULT_CAPACITY: usize = 1024;

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder { capacity: capacity.max(1), rings: BTreeMap::new(), evicted: 0 }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total spans evicted across all nodes since creation.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    pub fn push(&mut self, record: SpanRecord) {
        let ring = self.rings.entry(record.node).or_default();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.evicted += 1;
        }
        ring.push_back(record);
    }

    /// Recent spans for one node, oldest first.
    pub fn node(&self, node: u32) -> impl Iterator<Item = &SpanRecord> {
        self.rings.get(&node).into_iter().flatten()
    }

    /// All retained spans, grouped by node id ascending, oldest first
    /// within a node.
    pub fn iter(&self) -> impl Iterator<Item = &SpanRecord> {
        self.rings.values().flatten()
    }

    pub fn len(&self) -> usize {
        self.rings.values().map(|r| r.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge another recorder's rings into this one. Per node, the union
    /// of both rings is interleaved by `start_ns` (stable: on ties, this
    /// recorder's spans sort before `other`'s) and then re-bounded to
    /// `self.capacity`, evicting from the oldest end exactly as `push`
    /// would have. `other`'s eviction count carries over so the merged
    /// total still answers "how many spans were lost to the ring bound".
    pub fn merge(&mut self, other: &FlightRecorder) {
        for (&node, ring) in &other.rings {
            let ours = self.rings.entry(node).or_default();
            ours.extend(ring.iter().cloned());
            let mut all: Vec<SpanRecord> = std::mem::take(ours).into();
            all.sort_by_key(|r| r.start_ns);
            let over = all.len().saturating_sub(self.capacity);
            if over > 0 {
                all.drain(..over);
                self.evicted += over as u64;
            }
            *ours = all.into();
        }
        self.evicted += other.evicted;
    }

    /// Assemble the retained spans into parent/child trees.
    ///
    /// Works across node rings: a child recorded on node A nests under a
    /// parent recorded on node B. A span whose parent was evicted from
    /// its ring (or never completed) becomes a root. Roots and sibling
    /// lists are ordered by start time, ties by span id, so the forest
    /// from a seeded run is bit-identical across repetitions.
    pub fn span_forest(&self) -> Vec<SpanNode> {
        let mut all: Vec<&SpanRecord> = self.iter().collect();
        all.sort_by_key(|r| (r.start_ns, r.id.0));
        let retained: HashSet<u64> = all.iter().map(|r| r.id.0).collect();
        let mut kids: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
        let mut roots: Vec<&SpanRecord> = Vec::new();
        for r in &all {
            if r.parent != SpanId::NONE && retained.contains(&r.parent.0) {
                kids.entry(r.parent.0).or_default().push(r);
            } else {
                roots.push(r);
            }
        }
        fn build(r: &SpanRecord, kids: &HashMap<u64, Vec<&SpanRecord>>) -> SpanNode {
            let children = kids
                .get(&r.id.0)
                .map(|cs| cs.iter().map(|c| build(c, kids)).collect())
                .unwrap_or_default();
            SpanNode { record: r.clone(), children }
        }
        roots.into_iter().map(|r| build(r, &kids)).collect()
    }

    /// Render a text waterfall of the retained spans overlapping
    /// `[from_ns, to_ns]`: one row per span in tree order, indented by
    /// depth, with a bar on a `width`-character time axis. Closed spans
    /// draw `#`, aborted spans `~` (the region never completed — its node
    /// died mid-flight). The post-mortem view after fault injection:
    /// parentage shows *why* each region was open, the axis shows *when*.
    pub fn waterfall(&self, from_ns: u64, to_ns: u64, width: usize) -> String {
        let width = width.max(8);
        let window = to_ns.saturating_sub(from_ns).max(1);
        let mut rows: Vec<(usize, SpanRecord)> = Vec::new();
        for root in self.span_forest() {
            root.walk(&mut |depth, r| {
                if r.start_ns <= to_ns && r.end_ns >= from_ns {
                    rows.push((depth, r.clone()));
                }
            });
        }
        let label_w = rows
            .iter()
            .map(|(d, r)| 2 * d + r.path.len())
            .max()
            .unwrap_or(0)
            .max(8);
        let mut out = String::new();
        for (depth, r) in rows {
            let label = format!("{}{}", "  ".repeat(depth), r.path);
            let lo = ((r.start_ns.max(from_ns) - from_ns) as u128 * width as u128
                / window as u128) as usize;
            let lo = lo.min(width - 1);
            let hi = ((r.end_ns.min(to_ns) - from_ns) as u128 * width as u128
                / window as u128) as usize;
            let hi = hi.clamp(lo + 1, width);
            let fill = if r.aborted { '~' } else { '#' };
            let mut bar = String::with_capacity(width);
            for i in 0..width {
                bar.push(if i >= lo && i < hi { fill } else { ' ' });
            }
            out.push_str(&format!(
                "{label:<label_w$} {service:<8} n{node:<3} {start:>9.3}s {dur:>9.1}ms |{bar}|\n",
                service = r.service,
                node = r.node,
                start = r.start_ns as f64 / 1e9,
                dur = r.duration_ns() as f64 / 1e6,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(node: u32, id: u64, start: u64) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: SpanId::NONE,
            path: "p",
            service: "s",
            node,
            start_ns: start,
            end_ns: start + 10,
            aborted: false,
        }
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut fr = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            fr.push(rec(0, i + 1, i * 100));
        }
        let kept: Vec<u64> = fr.node(0).map(|r| r.id.0).collect();
        assert_eq!(kept, vec![3, 4, 5]);
        assert_eq!(fr.evicted(), 2);
        assert_eq!(fr.len(), 3);
    }

    #[test]
    fn rings_are_per_node() {
        let mut fr = FlightRecorder::with_capacity(2);
        fr.push(rec(1, 1, 0));
        fr.push(rec(2, 2, 0));
        fr.push(rec(1, 3, 50));
        fr.push(rec(1, 4, 90));
        assert_eq!(fr.node(1).count(), 2, "node 1 ring evicted independently");
        assert_eq!(fr.node(2).count(), 1);
        let all: Vec<u32> = fr.iter().map(|r| r.node).collect();
        assert_eq!(all, vec![1, 1, 2], "dump order: node id ascending");
    }

    #[test]
    fn merge_interleaves_by_start_and_rebounds() {
        let mut a = FlightRecorder::with_capacity(3);
        a.push(rec(7, 1, 100));
        a.push(rec(7, 2, 300));
        let mut b = FlightRecorder::with_capacity(3);
        b.push(rec(7, 3, 200));
        b.push(rec(7, 4, 400));
        b.push(rec(8, 5, 50));
        a.merge(&b);
        // Node 7 union is 4 spans; capacity 3 evicts the oldest (start 100).
        let kept: Vec<u64> = a.node(7).map(|r| r.start_ns).collect();
        assert_eq!(kept, vec![200, 300, 400]);
        assert_eq!(a.node(8).count(), 1);
        assert_eq!(a.evicted(), 1);
    }

    fn child(node: u32, id: u64, parent: u64, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: SpanId(parent),
            path: "child",
            service: "s",
            node,
            start_ns: start,
            end_ns: end,
            aborted: false,
        }
    }

    #[test]
    fn forest_nests_children_across_nodes() {
        let mut fr = FlightRecorder::with_capacity(16);
        fr.push(rec(0, 1, 100)); // root on node 0
        fr.push(child(3, 2, 1, 120, 180)); // child recorded on node 3
        fr.push(child(3, 3, 1, 110, 130)); // earlier-starting sibling
        fr.push(child(0, 4, 2, 125, 170)); // grandchild
        fr.push(rec(5, 9, 50)); // unrelated root on node 5
        let forest = fr.span_forest();
        assert_eq!(forest.len(), 2);
        assert_eq!(forest[0].record.id.0, 9, "roots ordered by start time");
        let root = &forest[1];
        assert_eq!(root.record.id.0, 1);
        let ids: Vec<u64> = root.children.iter().map(|c| c.record.id.0).collect();
        assert_eq!(ids, vec![3, 2], "siblings ordered by start time");
        assert_eq!(root.children[1].children[0].record.id.0, 4);
    }

    #[test]
    fn evicted_parent_promotes_child_to_root() {
        let mut fr = FlightRecorder::with_capacity(8);
        fr.push(child(2, 7, 999, 40, 90)); // parent 999 never retained
        let forest = fr.span_forest();
        assert_eq!(forest.len(), 1);
        assert!(forest[0].children.is_empty());
    }

    #[test]
    fn waterfall_renders_indent_and_bars() {
        let mut fr = FlightRecorder::with_capacity(8);
        fr.push(SpanRecord {
            id: SpanId(1),
            parent: SpanId::NONE,
            path: "episode",
            service: "gsd",
            node: 0,
            start_ns: 0,
            end_ns: 1_000,
            aborted: false,
        });
        fr.push(SpanRecord {
            id: SpanId(2),
            parent: SpanId(1),
            path: "round",
            service: "gsd",
            node: 0,
            start_ns: 500,
            end_ns: 1_000,
            aborted: true,
        });
        let text = fr.waterfall(0, 1_000, 10);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("episode") && lines[0].contains("##########"));
        assert!(lines[1].contains("  round"), "child indented under parent");
        assert!(
            lines[1].contains("~~~~~") && !lines[1].contains('#'),
            "aborted span drawn with ~ starting mid-axis: {}",
            lines[1]
        );
        // Span outside the window is omitted entirely.
        assert!(fr.waterfall(2_000, 3_000, 10).is_empty());
    }

    #[test]
    fn merge_ties_keep_self_before_other() {
        let mut a = FlightRecorder::with_capacity(8);
        a.push(rec(1, 10, 500));
        let mut b = FlightRecorder::with_capacity(8);
        b.push(rec(1, 20, 500));
        a.merge(&b);
        let ids: Vec<u64> = a.node(1).map(|r| r.id.0).collect();
        assert_eq!(ids, vec![10, 20], "stable: self's span first on tied start_ns");
    }
}
