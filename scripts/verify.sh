#!/usr/bin/env sh
# Repo verification: tier-1 (build + tests) plus a telemetry smoke run.
#
#   sh scripts/verify.sh
#
# The smoke run drives table1_wd on the tiny testbed and asserts that the
# telemetry export landed in results/BENCH_kernel.json with latency
# percentiles for the instrumented kernel paths.

set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== smoke: table1_wd (--small) writes results/BENCH_kernel.json =="
rm -f results/BENCH_kernel.json
cargo run --release --offline -p phoenix-bench --bin table1_wd -- --small

test -s results/BENCH_kernel.json || {
    echo "FAIL: results/BENCH_kernel.json missing or empty" >&2
    exit 1
}
for needle in '"p50_ns"' '"p99_ns"' '"wd.heartbeat.flight"' '"counters"' '"table1"'; do
    grep -q "$needle" results/BENCH_kernel.json || {
        echo "FAIL: $needle not found in results/BENCH_kernel.json" >&2
        exit 1
    }
done

echo "verify: OK"
