//! Minimal JSON value + renderer.
//!
//! serde is off-limits (the workspace must build with no network access),
//! and the bench reports only ever *write* JSON, so a small value tree
//! with a renderer is all we need. Keys keep insertion order — reports
//! diff cleanly across runs.

/// A JSON value. Build with the constructors, render with [`Json::render`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite f64; NaN/inf render as null.
    Num(f64),
    /// Unsigned integer, rendered without a decimal point.
    UInt(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or append) a key; builder-style.
    pub fn set(mut self, key: impl Into<String>, value: Json) -> Json {
        if let Json::Obj(ref mut fields) = self {
            fields.push((key.into(), value));
        }
        self
    }

    /// Render to a pretty-printed string (2-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Keep integral floats readable but unambiguous.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{:.1}", n));
                    } else {
                        out.push_str(&format!("{}", n));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj()
            .set("name", Json::str("wd.heartbeat"))
            .set("count", Json::UInt(3))
            .set("ratio", Json::Num(0.5))
            .set("items", Json::Arr(vec![Json::UInt(1), Json::UInt(2)]))
            .set("none", Json::Null)
            .set("ok", Json::Bool(true));
        let s = j.render();
        assert!(s.contains("\"name\": \"wd.heartbeat\""));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"ratio\": 0.5"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::str("a\"b\\c\nd\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        assert_eq!(Json::Num(4.0).render(), "4.0\n");
        assert_eq!(Json::UInt(4).render(), "4\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
    }
}
