//! Loss sweep: kernel behaviour as a function of network loss rate.
//!
//! The paper evaluated the kernel on reliable switched Ethernet; this
//! bench asks what the same protocols do when the wire drops, duplicates
//! and reorders messages. For each loss rate (0–10%) it measures, with
//! the loss-tolerant parameter profile (`KernelParams::fast_lossy`):
//!
//! * **detection time** — a WD process is killed and the virtual time
//!   until the supervising GSD diagnoses the failure is mined from the
//!   trace (averaged over several seeds);
//! * **spurious takeovers** — fault-free runs must record zero GSD
//!   takeovers at every swept rate (seq-dedup + K-of-N suspicion +
//!   probe-freshness aborts absorb random loss);
//! * **retry / dedup counters** — `rpc.retries`, `net.loss.dropped`,
//!   `net.dup.scheduled`/`net.dup.delivered` (delivered is counted at
//!   dispatch, so delivered ≤ scheduled is asserted per rate) and
//!   `gsd.dedup.dropped` per fault-free run.
//!
//! Results go to `results/BENCH_loss.json` (section `loss_curve`); the
//! exit status is non-zero if any spurious takeover fired, which lets
//! `scripts/verify.sh` gate on it.
//!
//! All `(rate, seed)` runs execute through the parallel sweep runner
//! (`phoenix_bench::sweep`): one registry shard per run, shards merged in
//! work-item order, so the report is byte-identical to `--serial` for the
//! same seed set (verify.sh diffs the two). Wall-clock and thread counts
//! go to stdout only.
//!
//! ```text
//! loss_sweep [--small] [--serial]
//! ```

use std::path::PathBuf;

use phoenix_bench::sweep::run_sweep;
use phoenix_kernel::boot::boot_cluster_with_net;
use phoenix_kernel::KernelParams;
use phoenix_proto::{ClusterTopology, KernelMsg};
use phoenix_sim::{FaultTarget, NetParams, SimDuration, TraceEvent, World};
use phoenix_telemetry::Json;

fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if let Ok(text) = std::fs::read_to_string(dir.join("Cargo.toml")) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

fn boot(seed: u64, loss_permille: u16) -> (World<KernelMsg>, phoenix_kernel::PhoenixCluster) {
    let topo = ClusterTopology::uniform(3, 5, 1);
    boot_cluster_with_net(
        topo,
        KernelParams::fast_lossy(),
        seed,
        NetParams::unreliable(loss_permille),
    )
}

/// Kill one WD and mine the trace for kill → `FaultDiagnosed` latency,
/// plus the `rpc.retries` the recovery needed (fault paths are where the
/// retrying request helpers actually fire). Under loss the diagnosis can
/// degrade from process-failure to node-failure (every probe reply for the
/// dead WD's node dropped), so both targets count as detection; the bool
/// reports whether the diagnosis degraded.
fn detection_ms(seed: u64, loss_permille: u16) -> (Option<f64>, bool, u64) {
    let (mut w, cluster) = boot(seed, loss_permille);
    w.run_for(SimDuration::from_secs(2));
    // A compute node's WD in partition 1 (not the meta leader's server).
    let victim = cluster.directory.nodes[6].wd;
    let victim_node = cluster.directory.nodes[6].node;
    let t_kill = w.now();
    w.kill_process(victim);
    w.run_for(SimDuration::from_secs(10));
    let retries = phoenix_telemetry::with(|reg| reg.counter("rpc.retries"));
    let hit = w.trace().records().iter().find(|r| {
        r.at >= t_kill
            && match r.event {
                TraceEvent::FaultDiagnosed { target: FaultTarget::Process(p), .. } => p == victim,
                TraceEvent::FaultDiagnosed { target: FaultTarget::Node(n), .. } => n == victim_node,
                _ => false,
            }
    });
    let ms = hit.map(|rec| rec.at.since(t_kill).as_nanos() as f64 / 1e6);
    let degraded = matches!(
        hit.map(|rec| &rec.event),
        Some(TraceEvent::FaultDiagnosed { target: FaultTarget::Node(_), .. })
    );
    (ms, degraded, retries)
}

struct FaultFreeStats {
    spurious_takeovers: u64,
    rpc_retries: u64,
    loss_dropped: u64,
    dup_scheduled: u64,
    dup_delivered: u64,
    dedup_dropped: u64,
}

/// Run a fault-free cluster for 20 virtual seconds and read the counters.
fn fault_free(seed: u64, loss_permille: u16) -> FaultFreeStats {
    let (mut w, _cluster) = boot(seed, loss_permille);
    w.run_for(SimDuration::from_secs(20));
    phoenix_telemetry::with(|reg| FaultFreeStats {
        spurious_takeovers: reg.counter("gsd.takeovers")
            + reg.histogram("gsd.takeover").map(|h| h.count()).unwrap_or(0),
        rpc_retries: reg.counter("rpc.retries"),
        loss_dropped: reg.counter("net.loss.dropped"),
        dup_scheduled: reg.counter("net.dup.scheduled"),
        dup_delivered: reg.counter("net.dup.delivered"),
        dedup_dropped: reg.counter("gsd.dedup.dropped"),
    })
}

/// One sweep work item: a seeded run at one loss rate.
enum Job {
    Detect { rate: u16, seed: u64 },
    Clean { rate: u16, seed: u64 },
}

enum JobOut {
    Detect { ms: Option<f64>, degraded: bool, retries: u64 },
    Clean(FaultFreeStats),
}

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let serial = std::env::args().any(|a| a == "--serial");
    let rates: &[u16] = if small {
        &[0, 20, 50]
    } else {
        &[0, 5, 10, 20, 50, 100]
    };
    let (detect_seeds, clean_seeds) = if small { (2u64, 3u64) } else { (5, 10) };
    println!(
        "loss_sweep: rates {rates:?}‰, {detect_seeds} detection seeds + \
         {clean_seeds} fault-free seeds per rate (15-node testbed, lossy profile)"
    );

    // Flatten the whole sweep into one work list; item order (not
    // completion order) drives the telemetry merge, so serial and
    // parallel runs produce byte-identical reports.
    let mut jobs = Vec::new();
    for &rate in rates {
        for seed in 1..=detect_seeds {
            jobs.push(Job::Detect { rate, seed });
        }
        for seed in 100..100 + clean_seeds {
            jobs.push(Job::Clean { rate, seed });
        }
    }
    let outcome = run_sweep(&jobs, serial, |job| match *job {
        Job::Detect { rate, seed } => {
            let (ms, degraded, retries) = detection_ms(seed, rate);
            JobOut::Detect { ms, degraded, retries }
        }
        Job::Clean { rate, seed } => JobOut::Clean(fault_free(seed, rate)),
    });
    println!(
        "sweep: {} runs on {} thread(s), {} ms wall",
        jobs.len(),
        outcome.threads,
        outcome.wall.as_millis()
    );

    let mut curve = Vec::new();
    let mut total_spurious = 0u64;
    for &rate in rates {
        // Detection time under loss: mean over seeds (a rate where the
        // diagnosis never lands would surface as a missing sample).
        let mut detect: Vec<f64> = Vec::new();
        let mut missed = 0u64;
        let mut degraded = 0u64;
        let mut detect_retries = 0u64;
        let mut spurious = 0u64;
        let mut retries = 0u64;
        let mut dropped = 0u64;
        let mut dups_scheduled = 0u64;
        let mut dups = 0u64;
        let mut dedup = 0u64;
        for (job, out) in jobs.iter().zip(&outcome.results) {
            match (job, out) {
                (Job::Detect { rate: r, .. }, JobOut::Detect { ms, degraded: deg, retries: rr })
                    if *r == rate =>
                {
                    detect_retries += rr;
                    degraded += *deg as u64;
                    match ms {
                        Some(ms) => detect.push(*ms),
                        None => missed += 1,
                    }
                }
                (Job::Clean { rate: r, .. }, JobOut::Clean(s)) if *r == rate => {
                    spurious += s.spurious_takeovers;
                    retries += s.rpc_retries;
                    dropped += s.loss_dropped;
                    dups_scheduled += s.dup_scheduled;
                    dups += s.dup_delivered;
                    dedup += s.dedup_dropped;
                }
                _ => {}
            }
        }
        let detect_mean = if detect.is_empty() {
            f64::NAN
        } else {
            detect.iter().sum::<f64>() / detect.len() as f64
        };
        total_spurious += spurious;

        println!(
            "  {:>4}‰: detect {:>8.1} ms (n={}, missed={}, node-diag={}) | \
             spurious {} | retries {:>4}+{} | dropped {:>6} | dup {:>4}/{:<4} | \
             hb-dedup {:>4}",
            rate,
            detect_mean,
            detect.len(),
            missed,
            degraded,
            spurious,
            retries,
            detect_retries,
            dropped,
            dups,
            dups_scheduled,
            dedup
        );
        // Pin the corrected accounting: `delivered` is now counted at
        // dispatch, so it can never exceed what the lossy links scheduled
        // (a dup whose destination died in flight is a drop, not a
        // delivery).
        assert!(
            dups <= dups_scheduled,
            "net.dup.delivered ({dups}) > net.dup.scheduled ({dups_scheduled}) at {rate}‰"
        );
        curve.push(
            Json::obj()
                .set("loss_permille", Json::Num(rate as f64))
                .set("detect_ms_mean", Json::Num(detect_mean))
                .set("detect_samples", Json::Num(detect.len() as f64))
                .set("detect_missed", Json::Num(missed as f64))
                .set("detect_node_diagnosed", Json::Num(degraded as f64))
                .set("spurious_takeovers", Json::Num(spurious as f64))
                .set("rpc_retries", Json::Num(retries as f64))
                .set("detect_rpc_retries", Json::Num(detect_retries as f64))
                .set("net_loss_dropped", Json::Num(dropped as f64))
                .set("net_dup_scheduled", Json::Num(dups_scheduled as f64))
                .set("net_dup_delivered", Json::Num(dups as f64))
                .set("gsd_dedup_dropped", Json::Num(dedup as f64)),
        );
    }

    let summary = Json::obj()
        .set("shape", Json::str(if small { "small" } else { "full" }))
        .set("rates_permille", Json::Arr(rates.iter().map(|&r| Json::Num(r as f64)).collect()))
        .set("detect_seeds_per_rate", Json::Num(detect_seeds as f64))
        .set("clean_seeds_per_rate", Json::Num(clean_seeds as f64))
        .set("spurious_takeovers", Json::Num(total_spurious as f64));

    let mut rep = phoenix_telemetry::BenchReport::new("loss_sweep");
    rep.section("loss", summary);
    rep.section("loss_curve", Json::Arr(curve));
    // The merged registry holds every run's telemetry (shards merged in
    // item order), not just the last run's — and is identical either way
    // the sweep was scheduled.
    let path = rep
        .write_to(&outcome.merged, workspace_root().join("results/BENCH_loss.json"))
        .expect("write BENCH_loss.json");
    println!("report written: {}", path.display());

    if total_spurious > 0 {
        eprintln!("loss_sweep: {total_spurious} spurious takeover(s) — loss hardening regressed");
        std::process::exit(1);
    }
}
