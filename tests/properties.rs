//! Property-style tests over the core data structures and invariants of
//! the reproduction. Each property is exercised over many seeded-random
//! cases drawn from the workspace's own [`SimRng`] — deterministic,
//! offline, and reproducible by seed.

use phoenix::hpl::{lu_factor, lu_solve, vec_norm_inf, Matrix, DEFAULT_NB};
use phoenix::kernel::security::{keyed_hash, xor_stream};
use phoenix::proto::{encoded_size, ClusterTopology, EventFilter, EventType, JobSpec};
use phoenix::pws::{pick, PolicyCtx, PolicyKind};
use phoenix::sim::{SimDuration, SimRng, SimTime};
use std::collections::HashMap;

const CASES: usize = 128;

// ---- virtual time ----------------------------------------------------------

#[test]
fn time_addition_is_monotone() {
    let mut rng = SimRng::seed_from_u64(0x7141);
    for _ in 0..CASES {
        let base = rng.gen_range(0..u64::MAX / 4);
        let d = rng.gen_range(0..u64::MAX / 4);
        let t = SimTime(base);
        let later = t + SimDuration(d);
        assert!(later >= t);
        assert_eq!(later.since(t), SimDuration(d));
    }
}

#[test]
fn duration_sub_saturates() {
    let mut rng = SimRng::seed_from_u64(0xD0_0D);
    for _ in 0..CASES {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let d = SimDuration(a).saturating_sub(SimDuration(b));
        assert_eq!(d.as_nanos(), a.saturating_sub(b));
    }
}

// ---- wire-size estimator ---------------------------------------------------

#[test]
fn encoded_size_grows_with_string_payload() {
    let mut rng = SimRng::seed_from_u64(0x5712);
    for _ in 0..CASES {
        let s: String = (0..rng.gen_range(0usize..64)).map(|_| 'x').collect();
        let extra: String = (0..rng.gen_range(1usize..=16)).map(|_| 'y').collect();
        let small = encoded_size(&s);
        let big = encoded_size(&format!("{s}{extra}"));
        assert!(big > small);
    }
}

#[test]
fn encoded_size_of_vec_is_linear() {
    let mut rng = SimRng::seed_from_u64(0x11EC);
    for _ in 0..CASES {
        let v: Vec<u32> = (0..rng.gen_range(0usize..100)).map(|_| rng.next_u64() as u32).collect();
        assert_eq!(encoded_size(&v), 8 + 4 * v.len());
    }
}

// ---- topology --------------------------------------------------------------

#[test]
fn uniform_topology_partitions_all_nodes() {
    let mut rng = SimRng::seed_from_u64(0x7090);
    for _ in 0..32 {
        let parts = rng.gen_range(1usize..8);
        let per = rng.gen_range(2usize..12);
        let t = ClusterTopology::uniform(parts, per, 1);
        assert_eq!(t.node_count(), parts * per);
        // Every node id in range belongs to exactly one partition.
        for i in 0..(parts * per) as u32 {
            assert!(t.partition_of(phoenix::sim::NodeId(i)).is_some());
        }
        // And ids outside do not.
        assert!(t.partition_of(phoenix::sim::NodeId((parts * per) as u32)).is_none());
    }
}

// ---- security primitives ---------------------------------------------------

#[test]
fn xor_stream_is_an_involution() {
    let mut rng = SimRng::seed_from_u64(0x5EC1);
    for _ in 0..CASES {
        let key = rng.next_u64();
        let mut data: Vec<u8> =
            (0..rng.gen_range(0usize..256)).map(|_| rng.next_u64() as u8).collect();
        let orig = data.clone();
        xor_stream(key, &mut data);
        xor_stream(key, &mut data);
        assert_eq!(data, orig);
    }
}

#[test]
fn keyed_hash_separates_keys() {
    let mut rng = SimRng::seed_from_u64(0x5EC2);
    for _ in 0..CASES {
        let a = rng.next_u64();
        let b = rng.next_u64();
        if a == b {
            continue;
        }
        let data: Vec<u8> =
            (0..rng.gen_range(1usize..64)).map(|_| rng.next_u64() as u8).collect();
        // Not a cryptographic claim — just no trivial key-independence.
        assert_ne!(keyed_hash(a, &data), keyed_hash(b, &data));
    }
}

// ---- event filtering -------------------------------------------------------

#[test]
fn filter_types_accept_exactly_their_types() {
    let mut rng = SimRng::seed_from_u64(0xF117);
    for _ in 0..CASES {
        let codes: Vec<u16> =
            (0..rng.gen_range(0usize..5)).map(|_| rng.gen_range(0u16..8)).collect();
        let probe = rng.gen_range(0u16..8);
        let types: Vec<EventType> = codes.iter().map(|&c| EventType::Custom(c)).collect();
        let f = EventFilter::Types(types);
        let ev = phoenix::proto::Event::new(
            EventType::Custom(probe),
            phoenix::sim::NodeId(0),
            phoenix::proto::EventPayload::None,
        );
        assert_eq!(f.accepts(&ev), codes.contains(&probe));
    }
}

// ---- scheduling policies ---------------------------------------------------

#[test]
fn picked_job_always_fits() {
    let mut rng = SimRng::seed_from_u64(0x9011C4);
    for _ in 0..CASES {
        let sizes: Vec<u32> =
            (0..rng.gen_range(1usize..12)).map(|_| rng.gen_range(1u32..10)).collect();
        let free = rng.gen_range(0usize..12);
        let policy = [
            PolicyKind::Fifo,
            PolicyKind::Priority,
            PolicyKind::FairShare,
            PolicyKind::Backfill,
        ][rng.gen_range(0usize..4)];
        let queued: Vec<JobSpec> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| JobSpec::simple(i as u64, "u", "p", n))
            .collect();
        let usage = HashMap::new();
        let ctx = PolicyCtx { free_nodes: free, usage: &usage };
        if let Some(i) = pick(policy, &queued, &ctx) {
            assert!(i < queued.len());
            assert!(queued[i].nodes as usize <= free);
            // Strict FIFO may only ever pick the head.
            if policy == PolicyKind::Fifo {
                assert_eq!(i, 0);
            }
        } else if policy == PolicyKind::Backfill {
            // Backfill returning None means nothing fits.
            assert!(queued.iter().all(|j| j.nodes as usize > free));
        }
    }
}

// ---- LU factorization ------------------------------------------------------

#[test]
fn lu_solves_diagonally_dominant_systems() {
    let mut rng = SimRng::seed_from_u64(0x10_F4C7);
    for _ in 0..24 {
        let n = rng.gen_range(2usize..24);
        let seed = rng.gen_range(0u64..500);
        let mut a = Matrix::random(n, seed);
        // Make it comfortably non-singular.
        for i in 0..n {
            let v = a.get(i, i) + n as f64;
            a.set(i, i, v);
        }
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let b = a.matvec(&x_true);
        let mut lu = a.clone();
        let r = lu_factor(&mut lu, 1, DEFAULT_NB.min(n));
        let x = lu_solve(&lu, &r.pivots, &b);
        let err: Vec<f64> = x.iter().zip(&x_true).map(|(p, q)| p - q).collect();
        assert!(vec_norm_inf(&err) < 1e-8, "residual too large: {:?}", vec_norm_inf(&err));
    }
}

#[test]
fn lu_parallel_equals_sequential() {
    let mut rng = SimRng::seed_from_u64(0x10_9A6);
    for _ in 0..16 {
        let n = rng.gen_range(4usize..32);
        let seed = rng.gen_range(0u64..100);
        let a = Matrix::random(n, seed);
        let mut s = a.clone();
        let mut p = a.clone();
        let rs = lu_factor(&mut s, 1, 8);
        let rp = lu_factor(&mut p, 3, 8);
        assert_eq!(rs.pivots, rp.pivots);
        for (x, y) in s.data.iter().zip(p.data.iter()) {
            assert_eq!(x, y);
        }
    }
}

// ---- wire format: full KernelMsg surface -----------------------------------

/// One exemplar of every `KernelMsg` variant, with non-default payloads so
/// field transposition bugs cannot cancel out.
fn kernel_msg_surface() -> Vec<phoenix::proto::KernelMsg> {
    use phoenix::proto::checkpoint::CheckpointData;
    use phoenix::proto::{
        Action, AppState, AppStatus, AuthToken, BulletinEntry, BulletinKey, BulletinQuery,
        BulletinValue, ConsumerReg, Event, EventFilter, EventPayload, EventType, JobId, JobSpec,
        JobState, KernelMsg, MemberInfo, NodeOp, NodeServices, PartitionId, QueueRow, RequestId,
        Role, ServiceDirectory, ServiceKind, TaskSpec, UserId,
    };
    use phoenix::sim::{Diagnosis, NicId, NodeId, Pid, ResourceUsage};

    let member = MemberInfo {
        partition: PartitionId(2),
        node: NodeId(7),
        gsd: Pid(31),
        event: Pid(32),
        bulletin: Pid(33),
        checkpoint: Pid(34),
        host_ppm: Pid(35),
    };
    let services = NodeServices {
        node: NodeId(9),
        wd: Pid(41),
        detector: Pid(42),
        ppm: Pid(43),
    };
    let directory = ServiceDirectory {
        config: Pid(1),
        security: Pid(2),
        partitions: vec![member],
        nodes: vec![services],
    };
    let usage = ResourceUsage {
        cpu: 0.25,
        memory: 0.5,
        swap: 0.125,
        disk_io: 0.75,
        net_io: 0.0625,
    };
    let entry = BulletinEntry {
        key: BulletinKey::Resource(NodeId(3)),
        value: BulletinValue::Resource(usage),
        stamp_ns: 12_345,
    };
    let app_entry = BulletinEntry {
        key: BulletinKey::App(NodeId(4), JobId(77)),
        value: BulletinValue::App(AppState {
            job: JobId(77),
            node: NodeId(4),
            cpu: 0.5,
            memory: 0.25,
            status: AppStatus::Running,
            sla_ok: true,
        }),
        stamp_ns: 67_890,
    };
    let event = Event {
        etype: EventType::Custom(513),
        origin: NodeId(6),
        partition: PartitionId(1),
        seq: 99,
        payload: EventPayload::Text("probe".into()),
    };
    let token = AuthToken {
        user: UserId::new("ops"),
        role: Role::SystemAdministrator,
        expires_ns: 5_000_000_000,
        mac: 0xDEAD_BEEF_u64,
    };
    let task = TaskSpec {
        cpus: 2,
        cpu_load: 0.8,
        mem_load: 0.3,
        duration_ns: Some(7_000_000),
    };
    let spec = JobSpec::simple(11, "alice", "hpc", 4);

    vec![
        KernelMsg::Boot(directory.clone().into()),
        KernelMsg::WdHeartbeat { node: NodeId(3), nic: NicId(1), seq: 99 },
        KernelMsg::ProbeReq { req: RequestId(5) },
        KernelMsg::ProbeResp { req: RequestId(5) },
        KernelMsg::WdHeartbeatAck { nic: NicId(1), seq: 99 },
        KernelMsg::MetaHeartbeat {
            from_partition: PartitionId(2),
            nic: NicId(2),
            epoch: 17,
            seq: 41,
        },
        KernelMsg::MetaJoin { member },
        KernelMsg::MetaMembership { epoch: 18, members: vec![member, member].into() },
        KernelMsg::RegroupPing {
            from_partition: PartitionId(3),
            epoch: 7,
            round: 21,
            witness: PartitionId(1),
            witness_epoch: 4,
        },
        KernelMsg::RegroupAck {
            from_partition: PartitionId(5),
            epoch: 9,
            round: 21,
            frozen: true,
            weight: 3,
            witness: PartitionId(2),
            witness_epoch: 5,
        },
        KernelMsg::RegroupFreeze { frozen: true },
        KernelMsg::RegroupProbe { round: 22 },
        KernelMsg::RegroupProbeAck {
            round: 22,
            partition: PartitionId(6),
            gsd: Pid(91),
            alive: true,
        },
        KernelMsg::DirectoryStale { partition: PartitionId(4), stale: true },
        KernelMsg::MetaMemberDown {
            partition: PartitionId(1),
            diagnosis: Diagnosis::NetworkFailure,
        },
        KernelMsg::SvcRegister {
            kind: ServiceKind::Event,
            pid: Pid(50),
            factory: "es".into(),
        },
        KernelMsg::SvcHeartbeat { kind: ServiceKind::DataBulletin, pid: Pid(51), seq: 3 },
        KernelMsg::PartitionView { members: vec![member], local: member },
        KernelMsg::EsRegisterConsumer {
            req: RequestId(55),
            reg: ConsumerReg {
                consumer: Pid(60),
                filter: EventFilter::Types(vec![EventType::Custom(1), EventType::Custom(2)]),
            },
        },
        KernelMsg::EsRegisterAck { req: RequestId(55) },
        KernelMsg::EsUnregisterConsumer { consumer: Pid(60) },
        KernelMsg::EsRegisterSupplier {
            supplier: Pid(61),
            types: vec![EventType::Custom(4)],
        },
        KernelMsg::EsPublish { event: event.clone() },
        KernelMsg::EsNotify { event: event.clone() },
        KernelMsg::EsFedForward { event },
        KernelMsg::DbPut { entries: vec![entry.clone(), app_entry.clone()] },
        KernelMsg::DbQuery { req: RequestId(7), query: BulletinQuery::Node(NodeId(3)) },
        KernelMsg::DbResp {
            req: RequestId(7),
            entries: vec![entry.clone()].into(),
            complete: false,
        },
        KernelMsg::DbFedQuery { req: RequestId(8), query: BulletinQuery::Apps },
        KernelMsg::DbFedResp {
            req: RequestId(8),
            partition: PartitionId(2),
            entries: vec![app_entry],
        },
        KernelMsg::CkSave {
            service: ServiceKind::Event,
            partition: PartitionId(1),
            data: CheckpointData::EventService {
                consumers: vec![ConsumerReg { consumer: Pid(70), filter: EventFilter::All }],
                next_seq: 12,
            },
        },
        KernelMsg::CkLoad {
            req: RequestId(9),
            service: ServiceKind::DataBulletin,
            partition: PartitionId(0),
        },
        KernelMsg::CkLoadResp {
            req: RequestId(9),
            data: Some(CheckpointData::Bulletin { entries: vec![entry] }),
        },
        KernelMsg::CkDelete { service: ServiceKind::Group, partition: PartitionId(2) },
        KernelMsg::CkReplicate {
            service: ServiceKind::UserEnvironment,
            partition: PartitionId(1),
            data: CheckpointData::Scheduler {
                queued: vec![spec.clone()],
                running: vec![(JobId(11), vec![NodeId(1), NodeId(2)])],
            },
        },
        KernelMsg::CkSyncReq { req: RequestId(10) },
        KernelMsg::CkSyncResp {
            req: RequestId(10),
            items: vec![(
                ServiceKind::Group,
                PartitionId(1),
                CheckpointData::Supervision { entries: vec![("pws".into(), Pid(80))] },
            )],
        },
        KernelMsg::CfgQueryTopology { req: RequestId(11) },
        KernelMsg::CfgTopology {
            req: RequestId(11),
            topology: Box::new(ClusterTopology::uniform(2, 4, 1)),
        },
        KernelMsg::CfgQueryDirectory { req: RequestId(12) },
        KernelMsg::CfgDirectory {
            req: RequestId(12),
            directory: Box::new(directory),
        },
        KernelMsg::CfgSetParam {
            req: RequestId(13),
            key: "hb_interval_ms".into(),
            value: "250".into(),
        },
        KernelMsg::CfgAck { req: RequestId(13), ok: true },
        KernelMsg::DirectoryUpdate { partition: PartitionId(2), member },
        KernelMsg::DirectoryUpdateNode { services },
        KernelMsg::CfgNodeOp { req: RequestId(14), node: NodeId(5), op: NodeOp::Shutdown },
        KernelMsg::SecLogin {
            req: RequestId(15),
            user: UserId::new("alice"),
            secret: "hunter2".into(),
        },
        KernelMsg::SecLoginResp { req: RequestId(15), token: Some(token.clone()) },
        KernelMsg::SecCheck {
            req: RequestId(16),
            token: token.clone(),
            action: Action::Reconfigure,
        },
        KernelMsg::SecCheckResp { req: RequestId(16), allowed: false },
        KernelMsg::PpmExec {
            req: RequestId(17),
            job: JobId(21),
            task: task.clone(),
            targets: vec![NodeId(1), NodeId(3), NodeId(5)],
            reply_to: Pid(90),
        },
        KernelMsg::PpmExecAck {
            req: RequestId(17),
            job: JobId(21),
            node: NodeId(3),
            ok: true,
        },
        KernelMsg::PpmDelete {
            req: RequestId(18),
            job: JobId(21),
            targets: vec![NodeId(1)],
            reply_to: Pid(90),
        },
        KernelMsg::PpmDeleteAck { req: RequestId(18), job: JobId(21), node: NodeId(1) },
        KernelMsg::AppStarted { job: JobId(21), pid: Pid(91), task },
        KernelMsg::AppExited { job: JobId(21), pid: Pid(91), failed: true },
        KernelMsg::PwsSubmit { req: RequestId(19), token: token.clone(), spec: spec.clone() },
        KernelMsg::PwsSubmitResp {
            req: RequestId(19),
            accepted: false,
            reason: "pool full".into(),
        },
        KernelMsg::PwsCancel { req: RequestId(20), token, job: JobId(11) },
        KernelMsg::PwsCancelResp { req: RequestId(20), ok: true },
        KernelMsg::PwsJobStatus { req: RequestId(21), job: JobId(11) },
        KernelMsg::PwsJobStatusResp {
            req: RequestId(21),
            state: Some(JobState::Running),
            nodes: vec![NodeId(2), NodeId(4)],
        },
        KernelMsg::PwsQueueStatus { req: RequestId(22), pool: Some("hpc".into()) },
        KernelMsg::PwsQueueStatusResp {
            req: RequestId(22),
            rows: vec![QueueRow {
                job: JobId(11),
                pool: "hpc".into(),
                user: UserId::new("alice"),
                state: JobState::Queued,
                nodes: vec![NodeId(2)],
            }],
        },
        KernelMsg::PoolLeaseReq { req: RequestId(23), from_pool: "biz".into(), nodes: 3 },
        KernelMsg::PoolLeaseResp {
            req: RequestId(23),
            granted: vec![NodeId(10), NodeId(11)],
        },
        KernelMsg::PoolLeaseReturn { nodes: vec![NodeId(10)] },
        KernelMsg::PbsPoll { req: RequestId(24) },
        KernelMsg::PbsPollResp {
            req: RequestId(24),
            node: NodeId(6),
            usage,
            jobs: vec![JobId(11), JobId(12)],
        },
        KernelMsg::SlowPing { seq: 4_242 },
        KernelMsg::SlowPong { seq: 4_242 },
        KernelMsg::SlowLeaderYield { from_partition: PartitionId(1) },
        KernelMsg::MetaQuarantine {
            epoch: 6,
            quarantined: vec![PartitionId(2), PartitionId(5)],
        },
    ]
}

/// Round-trip every `KernelMsg` variant through the wire format, checking
/// the size estimator agrees with the actual encoding.
#[test]
fn kernel_msg_full_surface_round_trips() {
    use phoenix::proto::wire::{decode, encode};
    use phoenix::proto::KernelMsg;
    let msgs = kernel_msg_surface();
    // Every variant exactly once — a duplicate here means a copy/paste slip
    // left some variant uncovered.
    let mut seen = Vec::new();
    for m in &msgs {
        let d = std::mem::discriminant(m);
        assert!(!seen.contains(&d), "duplicate variant in surface: {m:?}");
        seen.push(d);
    }
    // Self-maintaining: the expected count is derived from an exhaustive
    // match inside the wire macro, so adding a variant without extending
    // this surface fails here — no hand-pinned constant to forget.
    assert_eq!(
        msgs.len(),
        <KernelMsg as phoenix::proto::WireVariants>::VARIANT_COUNT,
        "KernelMsg variant count changed — extend the surface"
    );
    for msg in msgs {
        let bytes = encode(&msg);
        assert_eq!(
            bytes.len(),
            encoded_size(&msg),
            "size estimator disagrees for {msg:?}"
        );
        let back: KernelMsg = decode(&bytes).expect("decode");
        assert_eq!(back, msg);
    }
}

/// Canonicality over the whole message surface: every byte string the
/// encoder can produce decodes back, and re-encoding the decoded value
/// reproduces the input *byte for byte*. Sits next to the VARIANT_COUNT
/// pin above so a new variant cannot ship a non-canonical encoding.
#[test]
fn kernel_msg_decode_reencodes_byte_identical() {
    use phoenix::proto::wire::{decode, encode};
    use phoenix::proto::KernelMsg;
    for msg in kernel_msg_surface() {
        let bytes = encode(&msg);
        let back: KernelMsg = decode(&bytes).expect("decode");
        assert_eq!(
            encode(&back),
            bytes,
            "decode∘encode is not byte-identity for {msg:?}"
        );
    }
}

/// The zero-copy view agrees with the owned decoder on every variant: hot
/// shapes parse borrowed, everything else falls back to `Other`, and
/// `to_owned` always reproduces what `decode` would.
#[test]
fn kernel_msg_view_agrees_with_decode() {
    use phoenix::proto::wire::encode;
    use phoenix::proto::KernelMsgView;
    let mut hot = 0usize;
    for msg in kernel_msg_surface() {
        let bytes = encode(&msg);
        let view = KernelMsgView::parse(&bytes).expect("view parse");
        hot += view.is_hot() as usize;
        assert_eq!(view.to_owned().expect("to_owned"), msg);
    }
    // The fixed-shape heartbeat/probe/ping family (9 variants) plus the
    // surface's Text-payload EsFedForward exemplar take the borrowed
    // path; its CkReplicate exemplar carries a non-Raw payload and
    // legitimately falls back.
    assert_eq!(hot, 10, "hot-view coverage drifted");
}

/// Strict canonical decode: flag bytes a canonical encoder can never emit
/// (bool/Option > 1) are rejected with `BadTag`, not silently accepted.
/// Exemplars live here (not only in the random fuzz above) so the rejected
/// bytes stay pinned.
#[test]
fn kernel_msg_rejects_noncanonical_flag_bytes() {
    use phoenix::proto::wire::{decode, encode, WireError};
    use phoenix::proto::{KernelMsg, PartitionId, RequestId};

    // RegroupAck's `frozen` bool is the 25th byte region: tag(4) +
    // from_partition(8) + epoch(8) + round(8). Locate it by diffing the
    // true/false encodings instead of hand-counting offsets.
    let mk = |frozen| KernelMsg::RegroupAck {
        from_partition: PartitionId(5),
        epoch: 9,
        round: 21,
        frozen,
        weight: 3,
        witness: PartitionId(2),
        witness_epoch: 5,
    };
    let t = encode(&mk(true));
    let f = encode(&mk(false));
    let flag_at = t
        .iter()
        .zip(&f)
        .position(|(a, b)| a != b)
        .expect("encodings differ only at the flag");
    for bad in [2u8, 0x7F, 0xFF] {
        let mut bytes = t.clone();
        bytes[flag_at] = bad;
        match decode::<KernelMsg>(&bytes) {
            Err(WireError::BadTag(v)) => assert_eq!(v, bad as u32),
            other => panic!("bool flag {bad:#x} must be rejected, got {other:?}"),
        }
    }

    // Option flag: SecLoginResp { token: None } encodes the flag last.
    let none = encode(&KernelMsg::SecLoginResp { req: RequestId(15), token: None });
    for bad in [2u8, 0xEE] {
        let mut bytes = none.clone();
        *bytes.last_mut().expect("non-empty") = bad;
        match decode::<KernelMsg>(&bytes) {
            Err(WireError::BadTag(v)) => assert_eq!(v, bad as u32),
            other => panic!("Option flag {bad:#x} must be rejected, got {other:?}"),
        }
    }
}

/// Decoding must be total: random byte mutations, truncations and garbage
/// may fail, but must never panic and never round-trip to different bytes.
#[test]
fn kernel_msg_decode_survives_random_mutations() {
    use phoenix::proto::wire::{decode, encode};
    use phoenix::proto::KernelMsg;
    let mut rng = SimRng::seed_from_u64(0xFA22_u64);
    let msgs = kernel_msg_surface();
    for msg in &msgs {
        let clean = encode(msg);
        for _ in 0..CASES / 4 {
            let mut bytes = clean.clone();
            // 1-4 random single-byte corruptions.
            for _ in 0..rng.gen_range(1usize..=4) {
                if bytes.is_empty() {
                    break;
                }
                let i = rng.gen_range(0usize..bytes.len());
                bytes[i] ^= (rng.gen_range(1u64..256)) as u8;
            }
            // Occasionally truncate too.
            if rng.gen_range(0u64..4) == 0 {
                bytes.truncate(rng.gen_range(0usize..=bytes.len()));
            }
            match decode::<KernelMsg>(&bytes) {
                // A mutation may land in a don't-care position (e.g. a
                // float payload) and still parse; decode is strictly
                // canonical (bool/Option flags > 1 are rejected), so
                // whatever parses must round-trip to the same bytes.
                Ok(back) => {
                    let re_bytes = encode(&back);
                    assert_eq!(re_bytes, bytes, "accepted bytes must be canonical");
                    let re: KernelMsg = decode(&re_bytes).expect("re-decode");
                    assert_eq!(re, back);
                }
                Err(_) => {}
            }
        }
    }
    // Pure garbage of random lengths.
    for _ in 0..CASES {
        let bytes: Vec<u8> =
            (0..rng.gen_range(0usize..200)).map(|_| rng.next_u64() as u8).collect();
        let _ = decode::<KernelMsg>(&bytes);
    }
}

// ---- determinism of the whole simulated kernel (three seeds suffice;
// each case is expensive) ----------------------------------------------------

#[test]
fn booted_cluster_is_deterministic() {
    use phoenix::kernel::boot::boot_and_stabilize;
    use phoenix::kernel::KernelParams;
    for seed in [1u64, 7, 1234] {
        let run = |seed: u64| {
            let (mut w, _c) = boot_and_stabilize(
                ClusterTopology::uniform(2, 4, 1),
                KernelParams::fast(),
                seed,
            );
            w.run_for(SimDuration::from_secs(5));
            (
                w.metrics().total.sent,
                w.metrics().total.sent_bytes,
                w.metrics().events_processed,
            )
        };
        assert_eq!(run(seed), run(seed), "seed {seed} diverged");
    }
}
