//! Column-major dense matrices for the Linpack workload.

use phoenix_sim::SimRng;

/// A dense `n × n` matrix in column-major order.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    pub n: usize,
    /// Column-major storage: element `(i, j)` at `data[j * n + i]`.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(n: usize) -> Matrix {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The HPL-style random test matrix: uniform in (-0.5, 0.5), plus a
    /// diagonal boost for comfortable conditioning of small test sizes.
    pub fn random(n: usize, seed: u64) -> Matrix {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut m = Matrix::zeros(n);
        for v in m.data.iter_mut() {
            *v = rng.gen_range(-0.5..0.5);
        }
        m
    }

    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[j * self.n + i]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[j * self.n + i] = v;
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let n = self.n;
        assert_eq!(x.len(), n);
        let mut y = vec![0.0; n];
        for j in 0..n {
            let col = &self.data[j * n..(j + 1) * n];
            let xj = x[j];
            for i in 0..n {
                y[i] += col[i] * xj;
            }
        }
        y
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        let n = self.n;
        let mut rowsum = vec![0.0f64; n];
        for j in 0..n {
            for i in 0..n {
                rowsum[i] += self.get(i, j).abs();
            }
        }
        rowsum.into_iter().fold(0.0, f64::max)
    }
}

/// Infinity norm of a vector.
pub fn vec_norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |a, &v| a.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut m = Matrix::zeros(3);
        m.set(1, 2, 7.5);
        assert_eq!(m.get(1, 2), 7.5);
        assert_eq!(m.data[2 * 3 + 1], 7.5);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(Matrix::random(8, 1), Matrix::random(8, 1));
        assert_ne!(Matrix::random(8, 1), Matrix::random(8, 2));
    }

    #[test]
    fn matvec_identity() {
        let n = 4;
        let mut m = Matrix::zeros(n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(m.matvec(&x), x);
    }

    #[test]
    fn norms() {
        let mut m = Matrix::zeros(2);
        m.set(0, 0, -3.0);
        m.set(0, 1, 4.0);
        assert_eq!(m.norm_inf(), 7.0);
        assert_eq!(vec_norm_inf(&[1.0, -9.0, 2.0]), 9.0);
    }
}
