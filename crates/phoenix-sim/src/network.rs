//! The simulated interconnect.
//!
//! The cluster has `k` parallel networks; NIC `i` of every node attaches to
//! network `i` (mirroring the Dawning 4000A, where each node had three
//! networks). A message travels over exactly one network, chosen either
//! explicitly by the sender (heartbeats probe every interface) or by default
//! routing (first interface healthy on both endpoints).
//!
//! Failures modelled here:
//! * NIC down — messages over that interface are dropped in either direction;
//! * node crash — handled by the world (all NICs effectively gone);
//! * link partition — ordered node pairs that cannot exchange messages;
//! * probabilistic unreliability — uniform message loss, duplication and
//!   extra reorder jitter, driven by the world's seeded RNG so lossy runs
//!   stay deterministic and replayable.

use crate::ids::{NicId, NodeId};
use crate::rng::SimRng;
use crate::time::SimDuration;
use std::collections::{HashMap, HashSet};

/// Latency and unreliability parameters of the interconnect.
#[derive(Clone, Debug)]
pub struct NetParams {
    /// One-way latency for messages between actors on the same node.
    pub local_latency: SimDuration,
    /// Base one-way latency across the LAN.
    pub lan_latency: SimDuration,
    /// Uniform jitter added on top of `lan_latency` (0..=jitter).
    pub jitter: SimDuration,
    /// Probability (in permille, 0..=1000) that a cross-node message is
    /// silently lost. Zero (the default) draws no randomness at all, so
    /// pre-existing seeded runs reproduce byte-for-byte.
    pub loss_permille: u16,
    /// Probability (in permille) that a cross-node message is delivered
    /// twice, the copy with an independently drawn latency.
    pub dup_permille: u16,
    /// Extra uniform jitter (0..=reorder_extra) added per cross-node
    /// message when non-zero: widens the reorder window well beyond the
    /// base `jitter` without shifting the latency floor.
    pub reorder_extra: SimDuration,
    /// Per-network loss overrides: index `i` replaces `loss_permille` for
    /// messages carried over network `i`. Networks beyond the vector's
    /// length keep the uniform base rate, so the empty default changes
    /// nothing.
    pub nic_loss_permille: Vec<u16>,
    /// Per-network duplication overrides, same indexing rules.
    pub nic_dup_permille: Vec<u16>,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            // Loopback / unix socket cost.
            local_latency: SimDuration::from_micros(5),
            // Typical 2005-era cluster ethernet one-way latency.
            lan_latency: SimDuration::from_micros(120),
            jitter: SimDuration::from_micros(30),
            loss_permille: 0,
            dup_permille: 0,
            reorder_extra: SimDuration::ZERO,
            nic_loss_permille: Vec::new(),
            nic_dup_permille: Vec::new(),
        }
    }
}

impl NetParams {
    /// A lossy profile: `loss_permille` uniform loss, a quarter of that as
    /// duplication, and a reorder window an order of magnitude wider than
    /// the base jitter.
    pub fn unreliable(loss_permille: u16) -> NetParams {
        NetParams {
            loss_permille,
            dup_permille: loss_permille / 4,
            reorder_extra: SimDuration::from_micros(300),
            ..NetParams::default()
        }
    }

    /// Override the loss rate of network `nic` only (other networks keep
    /// their current rate). The asymmetric-NIC benchmarks are built on
    /// this: one lossy interface, the rest clean.
    pub fn with_nic_loss(mut self, nic: NicId, permille: u16) -> NetParams {
        let i = nic.0 as usize;
        if self.nic_loss_permille.len() <= i {
            self.nic_loss_permille.resize(i + 1, self.loss_permille);
        }
        self.nic_loss_permille[i] = permille;
        // Lossy interfaces duplicate in proportion, like `unreliable`.
        if self.nic_dup_permille.len() <= i {
            self.nic_dup_permille.resize(i + 1, self.dup_permille);
        }
        self.nic_dup_permille[i] = permille / 4;
        if permille > 0 && self.reorder_extra.as_nanos() == 0 {
            self.reorder_extra = SimDuration::from_micros(300);
        }
        self
    }

    /// Base loss rate of network `nic` (override if set, uniform otherwise).
    pub fn nic_loss(&self, nic: NicId) -> u16 {
        *self
            .nic_loss_permille
            .get(nic.0 as usize)
            .unwrap_or(&self.loss_permille)
    }

    /// Base duplication rate of network `nic`.
    pub fn nic_dup(&self, nic: NicId) -> u16 {
        *self
            .nic_dup_permille
            .get(nic.0 as usize)
            .unwrap_or(&self.dup_permille)
    }
}

/// Unreliability of one routed path: the rates the world rolls against for
/// a message that crossed the wire on a specific network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct LinkQuality {
    pub loss_permille: u16,
    pub dup_permille: u16,
}

/// Reasons a message could not be carried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    SenderNicDown,
    ReceiverNicDown,
    Partitioned,
    NodeDown,
    DeadProcess,
    NoRoute,
    /// Probabilistic loss from the unreliability model (base rate or an
    /// injected loss burst).
    RandomLoss,
}

/// Connectivity state of the interconnect (partitions between node pairs).
#[derive(Debug, Default)]
pub struct Network {
    pub params: NetParams,
    /// Unordered blocked pairs, stored with min id first.
    blocked: HashSet<(NodeId, NodeId)>,
    /// Transient loss burst (`Fault::LossBurst`); the effective loss rate
    /// is the max of this and the configured base rate.
    burst_permille: u16,
    /// Degraded interfaces (`Fault::NicDegrade`): the NIC stays up but any
    /// path touching it loses at least this rate. Keyed per endpoint, so a
    /// degraded NIC hurts both directions of every link it carries.
    degraded: HashMap<(NodeId, NicId), u16>,
    /// Active island split (`Fault::Partition`): bit `i` set puts node `i`
    /// on the minority side of a two-way split; zero means no split. Nodes
    /// with ids ≥ 64 always sit on the zero side. Membership checks are
    /// pure bit tests — no RNG is ever drawn for a split, so zero-partition
    /// runs consume exactly the stream they did before the fault existed.
    island: u64,
    /// Fail-slow nodes (`Fault::SlowNode`): extra latency in permille of
    /// the base path latency for every message touching the node. Like the
    /// loss model, a world with no slow nodes draws no RNG for this.
    slow: HashMap<NodeId, u16>,
}

impl Network {
    pub fn new(params: NetParams) -> Network {
        Network {
            params,
            blocked: HashSet::new(),
            burst_permille: 0,
            degraded: HashMap::new(),
            island: 0,
            slow: HashMap::new(),
        }
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Block all traffic between `a` and `b` (both directions, all networks).
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.blocked.insert(Self::key(a, b));
    }

    /// Restore traffic between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.blocked.remove(&Self::key(a, b));
    }

    /// Remove every partition.
    pub fn heal_all(&mut self) {
        self.blocked.clear();
    }

    /// Is the pair currently partitioned?
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.blocked.contains(&Self::key(a, b))
    }

    /// Split the cluster into two islands (`Fault::Partition`): nodes with
    /// their bit set in `island` on one side, everyone else on the other.
    /// Replaces any previous split.
    pub fn set_island(&mut self, island: u64) {
        self.island = island;
    }

    /// Heal the island split (`Fault::Heal`).
    pub fn clear_island(&mut self) {
        self.island = 0;
    }

    /// The active island mask (0 when the cluster is whole).
    pub fn island(&self) -> u64 {
        self.island
    }

    /// Which side of the island split a node sits on (`false` when no
    /// split is active or the node id is ≥ 64).
    fn island_side(&self, node: NodeId) -> bool {
        node.0 < 64 && (self.island >> node.0) & 1 == 1
    }

    /// Does the active island split separate the pair?
    pub fn island_separates(&self, a: NodeId, b: NodeId) -> bool {
        self.island != 0 && self.island_side(a) != self.island_side(b)
    }

    /// Degrade the whole interconnect to at least `permille` loss
    /// (`Fault::LossBurst`).
    pub fn set_loss_burst(&mut self, permille: u16) {
        self.burst_permille = permille.min(1000);
    }

    /// End a loss burst (`Fault::LossClear`); the configured base rate
    /// stays in effect.
    pub fn clear_loss_burst(&mut self) {
        self.burst_permille = 0;
    }

    /// Loss probability currently in effect for a path with no per-NIC
    /// override or degradation, in permille.
    pub fn effective_loss_permille(&self) -> u16 {
        self.params.loss_permille.max(self.burst_permille)
    }

    /// Degrade one interface of one node to at least `permille` loss on
    /// every path that touches it (`Fault::NicDegrade`). The NIC stays up:
    /// routing still succeeds, messages just die more often.
    pub fn degrade_nic(&mut self, node: NodeId, nic: NicId, permille: u16) {
        self.degraded.insert((node, nic), permille.min(1000));
    }

    /// End an interface degradation (`Fault::NicRestore`).
    pub fn restore_nic(&mut self, node: NodeId, nic: NicId) {
        self.degraded.remove(&(node, nic));
    }

    /// Current degradation of an interface (0 when healthy).
    pub fn nic_degradation(&self, node: NodeId, nic: NicId) -> u16 {
        *self.degraded.get(&(node, nic)).unwrap_or(&0)
    }

    /// Mark a node fail-slow (`Fault::SlowNode`): every message it sends,
    /// receives, or services locally takes `factor_permille` extra latency
    /// (1000 = 2× the base). Replaces any previous factor for the node.
    pub fn set_slow(&mut self, node: NodeId, factor_permille: u16) {
        if factor_permille == 0 {
            self.slow.remove(&node);
        } else {
            self.slow.insert(node, factor_permille);
        }
    }

    /// End a fail-slow episode (`Fault::SlowClear`).
    pub fn clear_slow(&mut self, node: NodeId) {
        self.slow.remove(&node);
    }

    /// Current fail-slow factor of a node (0 when healthy).
    pub fn slow_factor(&self, node: NodeId) -> u16 {
        *self.slow.get(&node).unwrap_or(&0)
    }

    /// Combined slowness of a path: the worse of the two endpoints. A slow
    /// node drags both directions of every conversation it takes part in,
    /// including node-local service (same-node messages).
    pub fn path_slow_factor(&self, src: NodeId, dst: NodeId) -> u16 {
        if self.slow.is_empty() {
            return 0; // fast path: no map lookups in healthy worlds
        }
        self.slow_factor(src).max(self.slow_factor(dst))
    }

    /// Roll one permille-probability event. Draws from the RNG only when
    /// the rate is non-zero, so reliable runs consume exactly the same
    /// random stream as before the unreliability model existed.
    pub fn roll(permille: u16, rng: &mut SimRng) -> bool {
        permille > 0 && rng.gen_range(0..1000u64) < permille.min(1000) as u64
    }

    /// Roll the dice for one cross-node message over a path with no
    /// per-NIC override: `true` means the message is lost.
    pub fn loss_roll(&self, rng: &mut SimRng) -> bool {
        Self::roll(self.effective_loss_permille(), rng)
    }

    /// Roll for duplication at the uniform base rate: `true` means deliver
    /// a second copy.
    pub fn dup_roll(&self, rng: &mut SimRng) -> bool {
        Self::roll(self.params.dup_permille, rng)
    }

    /// Extra reorder jitter for one cross-node message (ZERO when the
    /// model is off; no RNG draw in that case).
    pub fn reorder_extra(&self, rng: &mut SimRng) -> SimDuration {
        if self.params.reorder_extra.as_nanos() == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(rng.gen_range(0..=self.params.reorder_extra.as_nanos()))
        }
    }

    /// Draw the one-way latency for a message from `src` to `dst`. When a
    /// fail-slow node sits on either end the base latency is stretched by
    /// its factor plus seeded jitter of up to half the added delay (a slow
    /// node smears its traffic, it doesn't just shift it); with no slow
    /// node involved the stretch branch draws no RNG, keeping pre-existing
    /// seeded runs byte-identical.
    pub fn latency(&self, src: NodeId, dst: NodeId, rng: &mut SimRng) -> SimDuration {
        let base = if src == dst {
            self.params.local_latency
        } else {
            let jitter_ns = if self.params.jitter.as_nanos() == 0 {
                0
            } else {
                rng.gen_range(0..=self.params.jitter.as_nanos())
            };
            self.params.lan_latency + SimDuration::from_nanos(jitter_ns)
        };
        let slow = self.path_slow_factor(src, dst);
        if slow == 0 {
            return base;
        }
        let added = base.as_nanos().saturating_mul(slow as u64) / 1000;
        let smear = if added >= 2 {
            rng.gen_range(0..=added / 2)
        } else {
            0
        };
        base + SimDuration::from_nanos(added.saturating_add(smear))
    }

    /// Decide whether a message may travel from (`src`, `src_nic`) to
    /// (`dst`, same network), and with what unreliability. Same-node
    /// messages never touch the wire (zero rates). The loss rate of a
    /// routed path is the worst of: the network's configured rate (per-NIC
    /// override or uniform base), an active cluster-wide loss burst, and
    /// any degradation of the two endpoint interfaces.
    pub fn route(
        &self,
        src: NodeId,
        dst: NodeId,
        nic: NicId,
        src_nic_up: bool,
        dst_nic_up: bool,
    ) -> Result<LinkQuality, DropReason> {
        if src == dst {
            return Ok(LinkQuality::default());
        }
        if !src_nic_up {
            return Err(DropReason::SenderNicDown);
        }
        if !dst_nic_up {
            return Err(DropReason::ReceiverNicDown);
        }
        if self.is_partitioned(src, dst) || self.island_separates(src, dst) {
            return Err(DropReason::Partitioned);
        }
        let loss = self
            .params
            .nic_loss(nic)
            .max(self.burst_permille)
            .max(self.nic_degradation(src, nic))
            .max(self.nic_degradation(dst, nic));
        Ok(LinkQuality {
            loss_permille: loss,
            dup_permille: self.params.nic_dup(nic),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_symmetric() {
        let mut net = Network::new(NetParams::default());
        net.partition(NodeId(3), NodeId(1));
        assert!(net.is_partitioned(NodeId(1), NodeId(3)));
        assert!(net.is_partitioned(NodeId(3), NodeId(1)));
        net.heal(NodeId(1), NodeId(3));
        assert!(!net.is_partitioned(NodeId(1), NodeId(3)));
    }

    #[test]
    fn heal_all_clears_everything() {
        let mut net = Network::new(NetParams::default());
        net.partition(NodeId(0), NodeId(1));
        net.partition(NodeId(2), NodeId(3));
        net.heal_all();
        assert!(!net.is_partitioned(NodeId(0), NodeId(1)));
        assert!(!net.is_partitioned(NodeId(2), NodeId(3)));
    }

    #[test]
    fn local_latency_is_constant() {
        let net = Network::new(NetParams::default());
        let mut rng = SimRng::seed_from_u64(1);
        let l = net.latency(NodeId(0), NodeId(0), &mut rng);
        assert_eq!(l, NetParams::default().local_latency);
    }

    #[test]
    fn lan_latency_within_bounds() {
        let p = NetParams::default();
        let net = Network::new(p.clone());
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            let l = net.latency(NodeId(0), NodeId(1), &mut rng);
            assert!(l >= p.lan_latency);
            assert!(l <= p.lan_latency + p.jitter);
        }
    }

    #[test]
    fn route_drops_on_nic_failure() {
        let net = Network::new(NetParams::default());
        assert_eq!(
            net.route(NodeId(0), NodeId(1), NicId(0), false, true),
            Err(DropReason::SenderNicDown)
        );
        assert_eq!(
            net.route(NodeId(0), NodeId(1), NicId(0), true, false),
            Err(DropReason::ReceiverNicDown)
        );
        assert_eq!(
            net.route(NodeId(0), NodeId(1), NicId(0), true, true),
            Ok(LinkQuality::default())
        );
    }

    #[test]
    fn route_same_node_ignores_nics() {
        let net = Network::new(NetParams::default());
        assert_eq!(
            net.route(NodeId(0), NodeId(0), NicId(0), false, false),
            Ok(LinkQuality::default())
        );
    }

    #[test]
    fn route_reports_per_nic_rates() {
        let params = NetParams::unreliable(20).with_nic_loss(NicId(0), 100);
        let net = Network::new(params);
        let q0 = net.route(NodeId(0), NodeId(1), NicId(0), true, true).unwrap();
        assert_eq!(q0.loss_permille, 100);
        assert_eq!(q0.dup_permille, 25);
        // Networks without an override keep the uniform base rates.
        let q1 = net.route(NodeId(0), NodeId(1), NicId(1), true, true).unwrap();
        assert_eq!(q1.loss_permille, 20);
        assert_eq!(q1.dup_permille, 5);
        // Out-of-range indices fall back to the base too.
        let q7 = net.route(NodeId(0), NodeId(1), NicId(7), true, true).unwrap();
        assert_eq!(q7.loss_permille, 20);
    }

    #[test]
    fn degraded_nic_raises_loss_both_directions() {
        let mut net = Network::new(NetParams::default());
        net.degrade_nic(NodeId(1), NicId(2), 400);
        let fwd = net.route(NodeId(0), NodeId(1), NicId(2), true, true).unwrap();
        let rev = net.route(NodeId(1), NodeId(0), NicId(2), true, true).unwrap();
        assert_eq!(fwd.loss_permille, 400);
        assert_eq!(rev.loss_permille, 400);
        // Other interfaces of the same node are untouched.
        let other = net.route(NodeId(0), NodeId(1), NicId(0), true, true).unwrap();
        assert_eq!(other.loss_permille, 0);
        net.restore_nic(NodeId(1), NicId(2));
        let fwd = net.route(NodeId(0), NodeId(1), NicId(2), true, true).unwrap();
        assert_eq!(fwd.loss_permille, 0);
    }

    #[test]
    fn burst_floors_per_nic_rates() {
        let params = NetParams::default().with_nic_loss(NicId(0), 100);
        let mut net = Network::new(params);
        net.set_loss_burst(300);
        let q0 = net.route(NodeId(0), NodeId(1), NicId(0), true, true).unwrap();
        let q1 = net.route(NodeId(0), NodeId(1), NicId(1), true, true).unwrap();
        assert_eq!(q0.loss_permille, 300);
        assert_eq!(q1.loss_permille, 300);
        net.clear_loss_burst();
        let q0 = net.route(NodeId(0), NodeId(1), NicId(0), true, true).unwrap();
        assert_eq!(q0.loss_permille, 100);
    }

    #[test]
    fn route_respects_partition() {
        let mut net = Network::new(NetParams::default());
        net.partition(NodeId(0), NodeId(1));
        assert_eq!(
            net.route(NodeId(0), NodeId(1), NicId(0), true, true),
            Err(DropReason::Partitioned)
        );
    }

    #[test]
    fn island_split_blocks_only_cross_traffic() {
        let mut net = Network::new(NetParams::default());
        // Nodes 0,1 on the minority side; 2,3 (and any id ≥ 64) opposite.
        net.set_island(0b0011);
        assert_eq!(
            net.route(NodeId(0), NodeId(2), NicId(0), true, true),
            Err(DropReason::Partitioned)
        );
        assert_eq!(
            net.route(NodeId(3), NodeId(1), NicId(1), true, true),
            Err(DropReason::Partitioned)
        );
        // Same-side traffic is untouched, on both sides.
        assert!(net.route(NodeId(0), NodeId(1), NicId(0), true, true).is_ok());
        assert!(net.route(NodeId(2), NodeId(3), NicId(2), true, true).is_ok());
        net.clear_island();
        assert!(net.route(NodeId(0), NodeId(2), NicId(0), true, true).is_ok());
    }

    #[test]
    fn island_composes_with_degradation_and_links() {
        let mut net = Network::new(NetParams::default());
        net.set_island(0b0001);
        net.degrade_nic(NodeId(2), NicId(0), 400);
        net.partition(NodeId(2), NodeId(3));
        // Cross-island: dropped regardless of degradation.
        assert!(net.route(NodeId(0), NodeId(2), NicId(0), true, true).is_err());
        // Same side: degradation and link partitions still apply.
        assert_eq!(
            net.route(NodeId(1), NodeId(2), NicId(0), true, true)
                .unwrap()
                .loss_permille,
            400
        );
        assert_eq!(
            net.route(NodeId(2), NodeId(3), NicId(1), true, true),
            Err(DropReason::Partitioned)
        );
        // Heal clears only the island; the rest persists.
        net.clear_island();
        assert!(net.route(NodeId(0), NodeId(2), NicId(1), true, true).is_ok());
        assert!(net.route(NodeId(2), NodeId(3), NicId(1), true, true).is_err());
    }

    #[test]
    fn island_checks_draw_no_randomness() {
        let mut net = Network::new(NetParams::default());
        net.set_island(0b0110);
        let mut rng = SimRng::seed_from_u64(11);
        let before = SimRng::seed_from_u64(11).next_u64();
        // Routing across and within the split is a pure membership test.
        let _ = net.route(NodeId(1), NodeId(3), NicId(0), true, true);
        let _ = net.route(NodeId(1), NodeId(2), NicId(0), true, true);
        assert!(!net.loss_roll(&mut rng));
        assert_eq!(rng.next_u64(), before);
    }

    #[test]
    fn zero_rates_draw_no_randomness() {
        let net = Network::new(NetParams::default());
        let mut rng = SimRng::seed_from_u64(11);
        let before = rng.next_u64();
        let mut rng = SimRng::seed_from_u64(11);
        assert!(!net.loss_roll(&mut rng));
        assert!(!net.dup_roll(&mut rng));
        assert_eq!(net.reorder_extra(&mut rng), SimDuration::ZERO);
        // The rolls consumed nothing: the next draw matches a fresh rng.
        assert_eq!(rng.next_u64(), before);
    }

    #[test]
    fn slow_node_stretches_both_directions_and_local() {
        let p = NetParams::default();
        let mut net = Network::new(p.clone());
        net.set_slow(NodeId(1), 3000); // 4× latency
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..50 {
            // Outgoing and incoming paths both stretch.
            for (a, b) in [(NodeId(1), NodeId(0)), (NodeId(0), NodeId(1))] {
                let l = net.latency(a, b, &mut rng);
                let floor = p.lan_latency * 4;
                let ceil = p.lan_latency * 4 + (p.lan_latency + p.jitter) * 11 / 2;
                assert!(l >= floor, "{l:?} < {floor:?}");
                assert!(l <= ceil, "{l:?} > {ceil:?}");
            }
        }
        // Node-local service time stretches too (the node is slow, not a link).
        let l = net.latency(NodeId(1), NodeId(1), &mut rng);
        assert!(l >= p.local_latency * 4);
        // Uninvolved pairs keep the normal bounds.
        let l = net.latency(NodeId(0), NodeId(2), &mut rng);
        assert!(l <= p.lan_latency + p.jitter);
        net.clear_slow(NodeId(1));
        let l = net.latency(NodeId(0), NodeId(1), &mut rng);
        assert!(l <= p.lan_latency + p.jitter);
    }

    #[test]
    fn zero_slow_draws_no_extra_randomness() {
        // A world with no slow nodes must consume exactly the stream it did
        // before the fail-slow model existed: same draw count per latency.
        let p = NetParams::default();
        let clean = Network::new(p.clone());
        let mut net = Network::new(p);
        net.set_slow(NodeId(7), 2000);
        net.clear_slow(NodeId(7));
        net.set_slow(NodeId(8), 0); // zero factor is a no-op, not an entry
        let mut a = SimRng::seed_from_u64(13);
        let mut b = SimRng::seed_from_u64(13);
        for _ in 0..100 {
            assert_eq!(
                clean.latency(NodeId(0), NodeId(1), &mut a),
                net.latency(NodeId(0), NodeId(1), &mut b)
            );
        }
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn slow_factor_replaced_not_stacked() {
        let mut net = Network::new(NetParams::default());
        net.set_slow(NodeId(2), 1000);
        net.set_slow(NodeId(2), 5000);
        assert_eq!(net.slow_factor(NodeId(2)), 5000);
        assert_eq!(net.path_slow_factor(NodeId(2), NodeId(0)), 5000);
        assert_eq!(net.path_slow_factor(NodeId(0), NodeId(1)), 0);
        net.clear_slow(NodeId(2));
        assert_eq!(net.slow_factor(NodeId(2)), 0);
    }

    #[test]
    fn loss_roll_tracks_configured_rate() {
        let net = Network::new(NetParams {
            loss_permille: 100, // 10%
            ..NetParams::default()
        });
        let mut rng = SimRng::seed_from_u64(42);
        let lost = (0..10_000).filter(|_| net.loss_roll(&mut rng)).count();
        assert!((800..1200).contains(&lost), "10% loss drew {lost}/10000");
    }

    #[test]
    fn burst_overrides_lower_base_rate() {
        let mut net = Network::new(NetParams::default());
        assert_eq!(net.effective_loss_permille(), 0);
        net.set_loss_burst(300);
        assert_eq!(net.effective_loss_permille(), 300);
        net.clear_loss_burst();
        assert_eq!(net.effective_loss_permille(), 0);
        // A burst never lowers a higher base rate.
        net.params.loss_permille = 500;
        net.set_loss_burst(300);
        assert_eq!(net.effective_loss_permille(), 500);
    }

    #[test]
    fn unreliable_profile_scales_with_loss() {
        let p = NetParams::unreliable(80);
        assert_eq!(p.loss_permille, 80);
        assert_eq!(p.dup_permille, 20);
        assert!(p.reorder_extra > SimDuration::ZERO);
    }
}
