//! Loss-tolerant request/reply machinery shared by the kernel services.
//!
//! The paper's kernel ran over real Ethernet where requests and replies are
//! lost; every service therefore needs the same three ingredients:
//!
//! * a **retry policy** — bounded attempts with exponential backoff and
//!   seeded jitter (deterministic under the simulator's RNG);
//! * a **retrier** — per-request attempt bookkeeping for the client side;
//! * a **dedup window** — server-side request-id memory that replays the
//!   cached reply for a retried request instead of re-executing it, making
//!   non-idempotent operations (like `CfgNodeOp::Start`) safe to retry.
//!
//! The default policy performs no retries at all, so services adopting this
//! module behave exactly as before unless a lossy profile opts in
//! (`KernelParams::fast_lossy`).

use phoenix_sim::{NicId, SimDuration, SimRng};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Bounded exponential backoff with seeded jitter.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total send attempts (1 = the original send only, no retries).
    pub max_attempts: u32,
    /// Delay before the first retry; doubles per subsequent attempt.
    pub base: SimDuration,
    /// Ceiling on any single backoff delay.
    pub max_backoff: SimDuration,
    /// Random jitter added on top of the delay, as a permille fraction of
    /// it (0 draws no randomness at all).
    pub jitter_permille: u16,
}

impl RetryPolicy {
    /// No retries: requests are sent exactly once (legacy behaviour).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base: SimDuration::ZERO,
            max_backoff: SimDuration::ZERO,
            jitter_permille: 0,
        }
    }

    /// The lossy-profile policy: up to 4 attempts, 40 ms → 80 ms → 160 ms
    /// (capped at 500 ms), each with up to +25% jitter.
    pub fn lossy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base: SimDuration::from_millis(40),
            max_backoff: SimDuration::from_millis(500),
            jitter_permille: 250,
        }
    }

    /// Does this policy ever retry? Adoption sites skip arming retry
    /// timers entirely when it does not, so the default profile schedules
    /// no extra events.
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Backoff before retry number `attempt` (1-based: attempt 1 is the
    /// first *re*try). Returns `None` once the attempt budget is spent.
    /// Jitter draws from `rng` only when configured, keeping zero-jitter
    /// policies off the random stream.
    pub fn delay(&self, attempt: u32, rng: &mut SimRng) -> Option<SimDuration> {
        if attempt + 1 > self.max_attempts {
            return None;
        }
        let exp = attempt.saturating_sub(1).min(32);
        let ns = self
            .base
            .as_nanos()
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff.as_nanos());
        let jitter = if self.jitter_permille == 0 || ns == 0 {
            0
        } else {
            let span = ns / 1000 * self.jitter_permille as u64;
            rng.gen_range(0..=span)
        };
        Some(SimDuration::from_nanos(ns + jitter))
    }
}

/// Client-side attempt bookkeeping for in-flight requests, keyed however
/// the adopting service identifies them.
#[derive(Debug)]
pub struct Retrier<K: Hash + Eq + Clone> {
    policy: RetryPolicy,
    attempts: HashMap<K, u32>,
}

impl<K: Hash + Eq + Clone> Retrier<K> {
    pub fn new(policy: RetryPolicy) -> Retrier<K> {
        Retrier {
            policy,
            attempts: HashMap::new(),
        }
    }

    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Record a (re)send of `key` and return the backoff to wait before
    /// the *next* retry, or `None` when the budget is exhausted (give up
    /// or fall back after the deadline). Counts `rpc.retries` telemetry
    /// from the second attempt on.
    pub fn next_backoff(&mut self, key: K, rng: &mut SimRng) -> Option<SimDuration> {
        let n = self.attempts.entry(key).or_insert(0);
        *n += 1;
        if *n > 1 {
            phoenix_telemetry::counter_add("rpc.retries", 1);
        }
        self.policy.delay(*n, rng)
    }

    /// The reply arrived (or the caller gave up): forget the request.
    pub fn done(&mut self, key: &K) {
        self.attempts.remove(key);
    }

    /// Attempts made so far for `key` (0 if unknown).
    pub fn attempts(&self, key: &K) -> u32 {
        self.attempts.get(key).copied().unwrap_or(0)
    }

    /// NIC-selection hook for adaptive multi-NIC routing: given the
    /// health-ranked interface list (best first, from
    /// [`crate::nic_health::NicHealth::ranked`]), pick the NIC for the next
    /// send of `key`. The first attempt goes over the healthiest
    /// interface; each retry rotates one step down the ranking, so a
    /// request whose preferred path is silently eating packets escapes to
    /// an independent network instead of re-rolling the same dice.
    /// `None` when no ranking is available (caller falls back to default
    /// routing).
    pub fn nic_for_attempt(&self, key: &K, ranked: &[NicId]) -> Option<NicId> {
        if ranked.is_empty() {
            return None;
        }
        let attempt = self.attempts(key) as usize;
        Some(ranked[attempt % ranked.len()])
    }
}

/// Server-side idempotency window: remembers the reply sent for each
/// recent request id and replays it for duplicates, evicting the oldest
/// entries beyond `capacity` (FIFO).
#[derive(Debug)]
pub struct DedupWindow<K: Hash + Eq + Clone, V> {
    capacity: usize,
    replies: HashMap<K, V>,
    order: VecDeque<K>,
}

impl<K: Hash + Eq + Clone, V> DedupWindow<K, V> {
    pub fn new(capacity: usize) -> DedupWindow<K, V> {
        DedupWindow {
            capacity: capacity.max(1),
            replies: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    /// The reply previously recorded for `key`, if it is still in the
    /// window. A hit means the request is a duplicate: replay this instead
    /// of re-executing. Counts `rpc.dedup.hits` telemetry.
    pub fn replay(&self, key: &K) -> Option<&V> {
        let hit = self.replies.get(key);
        if hit.is_some() {
            phoenix_telemetry::counter_add("rpc.dedup.hits", 1);
        }
        hit
    }

    /// Record the reply for a freshly executed request.
    pub fn record(&mut self, key: K, reply: V) {
        if self.replies.insert(key.clone(), reply).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.replies.remove(&old);
                }
            }
        }
    }

    pub fn len(&self) -> usize {
        self.replies.len()
    }

    pub fn is_empty(&self) -> bool {
        self.replies.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_never_retries() {
        let p = RetryPolicy::none();
        assert!(!p.retries_enabled());
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(p.delay(1, &mut rng), None);
    }

    #[test]
    fn backoff_doubles_and_is_bounded() {
        let p = RetryPolicy {
            max_attempts: 16,
            base: SimDuration::from_millis(40),
            max_backoff: SimDuration::from_millis(500),
            jitter_permille: 0,
        };
        let mut rng = SimRng::seed_from_u64(2);
        let d: Vec<u64> = (1..=8)
            .map(|a| p.delay(a, &mut rng).unwrap().as_nanos() / 1_000_000)
            .collect();
        assert_eq!(d, vec![40, 80, 160, 320, 500, 500, 500, 500]);
        // Attempt budget: with 16 attempts, the 16th retry is refused.
        assert!(p.delay(16, &mut rng).is_none());
    }

    #[test]
    fn jitter_is_seeded_and_bounded() {
        let p = RetryPolicy::lossy();
        let draw = |seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            (1..p.max_attempts)
                .map(|a| p.delay(a, &mut rng).unwrap())
                .collect::<Vec<_>>()
        };
        // Deterministic per seed.
        assert_eq!(draw(7), draw(7));
        // Each delay stays within [pure, pure * 1.25].
        let mut rng = SimRng::seed_from_u64(9);
        let pure = RetryPolicy {
            jitter_permille: 0,
            ..p.clone()
        };
        for a in 1..p.max_attempts {
            let jittered = p.delay(a, &mut rng).unwrap().as_nanos();
            let base = pure.delay(a, &mut rng).unwrap().as_nanos();
            assert!(jittered >= base);
            assert!(jittered <= base + base / 4);
        }
    }

    #[test]
    fn retrier_tracks_attempts_per_key() {
        let mut r: Retrier<u64> = Retrier::new(RetryPolicy::lossy());
        let mut rng = SimRng::seed_from_u64(3);
        assert!(r.next_backoff(1, &mut rng).is_some()); // original send
        assert!(r.next_backoff(1, &mut rng).is_some()); // retry 1
        assert!(r.next_backoff(1, &mut rng).is_some()); // retry 2
        assert_eq!(r.next_backoff(1, &mut rng), None); // budget spent
        assert_eq!(r.attempts(&1), 4);
        // Independent keys don't share the budget.
        assert!(r.next_backoff(2, &mut rng).is_some());
        r.done(&1);
        assert_eq!(r.attempts(&1), 0);
    }

    #[test]
    fn nic_for_attempt_rotates_down_the_ranking() {
        let mut r: Retrier<u64> = Retrier::new(RetryPolicy::lossy());
        let mut rng = SimRng::seed_from_u64(4);
        let ranked = [NicId(2), NicId(0), NicId(1)];
        // Before the first send: best NIC.
        assert_eq!(r.nic_for_attempt(&1, &ranked), Some(NicId(2)));
        r.next_backoff(1, &mut rng);
        assert_eq!(r.nic_for_attempt(&1, &ranked), Some(NicId(0)));
        r.next_backoff(1, &mut rng);
        assert_eq!(r.nic_for_attempt(&1, &ranked), Some(NicId(1)));
        r.next_backoff(1, &mut rng);
        // Wraps around once the ranking is exhausted.
        assert_eq!(r.nic_for_attempt(&1, &ranked), Some(NicId(2)));
        // Unranked callers keep default routing.
        assert_eq!(r.nic_for_attempt(&1, &[]), None);
    }

    #[test]
    fn dedup_window_replays_duplicates() {
        let mut w: DedupWindow<u64, &'static str> = DedupWindow::new(8);
        assert_eq!(w.replay(&1), None);
        w.record(1, "ack-1");
        assert_eq!(w.replay(&1), Some(&"ack-1"));
        // Re-recording the same key does not grow the window.
        w.record(1, "ack-1b");
        assert_eq!(w.len(), 1);
        assert_eq!(w.replay(&1), Some(&"ack-1b"));
    }

    #[test]
    fn dedup_window_evicts_oldest() {
        let mut w: DedupWindow<u64, u64> = DedupWindow::new(3);
        for k in 0..5u64 {
            w.record(k, k * 10);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.replay(&0), None, "oldest evicted");
        assert_eq!(w.replay(&1), None);
        assert_eq!(w.replay(&2), Some(&20));
        assert_eq!(w.replay(&4), Some(&40));
    }
}
