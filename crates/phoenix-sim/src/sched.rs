//! Event schedulers: the priority queue at the core of the simulator.
//!
//! Every event in the world is keyed by `(SimTime, seq)` — virtual time
//! with FIFO tie-breaking by insertion sequence. That total order *is* the
//! determinism contract: any two [`Scheduler`] implementations must pop an
//! identical stream for an identical push stream, byte for byte.
//!
//! Two implementations live here:
//!
//! * [`HeapScheduler`] — the original global `BinaryHeap`. O(log n) per
//!   operation with n = every pending event in the cluster. Kept as the
//!   reference/baseline for the differential harness (`tests/differential.rs`)
//!   and the `event_core` microbench.
//! * [`WheelScheduler`] — a hierarchical timer wheel. Heartbeats and retry
//!   timers — the overwhelming majority of events — are regular and
//!   short-horizon, so they land in O(1) bucketed slots; only the events
//!   sharing the *current* slot pass through a (tiny) ready heap to
//!   restore exact `(time, seq)` order. Far-future events cascade down
//!   from coarser levels; events beyond the wheel horizon wait in an
//!   overflow heap. Payloads are parked in a generation-checked
//!   [`EventArena`] so cascades move 24-byte references, not whole
//!   messages, and the hot path stops round-tripping the allocator.

use crate::arena::{ArenaStats, EventArena, Handle};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which event-queue implementation a world runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// The original global binary heap (differential baseline).
    Heap,
    /// Hierarchical timer wheel + message arena (production default).
    #[default]
    Wheel,
}

/// The event-queue interface the world drives. `seq` is assigned by the
/// caller (one global counter) — the scheduler must order by `(at, seq)`
/// ascending and never invent or drop entries.
pub trait Scheduler<T> {
    /// Insert an event. `at` is never earlier than the last popped time
    /// (the world only schedules with non-negative delays).
    fn push(&mut self, at: SimTime, seq: u64, item: T);

    /// Remove and return the earliest event.
    fn pop(&mut self) -> Option<(SimTime, u64, T)>;

    /// Remove and return the earliest event only if it is at or before
    /// `deadline` — the single-operation hot path of `run_until`.
    fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, u64, T)>;

    /// Virtual time of the earliest pending event. Introspection only; may
    /// cost O(n) for bucketed implementations.
    fn earliest(&self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pool accounting for leak tests. Implementations without a real
    /// arena report `live == len` and mirror push/pop counts.
    fn arena_stats(&self) -> ArenaStats;

    fn kind(&self) -> SchedulerKind;
}

/// Construct the scheduler implementation for `kind`.
pub fn make_scheduler<T: 'static>(kind: SchedulerKind) -> Box<dyn Scheduler<T>> {
    match kind {
        SchedulerKind::Heap => Box::new(HeapScheduler::new()),
        SchedulerKind::Wheel => Box::new(WheelScheduler::new()),
    }
}

// ---------------------------------------------------------------------------
// HeapScheduler — the original BinaryHeap event queue
// ---------------------------------------------------------------------------

struct HeapEntry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first. Ties broken
        // by insertion order (seq), giving deterministic FIFO semantics.
        Reverse((self.at, self.seq)).cmp(&Reverse((other.at, other.seq)))
    }
}

/// The pre-wheel event queue: one global binary heap.
pub struct HeapScheduler<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    allocs: u64,
    frees: u64,
}

impl<T> Default for HeapScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HeapScheduler<T> {
    pub fn new() -> Self {
        HeapScheduler {
            heap: BinaryHeap::new(),
            allocs: 0,
            frees: 0,
        }
    }
}

impl<T> Scheduler<T> for HeapScheduler<T> {
    fn push(&mut self, at: SimTime, seq: u64, item: T) {
        self.allocs += 1;
        self.heap.push(HeapEntry { at, seq, item });
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.heap.pop().map(|e| {
            self.frees += 1;
            (e.at, e.seq, e.item)
        })
    }

    fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, u64, T)> {
        match self.heap.peek() {
            Some(e) if e.at <= deadline => self.pop(),
            _ => None,
        }
    }

    fn earliest(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn arena_stats(&self) -> ArenaStats {
        ArenaStats {
            live: self.heap.len(),
            capacity: self.heap.capacity(),
            allocs: self.allocs,
            frees: self.frees,
        }
    }

    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Heap
    }
}

// ---------------------------------------------------------------------------
// WheelScheduler — hierarchical timer wheel + arena
// ---------------------------------------------------------------------------

/// log2(slots per level).
const SLOT_BITS: u32 = 6;
/// Slots per level; occupancy is one `u64` bitmap per level.
const SLOTS: u64 = 1 << SLOT_BITS;
/// Level-0 slot granularity: 2^16 ns = 65.536 µs. Network latencies
/// (10–500 µs) spread over a few slots; millisecond heartbeat timers land
/// levels 1–2; the 30 s paper heartbeat lands level 3.
const G0_SHIFT: u32 = 16;
/// Levels in the wheel. Horizon = 2^(16 + 6·5) ns ≈ 19.5 virtual hours
/// ahead of the cursor; anything further waits in the overflow heap.
const LEVELS: usize = 5;

/// Compact reference moved through slots and heaps: the `(at, seq)` sort
/// key plus the arena handle of the payload.
#[derive(Clone, Copy)]
struct EntryRef {
    at: u64,
    seq: u64,
    handle: Handle,
}

impl PartialEq for EntryRef {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for EntryRef {}
impl PartialOrd for EntryRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EntryRef {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest-first inside a max-BinaryHeap, FIFO on ties.
        Reverse((self.at, self.seq)).cmp(&Reverse((other.at, other.seq)))
    }
}

/// Hierarchical timer wheel.
///
/// `cursor` is the absolute level-0 slot the wheel has drained up to.
/// Entries in slots at or before the cursor live in `ready` (a small heap
/// restoring exact `(at, seq)` order within the slot); wheel slots at every
/// level only hold entries strictly after the cursor, within 63 slots of it
/// at that level's granularity; everything past the top level's horizon
/// sits in `overflow`.
pub struct WheelScheduler<T> {
    cursor: u64,
    /// Entries at or before the cursor, sorted descending by `(at, seq)`
    /// (so the earliest event is at the back, popped in O(1)). Refilled in
    /// batch by `advance` (one sort), trickle-fed by binary insertion when
    /// a push lands at or before the cursor.
    ready: Vec<EntryRef>,
    slots: Vec<Vec<EntryRef>>,
    occ: [u64; LEVELS],
    overflow: BinaryHeap<EntryRef>,
    arena: EventArena<T>,
    len: usize,
}

#[inline]
fn slot0(at: u64) -> u64 {
    at >> G0_SHIFT
}

impl<T> Default for WheelScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WheelScheduler<T> {
    pub fn new() -> Self {
        WheelScheduler {
            cursor: 0,
            ready: Vec::new(),
            slots: (0..LEVELS as u64 * SLOTS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            overflow: BinaryHeap::new(),
            arena: EventArena::new(),
            len: 0,
        }
    }

    /// Insert an entry whose level-0 slot is strictly after the cursor:
    /// pick the finest level where it is within one revolution (a sliding
    /// 63-slot window ahead of the cursor), else overflow. The highest bit
    /// where the entry's slot differs from the cursor bounds the level to
    /// two candidates, so placement is O(1) instead of a per-level scan:
    /// the sliding window at level L-1 may still hold an entry whose
    /// aligned window first matches at L (it straddles an alignment
    /// boundary), never one finer than that.
    fn insert(&mut self, e: EntryRef) {
        let s0 = slot0(e.at);
        debug_assert!(s0 > self.cursor);
        let aligned = (63 - (s0 ^ self.cursor).leading_zeros()) / SLOT_BITS;
        let mut lvl = (aligned as usize).min(LEVELS);
        if lvl > 0 {
            let shift = SLOT_BITS * (lvl as u32 - 1);
            if (s0 >> shift) - (self.cursor >> shift) < SLOTS {
                lvl -= 1;
            }
        }
        if lvl < LEVELS {
            let shift = SLOT_BITS * lvl as u32;
            let idx = ((s0 >> shift) & (SLOTS - 1)) as usize;
            self.slots[lvl * SLOTS as usize + idx].push(e);
            self.occ[lvl] |= 1 << idx;
        } else {
            self.overflow.push(e);
        }
    }

    /// Re-home an entry after a cursor move: current slot → ready,
    /// future slot → wheel/overflow. `ready` additions are appended
    /// unsorted; callers outside `advance` must restore the sort order
    /// (see `place_sorted`).
    fn place(&mut self, e: EntryRef) {
        if slot0(e.at) <= self.cursor {
            self.ready.push(e);
        } else {
            self.insert(e);
        }
    }

    /// `place` for the public push path: keeps `ready` sorted by inserting
    /// at the right position (EntryRef's `Ord` is earliest-last, matching
    /// the descending sort).
    fn place_sorted(&mut self, e: EntryRef) {
        if slot0(e.at) <= self.cursor {
            let pos = self.ready.binary_search(&e).unwrap_or_else(|p| p);
            self.ready.insert(pos, e);
        } else {
            self.insert(e);
        }
    }

    /// Move the cursor to the nearest occupied slot (any level, or the
    /// overflow minimum), cascading coarse slots downward. Guarantees
    /// progress: each call either fills `ready` or moves entries at least
    /// one level finer, so a `while ready.is_empty()` loop terminates in
    /// at most `LEVELS + 1` iterations.
    fn advance(&mut self) {
        debug_assert!(self.ready.is_empty());
        debug_assert!(self.len > 0);

        // The nearest occupied slot per level, as an absolute level-0 slot
        // start; the global minimum among those (and overflow) is the only
        // place the next event can be.
        let mut best: Option<u64> = None;
        for lvl in 0..LEVELS {
            if self.occ[lvl] == 0 {
                continue;
            }
            let shift = SLOT_BITS * lvl as u32;
            let pos = ((self.cursor >> shift) & (SLOTS - 1)) as u32;
            // Rotate so bit 0 is the slot one past the cursor; occupied
            // slots are always 1..=63 slots ahead at their own level.
            let rot = self.occ[lvl].rotate_right((pos + 1) % SLOTS as u32);
            let dist = rot.trailing_zeros() as u64 + 1;
            let start = ((self.cursor >> shift) + dist) << shift;
            best = Some(best.map_or(start, |b| b.min(start)));
        }
        if let Some(e) = self.overflow.peek() {
            let start = slot0(e.at);
            best = Some(best.map_or(start, |b| b.min(start)));
        }
        self.cursor = best.expect("advance on an empty scheduler");

        // Overflow entries now within the top level's horizon join the
        // wheel (or `ready`, if the jump landed exactly on them).
        let top_shift = SLOT_BITS * (LEVELS as u32 - 1);
        while let Some(e) = self.overflow.peek().copied() {
            if (slot0(e.at) >> top_shift) - (self.cursor >> top_shift) < SLOTS {
                self.overflow.pop();
                self.place(e);
            } else {
                break;
            }
        }

        // Cascade every slot whose span now contains the cursor, coarsest
        // first so entries settle at their finest level in one pass. The
        // slot's buffer is swapped out for the drain and swapped back after
        // so its capacity is recycled instead of freed every revolution.
        for lvl in (1..LEVELS).rev() {
            let shift = SLOT_BITS * lvl as u32;
            let idx = ((self.cursor >> shift) & (SLOTS - 1)) as usize;
            if self.occ[lvl] & (1 << idx) == 0 {
                continue;
            }
            self.occ[lvl] &= !(1 << idx);
            let mut entries = std::mem::take(&mut self.slots[lvl * SLOTS as usize + idx]);
            for e in entries.drain(..) {
                self.place(e);
            }
            // A drained entry never re-enters the slot it came from (it
            // always settles strictly finer or in `ready`), so the slot is
            // still the empty placeholder — give it its buffer back.
            std::mem::swap(&mut self.slots[lvl * SLOTS as usize + idx], &mut entries);
        }
        let idx0 = (self.cursor & (SLOTS - 1)) as usize;
        if self.occ[0] & (1 << idx0) != 0 {
            self.occ[0] &= !(1 << idx0);
            let mut entries = std::mem::take(&mut self.slots[idx0]);
            self.ready.append(&mut entries);
            std::mem::swap(&mut self.slots[idx0], &mut entries);
        }
        // One batch sort instead of per-entry heap sifts; `ready` was empty
        // on entry, so everything in it arrived during this advance.
        self.ready.sort_unstable();
    }

    fn fill_ready(&mut self) {
        while self.ready.is_empty() {
            self.advance();
        }
    }

    fn take(&mut self, e: EntryRef) -> (SimTime, u64, T) {
        self.len -= 1;
        (SimTime(e.at), e.seq, self.arena.take(e.handle))
    }
}

impl<T> Scheduler<T> for WheelScheduler<T> {
    fn push(&mut self, at: SimTime, seq: u64, item: T) {
        let handle = self.arena.alloc(item);
        self.len += 1;
        let e = EntryRef {
            at: at.0,
            seq,
            handle,
        };
        self.place_sorted(e);
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.len == 0 {
            return None;
        }
        self.fill_ready();
        let e = self.ready.pop().unwrap();
        Some(self.take(e))
    }

    fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, u64, T)> {
        if self.len == 0 {
            return None;
        }
        self.fill_ready();
        if self.ready.last().unwrap().at > deadline.0 {
            return None;
        }
        let e = self.ready.pop().unwrap();
        Some(self.take(e))
    }

    fn earliest(&self) -> Option<SimTime> {
        let mut best: Option<u64> = None;
        let mut consider = |at: u64| {
            best = Some(best.map_or(at, |b: u64| b.min(at)));
        };
        for e in &self.ready {
            consider(e.at);
        }
        if let Some(e) = self.overflow.peek() {
            consider(e.at);
        }
        for lvl in 0..LEVELS {
            let mut occ = self.occ[lvl];
            while occ != 0 {
                let idx = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                for e in &self.slots[lvl * SLOTS as usize + idx] {
                    consider(e.at);
                }
            }
        }
        best.map(SimTime)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    fn kind(&self) -> SchedulerKind {
        SchedulerKind::Wheel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(s: &mut dyn Scheduler<T>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = s.pop() {
            out.push((at.0, seq));
        }
        out
    }

    #[test]
    fn wheel_pops_in_time_then_seq_order() {
        let mut w = WheelScheduler::new();
        // Same tick, shuffled insertion; plus earlier and later events.
        w.push(SimTime(500), 1, "a");
        w.push(SimTime(500), 2, "b");
        w.push(SimTime(100), 3, "c");
        w.push(SimTime(900), 4, "d");
        w.push(SimTime(500), 5, "e");
        let popped: Vec<_> = std::iter::from_fn(|| w.pop()).collect();
        let order: Vec<_> = popped.iter().map(|(_, _, v)| *v).collect();
        assert_eq!(order, ["c", "a", "b", "e", "d"]);
    }

    #[test]
    fn wheel_handles_far_future_and_overflow() {
        let mut w = WheelScheduler::new();
        let day = 86_400u64 * 1_000_000_000; // past the 19.5 h horizon
        w.push(SimTime(day), 1, ());
        w.push(SimTime(10), 2, ());
        w.push(SimTime(day * 2), 3, ());
        w.push(SimTime(3_000_000_000), 4, ()); // 3 s — level 3
        assert_eq!(drain(&mut w), vec![(10, 2), (3_000_000_000, 4), (day, 1), (day * 2, 3)]);
        assert_eq!(w.arena_stats().live, 0);
    }

    #[test]
    fn wheel_accepts_push_at_popped_time() {
        let mut w = WheelScheduler::new();
        w.push(SimTime(1_000_000), 1, "first");
        let (at, _, v) = w.pop().unwrap();
        assert_eq!(v, "first");
        // New work at exactly the popped instant (handlers scheduling
        // zero-delay follow-ups) must come before anything later.
        w.push(SimTime(5_000_000), 2, "later");
        w.push(at, 3, "same-tick");
        let (_, _, v) = w.pop().unwrap();
        assert_eq!(v, "same-tick");
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut w = WheelScheduler::new();
        w.push(SimTime(2_000_000), 1, ());
        assert!(w.pop_before(SimTime(1_000_000)).is_none());
        assert_eq!(w.len(), 1);
        assert!(w.pop_before(SimTime(2_000_000)).is_some());
        assert!(w.pop_before(SimTime(u64::MAX)).is_none());
    }

    #[test]
    fn earliest_scans_every_region() {
        let mut w: WheelScheduler<()> = WheelScheduler::new();
        assert_eq!(w.earliest(), None);
        let day = 86_400u64 * 1_000_000_000;
        w.push(SimTime(day), 1, ());
        assert_eq!(w.earliest(), Some(SimTime(day)), "overflow only");
        w.push(SimTime(7_000_000_000), 2, ());
        assert_eq!(w.earliest(), Some(SimTime(7_000_000_000)), "wheel slot");
        w.push(SimTime(3), 3, ());
        assert_eq!(w.earliest(), Some(SimTime(3)), "cursor slot (ready)");
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn heap_and_wheel_agree_on_interleaved_ops() {
        let mut h: HeapScheduler<u64> = HeapScheduler::new();
        let mut w: WheelScheduler<u64> = WheelScheduler::new();
        let mut seq = 0u64;
        let mut push = |h: &mut HeapScheduler<u64>, w: &mut WheelScheduler<u64>, at: u64| {
            seq += 1;
            h.push(SimTime(at), seq, seq);
            w.push(SimTime(at), seq, seq);
        };
        for i in 0..1000u64 {
            // A mix of sub-slot, multi-level, and duplicate times.
            push(&mut h, &mut w, (i * 7919) % 50_000);
            push(&mut h, &mut w, i * 1_000_003);
            push(&mut h, &mut w, (i % 10) * 30_000_000_000);
        }
        loop {
            let a = h.pop();
            let b = w.pop();
            assert_eq!(
                a.as_ref().map(|(t, s, v)| (t.0, *s, *v)),
                b.as_ref().map(|(t, s, v)| (t.0, *s, *v))
            );
            if a.is_none() {
                break;
            }
        }
    }
}
