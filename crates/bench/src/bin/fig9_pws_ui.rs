//! Regenerates **Figure 9 — Integrated Web GUI for Phoenix-PWS:
//! Start/Shutdown Nodes** as a text console: the same operations (queue
//! overview, node start/shutdown through the kernel's configuration
//! service) rendered as tables instead of a web page.

use phoenix_kernel::boot::boot_and_stabilize;
use phoenix_kernel::client::ClientHandle;
use phoenix_kernel::KernelParams;
use phoenix_proto::{ClusterTopology, JobSpec, KernelMsg, NodeOp, RequestId, TaskSpec};
use phoenix_pws::{install_pws, login, queue_status, submit, ui, PolicyKind, PoolConfig};
use phoenix_sim::{NodeId, SimDuration};

fn main() {
    let topo = ClusterTopology::uniform(2, 8, 1);
    let (mut w, cluster) = boot_and_stabilize(topo, KernelParams::fast(), 39);
    let nodes: Vec<NodeId> = cluster
        .topology
        .partitions
        .iter()
        .flat_map(|p| p.compute.iter().copied())
        .collect();
    let pws = install_pws(
        &mut w,
        &cluster,
        vec![PoolConfig::new("batch", nodes, PolicyKind::Backfill)],
    );
    w.run_for(SimDuration::from_millis(200));
    let sched = pws.scheduler("batch").unwrap();
    let client = ClientHandle::spawn(&mut w, NodeId(2));
    let admin_token = login(&mut w, &cluster, &client, "admin", "adm1n");
    let user_token = login(&mut w, &cluster, &client, "alice", "alice-secret");

    // Submit a few jobs.
    for i in 1..=3u64 {
        submit(
            &mut w,
            &client,
            sched,
            user_token.clone(),
            JobSpec {
                task: TaskSpec {
                    duration_ns: Some(20_000_000_000),
                    ..TaskSpec::default()
                },
                ..JobSpec::simple(i, "alice", "batch", 2)
            },
        );
    }
    w.run_for(SimDuration::from_secs(1));

    println!("== Phoenix-PWS console: job queue ==");
    let rows = queue_status(&mut w, &client, sched);
    println!("{}", ui::render_queue(&rows));

    println!("== node board ==");
    println!("{}", ui::render_node_board(w.nodes(), 16));

    println!(">> shutdown nodes 14 and 15 (admin operation via config service)");
    let _ = admin_token; // authz of node ops is enforced in PWS submission paths;
                         // config-service node ops model the GUI's admin buttons.
    for (i, n) in [14u32, 15].into_iter().enumerate() {
        client.send(
            &mut w,
            cluster.config(),
            KernelMsg::CfgNodeOp {
                req: RequestId(900 + i as u64),
                node: NodeId(n),
                op: NodeOp::Shutdown,
            },
        );
    }
    w.run_for(SimDuration::from_secs(1));
    println!("{}", ui::render_node_board(w.nodes(), 16));

    println!(">> start them again");
    for (i, n) in [14u32, 15].into_iter().enumerate() {
        client.send(
            &mut w,
            cluster.config(),
            KernelMsg::CfgNodeOp {
                req: RequestId(910 + i as u64),
                node: NodeId(n),
                op: NodeOp::Start,
            },
        );
    }
    w.run_for(SimDuration::from_secs(2));
    println!("{}", ui::render_node_board(w.nodes(), 16));
    println!("Fig 9 reproduced: start/shutdown-node operations flow through the kernel");
    println!("(config service → node power + daemon respawn → NodeRecovery events).");
}
