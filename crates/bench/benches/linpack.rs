//! Timing benches for the Table 4 compute kernel: blocked LU
//! throughput, thread scaling, and the with-daemons condition.

use phoenix_bench::timing::bench;
use phoenix_hpl::{lu_factor, start_daemons, DaemonLoad, Matrix, DEFAULT_NB};

fn bench_lu() {
    for n in [128usize, 256] {
        for threads in [1usize, 2] {
            bench("lu_factor", &format!("n{n}/t{threads}"), 10, || {
                let mut a = Matrix::random(n, 11);
                lu_factor(&mut a, threads, DEFAULT_NB)
            });
        }
    }
}

fn bench_lu_with_daemons() {
    let n = 256usize;
    bench("lu_with_phoenix_daemons", "baseline", 10, || {
        let mut a = Matrix::random(n, 13);
        lu_factor(&mut a, 1, DEFAULT_NB)
    });
    let daemons = start_daemons(&DaemonLoad::phoenix_default());
    bench("lu_with_phoenix_daemons", "with_daemons", 10, || {
        let mut a = Matrix::random(n, 13);
        lu_factor(&mut a, 1, DEFAULT_NB)
    });
    daemons.stop();
}

fn main() {
    bench_lu();
    bench_lu_with_daemons();
}
