//! Regenerates **Figure 6 / Sec 5.3 — System Monitoring based on Phoenix
//! Kernel**: GridView on the full 640-node Dawning 4000A shape ("this
//! system includes 640 nodes, and it proves the high scalability of
//! Phoenix kernel"), plus the scalability sweep behind that claim.

use phoenix_bench::scale::monitor_run;
use phoenix_gridview::GridView;
use phoenix_kernel::boot::boot_cluster;
use phoenix_kernel::KernelParams;
use phoenix_proto::ClusterTopology;
use phoenix_sim::SimDuration;

fn main() {
    // ---- the Fig 6 snapshot at 640 nodes -------------------------------
    let topo = ClusterTopology::uniform(40, 16, 1); // 640 nodes
    let params = KernelParams::default(); // 30 s heartbeats, 10 s samples
    let (mut w, cluster) = boot_cluster(topo, params.clone(), 36);
    w.run_for(SimDuration::from_millis(200));
    let gv = GridView::spawn(
        &mut w,
        cluster.topology.partitions[0].compute[0],
        cluster.bulletin(),
        cluster.event(),
        SimDuration::from_secs(10), // the paper's "specific refreshing rate"
    );
    w.run_for(SimDuration::from_secs(60));
    println!("{}", gv.render());
    println!(
        "(paper Fig 6 snapshot: ~640 nodes, ~20% avg memory, ~19% avg CPU, 0.72% avg swap)\n"
    );

    // ---- scalability sweep ----------------------------------------------
    println!("Monitoring scalability sweep (30 virtual seconds each):");
    println!(
        "{:>7} {:>11} {:>13} {:>13} {:>10} {:>9}",
        "nodes", "partitions", "ctl msgs/s", "ctl bytes/s", "refreshes", "complete"
    );
    for partitions in [4usize, 8, 16, 24, 40] {
        let p = monitor_run(partitions, 16, 30, KernelParams::default(), 37);
        println!(
            "{:>7} {:>11} {:>13.1} {:>13.0} {:>10} {:>9}",
            p.nodes,
            p.partitions,
            p.msgs_per_sec,
            p.bytes_per_sec,
            p.refreshes,
            p.last_complete
        );
    }
    println!("\nControl traffic grows linearly in node count (heartbeats dominate), and");
    println!("GridView keeps getting complete cluster-wide answers at 640 nodes — the");
    println!("scalability claim of Sec 5.3.");
}
