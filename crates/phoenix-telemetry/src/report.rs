//! Bench report writer: registry → `results/BENCH_kernel.json`.
//!
//! The report is the machine-readable face of the paper's tables: every
//! instrumented kernel path shows up with count + p50/p90/p99/max in
//! nanoseconds, alongside counters, gauges, and arbitrary
//! experiment-specific sections (e.g. a fault-tolerance table) attached
//! by the bench binary.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::registry::MetricsRegistry;

/// Default output path, relative to the workspace root.
pub const DEFAULT_PATH: &str = "results/BENCH_kernel.json";

pub struct BenchReport {
    name: String,
    sections: Vec<(String, Json)>,
}

impl BenchReport {
    /// `name` identifies the experiment (e.g. `"table1_wd"`).
    pub fn new(name: impl Into<String>) -> Self {
        BenchReport { name: name.into(), sections: Vec::new() }
    }

    /// Attach an experiment-specific section (rendered after the standard
    /// telemetry sections, in attachment order).
    pub fn section(&mut self, key: impl Into<String>, value: Json) -> &mut Self {
        self.sections.push((key.into(), value));
        self
    }

    /// Build the JSON document from a registry snapshot.
    pub fn to_json(&self, reg: &MetricsRegistry) -> Json {
        let mut hists = Json::obj();
        for (path, stats) in reg.histograms() {
            let s = stats.hist.summary();
            hists = hists.set(
                path,
                Json::obj()
                    .set("service", Json::str(stats.service))
                    .set("count", Json::UInt(s.count))
                    .set("min_ns", Json::UInt(s.min_ns))
                    .set("p50_ns", Json::UInt(s.p50_ns))
                    .set("p90_ns", Json::UInt(s.p90_ns))
                    .set("p99_ns", Json::UInt(s.p99_ns))
                    .set("max_ns", Json::UInt(s.max_ns))
                    .set("mean_ns", Json::Num(if s.count == 0 {
                        0.0
                    } else {
                        s.sum_ns as f64 / s.count as f64
                    })),
            );
        }

        let mut counters = Json::obj();
        for (name, v) in reg.counters() {
            counters = counters.set(name, Json::UInt(v));
        }
        let mut gauges = Json::obj();
        for (name, v) in reg.gauges() {
            gauges = gauges.set(name, Json::Num(v));
        }

        let mut flight = Vec::new();
        for rec in reg.recorder().iter() {
            flight.push(
                Json::obj()
                    .set("node", Json::UInt(rec.node as u64))
                    .set("path", Json::str(rec.path))
                    .set("service", Json::str(rec.service))
                    .set("start_ns", Json::UInt(rec.start_ns))
                    .set("end_ns", Json::UInt(rec.end_ns))
                    .set("aborted", Json::Bool(rec.aborted)),
            );
        }

        let mut doc = Json::obj()
            .set("bench", Json::str(self.name.clone()))
            .set("schema", Json::str("phoenix-telemetry/v1"))
            .set("histograms", hists)
            .set("counters", counters)
            .set("gauges", gauges)
            .set(
                "flight_recorder",
                Json::obj()
                    .set("retained", Json::UInt(reg.recorder().len() as u64))
                    .set("evicted", Json::UInt(reg.recorder().evicted()))
                    .set("recent", Json::Arr(flight)),
            );
        for (k, v) in &self.sections {
            doc = doc.set(k.clone(), v.clone());
        }
        doc
    }

    /// Write the report to `path`, creating parent directories. Returns
    /// the path written.
    pub fn write_to(&self, reg: &MetricsRegistry, path: impl AsRef<Path>) -> io::Result<PathBuf> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        fs::write(path, self.to_json(reg).render())?;
        Ok(path.to_path_buf())
    }

    /// Write to [`DEFAULT_PATH`] under the workspace root: walks up from
    /// the current directory looking for the directory that contains
    /// `Cargo.toml` with a `[workspace]` table, falling back to the
    /// current directory (so `cargo run` from any crate dir and direct
    /// binary invocation both land the report in the same place).
    pub fn write_default(&self, reg: &MetricsRegistry) -> io::Result<PathBuf> {
        self.write_to(reg, workspace_root().join(DEFAULT_PATH))
    }
}

fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock;

    #[test]
    fn report_contains_histograms_counters_and_sections() {
        let mut reg = MetricsRegistry::new();
        clock::set_now(0);
        reg.counter_add("hb.sent", 7);
        reg.gauge_set("nodes.up", 5.0);
        reg.observe("wd.heartbeat.flight", "wd", 120_000);
        reg.observe("wd.heartbeat.flight", "wd", 130_000);
        reg.observe("gsd.scan", "gsd", 2_000_000);

        let mut rep = BenchReport::new("unit");
        rep.section("extra", Json::obj().set("rows", Json::UInt(3)));
        let text = rep.to_json(&reg).render();
        assert!(text.contains("\"bench\": \"unit\""));
        assert!(text.contains("\"wd.heartbeat.flight\""));
        assert!(text.contains("\"service\": \"wd\""));
        assert!(text.contains("\"count\": 2"));
        assert!(text.contains("\"hb.sent\": 7"));
        assert!(text.contains("\"nodes.up\": 5.0"));
        assert!(text.contains("\"extra\""));
    }

    #[test]
    fn write_to_creates_parent_dirs() {
        let reg = MetricsRegistry::new();
        let dir = std::env::temp_dir().join("phoenix-telemetry-test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.json");
        let written = BenchReport::new("t").write_to(&reg, &path).unwrap();
        let text = fs::read_to_string(&written).unwrap();
        assert!(text.contains("\"schema\": \"phoenix-telemetry/v1\""));
        let _ = fs::remove_dir_all(&dir);
    }
}
