//! The PBS-style baseline (paper Fig 7).
//!
//! "Main modules of PBS include user interface, scheduling, resource
//! monitoring, configuration, parallel process management." This actor is
//! the monolithic central server the paper contrasts PWS against:
//!
//! * resource state is collected by **polling** every node continuously
//!   ("PBS needs polling continually and consumes network bandwidth"),
//! * scheduling is FIFO over one global pool,
//! * there is **no** high-availability support ("PBS doesn't guarantee
//!   it") — the server is not supervised by any GSD.
//!
//! Job launch reuses the same PPM agents so the comparison isolates the
//! resource-collection and HA design, which is what Sec 5.4 compares.

use phoenix_proto::{
    JobId, JobSpec, KernelMsg, QueueRow, RequestId, ServiceDirectory,
};
use phoenix_sim::{Actor, Ctx, NodeId, Pid, ResourceUsage, SimDuration, TraceEvent};
use std::collections::{BTreeSet, HashMap};

const TOK_POLL: u64 = 1;
const TOK_SCHED: u64 = 2;

/// A running PBS job.
struct PbsJob {
    spec: JobSpec,
    nodes: Vec<NodeId>,
    /// Nodes still reporting the job in their poll responses. A job is
    /// complete when consecutive polls show it nowhere.
    last_seen_poll: u64,
    started_poll: u64,
}

/// The central PBS server actor.
pub struct PbsServer {
    directory: ServiceDirectory,
    nodes: Vec<NodeId>,
    poll_interval: SimDuration,
    sched_interval: SimDuration,

    usage: HashMap<NodeId, ResourceUsage>,
    queued: Vec<JobSpec>,
    running: HashMap<JobId, PbsJob>,
    free: BTreeSet<NodeId>,
    poll_round: u64,
    next_req: u64,
}

impl PbsServer {
    pub fn new(
        directory: ServiceDirectory,
        nodes: Vec<NodeId>,
        poll_interval: SimDuration,
    ) -> Self {
        let free = nodes.iter().copied().collect();
        PbsServer {
            directory,
            nodes,
            poll_interval,
            sched_interval: SimDuration::from_millis(500),
            usage: HashMap::new(),
            queued: Vec::new(),
            running: HashMap::new(),
            free,
            poll_round: 0,
            next_req: 0,
        }
    }

    fn req(&mut self) -> RequestId {
        self.next_req += 1;
        RequestId(self.next_req)
    }

    /// Poll every node's detector for resources and running jobs — the
    /// traffic the paper calls out.
    fn poll_all(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        self.poll_round += 1;
        let req = RequestId(self.poll_round);
        for &node in &self.nodes {
            if let Some(ns) = self.directory.node(node) {
                ctx.send(ns.detector, KernelMsg::PbsPoll { req });
            }
        }
        ctx.set_timer(self.poll_interval, TOK_POLL);
    }

    fn schedule_pass(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        // Strict FIFO, single pool.
        while let Some(head) = self.queued.first() {
            if (head.nodes as usize) > self.free.len() {
                break;
            }
            let spec = self.queued.remove(0);
            let nodes: Vec<NodeId> = {
                let picked: Vec<NodeId> =
                    self.free.iter().take(spec.nodes as usize).copied().collect();
                for n in &picked {
                    self.free.remove(n);
                }
                picked
            };
            let req = self.req();
            if let Some(first) = nodes.first().and_then(|n| self.directory.node(*n)) {
                ctx.send(
                    first.ppm,
                    KernelMsg::PpmExec {
                        req,
                        job: spec.id,
                        task: spec.task.clone(),
                        targets: nodes.clone(),
                        reply_to: ctx.pid(),
                    },
                );
            }
            ctx.trace(TraceEvent::Milestone {
                label: "pbs-job-dispatched",
                value: spec.id.0 as f64,
            });
            self.running.insert(
                spec.id,
                PbsJob {
                    spec,
                    nodes,
                    last_seen_poll: self.poll_round,
                    started_poll: self.poll_round,
                },
            );
        }
    }

    /// Completion detection by polling: a job unseen for two full poll
    /// rounds (after a warm-up round) is finished.
    fn reap(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        let round = self.poll_round;
        let mut done: Vec<JobId> = self
            .running
            .iter()
            .filter(|(_, j)| round > j.started_poll + 1 && round > j.last_seen_poll + 1)
            .map(|(&id, _)| id)
            .collect();
        // Sorted: `running` is a HashMap and completion sends messages.
        done.sort_unstable();
        for id in done {
            if let Some(j) = self.running.remove(&id) {
                for n in j.nodes {
                    self.free.insert(n);
                }
                ctx.trace(TraceEvent::Milestone {
                    label: "pbs-job-completed",
                    value: id.0 as f64,
                });
            }
        }
    }
}

impl Actor<KernelMsg> for PbsServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        ctx.trace(TraceEvent::ServiceUp {
            pid: ctx.pid(),
            service: "pbs-server",
            node: ctx.node(),
        });
        self.poll_all(ctx);
        ctx.set_timer(self.sched_interval, TOK_SCHED);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, KernelMsg>, from: Pid, msg: KernelMsg) {
        match msg {
            KernelMsg::PbsPollResp {
                node, usage, jobs, ..
            } => {
                self.usage.insert(node, usage);
                for job in jobs {
                    if let Some(j) = self.running.get_mut(&job) {
                        j.last_seen_poll = self.poll_round;
                    }
                }
            }
            // PBS accepts submissions without the kernel security service
            // (its own simple ACL is out of scope for the comparison).
            KernelMsg::PwsSubmit { req, spec, .. } => {
                let mut spec = spec;
                spec.submitted_ns = ctx.now().as_nanos();
                self.queued.push(spec);
                ctx.send(
                    from,
                    KernelMsg::PwsSubmitResp {
                        req,
                        accepted: true,
                        reason: String::new(),
                    },
                );
                self.schedule_pass(ctx);
            }
            KernelMsg::PwsQueueStatus { req, .. } => {
                let mut rows: Vec<QueueRow> = self
                    .queued
                    .iter()
                    .map(|j| QueueRow {
                        job: j.id,
                        pool: "pbs".into(),
                        user: j.user.clone(),
                        state: phoenix_proto::JobState::Queued,
                        nodes: vec![],
                    })
                    .collect();
                rows.extend(self.running.values().map(|j| QueueRow {
                    job: j.spec.id,
                    pool: "pbs".into(),
                    user: j.spec.user.clone(),
                    state: phoenix_proto::JobState::Running,
                    nodes: j.nodes.clone(),
                }));
                rows.sort_by_key(|r| r.job);
                ctx.send(from, KernelMsg::PwsQueueStatusResp { req, rows });
            }
            KernelMsg::PpmExecAck { .. } => {
                // Launch acks are informational for PBS (completion is
                // detected by polling).
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, KernelMsg>, token: u64) {
        match token {
            TOK_POLL => {
                self.reap(ctx);
                self.poll_all(ctx);
            }
            TOK_SCHED => {
                self.schedule_pass(ctx);
                ctx.set_timer(self.sched_interval, TOK_SCHED);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "pbs-server"
    }
}
