//! Detector services.
//!
//! Paper Sec 4.2 names four detectors. This actor — one per node —
//! implements the two data-producing ones directly:
//!
//! * the **physical resource detector** samples CPU, memory, swap, disk and
//!   network I/O of its node ("fundamental for job management's
//!   schedulers") and exports them to the partition's data bulletin;
//! * the **application state detector** tracks the applications running on
//!   the node — resources consumed, living status, and SLA flag
//!   ("fundamental for business application runtime environment").
//!
//! The node-state and network-state detectors are realized by the watch
//! daemon / GSD heartbeat analysis in [`crate::group`], exactly as the
//! paper describes GSD "monitoring status of nodes and networks in a
//! partition" through heartbeat analysis.

use crate::params::KernelParams;
use phoenix_proto::{
    AppState, AppStatus, BulletinEntry, BulletinKey, BulletinValue, Event, EventPayload,
    EventType, JobId, KernelMsg, PartitionId, TaskSpec,
};
use phoenix_sim::{Actor, Ctx, NodeId, Pid, ResourceUsage, TraceEvent};
use std::collections::HashMap;

const TOK_SAMPLE: u64 = 1;

/// A tracked application instance on this node.
struct TrackedApp {
    pid: Pid,
    task: TaskSpec,
    status: AppStatus,
}

/// The per-node detector actor.
pub struct Detector {
    node: NodeId,
    partition: PartitionId,
    params: KernelParams,
    bulletin: Pid,
    event: Pid,
    apps: HashMap<JobId, TrackedApp>,
    alarm_active: bool,
    started: bool,
    /// Set by the GSD's `RegroupFreeze` while the partition sits on a
    /// minority island: samples are taken but not exported — a bulletin
    /// nobody holds quorum for must not look freshly authoritative.
    frozen: bool,
}

impl Detector {
    pub fn new(node: NodeId, partition: PartitionId, params: KernelParams) -> Self {
        Detector {
            node,
            partition,
            params,
            bulletin: Pid(0),
            event: Pid(0),
            apps: HashMap::new(),
            alarm_active: false,
            started: false,
            frozen: false,
        }
    }

    /// Respawned detector with explicit wiring (after node restart).
    pub fn respawn(
        node: NodeId,
        partition: PartitionId,
        params: KernelParams,
        bulletin: Pid,
        event: Pid,
    ) -> Self {
        Detector {
            bulletin,
            event,
            ..Detector::new(node, partition, params)
        }
    }

    /// Self-introspection: compute the node's current resource usage from
    /// the OS baseline plus the load of every live application.
    fn compute_usage(&mut self, ctx: &mut Ctx<'_, KernelMsg>) -> ResourceUsage {
        // Small deterministic jitter models OS noise.
        let jitter = ctx.rng().gen_range(-0.005..0.005);
        let mut cpu = self.params.base_cpu_load + jitter;
        let mut mem = self.params.base_mem_load;
        let swap = self.params.base_swap_load;
        // Summed in job order: float addition is order-sensitive and
        // `apps` is a HashMap, so hash order would make usage (and every
        // decision derived from it) differ run to run.
        let mut jobs: Vec<JobId> = self.apps.keys().copied().collect();
        jobs.sort_unstable();
        for job in jobs {
            let app = &self.apps[&job];
            if app.status == AppStatus::Running {
                cpu += app.task.cpu_load;
                mem += app.task.mem_load;
            }
        }
        ResourceUsage {
            cpu,
            memory: mem,
            swap,
            disk_io: 0.01,
            net_io: 0.01,
        }
        .clamped()
    }

    /// Check liveness of tracked app processes: a process that vanished
    /// without announcing exit has failed.
    fn check_app_liveness(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        let mut failed: Vec<JobId> = Vec::new();
        for (&job, app) in &self.apps {
            if app.status == AppStatus::Running && !ctx.process_is_alive(app.pid) {
                failed.push(job);
            }
        }
        failed.sort_unstable();
        for job in failed {
            if let Some(app) = self.apps.get_mut(&job) {
                app.status = AppStatus::Failed;
            }
            self.publish_app_event(ctx, job, false);
        }
    }

    fn publish_app_event(&self, ctx: &mut Ctx<'_, KernelMsg>, job: JobId, up: bool) {
        let event = Event::new(
            EventType::AppStateChange,
            self.node,
            EventPayload::AppLifecycle {
                job,
                node: self.node,
                up,
            },
        );
        ctx.send(self.event, KernelMsg::EsPublish { event });
    }

    /// Export resource + application state to the partition bulletin.
    fn export(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        let usage = self.compute_usage(ctx);
        ctx.set_usage(self.node, usage);
        let stamp_ns = ctx.now().as_nanos();
        let mut entries = vec![BulletinEntry {
            key: BulletinKey::Resource(self.node),
            value: BulletinValue::Resource(usage),
            stamp_ns,
        }];
        let mut jobs: Vec<JobId> = self.apps.keys().copied().collect();
        jobs.sort_unstable();
        for job in jobs {
            let app = &self.apps[&job];
            entries.push(BulletinEntry {
                key: BulletinKey::App(self.node, job),
                value: BulletinValue::App(AppState {
                    job,
                    node: self.node,
                    cpu: app.task.cpu_load,
                    memory: app.task.mem_load,
                    status: app.status,
                    sla_ok: app.status == AppStatus::Running,
                }),
                stamp_ns,
            });
        }
        ctx.send(self.bulletin, KernelMsg::DbPut { entries });

        // Resource alarming (GridView's "System Overload" banner).
        if usage.cpu >= self.params.alarm_cpu && !self.alarm_active {
            self.alarm_active = true;
            let event = Event::new(
                EventType::ResourceAlarm,
                self.node,
                EventPayload::Metric(usage.cpu),
            );
            ctx.send(self.event, KernelMsg::EsPublish { event });
        } else if usage.cpu < self.params.alarm_cpu {
            self.alarm_active = false;
        }
    }

    fn start_sampling(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        if self.started {
            return;
        }
        self.started = true;
        // Stagger the first sample by node id so 640 detectors do not all
        // fire at the same virtual instant.
        let phase = (self.node.0 as u64 % 16) * (self.params.detector_sample.as_nanos() / 16);
        ctx.set_timer(phoenix_sim::SimDuration::from_nanos(phase.max(1)), TOK_SAMPLE);
    }
}

impl Actor<KernelMsg> for Detector {
    fn on_start(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        ctx.trace(TraceEvent::ServiceUp {
            pid: ctx.pid(),
            service: "detector",
            node: ctx.node(),
        });
        if self.bulletin != Pid(0) {
            self.start_sampling(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, KernelMsg>, from: Pid, msg: KernelMsg) {
        match msg {
            KernelMsg::Boot(dir) => {
                if let Some(me) = dir.partition(self.partition) {
                    self.bulletin = me.bulletin;
                    self.event = me.event;
                }
                self.start_sampling(ctx);
            }
            KernelMsg::PartitionView { local, .. } => {
                self.bulletin = local.bulletin;
                self.event = local.event;
            }
            KernelMsg::RegroupFreeze { frozen } => {
                if frozen && !self.frozen {
                    phoenix_telemetry::counter_add("detector.freezes", 1);
                }
                self.frozen = frozen;
            }
            KernelMsg::AppStarted { job, pid, task } => {
                self.apps.insert(
                    job,
                    TrackedApp {
                        pid,
                        task,
                        status: AppStatus::Running,
                    },
                );
                self.publish_app_event(ctx, job, true);
                self.export(ctx);
            }
            KernelMsg::AppExited { job, failed, .. } => {
                if let Some(app) = self.apps.get_mut(&job) {
                    app.status = if failed {
                        AppStatus::Failed
                    } else {
                        AppStatus::Exited
                    };
                }
                self.publish_app_event(ctx, job, false);
                self.export(ctx);
                // Exited apps drop out of tracking after their final export.
                self.apps.remove(&job);
            }
            KernelMsg::PbsPoll { req } => {
                // PBS-baseline resource poll: answer directly.
                let usage = self.compute_usage(ctx);
                let mut jobs: Vec<JobId> = self.apps.keys().copied().collect();
                jobs.sort_unstable();
                ctx.send(
                    from,
                    KernelMsg::PbsPollResp {
                        req,
                        node: self.node,
                        usage,
                        jobs,
                    },
                );
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, KernelMsg>, token: u64) {
        if token == TOK_SAMPLE {
            if !self.frozen {
                self.check_app_liveness(ctx);
                self.export(ctx);
            }
            ctx.set_timer(self.params.detector_sample, TOK_SAMPLE);
        }
    }

    fn name(&self) -> &str {
        "detector"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientHandle;
    use phoenix_proto::{MemberInfo, RequestId, ServiceDirectory};
    use phoenix_sim::{ClusterBuilder, NodeSpec, SimDuration, World};

    fn setup() -> (World<KernelMsg>, Pid, ClientHandle, ClientHandle) {
        let mut w = ClusterBuilder::new()
            .nodes(2, NodeSpec::default())
            .build::<KernelMsg>();
        let det = w.spawn(
            NodeId(0),
            Box::new(Detector::new(NodeId(0), PartitionId(0), KernelParams::fast())),
        );
        // Stand-in bulletin and event sinks.
        let bulletin = ClientHandle::spawn(&mut w, NodeId(1));
        let event = ClientHandle::spawn(&mut w, NodeId(1));
        let dir = ServiceDirectory {
            config: Pid(0),
            security: Pid(0),
            partitions: vec![MemberInfo {
                partition: PartitionId(0),
                node: NodeId(1),
                gsd: Pid(0),
                event: event.pid,
                bulletin: bulletin.pid,
                checkpoint: Pid(0),
                host_ppm: Pid(0),
            }],
            nodes: vec![],
        };
        w.inject(det, KernelMsg::Boot((dir).into()));
        (w, det, bulletin, event)
    }

    #[test]
    fn periodic_export_reaches_bulletin() {
        let (mut w, _det, bulletin, _event) = setup();
        w.run_for(SimDuration::from_secs(2));
        let puts = bulletin
            .drain()
            .into_iter()
            .filter(|(_, m)| matches!(m, KernelMsg::DbPut { .. }))
            .count();
        assert!(puts >= 2, "expected several samples, got {puts}");
    }

    #[test]
    fn app_lifecycle_updates_usage_and_events() {
        let (mut w, det, _bulletin, event) = setup();
        w.run_for(SimDuration::from_millis(700));
        w.inject(
            det,
            KernelMsg::AppStarted {
                job: JobId(7),
                pid: Pid(9999), // not alive; liveness check will flag it
                task: TaskSpec {
                    cpus: 2,
                    cpu_load: 0.6,
                    mem_load: 0.2,
                    duration_ns: None,
                },
            },
        );
        w.run_for(SimDuration::from_millis(100));
        // Node usage now reflects the app load.
        let u = w.node(NodeId(0)).usage;
        assert!(u.cpu > 0.5, "cpu={}", u.cpu);
        let evs = event.drain();
        assert!(evs.iter().any(|(_, m)| matches!(
            m,
            KernelMsg::EsPublish { event } if event.etype == EventType::AppStateChange
        )));
    }

    #[test]
    fn vanished_app_is_reported_failed() {
        let (mut w, det, _bulletin, event) = setup();
        w.inject(
            det,
            KernelMsg::AppStarted {
                job: JobId(1),
                pid: Pid(12345), // never existed → fails liveness
                task: TaskSpec::default(),
            },
        );
        w.run_for(SimDuration::from_secs(2));
        let evs = event.drain();
        let downs = evs
            .iter()
            .filter(|(_, m)| {
                matches!(m, KernelMsg::EsPublish { event }
                    if matches!(event.payload, EventPayload::AppLifecycle { up: false, .. }))
            })
            .count();
        assert!(downs >= 1, "app failure must be published");
    }

    #[test]
    fn pbs_poll_answers_with_usage() {
        let (mut w, det, _b, _e) = setup();
        let client = ClientHandle::spawn(&mut w, NodeId(1));
        client.send(&mut w, det, KernelMsg::PbsPoll { req: RequestId(4) });
        w.run_for(SimDuration::from_millis(5));
        let got = client.drain();
        assert!(matches!(
            got[0].1,
            KernelMsg::PbsPollResp {
                node: NodeId(0),
                ..
            }
        ));
    }
}
