//! Installing PWS onto a booted Phoenix cluster, plus client-side helpers
//! (login, submit, status) used by examples, tests, and benches.
//!
//! Paper Sec 5.4: "Phoenix kernel provides most of functions of PBS, and
//! the development of new PWS system focuses only on the user interface
//! and scheduling modules" — accordingly, installing PWS is just: spawn
//! one scheduler per pool on a server node, register its respawn factory
//! with the group service, and let the kernel do the rest.

use crate::pbs::PbsServer;
use crate::scheduler::{pool_directory, PoolConfig, PoolDirectory, PwsScheduler};
use phoenix_kernel::boot::PhoenixCluster;
use phoenix_kernel::client::ClientHandle;
use phoenix_proto::{AuthToken, JobSpec, KernelMsg, PartitionId, QueueRow, RequestId, UserId};
use phoenix_sim::{NodeId, Pid, SimDuration, World};
use std::collections::HashMap;

/// Handle to an installed PWS.
pub struct PwsHandle {
    /// Scheduler pid per pool name (as of installation; respawns update
    /// the shared pool directory instead).
    pub schedulers: HashMap<String, Pid>,
    pub pools: PoolDirectory,
}

impl PwsHandle {
    /// Current pid of a pool's scheduler (follows respawns).
    pub fn scheduler(&self, pool: &str) -> Option<Pid> {
        self.pools.borrow().get(pool).copied()
    }
}

/// Spawn one PWS scheduler per pool and register respawn factories so the
/// group service can keep them highly available.
pub fn install_pws(
    world: &mut World<KernelMsg>,
    cluster: &PhoenixCluster,
    pools: Vec<PoolConfig>,
) -> PwsHandle {
    let dir = pool_directory();
    let mut schedulers = HashMap::new();
    let nparts = cluster.topology.partitions.len();
    for (i, pool) in pools.into_iter().enumerate() {
        // Spread schedulers across partitions ("scheduling service group").
        let partition = PartitionId((i % nparts) as u32);
        let server = cluster.topology.partitions[partition.index()].server;

        // Respawn factory so the GSD can restart or migrate the scheduler.
        {
            let pool = pool.clone();
            let dir = dir.clone();
            let directory = cluster.directory.clone();
            cluster.registry.borrow_mut().register(
                format!("sched:{}", pool.name),
                Box::new(move |args| {
                    Box::new(PwsScheduler::respawn(
                        pool.clone(),
                        args.partition,
                        args.params.clone(),
                        directory.clone(),
                        dir.clone(),
                        args.gsd,
                        args.checkpoint,
                        args.members
                            .iter()
                            .find(|m| m.partition == args.partition)
                            .map(|m| m.event)
                            .unwrap_or(Pid(0)),
                        args.action,
                    ))
                }),
            );
        }

        let sched = PwsScheduler::new(
            pool.clone(),
            partition,
            cluster.params.clone(),
            cluster.directory.clone(),
            dir.clone(),
        );
        let pid = world.spawn(server, Box::new(sched));
        schedulers.insert(pool.name.clone(), pid);
    }
    PwsHandle {
        schedulers,
        pools: dir,
    }
}

/// Spawn the PBS baseline server on a node.
pub fn install_pbs(
    world: &mut World<KernelMsg>,
    cluster: &PhoenixCluster,
    node: NodeId,
    managed: Vec<NodeId>,
    poll_interval: SimDuration,
) -> Pid {
    world.spawn(
        node,
        Box::new(PbsServer::new(
            cluster.directory.clone(),
            managed,
            poll_interval,
        )),
    )
}

/// Log a user in through the security service; panics on failure (test
/// and example convenience).
pub fn login(
    world: &mut World<KernelMsg>,
    cluster: &PhoenixCluster,
    client: &ClientHandle,
    user: &str,
    secret: &str,
) -> AuthToken {
    client.send(
        world,
        cluster.security(),
        KernelMsg::SecLogin {
            req: RequestId(u64::MAX),
            user: UserId::new(user),
            secret: secret.to_string(),
        },
    );
    world.run_for(SimDuration::from_millis(5));
    for (_, m) in client.drain() {
        if let KernelMsg::SecLoginResp {
            req: RequestId(u64::MAX),
            token,
        } = m
        {
            return token.expect("login rejected");
        }
    }
    panic!("no login response");
}

/// Submit a job and wait for the accept/reject response.
pub fn submit(
    world: &mut World<KernelMsg>,
    client: &ClientHandle,
    scheduler: Pid,
    token: AuthToken,
    spec: JobSpec,
) -> bool {
    let req = RequestId(spec.id.0 | (1 << 62));
    client.send(world, scheduler, KernelMsg::PwsSubmit { req, token, spec });
    world.run_for(SimDuration::from_millis(10));
    client
        .drain()
        .into_iter()
        .find_map(|(_, m)| match m {
            KernelMsg::PwsSubmitResp {
                req: r, accepted, ..
            } if r == req => Some(accepted),
            _ => None,
        })
        .unwrap_or(false)
}

/// Fetch the queue status of a scheduler.
pub fn queue_status(
    world: &mut World<KernelMsg>,
    client: &ClientHandle,
    scheduler: Pid,
) -> Vec<QueueRow> {
    client.send(
        world,
        scheduler,
        KernelMsg::PwsQueueStatus {
            req: RequestId(u64::MAX - 1),
            pool: None,
        },
    );
    world.run_for(SimDuration::from_millis(10));
    client
        .drain()
        .into_iter()
        .find_map(|(_, m)| match m {
            KernelMsg::PwsQueueStatusResp { rows, .. } => Some(rows),
            _ => None,
        })
        .unwrap_or_default()
}
