//! Pinned chaos scenarios, replayed deterministically in tier-1.
//!
//! Each test pins a seed whose generated schedule exhibits a specific
//! hard shape (found with `cargo test -p phoenix-chaos --release --
//! --ignored scan`). Because schedule generation is deterministic per
//! seed, these run bit-for-bit identically on every machine; each test
//! first *proves* the seed still exhibits the shape it was pinned for
//! (so a generator change cannot silently turn it into a no-op) and then
//! asserts the full invariant suite passes.
//!
//! Failures are reproducible outside the test harness with, e.g.:
//!
//! ```text
//! cargo run --release -p phoenix-chaos --bin chaos -- --small --replay 2881
//! ```

use phoenix::chaos::{
    crash_repair_nodes, double_nic_nodes, generate_schedule, gsd_kills, island_partitions,
    link_partitions, loss_bursts, nic_flaps, run_schedule, slow_storms, ChaosConfig,
};
use phoenix::kernel::boot_cluster;
use phoenix::proto::PartitionId;

/// Run a pinned seed end-to-end and assert a clean outcome.
fn assert_clean(seed: u64) {
    let cfg = ChaosConfig::small();
    let out = run_schedule(seed, &cfg, u64::MAX, false);
    assert!(out.quiesced, "seed {seed}: cluster never quiesced");
    assert!(
        out.violations.is_empty(),
        "seed {seed} violated invariants: {:#?}\nreplay: cargo run --release -p \
         phoenix-chaos --bin chaos -- --small --replay {seed}",
        out.violations
    );
}

fn schedule_of(seed: u64) -> (Vec<phoenix::chaos::Step>, phoenix::kernel::PhoenixCluster) {
    let cfg = ChaosConfig::small();
    let (_world, cluster) = boot_cluster(cfg.topology(), cfg.params.clone(), seed);
    (generate_schedule(seed, &cfg, &cluster), cluster)
}

/// The meta-group leader's GSD is killed first; while the ring is still
/// absorbing that takeover, a partition server crashes (taking its GSD
/// with it) and a second daemon dies. Exercises leader re-election
/// overlapping a member takeover.
#[test]
fn leader_kill_during_takeover() {
    const SEED: u64 = 2881;
    let (steps, cluster) = schedule_of(SEED);
    let killed = gsd_kills(&steps, &cluster);
    assert!(
        killed.contains(&PartitionId(0)) && killed.len() >= 2,
        "pin drifted: seed {SEED} no longer kills the leader GSD plus another \
         GSD (kills: {killed:?}) — re-run the scan and re-pin"
    );
    assert_clean(SEED);
}

/// Two NICs of the same node fail with overlapping outage windows — the
/// diagnosis-ambiguity case between network failure and node failure
/// (paper Table 1 distinguishes them by per-NIC heartbeat silence).
#[test]
fn double_nic_failure() {
    const SEED: u64 = 137;
    let cfg = ChaosConfig::small();
    let (steps, _cluster) = schedule_of(SEED);
    assert!(
        !double_nic_nodes(&steps, cfg.horizon).is_empty(),
        "pin drifted: seed {SEED} no longer has overlapping NIC outages — \
         re-run the scan and re-pin"
    );
    assert_clean(SEED);
}

/// Three link partitions opened and healed in sequence; the detection
/// pipeline must ride out the suspicion windows without splitting the
/// meta group for good.
#[test]
fn partition_then_heal() {
    const SEED: u64 = 82;
    let (steps, _cluster) = schedule_of(SEED);
    assert!(
        link_partitions(&steps) >= 3,
        "pin drifted: seed {SEED} no longer partitions 3 links — re-run the \
         scan and re-pin"
    );
    assert_clean(SEED);
}

/// Two nodes crash back-to-back (≈130 ms apart), a third follows later;
/// all three are repaired through the configuration service's node-start
/// path while recovery from the earlier crashes is still in flight.
#[test]
fn crash_then_repair_storm() {
    const SEED: u64 = 62;
    let (steps, _cluster) = schedule_of(SEED);
    assert!(
        crash_repair_nodes(&steps).len() >= 3,
        "pin drifted: seed {SEED} no longer crash+repairs 3 nodes — re-run \
         the scan and re-pin"
    );
    assert_clean(SEED);
}

/// Lossy-mode pin: the whole run sits on a 2% random-loss network, three
/// loss bursts (up to 25%) open and close around two daemon kills — one of
/// them a GSD — plus a NIC outage. The retry/dedup/suspicion machinery must
/// carry detection and takeover through the bursts without a spurious
/// takeover elsewhere or a stale config directory.
///
/// Replay: `cargo run --release -p phoenix-chaos --bin chaos -- --lossy 20 --replay 178`
#[test]
fn loss_burst_during_gsd_kill() {
    const SEED: u64 = 178;
    let cfg = ChaosConfig::small_lossy(20);
    let (_world, cluster) = phoenix::kernel::boot_cluster_with_net(
        cfg.topology(),
        cfg.params.clone(),
        SEED,
        cfg.net.clone(),
    );
    let steps = generate_schedule(SEED, &cfg, &cluster);
    let killed = gsd_kills(&steps, &cluster);
    assert!(
        loss_bursts(&steps) >= 3 && !killed.is_empty(),
        "pin drifted: seed {SEED} no longer mixes >=3 loss bursts with a GSD \
         kill (bursts: {}, kills: {killed:?}) — re-run the lossy scan and re-pin",
        loss_bursts(&steps)
    );
    let out = run_schedule(SEED, &cfg, u64::MAX, false);
    assert!(out.quiesced, "seed {SEED}: lossy cluster never quiesced");
    assert!(
        out.violations.is_empty(),
        "seed {SEED} violated invariants under loss: {:#?}\nreplay: cargo run \
         --release -p phoenix-chaos --bin chaos -- --lossy 20 --replay {SEED}",
        out.violations
    );
}

/// Flapping-NIC pin: eight NIC degrade/restore cycles across two nodes'
/// interfaces overlap two daemon kills and two loss bursts, all on a 2%
/// random-loss network. The per-NIC health layer must ride the flaps —
/// demote a degraded interface, re-promote it only after the hysteresis
/// window — without a spurious takeover or a permanently demoted NIC.
///
/// Replay: `cargo run --release -p phoenix-chaos --bin chaos -- --lossy 20 --replay 4`
#[test]
fn flapping_nic_storm() {
    const SEED: u64 = 4;
    let cfg = ChaosConfig::small_lossy(20);
    let (_world, cluster) = phoenix::kernel::boot_cluster_with_net(
        cfg.topology(),
        cfg.params.clone(),
        SEED,
        cfg.net.clone(),
    );
    let steps = generate_schedule(SEED, &cfg, &cluster);
    assert!(
        nic_flaps(&steps) >= 8 && loss_bursts(&steps) >= 2,
        "pin drifted: seed {SEED} no longer mixes >=8 NIC flaps with loss \
         bursts (flaps: {}, bursts: {}) — re-run the lossy scan and re-pin",
        nic_flaps(&steps),
        loss_bursts(&steps)
    );
    let out = run_schedule(SEED, &cfg, u64::MAX, false);
    assert!(out.quiesced, "seed {SEED}: flapping cluster never quiesced");
    assert!(
        out.violations.is_empty(),
        "seed {SEED} violated invariants under NIC flapping: {:#?}\nreplay: \
         cargo run --release -p phoenix-chaos --bin chaos -- --lossy 20 --replay {SEED}",
        out.violations
    );
}

/// Partition-storm pin: a partition server crashes (taking its GSD), then
/// an island split cuts the config/leader side off into a 5-node minority
/// while the 10-node majority must detect the dead GSD, regroup, and take
/// over — with the minority leader frozen, not competing. Healing arrives
/// while the takeover is still settling. This seed originally surfaced
/// three distinct bugs: cross-island daemon respawns through the config
/// service, a respawned GSD giving up on directory wiring during a long
/// split, and a frozen leader's aborted rescue retracting another
/// observer's in-flight takeover telemetry mark.
///
/// Replay: `cargo run --release -p phoenix-chaos --bin chaos -- --partition --replay 26`
#[test]
fn island_split_during_takeover() {
    const SEED: u64 = 26;
    let cfg = ChaosConfig::small_partition();
    let (_world, cluster) = phoenix::kernel::boot_cluster_with_net(
        cfg.topology(),
        cfg.params.clone(),
        SEED,
        cfg.net.clone(),
    );
    let steps = generate_schedule(SEED, &cfg, &cluster);
    let killed = gsd_kills(&steps, &cluster);
    assert!(
        island_partitions(&steps) >= 2 && killed.contains(&PartitionId(1)),
        "pin drifted: seed {SEED} no longer mixes >=2 island storms with a \
         server-GSD kill (storms: {}, kills: {killed:?}) — re-run the \
         partition scan and re-pin",
        island_partitions(&steps)
    );
    let out = run_schedule(SEED, &cfg, u64::MAX, false);
    assert!(out.quiesced, "seed {SEED}: split cluster never quiesced");
    assert!(
        out.violations.is_empty(),
        "seed {SEED} violated invariants across island splits: {:#?}\nreplay: \
         cargo run --release -p phoenix-chaos --bin chaos -- --partition --replay {SEED}",
        out.violations
    );
}

/// A 12-step mixed schedule: node crashes, a NIC outage, two link
/// partitions and three repairs, all overlapping.
#[test]
fn mixed_fault_storm() {
    const SEED: u64 = 66;
    let (steps, _cluster) = schedule_of(SEED);
    assert!(
        steps.len() >= 12 && link_partitions(&steps) >= 2 && crash_repair_nodes(&steps).len() >= 3,
        "pin drifted: seed {SEED} lost its mixed-storm shape — re-run the \
         scan and re-pin"
    );
    assert_clean(SEED);
}

/// Extracts the nodes a schedule turns fail-slow.
fn slowed_nodes(steps: &[phoenix::chaos::Step]) -> Vec<phoenix::sim::NodeId> {
    steps
        .iter()
        .filter_map(|s| match s.action {
            phoenix::chaos::StepAction::Fault(phoenix::sim::Fault::SlowNode { node, .. }) => {
                Some(node)
            }
            _ => None,
        })
        .collect()
}

/// Fail-slow pin: both non-config partition servers turn gray at once with
/// overlapping windows (plus a link partition). Each slow GSD's own
/// detector reads *everyone* as slow — the gray-failure inversion — and
/// the slow princess demands the healthy leader yield. The leader must
/// refuse (its own detector does not corroborate), quarantine both gray
/// members, drain them to healthy home nodes, and reinstate once the
/// windows close. This seed originally surfaced the false-yield cascade
/// that left a partition with two live GSDs.
///
/// Replay: `cargo run --release -p phoenix-chaos --bin chaos -- --slow --replay 1`
#[test]
fn double_gray_servers() {
    const SEED: u64 = 1;
    let cfg = ChaosConfig::small_slow();
    let (_world, cluster) = boot_cluster(cfg.topology(), cfg.params.clone(), SEED);
    let steps = generate_schedule(SEED, &cfg, &cluster);
    let slowed = slowed_nodes(&steps);
    let p1 = cluster.topology.partitions[1].server;
    let p2 = cluster.topology.partitions[2].server;
    assert!(
        slow_storms(&steps) >= 2 && slowed.contains(&p1) && slowed.contains(&p2),
        "pin drifted: seed {SEED} no longer slows both member servers \
         (slowed: {slowed:?}) — re-run the slow scan and re-pin"
    );
    let out = run_schedule(SEED, &cfg, u64::MAX, false);
    assert!(out.quiesced, "seed {SEED}: gray cluster never quiesced");
    assert!(
        out.violations.is_empty(),
        "seed {SEED} violated invariants under double gray failure: {:#?}\n\
         replay: cargo run --release -p phoenix-chaos --bin chaos -- --slow --replay {SEED}",
        out.violations
    );
}

/// Fail-slow pin: the meta-leader's own node turns gray (27x) while a
/// compute node of another partition is also slow, amid crash/kill
/// steps. The princess must talk the degraded leader into the slow-leader
/// handoff (no takeover machinery, no dead verdict), the drained leader's
/// partition must migrate off the slow node, and the ring must reconverge
/// on a single leader everyone agrees on.
///
/// Replay: `cargo run --release -p phoenix-chaos --bin chaos -- --slow --replay 43`
#[test]
fn gray_leader_handoff() {
    const SEED: u64 = 43;
    let cfg = ChaosConfig::small_slow();
    let (_world, cluster) = boot_cluster(cfg.topology(), cfg.params.clone(), SEED);
    let steps = generate_schedule(SEED, &cfg, &cluster);
    let slowed = slowed_nodes(&steps);
    let leader_node = cluster.topology.partitions[0].server;
    assert!(
        slow_storms(&steps) >= 2 && slowed.contains(&leader_node),
        "pin drifted: seed {SEED} no longer slows the leader's node \
         (slowed: {slowed:?}) — re-run the slow scan and re-pin"
    );
    let out = run_schedule(SEED, &cfg, u64::MAX, false);
    assert!(out.quiesced, "seed {SEED}: gray-leader cluster never quiesced");
    assert!(
        out.violations.is_empty(),
        "seed {SEED} violated invariants under a gray leader: {:#?}\n\
         replay: cargo run --release -p phoenix-chaos --bin chaos -- --slow --replay {SEED}",
        out.violations
    );
}
