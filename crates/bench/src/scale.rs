//! Scalability harness: Sec 5.3 (monitoring at up to 640 nodes) and the
//! Sec 4.3 ablation (flat all-to-all membership vs the partitioned
//! meta-group).

use phoenix_gridview::GridView;
use phoenix_kernel::boot::boot_cluster;
use phoenix_kernel::group::FlatMember;
use phoenix_kernel::{FtParams, KernelParams};
use phoenix_proto::{ClusterTopology, KernelMsg};
use phoenix_sim::{ClusterBuilder, NodeId, NodeSpec, Pid, SimDuration};

/// One point of the monitoring-scalability sweep.
#[derive(Clone, Debug)]
pub struct MonitorPoint {
    pub nodes: usize,
    pub partitions: usize,
    /// Virtual seconds simulated.
    pub virtual_secs: f64,
    /// Control-plane messages per virtual second (heartbeats + meta +
    /// svc + bulletin + event).
    pub msgs_per_sec: f64,
    /// Control-plane bytes per virtual second.
    pub bytes_per_sec: f64,
    /// GridView refreshes completed and whether the last was complete.
    pub refreshes: u64,
    pub last_complete: bool,
    pub nodes_reporting: usize,
    pub avg_cpu: f64,
    pub avg_mem: f64,
    pub avg_swap: f64,
}

/// Run the GridView monitoring workload on `partitions × per_partition`
/// nodes for `secs` virtual seconds (Fig 6 / Sec 5.3).
pub fn monitor_run(
    partitions: usize,
    per_partition: usize,
    secs: u64,
    params: KernelParams,
    seed: u64,
) -> MonitorPoint {
    let topo = ClusterTopology::uniform(partitions, per_partition, 1);
    let nodes = topo.node_count();
    let (mut world, cluster) = boot_cluster(topo, params.clone(), seed);
    world.run_for(SimDuration::from_millis(100));
    let gv = GridView::spawn(
        &mut world,
        cluster.topology.partitions[0].compute[0],
        cluster.bulletin(),
        cluster.event(),
        params.detector_sample,
    );
    let m0 = snapshot_traffic(&world);
    let t0 = world.now();
    world.run_for(SimDuration::from_secs(secs));
    let m1 = snapshot_traffic(&world);
    let dt = world.now().since(t0).as_secs_f64();
    let snap = gv.snapshot();
    MonitorPoint {
        nodes,
        partitions,
        virtual_secs: dt,
        msgs_per_sec: (m1.0 - m0.0) as f64 / dt,
        bytes_per_sec: (m1.1 - m0.1) as f64 / dt,
        refreshes: gv.refreshes(),
        last_complete: snap.complete,
        nodes_reporting: snap.nodes_reporting,
        avg_cpu: snap.avg_cpu,
        avg_mem: snap.avg_memory,
        avg_swap: snap.avg_swap,
    }
}

fn snapshot_traffic(world: &phoenix_sim::World<KernelMsg>) -> (u64, u64) {
    let m = world.metrics();
    (m.total.sent, m.total.sent_bytes)
}

/// One point of the flat-vs-partitioned membership ablation.
#[derive(Clone, Debug)]
pub struct MembershipPoint {
    pub nodes: usize,
    /// Membership-protocol messages per virtual second.
    pub flat_msgs_per_sec: f64,
    pub partitioned_msgs_per_sec: f64,
    pub ratio: f64,
}

/// Compare membership-protocol traffic: every node in one flat group vs
/// the Phoenix partitioned design (WD heartbeats + GSD meta-ring) at the
/// same node count (16 nodes per partition).
pub fn membership_compare(nodes: usize, ft: FtParams, secs: u64, seed: u64) -> MembershipPoint {
    // Flat: n members all-to-all.
    let flat_rate = {
        let mut w = ClusterBuilder::new()
            .nodes(nodes, NodeSpec::default())
            .seed(seed)
            .build::<KernelMsg>();
        let pids: Vec<Pid> = (1..=nodes as u64).map(Pid).collect();
        for i in 0..nodes {
            let m = FlatMember::new(pids.clone(), ft.clone());
            let got = w.spawn(NodeId(i as u32), Box::new(m));
            assert_eq!(got, pids[i]);
        }
        let t0 = w.now();
        w.run_for(SimDuration::from_secs(secs));
        let dt = w.now().since(t0).as_secs_f64();
        w.metrics().label("meta").sent as f64 / dt
    };
    // Partitioned: full Phoenix boot, count hb + meta.
    let part_rate = {
        let partitions = nodes.div_ceil(16);
        let per = nodes / partitions;
        let topo = ClusterTopology::uniform(partitions, per.max(2), 1);
        let params = KernelParams {
            ft: ft.clone(),
            ..KernelParams::default()
        };
        let (mut w, _cluster) = boot_cluster(topo, params, seed + 1);
        w.run_for(SimDuration::from_millis(100));
        let m0 = {
            let m = w.metrics();
            m.label("hb").sent + m.label("meta").sent
        };
        let t0 = w.now();
        w.run_for(SimDuration::from_secs(secs));
        let dt = w.now().since(t0).as_secs_f64();
        let m1 = {
            let m = w.metrics();
            m.label("hb").sent + m.label("meta").sent
        };
        (m1 - m0) as f64 / dt
    };
    MembershipPoint {
        nodes,
        flat_msgs_per_sec: flat_rate,
        partitioned_msgs_per_sec: part_rate,
        ratio: flat_rate / part_rate.max(1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitoring_sees_whole_small_cluster() {
        let p = monitor_run(2, 4, 3, KernelParams::fast(), 5);
        assert_eq!(p.nodes, 8);
        assert_eq!(p.nodes_reporting, 8);
        assert!(p.last_complete);
        assert!(p.refreshes >= 2);
        assert!(p.msgs_per_sec > 0.0);
    }

    #[test]
    fn flat_membership_costs_more_and_gap_widens() {
        let ft = FtParams::fast();
        let small = membership_compare(32, ft.clone(), 5, 1);
        let big = membership_compare(64, ft, 5, 2);
        assert!(
            small.ratio > 1.0,
            "flat must already lose at 32 nodes: {small:?}"
        );
        assert!(
            big.ratio > small.ratio,
            "the gap must widen with scale: {small:?} vs {big:?}"
        );
    }
}
