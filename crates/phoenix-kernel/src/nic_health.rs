//! Per-NIC delivery-health scoring (adaptive multi-NIC routing).
//!
//! The paper's WDs heartbeat over *all* network interfaces so the GSD can
//! tell a NIC failure from a node failure; that redundancy is pure
//! replication. This module turns it into routing: every per-NIC delivery
//! observation (a heartbeat or ack that arrived, a sequence gap that says
//! earlier beats on that interface died on the wire) feeds an EWMA health
//! score per interface. Single-path traffic — probes, meta-ring control
//! messages, retried RPCs — then prefers the healthiest interface, so one
//! asymmetric lossy NIC degrades detection gracefully instead of eating
//! every probe.
//!
//! Demotion/promotion is hysteretic: an interface whose score falls below
//! `demote_below` is demoted (and the GSD publishes `NetworkDegraded`);
//! it is promoted again only once its score recovers past `promote_above`
//! *and* it has delivered `promote_streak` consecutive messages — a
//! flapping NIC cannot oscillate the routing preference every beat.
//!
//! Everything here is plain arithmetic on observed traffic: no RNG, no
//! clock, fully deterministic, and completely dormant (no acks sent, no
//! routing changes) unless a lossy parameter profile opts in.

use phoenix_sim::NicId;

/// Tuning for the per-NIC health layer. Default: disabled, so the paper
/// pipeline (and every pre-existing seeded trace) is untouched;
/// `KernelParams::fast_lossy()` opts in.
#[derive(Clone, Debug)]
pub struct NicHealthParams {
    /// Master switch: when false no acks are sent, no scores move, and
    /// routing falls back to the default first-healthy-NIC policy.
    pub enabled: bool,
    /// EWMA smoothing factor: `score = (1-alpha)*score + alpha*evidence`
    /// with evidence 1.0 for a delivery, 0.0 for a miss.
    pub alpha: f64,
    /// Demote an interface when its score falls below this.
    pub demote_below: f64,
    /// A demoted interface must climb back above this to be promoted...
    pub promote_above: f64,
    /// ...and must also have this many consecutive clean deliveries.
    pub promote_streak: u32,
}

impl Default for NicHealthParams {
    fn default() -> Self {
        NicHealthParams {
            enabled: false,
            alpha: 0.2,
            demote_below: 0.5,
            promote_above: 0.8,
            promote_streak: 8,
        }
    }
}

impl NicHealthParams {
    /// The profile enabled by `KernelParams::fast_lossy()`.
    pub fn lossy() -> NicHealthParams {
        NicHealthParams {
            enabled: true,
            ..NicHealthParams::default()
        }
    }
}

/// A demotion or promotion edge, returned so the owner can publish the
/// matching event exactly once per state change (hysteresis bounds the
/// event volume).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthTransition {
    Demoted(NicId),
    Promoted(NicId),
}

#[derive(Clone, Debug)]
struct NicState {
    score: f64,
    demoted: bool,
    clean_streak: u32,
}

impl NicState {
    fn fresh() -> NicState {
        NicState {
            score: 1.0,
            demoted: false,
            clean_streak: 0,
        }
    }
}

/// EWMA health scores for one node's view of the cluster's parallel
/// networks. Evidence is aggregated across peers: network `i` is shared
/// infrastructure, so a loss spike on any path over it counts against it.
#[derive(Clone, Debug)]
pub struct NicHealth {
    params: NicHealthParams,
    nics: Vec<NicState>,
}

/// Sequence gaps are capped before they count as misses: a huge gap is a
/// restart or a long partition, not that many independent loss events, and
/// must not nuke the score in one observation.
const MAX_MISSES_PER_GAP: u64 = 8;

impl NicHealth {
    pub fn new(params: NicHealthParams, nic_count: usize) -> NicHealth {
        NicHealth {
            params,
            nics: vec![NicState::fresh(); nic_count],
        }
    }

    pub fn enabled(&self) -> bool {
        self.params.enabled
    }

    pub fn nic_count(&self) -> usize {
        self.nics.len()
    }

    pub fn score(&self, nic: NicId) -> f64 {
        self.nics.get(nic.0 as usize).map(|n| n.score).unwrap_or(1.0)
    }

    pub fn is_demoted(&self, nic: NicId) -> bool {
        self.nics
            .get(nic.0 as usize)
            .map(|n| n.demoted)
            .unwrap_or(false)
    }

    /// One message observed arriving over `nic`. Returns `Promoted` when
    /// this delivery closes the hysteresis window of a demoted interface.
    pub fn observe_delivery(&mut self, nic: NicId) -> Option<HealthTransition> {
        if !self.params.enabled {
            return None;
        }
        let p = self.params.clone();
        let s = self.nics.get_mut(nic.0 as usize)?;
        // Written as `score += alpha*(1-score)` rather than the textbook
        // `(1-alpha)*score + alpha`: algebraically identical, but exact at
        // the fixed point, so an interface with only clean deliveries stays
        // at precisely 1.0 instead of drifting a few ULPs below it.
        s.score += p.alpha * (1.0 - s.score);
        s.clean_streak = s.clean_streak.saturating_add(1);
        if s.demoted && s.score > p.promote_above && s.clean_streak >= p.promote_streak {
            s.demoted = false;
            return Some(HealthTransition::Promoted(nic));
        }
        None
    }

    /// `gap` messages inferred lost on `nic` (a sequence jump). Returns
    /// `Demoted` when the score first crosses the demotion threshold.
    pub fn observe_misses(&mut self, nic: NicId, gap: u64) -> Option<HealthTransition> {
        if !self.params.enabled || gap == 0 {
            return None;
        }
        let p = self.params.clone();
        let s = self.nics.get_mut(nic.0 as usize)?;
        for _ in 0..gap.min(MAX_MISSES_PER_GAP) {
            s.score *= 1.0 - p.alpha;
        }
        s.clean_streak = 0;
        if !s.demoted && s.score < p.demote_below {
            s.demoted = true;
            return Some(HealthTransition::Demoted(nic));
        }
        None
    }

    /// Interfaces ordered best-first: healthy before demoted, then by
    /// score (descending), ties broken by the lowest index so ordering is
    /// deterministic and the default NIC wins when everything is clean.
    pub fn ranked(&self) -> Vec<NicId> {
        let mut order: Vec<usize> = (0..self.nics.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&self.nics[a], &self.nics[b]);
            sa.demoted
                .cmp(&sb.demoted)
                .then(sb.score.total_cmp(&sa.score))
                .then(a.cmp(&b))
        });
        order.into_iter().map(|i| NicId(i as u8)).collect()
    }

    /// The best interface satisfying `usable` (typically "up at both
    /// endpoints"); falls back through the ranking, `None` if nothing
    /// qualifies.
    pub fn best_where<F: Fn(NicId) -> bool>(&self, usable: F) -> Option<NicId> {
        self.ranked().into_iter().find(|&nic| usable(nic))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_health() -> NicHealth {
        NicHealth::new(NicHealthParams::lossy(), 3)
    }

    #[test]
    fn disabled_profile_is_inert() {
        let mut h = NicHealth::new(NicHealthParams::default(), 3);
        assert!(!h.enabled());
        for _ in 0..100 {
            assert_eq!(h.observe_misses(NicId(0), 5), None);
        }
        assert_eq!(h.score(NicId(0)), 1.0);
        assert!(!h.is_demoted(NicId(0)));
        assert_eq!(h.ranked(), vec![NicId(0), NicId(1), NicId(2)]);
    }

    #[test]
    fn scores_start_perfect_and_rank_by_index() {
        let h = lossy_health();
        assert_eq!(h.score(NicId(0)), 1.0);
        assert_eq!(h.ranked(), vec![NicId(0), NicId(1), NicId(2)]);
    }

    #[test]
    fn misses_demote_exactly_once_at_threshold() {
        let mut h = lossy_health();
        // alpha = 0.2: score after n misses = 0.8^n. 0.8^3 = 0.512,
        // 0.8^4 = 0.4096 < 0.5 — the 4th miss crosses the threshold.
        assert_eq!(h.observe_misses(NicId(1), 3), None);
        assert!(!h.is_demoted(NicId(1)));
        assert_eq!(
            h.observe_misses(NicId(1), 1),
            Some(HealthTransition::Demoted(NicId(1)))
        );
        // Further misses do not re-announce.
        assert_eq!(h.observe_misses(NicId(1), 2), None);
        assert!(h.is_demoted(NicId(1)));
        // The demoted NIC ranks last even against lower-scored healthy ones.
        assert_eq!(h.ranked(), vec![NicId(0), NicId(2), NicId(1)]);
    }

    #[test]
    fn promotion_needs_score_and_streak() {
        let mut h = lossy_health();
        h.observe_misses(NicId(0), 4);
        assert!(h.is_demoted(NicId(0)));
        // Recover: score climbs back as deliveries arrive, but promotion
        // waits for both the score bar and the clean streak.
        let mut promoted_at = None;
        for i in 1..=20u32 {
            if let Some(HealthTransition::Promoted(n)) = h.observe_delivery(NicId(0)) {
                assert_eq!(n, NicId(0));
                promoted_at = Some(i);
                break;
            }
        }
        let at = promoted_at.expect("clean deliveries must eventually promote");
        assert!(
            at >= 8,
            "promotion before the {}-delivery hysteresis window (at {at})",
            NicHealthParams::lossy().promote_streak
        );
        assert!(h.score(NicId(0)) > 0.8);
        assert!(!h.is_demoted(NicId(0)));
    }

    #[test]
    fn one_miss_resets_the_promotion_streak() {
        let mut h = lossy_health();
        h.observe_misses(NicId(2), 4);
        for _ in 0..7 {
            assert_eq!(h.observe_delivery(NicId(2)), None);
        }
        // A flap right before the window closes starts the streak over.
        h.observe_misses(NicId(2), 1);
        for _ in 0..7 {
            assert_eq!(h.observe_delivery(NicId(2)), None);
        }
        assert!(h.is_demoted(NicId(2)), "streak must restart after a miss");
        let mut promoted = false;
        for _ in 0..4 {
            if h.observe_delivery(NicId(2)).is_some() {
                promoted = true;
            }
        }
        assert!(promoted, "a full clean window after the flap promotes");
    }

    #[test]
    fn giant_seq_gaps_are_capped() {
        let mut h = lossy_health();
        h.observe_misses(NicId(0), u64::MAX);
        // Capped at MAX_MISSES_PER_GAP decays, not driven to 0.
        assert!(h.score(NicId(0)) > 0.9f64.powi(30));
        assert!((h.score(NicId(0)) - 0.8f64.powi(8)).abs() < 1e-12);
    }

    #[test]
    fn ten_percent_loss_never_demotes() {
        // The acceptance scenario: a 10%-lossy NIC must lose best-NIC
        // preference (score < 1) without being demoted (score stays far
        // above 0.5 in steady state: fixed point of 0.9 delivery share).
        let mut h = lossy_health();
        for i in 0..1000u64 {
            if i % 10 == 0 {
                h.observe_misses(NicId(0), 1);
            } else {
                h.observe_delivery(NicId(0));
            }
            h.observe_delivery(NicId(1));
        }
        assert!(!h.is_demoted(NicId(0)));
        assert!(h.score(NicId(0)) < h.score(NicId(1)));
        assert_eq!(h.ranked()[0], NicId(1), "clean NIC preferred");
    }

    #[test]
    fn best_where_respects_feasibility() {
        let mut h = lossy_health();
        h.observe_misses(NicId(0), 4);
        assert_eq!(h.best_where(|_| true), Some(NicId(1)));
        assert_eq!(h.best_where(|n| n.0 == 0), Some(NicId(0)));
        assert_eq!(h.best_where(|_| false), None);
    }
}
