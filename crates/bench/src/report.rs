//! Telemetry export glue shared by the bench binaries: a service-exercise
//! pass that drives every instrumented kernel path on small clusters, and
//! the registry → `results/BENCH_kernel.json` dump.
//!
//! The fault-injection tables alone populate the heartbeat/probe/diagnosis
//! histograms; the exercise pass adds job fan-out (PWS → PPM tree) and a
//! federated bulletin query so every exported report carries samples from
//! all instrumented services regardless of which binary produced it.

use std::path::PathBuf;

use phoenix_kernel::boot::boot_cluster;
use phoenix_kernel::client::ClientHandle;
use phoenix_proto::{BulletinQuery, JobSpec, KernelMsg, RequestId, TaskSpec};
use phoenix_pws::{install_pws, login, submit, PolicyKind, PoolConfig};
use phoenix_sim::{Fault, NodeId, SimDuration};
use phoenix_telemetry::{BenchReport, Json};

use crate::ft::{small_testbed, Component, FaultKind, FtRow};

/// Drive every instrumented kernel path at least once — a PWS job workload
/// (PPM tree fan-out + heartbeats + federated job events), two fault
/// pipelines (probe RTT, detect→diagnose, GSD takeover), and a federated
/// bulletin query — all against ONE booted world. Earlier versions booted
/// four separate worlds for the same coverage; sharing the cluster cuts the
/// exercise pass to a quarter of the boots and keeps every path exercised
/// under realistic steady-state load (heartbeats from the job phase are
/// still flowing when the faults land).
pub fn exercise_services(seed: u64) {
    let wall = std::time::Instant::now();
    let (topo, params) = small_testbed();
    let hb = params.ft.hb_interval;
    let (mut w, cluster) = boot_cluster(topo, params, seed);
    w.run_for(SimDuration::from_millis(100));

    // 1. Jobs through PWS → PPM: ppm.fanout.flight, wd/meta heartbeats,
    //    job lifecycle events federated through the event service.
    let compute: Vec<NodeId> = cluster
        .topology
        .partitions
        .iter()
        .flat_map(|p| p.compute.iter().copied())
        .collect();
    let h = install_pws(
        &mut w,
        &cluster,
        vec![PoolConfig::new("batch", compute.clone(), PolicyKind::Backfill)],
    );
    w.run_for(SimDuration::from_millis(100));
    let scheduler = h.scheduler("batch").expect("batch scheduler");
    let client = ClientHandle::spawn(&mut w, compute[0]);
    let token = login(&mut w, &cluster, &client, "alice", "alice-secret");
    for i in 0..3u64 {
        let spec = JobSpec {
            task: TaskSpec {
                duration_ns: Some(2_000_000_000),
                ..TaskSpec::default()
            },
            ..JobSpec::simple(i + 1, "alice", "batch", 2)
        };
        submit(&mut w, &client, scheduler, token.clone(), spec);
    }
    w.run_for(SimDuration::from_secs(4)); // jobs run to completion

    // 2. Fault pipelines on the same (still-busy) cluster: a WD process
    //    kill (gsd.probe.rtt + gsd.detect_to_diagnose), then a GSD kill
    //    (ring detection + gsd.takeover).
    let victim_wd = cluster
        .directory
        .node(cluster.topology.partitions[0].compute[1])
        .expect("directory entry")
        .wd;
    w.apply_fault(Fault::KillProcess(victim_wd));
    w.run_for(hb * 2 + SimDuration::from_secs(2));
    let victim_gsd = cluster.directory.partitions[1].gsd;
    w.apply_fault(Fault::KillProcess(victim_gsd));
    w.run_for(hb * 2 + SimDuration::from_secs(6));

    // 3. Federated bulletin query: bulletin.query.fed.
    client.send(
        &mut w,
        cluster.directory.partitions[0].bulletin,
        KernelMsg::DbQuery {
            req: RequestId(1),
            query: BulletinQuery::Resources,
        },
    );
    w.run_for(SimDuration::from_millis(400));

    // The "1 world" marker and wall time are asserted by scripts/verify.sh
    // (the pre-refactor pass booted 4 worlds for the same path coverage).
    println!(
        "exercise pass: 1 world ({} nodes), {:.2}s virtual, {} ms wall",
        cluster.topology.node_count(),
        w.now().as_secs_f64(),
        wall.elapsed().as_millis()
    );
}

/// Cross-check the trace-extracted phase times of a fault-tolerance table
/// against the kernel's own telemetry histograms, panicking on divergence.
///
/// The trace milestones (`FaultDetected` → `FaultDiagnosed` → `Recovered`)
/// and the `gsd.detect_to_diagnose` / `gsd.takeover` histograms are
/// recorded by *independent* code paths in the GSD; agreement between them
/// is evidence the exported numbers mean what the tables claim. Histogram
/// percentiles are bucket-ceiling estimates on a log scale, so the check
/// allows one power-of-two of slack plus a small absolute epsilon.
///
/// Call this right after `run_table`, before `exercise_services` pollutes
/// the registry with additional fault pipelines.
pub fn cross_check_histograms(rows: &[FtRow], component: Component) {
    fn within_log_bucket(sample_ns: u64, lo_ns: u64, hi_ns: u64) -> bool {
        const EPS_NS: u64 = 2_000_000; // 2 ms absolute slack for tiny phases
        sample_ns.saturating_mul(2) + EPS_NS >= lo_ns
            && sample_ns <= hi_ns.saturating_mul(2) + EPS_NS
    }

    let (d2d, takeover) = phoenix_telemetry::with(|reg| {
        (
            reg.histogram("gsd.detect_to_diagnose").map(|h| h.summary()),
            reg.histogram("gsd.takeover").map(|h| h.summary()),
        )
    });

    // Process and node faults flow through the probe pipeline that feeds
    // gsd.detect_to_diagnose; network faults are diagnosed inline.
    let probed: Vec<&FtRow> = rows
        .iter()
        .filter(|r| matches!(r.kind, FaultKind::Process | FaultKind::Node))
        .collect();
    if !probed.is_empty() {
        let d2d = d2d.expect("trace shows probed diagnoses but gsd.detect_to_diagnose is empty");
        assert!(
            d2d.count >= probed.len() as u64,
            "gsd.detect_to_diagnose has {} samples for {} probed rows",
            d2d.count,
            probed.len()
        );
        for r in &probed {
            let ns = (r.diagnose_s * 1e9) as u64;
            assert!(
                within_log_bucket(ns, d2d.min_ns, d2d.max_ns),
                "trace diagnose time {ns}ns for {:?}/{:?} diverges from the \
                 gsd.detect_to_diagnose histogram [{}, {}]ns",
                r.component,
                r.kind,
                d2d.min_ns,
                d2d.max_ns
            );
        }
    }

    match component {
        Component::Gsd => {
            // Table 2's process and node rows each kill a GSD: the ring
            // must have recorded a takeover whose duration matches the
            // trace's diagnose→recover interval.
            let t = takeover.expect("a GSD died but gsd.takeover is empty");
            assert!(
                t.count >= probed.len() as u64,
                "gsd.takeover has {} samples for {} GSD deaths",
                t.count,
                probed.len()
            );
            for r in &probed {
                let ns = (r.recover_s * 1e9) as u64;
                assert!(
                    within_log_bucket(ns, t.min_ns, t.max_ns),
                    "trace takeover time {ns}ns for {:?}/{:?} diverges from \
                     the gsd.takeover histogram [{}, {}]ns",
                    r.component,
                    r.kind,
                    t.min_ns,
                    t.max_ns
                );
            }
        }
        Component::Wd | Component::Es => {
            // No GSD died in Table 1; a takeover sample here means the
            // ring produced a false positive.
            if component == Component::Wd {
                let n = takeover.map(|t| t.count).unwrap_or(0);
                assert_eq!(n, 0, "Table 1 killed no GSD but gsd.takeover has {n} samples");
            }
        }
    }
    println!(
        "telemetry cross-check: {} trace rows agree with gsd.detect_to_diagnose/gsd.takeover",
        rows.len()
    );
}

/// Render fault-tolerance table rows as a JSON section.
pub fn table_json(rows: &[FtRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj()
                    .set("component", Json::str(format!("{:?}", r.component)))
                    .set("fault", Json::str(format!("{:?}", r.kind)))
                    .set("detect_s", Json::Num(r.detect_s))
                    .set("diagnose_s", Json::Num(r.diagnose_s))
                    .set("recover_s", Json::Num(r.recover_s))
                    .set("sum_s", Json::Num(r.sum_s))
            })
            .collect(),
    )
}

/// Dump this thread's registry (plus experiment-specific `sections`) to
/// `results/BENCH_kernel.json` and print a per-path latency summary.
pub fn write_report(name: &str, sections: Vec<(&str, Json)>) -> PathBuf {
    let mut rep = BenchReport::new(name);
    for (k, v) in sections {
        rep.section(k, v);
    }
    let path = phoenix_telemetry::with(|reg| {
        let mut paths: Vec<_> = reg
            .histograms()
            .map(|(p, st)| (p, st.service, st.hist.summary()))
            .collect();
        paths.sort_by_key(|(p, ..)| *p);
        println!("\nTelemetry: {} instrumented paths", paths.len());
        for (p, service, s) in paths {
            println!(
                "  {p:<28} [{service:<8}] count={:<6} p50={}ns p90={}ns p99={}ns max={}ns",
                s.count, s.p50_ns, s.p90_ns, s.p99_ns, s.max_ns
            );
        }
        rep.write_default(reg)
    })
    .expect("write BENCH_kernel.json");
    println!("report written: {}", path.display());
    path
}
