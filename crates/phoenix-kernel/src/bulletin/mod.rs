//! The data-bulletin service.
//!
//! Paper Sec 4.2: "Based on group service, data bulletin service is an
//! in-memory database which stores the state of cluster-wide physical
//! resource and application state; it provides interfaces for
//! non-persistent data storage and data query."
//!
//! One instance per partition. Detectors push their partition's readings to
//! the local instance; the instances form a federation shaped like a
//! complete graph (paper Fig 5): a query sent to *any* instance is fanned
//! out to every peer and answered with the merged cluster-wide result —
//! the "single access point". If a peer cannot answer before the timeout,
//! the reply is delivered with `complete = false`: "only the state of one
//! partition can't be obtained".

use crate::params::KernelParams;
use phoenix_proto::{
    BulletinEntry, BulletinQuery, CheckpointData, KernelMsg, PartitionId, RequestId, ServiceKind,
};
use phoenix_sim::{Actor, Ctx, FaultTarget, Pid, RecoveryAction, TimerId, TraceEvent};
use std::collections::{BTreeMap, HashMap};

const TOK_HB: u64 = 1;
const TOK_CKPT: u64 = 2;
const TOK_FED_BASE: u64 = 1_000;

/// An in-flight federated query.
struct PendingQuery {
    client: Pid,
    client_req: RequestId,
    query: BulletinQuery,
    acc: Vec<BulletinEntry>,
    waiting: Vec<PartitionId>,
    timer: TimerId,
    /// Federation-timeout fires so far; under a retrying policy each fire
    /// short of the budget re-asks the peers that have not answered.
    attempts: u32,
}

/// The data-bulletin actor.
pub struct DataBulletin {
    partition: PartitionId,
    params: KernelParams,
    gsd: Pid,
    checkpoint: Pid,
    /// Peer instances: (partition, pid).
    peers: Vec<(PartitionId, Pid)>,
    entries: BTreeMap<phoenix_proto::BulletinKey, (phoenix_proto::BulletinValue, u64)>,
    pending: HashMap<u64, PendingQuery>,
    next_fed: u64,
    hb_seq: u64,
    recovery: Option<RecoveryAction>,
    restoring: bool,
    /// Set by the GSD's `RegroupFreeze` while this partition sits on a
    /// minority island: answers degrade to `complete = false` without
    /// fanning out (the federation is unreachable by definition, and a
    /// minority must not present its view as the cluster's).
    frozen: bool,
}

impl DataBulletin {
    /// Boot-time instance.
    pub fn new(partition: PartitionId, params: KernelParams) -> Self {
        DataBulletin {
            partition,
            params,
            gsd: Pid(0),
            checkpoint: Pid(0),
            peers: Vec::new(),
            entries: BTreeMap::new(),
            pending: HashMap::new(),
            next_fed: 0,
            hb_seq: 0,
            recovery: None,
            restoring: false,
            frozen: false,
        }
    }

    /// Respawned instance; restores its soft state from checkpoint so it
    /// can answer queries before detectors re-push.
    pub fn respawn(
        partition: PartitionId,
        params: KernelParams,
        gsd: Pid,
        checkpoint: Pid,
        peers: Vec<(PartitionId, Pid)>,
        action: RecoveryAction,
    ) -> Self {
        DataBulletin {
            partition,
            params,
            gsd,
            checkpoint,
            peers,
            entries: BTreeMap::new(),
            pending: HashMap::new(),
            next_fed: 0,
            hb_seq: 0,
            recovery: Some(action),
            restoring: true,
            frozen: false,
        }
    }

    fn register_with_gsd(&self, ctx: &mut Ctx<'_, KernelMsg>) {
        ctx.send(
            self.gsd,
            KernelMsg::SvcRegister {
                kind: ServiceKind::DataBulletin,
                pid: ctx.pid(),
                factory: format!("bulletin:p{}", self.partition.0),
            },
        );
    }

    fn heartbeat(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        self.hb_seq += 1;
        ctx.send(
            self.gsd,
            KernelMsg::SvcHeartbeat {
                kind: ServiceKind::DataBulletin,
                pid: ctx.pid(),
                seq: self.hb_seq,
            },
        );
        ctx.set_timer(self.params.ft.hb_interval, TOK_HB);
    }

    fn local_matches(&self, query: BulletinQuery) -> Vec<BulletinEntry> {
        if !query.wants_partition(self.partition) {
            return Vec::new();
        }
        self.entries
            .iter()
            .map(|(&key, &(ref value, stamp_ns))| BulletinEntry {
                key,
                value: value.clone(),
                stamp_ns,
            })
            .filter(|e| query.matches(e))
            .collect()
    }

    fn save_state(&self, ctx: &mut Ctx<'_, KernelMsg>) {
        let entries: Vec<BulletinEntry> = self
            .entries
            .iter()
            .map(|(&key, &(ref value, stamp_ns))| BulletinEntry {
                key,
                value: value.clone(),
                stamp_ns,
            })
            .collect();
        ctx.send(
            self.checkpoint,
            KernelMsg::CkSave {
                service: ServiceKind::DataBulletin,
                partition: self.partition,
                data: CheckpointData::Bulletin { entries },
            },
        );
    }

    /// Read-only snapshot of the locally stored entries (introspection
    /// for the chaos harness's ground-truth comparison).
    pub fn snapshot(&self) -> Vec<BulletinEntry> {
        self.entries
            .iter()
            .map(|(&key, &(ref value, stamp_ns))| BulletinEntry {
                key,
                value: value.clone(),
                stamp_ns,
            })
            .collect()
    }

    /// Partition this instance serves.
    pub fn partition_id(&self) -> PartitionId {
        self.partition
    }

    fn finish_query(&mut self, ctx: &mut Ctx<'_, KernelMsg>, fed: u64, complete: bool) {
        if let Some(p) = self.pending.remove(&fed) {
            phoenix_telemetry::measure(
                "bulletin.query.fed",
                "bulletin",
                ctx.node().0,
                phoenix_telemetry::key(&[self.partition.0 as u64, fed]),
            );
            if !complete {
                phoenix_telemetry::counter_add("bulletin.fed_queries.timed_out", 1);
            }
            ctx.cancel_timer(p.timer);
            ctx.send(
                p.client,
                KernelMsg::DbResp {
                    req: p.client_req,
                    entries: p.acc.into(),
                    complete,
                },
            );
        }
    }
}

impl Actor<KernelMsg> for DataBulletin {
    fn on_start(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        ctx.trace(TraceEvent::ServiceUp {
            pid: ctx.pid(),
            service: "bulletin",
            node: ctx.node(),
        });
        if self.gsd != Pid(0) {
            self.register_with_gsd(ctx);
            self.heartbeat(ctx);
            ctx.set_timer(self.params.detector_sample * 2, TOK_CKPT);
        }
        if self.restoring {
            ctx.send(
                self.checkpoint,
                KernelMsg::CkLoad {
                    req: RequestId(0),
                    service: ServiceKind::DataBulletin,
                    partition: self.partition,
                },
            );
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, KernelMsg>, from: Pid, msg: KernelMsg) {
        match msg {
            KernelMsg::Boot(dir) => {
                if let Some(me) = dir.partition(self.partition) {
                    self.gsd = me.gsd;
                    self.checkpoint = me.checkpoint;
                }
                self.peers = dir
                    .partitions
                    .iter()
                    .filter(|m| m.partition != self.partition)
                    .map(|m| (m.partition, m.bulletin))
                    .collect();
                self.register_with_gsd(ctx);
                self.heartbeat(ctx);
                ctx.set_timer(self.params.detector_sample * 2, TOK_CKPT);
            }
            KernelMsg::PartitionView { members, local } => {
                let gsd_changed = self.gsd != local.gsd;
                self.gsd = local.gsd;
                self.checkpoint = local.checkpoint;
                self.peers = members
                    .iter()
                    .filter(|m| m.partition != self.partition)
                    .map(|m| (m.partition, m.bulletin))
                    .collect();
                if gsd_changed {
                    self.register_with_gsd(ctx);
                }
            }
            KernelMsg::DbPut { entries } => {
                phoenix_telemetry::counter_add("bulletin.puts", entries.len() as u64);
                for e in entries {
                    self.entries.insert(e.key, (e.value, e.stamp_ns));
                }
            }
            KernelMsg::RegroupFreeze { frozen } => {
                if frozen && !self.frozen {
                    phoenix_telemetry::counter_add("bulletin.freezes", 1);
                }
                self.frozen = frozen;
            }
            KernelMsg::DbQuery { req, query } => {
                phoenix_telemetry::counter_add("bulletin.queries", 1);
                if self.frozen {
                    // Minority island: answer what we hold, honestly
                    // partial, without burning a federation timeout on
                    // peers quorum says we cannot reach.
                    phoenix_telemetry::counter_add("bulletin.frozen_queries", 1);
                    ctx.send(
                        from,
                        KernelMsg::DbResp {
                            req,
                            entries: self.local_matches(query).into(),
                            complete: false,
                        },
                    );
                    return;
                }
                let acc = self.local_matches(query);
                // Which peers need to contribute?
                let waiting: Vec<PartitionId> = self
                    .peers
                    .iter()
                    .filter(|(p, _)| query.wants_partition(*p))
                    .map(|(p, _)| *p)
                    .collect();
                if waiting.is_empty() {
                    ctx.send(
                        from,
                        KernelMsg::DbResp {
                            req,
                            entries: acc.into(),
                            complete: true,
                        },
                    );
                    return;
                }
                self.next_fed += 1;
                let fed = self.next_fed;
                let fed_req = RequestId(fed);
                phoenix_telemetry::mark(
                    "bulletin.query.fed",
                    phoenix_telemetry::key(&[self.partition.0 as u64, fed]),
                );
                for (p, pid) in &self.peers {
                    if query.wants_partition(*p) {
                        ctx.send(*pid, KernelMsg::DbFedQuery { req: fed_req, query });
                    }
                }
                let timer =
                    ctx.set_timer(self.params.fed_query_timeout, TOK_FED_BASE + fed);
                self.pending.insert(
                    fed,
                    PendingQuery {
                        client: from,
                        client_req: req,
                        query,
                        acc,
                        waiting,
                        timer,
                        attempts: 0,
                    },
                );
            }
            KernelMsg::DbFedQuery { req, query } => {
                let entries = self.local_matches(query);
                ctx.send(
                    from,
                    KernelMsg::DbFedResp {
                        req,
                        partition: self.partition,
                        entries,
                    },
                );
            }
            KernelMsg::DbFedResp {
                req,
                partition,
                entries,
            } => {
                let fed = req.0;
                let done = if let Some(p) = self.pending.get_mut(&fed) {
                    // A partition no longer in `waiting` already answered:
                    // this copy is a duplicate (network duplication, or a
                    // retry racing the original) — merging it again would
                    // double its entries in the reply.
                    if p.waiting.contains(&partition) {
                        p.acc.extend(entries);
                        p.waiting.retain(|&w| w != partition);
                    } else {
                        phoenix_telemetry::counter_add("rpc.dedup.hits", 1);
                    }
                    p.waiting.is_empty()
                } else {
                    false
                };
                if done {
                    self.finish_query(ctx, fed, true);
                }
            }
            KernelMsg::CkLoadResp { data, .. } => {
                if self.restoring {
                    self.restoring = false;
                    if let Some(CheckpointData::Bulletin { entries }) = data {
                        for e in entries {
                            self.entries.insert(e.key, (e.value, e.stamp_ns));
                        }
                    }
                    if let Some(action) = self.recovery.take() {
                        ctx.trace(TraceEvent::Recovered {
                            target: FaultTarget::Process(ctx.pid()),
                            action,
                        });
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, KernelMsg>, token: u64) {
        match token {
            TOK_HB => self.heartbeat(ctx),
            TOK_CKPT => {
                self.save_state(ctx);
                ctx.set_timer(self.params.detector_sample * 2, TOK_CKPT);
            }
            t if t >= TOK_FED_BASE => {
                let fed = t - TOK_FED_BASE;
                // Federation timeout. Under a retrying policy, re-ask the
                // peers that have not answered before giving up — the
                // fan-out request or its reply may simply have been lost.
                let retry = if self.params.rpc.retries_enabled() {
                    self.pending.get_mut(&fed).and_then(|p| {
                        p.attempts += 1;
                        (p.attempts < self.params.rpc.max_attempts)
                            .then(|| (p.query, p.waiting.clone()))
                    })
                } else {
                    None
                };
                if let Some((query, waiting)) = retry {
                    phoenix_telemetry::counter_add("rpc.retries", 1);
                    let targets: Vec<Pid> = self
                        .peers
                        .iter()
                        .filter(|(p, _)| waiting.contains(p))
                        .map(|&(_, pid)| pid)
                        .collect();
                    for pid in targets {
                        ctx.send(pid, KernelMsg::DbFedQuery { req: RequestId(fed), query });
                    }
                    let timer =
                        ctx.set_timer(self.params.fed_query_timeout, TOK_FED_BASE + fed);
                    if let Some(p) = self.pending.get_mut(&fed) {
                        p.timer = timer;
                    }
                    return;
                }
                // Partial data: the paper's "only the state of one
                // partition can't be obtained".
                self.finish_query(ctx, fed, false);
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "bulletin"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientHandle;
    use phoenix_proto::{BulletinKey, BulletinValue, MemberInfo, ServiceDirectory};
    use phoenix_sim::{ClusterBuilder, NodeId, NodeSpec, ResourceUsage, SimDuration, World};

    fn setup(n: usize) -> (World<KernelMsg>, Vec<Pid>) {
        let mut w = ClusterBuilder::new()
            .nodes(n, NodeSpec::default())
            .build::<KernelMsg>();
        let dbs: Vec<Pid> = (0..n)
            .map(|i| {
                w.spawn(
                    NodeId(i as u32),
                    Box::new(DataBulletin::new(PartitionId(i as u32), KernelParams::fast())),
                )
            })
            .collect();
        let dir = ServiceDirectory {
            config: Pid(0),
            security: Pid(0),
            partitions: dbs
                .iter()
                .enumerate()
                .map(|(i, &db)| MemberInfo {
                    partition: PartitionId(i as u32),
                    node: NodeId(i as u32),
                    gsd: Pid(0),
                    event: Pid(0),
                    bulletin: db,
                    checkpoint: Pid(0),
                    host_ppm: Pid(0),
                })
                .collect(),
            nodes: vec![],
        };
        for &db in &dbs {
            w.inject(db, KernelMsg::Boot((dir.clone()).into()));
        }
        w.run_for(SimDuration::from_millis(5));
        (w, dbs)
    }

    fn resource_entry(node: u32, cpu: f64) -> BulletinEntry {
        BulletinEntry {
            key: BulletinKey::Resource(NodeId(node)),
            value: BulletinValue::Resource(ResourceUsage {
                cpu,
                ..ResourceUsage::IDLE
            }),
            stamp_ns: 0,
        }
    }

    #[test]
    fn single_access_point_returns_cluster_wide_state() {
        let (mut w, dbs) = setup(3);
        // Each partition holds one node's reading.
        for (i, &db) in dbs.iter().enumerate() {
            w.inject(
                db,
                KernelMsg::DbPut {
                    entries: vec![resource_entry(i as u32, 0.5)],
                },
            );
        }
        w.run_for(SimDuration::from_millis(5));
        // Query ANY instance; expect all three entries.
        for &db in &dbs {
            let client = ClientHandle::spawn(&mut w, NodeId(0));
            client.send(
                &mut w,
                db,
                KernelMsg::DbQuery {
                    req: RequestId(1),
                    query: BulletinQuery::All,
                },
            );
            w.run_for(SimDuration::from_millis(10));
            let got = client.drain();
            assert_eq!(got.len(), 1);
            match &got[0].1 {
                KernelMsg::DbResp {
                    entries, complete, ..
                } => {
                    assert_eq!(entries.len(), 3);
                    assert!(*complete);
                }
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn dead_peer_degrades_to_partial_answer() {
        let (mut w, dbs) = setup(3);
        for (i, &db) in dbs.iter().enumerate() {
            w.inject(
                db,
                KernelMsg::DbPut {
                    entries: vec![resource_entry(i as u32, 0.1)],
                },
            );
        }
        w.run_for(SimDuration::from_millis(5));
        w.kill_process(dbs[2]);
        let client = ClientHandle::spawn(&mut w, NodeId(0));
        client.send(
            &mut w,
            dbs[0],
            KernelMsg::DbQuery {
                req: RequestId(2),
                query: BulletinQuery::All,
            },
        );
        w.run_for(SimDuration::from_millis(300));
        let got = client.drain();
        assert_eq!(got.len(), 1);
        match &got[0].1 {
            KernelMsg::DbResp {
                entries, complete, ..
            } => {
                assert_eq!(entries.len(), 2, "only one partition's state is lost");
                assert!(!complete);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn node_query_filters() {
        let (mut w, dbs) = setup(2);
        w.inject(
            dbs[0],
            KernelMsg::DbPut {
                entries: vec![resource_entry(0, 0.3), resource_entry(5, 0.9)],
            },
        );
        w.run_for(SimDuration::from_millis(5));
        let client = ClientHandle::spawn(&mut w, NodeId(0));
        client.send(
            &mut w,
            dbs[0],
            KernelMsg::DbQuery {
                req: RequestId(3),
                query: BulletinQuery::Node(NodeId(5)),
            },
        );
        w.run_for(SimDuration::from_millis(10));
        let got = client.drain();
        match &got[0].1 {
            KernelMsg::DbResp { entries, .. } => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].key.node(), NodeId(5));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn partition_scoped_query_skips_fanout() {
        let (mut w, dbs) = setup(2);
        w.inject(
            dbs[0],
            KernelMsg::DbPut {
                entries: vec![resource_entry(0, 0.3)],
            },
        );
        w.run_for(SimDuration::from_millis(5));
        let before = w.metrics().label("bulletin").sent;
        let client = ClientHandle::spawn(&mut w, NodeId(0));
        client.send(
            &mut w,
            dbs[0],
            KernelMsg::DbQuery {
                req: RequestId(4),
                query: BulletinQuery::Partition(PartitionId(0)),
            },
        );
        w.run_for(SimDuration::from_millis(10));
        let got = client.drain();
        assert_eq!(got.len(), 1);
        // Only query + response crossed the wire: no federation messages.
        let after = w.metrics().label("bulletin").sent;
        assert_eq!(after - before, 2);
    }

    #[test]
    fn put_overwrites_stale_values() {
        let (mut w, dbs) = setup(1);
        w.inject(
            dbs[0],
            KernelMsg::DbPut {
                entries: vec![resource_entry(0, 0.2)],
            },
        );
        w.inject(
            dbs[0],
            KernelMsg::DbPut {
                entries: vec![resource_entry(0, 0.8)],
            },
        );
        w.run_for(SimDuration::from_millis(5));
        let client = ClientHandle::spawn(&mut w, NodeId(0));
        client.send(
            &mut w,
            dbs[0],
            KernelMsg::DbQuery {
                req: RequestId(5),
                query: BulletinQuery::All,
            },
        );
        w.run_for(SimDuration::from_millis(10));
        let got = client.drain();
        match &got[0].1 {
            KernelMsg::DbResp { entries, .. } => {
                assert_eq!(entries.len(), 1);
                match &entries[0].value {
                    BulletinValue::Resource(u) => assert_eq!(u.cpu, 0.8),
                    other => panic!("unexpected value {other:?}"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
}
