//! Criterion benches for the Sec 5.4 comparison: wall cost of running the
//! same job workload under PWS (event-driven) and PBS (polling), with the
//! HA assertion riding along.

use criterion::{criterion_group, criterion_main, Criterion};
use phoenix_bench::pws_pbs::run;

fn bench_job_management(c: &mut Criterion) {
    let mut g = c.benchmark_group("job_management");
    g.sample_size(10);
    g.bench_function("pws_workload", |b| {
        b.iter(|| run(false, 2, 4, 3, 20, false, 61))
    });
    g.bench_function("pbs_workload", |b| {
        b.iter(|| run(true, 2, 4, 3, 20, false, 62))
    });
    g.bench_function("pws_with_scheduler_fault", |b| {
        b.iter(|| {
            let s = run(false, 2, 4, 2, 15, true, 63);
            assert!(s.survived_scheduler_fault);
            s
        })
    });
    g.finish();
}

criterion_group!(benches, bench_job_management);
criterion_main!(benches);
