//! The metrics registry: counters, gauges, latency histograms, spans, and
//! cross-actor mark/measure pairs.
//!
//! All names are `&'static str` — instrumentation sites use literals, so
//! the registry never allocates for keys and map order (BTreeMap) is the
//! literal's lexicographic order, keeping report output deterministic.
//!
//! Two latency idioms:
//!
//! * **Spans** ([`MetricsRegistry::span_start`]/[`span_end`]) for regions
//!   whose start and end the *same* actor observes — e.g. a GSD membership
//!   scan that begins on one timer event and concludes on a later one.
//!   Closing a span records its virtual-time duration into the `path`
//!   histogram and appends a [`SpanRecord`] to the flight recorder.
//! * **Mark/measure** ([`MetricsRegistry::mark`]/[`measure`]) for
//!   latencies that cross actors — a heartbeat in flight, a federated
//!   query fan-out — where no span id can ride along in the message; the
//!   two sides agree on a `u64` key derived from message fields.
//!
//! [`span_end`]: MetricsRegistry::span_end
//! [`measure`]: MetricsRegistry::measure

use std::collections::BTreeMap;

use crate::clock;
use crate::hist::Histogram;
use crate::recorder::{FlightRecorder, SpanRecord};

/// Opaque span handle. `SpanId::NONE` (0) means "no parent".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const NONE: SpanId = SpanId(0);
}

#[derive(Clone, Debug)]
struct OpenSpan {
    parent: SpanId,
    path: &'static str,
    service: &'static str,
    node: u32,
    start_ns: u64,
}

/// A histogram plus the service label it was first recorded under.
#[derive(Clone, Debug)]
pub struct PathStats {
    pub service: &'static str,
    pub hist: Histogram,
}

#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, PathStats>,
    marks: BTreeMap<(&'static str, u64), u64>,
    open: BTreeMap<SpanId, OpenSpan>,
    next_span: u64,
    recorder: FlightRecorder,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry { next_span: 1, ..Default::default() }
    }

    // --- counters / gauges -------------------------------------------------

    pub fn counter_add(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    // --- histograms --------------------------------------------------------

    /// Record a raw latency observation (nanoseconds) under `path`.
    pub fn observe(&mut self, path: &'static str, service: &'static str, nanos: u64) {
        self.hists
            .entry(path)
            .or_insert_with(|| PathStats { service, hist: Histogram::new() })
            .hist
            .record(nanos);
    }

    pub fn histogram(&self, path: &str) -> Option<&Histogram> {
        self.hists.get(path).map(|p| &p.hist)
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &PathStats)> + '_ {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    // --- spans -------------------------------------------------------------

    /// Open a span at the current virtual time ([`clock::now`]).
    pub fn span_start(
        &mut self,
        path: &'static str,
        service: &'static str,
        node: u32,
        parent: SpanId,
    ) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        self.open.insert(id, OpenSpan { parent, path, service, node, start_ns: clock::now() });
        id
    }

    /// Close a span. Unknown ids (double-close, or a span opened before a
    /// `reset`) are ignored.
    pub fn span_end(&mut self, id: SpanId) {
        let Some(span) = self.open.remove(&id) else { return };
        let end_ns = clock::now();
        self.observe(span.path, span.service, end_ns.saturating_sub(span.start_ns));
        self.recorder.push(SpanRecord {
            id,
            parent: span.parent,
            path: span.path,
            service: span.service,
            node: span.node,
            start_ns: span.start_ns,
            end_ns,
        });
    }

    /// Spans opened but not yet closed (leak detector for tests).
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    pub fn recorder_mut(&mut self) -> &mut FlightRecorder {
        &mut self.recorder
    }

    // --- cross-actor mark/measure ------------------------------------------

    /// Stamp the current virtual time under `(path, key)`. A second mark
    /// with the same key overwrites (latest send wins — matches
    /// retransmission semantics).
    pub fn mark(&mut self, path: &'static str, key: u64) {
        self.marks.insert((path, key), clock::now());
    }

    /// Consume the mark for `(path, key)`: records `now - mark` under
    /// `path` and returns the elapsed nanoseconds. `None` if no mark is
    /// outstanding (e.g. the originating message was dropped or the mark
    /// was already measured).
    pub fn measure(
        &mut self,
        path: &'static str,
        service: &'static str,
        node: u32,
        key: u64,
    ) -> Option<u64> {
        let start = self.marks.remove(&(path, key))?;
        let end = clock::now();
        let elapsed = end.saturating_sub(start);
        self.observe(path, service, elapsed);
        self.recorder.push(SpanRecord {
            id: SpanId(self.next_span),
            parent: SpanId::NONE,
            path,
            service,
            node,
            start_ns: start,
            end_ns: end,
        });
        self.next_span += 1;
        Some(elapsed)
    }

    /// Marks stamped but never measured (messages still in flight or lost).
    pub fn outstanding_marks(&self) -> usize {
        self.marks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_land_in_histogram_and_recorder() {
        let mut r = MetricsRegistry::new();
        clock::set_now(100);
        let root = r.span_start("outer", "gsd", 3, SpanId::NONE);
        clock::set_now(150);
        let child = r.span_start("inner", "gsd", 3, root);
        clock::set_now(180);
        r.span_end(child);
        clock::set_now(300);
        r.span_end(root);

        assert_eq!(r.histogram("inner").unwrap().summary().max_ns, 30);
        assert_eq!(r.histogram("outer").unwrap().summary().max_ns, 200);
        assert_eq!(r.open_spans(), 0);

        let recs: Vec<_> = r.recorder().node(3).collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].path, "inner");
        assert_eq!(recs[0].parent, root);
        assert_eq!(recs[1].path, "outer");
        assert_eq!(recs[1].parent, SpanId::NONE);
    }

    #[test]
    fn span_ids_are_sequential_and_double_close_is_ignored() {
        let mut r = MetricsRegistry::new();
        clock::set_now(0);
        let a = r.span_start("p", "s", 0, SpanId::NONE);
        let b = r.span_start("p", "s", 0, SpanId::NONE);
        assert_eq!(b.0, a.0 + 1);
        r.span_end(a);
        r.span_end(a);
        assert_eq!(r.histogram("p").unwrap().count(), 1);
    }

    #[test]
    fn measure_without_mark_is_none() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.measure("p", "s", 0, 9), None);
        r.mark("p", 9);
        assert_eq!(r.outstanding_marks(), 1);
    }
}
