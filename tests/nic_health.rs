//! Adaptive multi-NIC routing: end-to-end acceptance tests.
//!
//! The tentpole scenario from the paper's triple-network testbed: one of a
//! node's three interfaces turns lossy while the other two stay clean. The
//! per-NIC health layer must (a) never let the sick interface masquerade
//! as a dead node — zero spurious takeovers across many seeded boots — and
//! (b) keep failure detection riding the healthy interfaces, so detection
//! latency stays within 25% of the clean baseline.

use phoenix::kernel::{boot_cluster_with_net, KernelParams, PhoenixCluster};
use phoenix::proto::{ClusterTopology, KernelMsg};
use phoenix::sim::{FaultTarget, NetParams, NicId, SimDuration, TraceEvent, World};

/// NIC 0 lossy at `permille`, NICs 1–2 clean, lossy parameter profile.
fn boot(seed: u64, permille: u16) -> (World<KernelMsg>, PhoenixCluster) {
    let topo = ClusterTopology::uniform(3, 5, 1);
    let net = NetParams::unreliable(0).with_nic_loss(NicId(0), permille);
    boot_cluster_with_net(topo, KernelParams::fast_lossy(), seed, net)
}

fn takeovers() -> u64 {
    phoenix_telemetry::with(|reg| {
        reg.counter("gsd.takeovers")
            + reg.histogram("gsd.takeover").map(|h| h.count()).unwrap_or(0)
    })
}

/// 40 seeded fault-free boots with NIC 0 at 10% loss: the clean
/// interfaces keep every WD visible, so no GSD may ever be suspected and
/// taken over. This is the acceptance criterion's zero-spurious bar.
#[test]
fn degraded_nic_causes_zero_spurious_takeovers_across_40_boots() {
    for seed in 1..=40u64 {
        phoenix_telemetry::reset();
        let (mut w, _cluster) = boot(seed, 100);
        w.run_for(SimDuration::from_secs(8));
        assert_eq!(
            takeovers(),
            0,
            "seed {seed}: spurious takeover with one degraded NIC (NICs 1-2 clean)"
        );
    }
}

/// Kill one WD and mine the kill → `FaultDiagnosed` latency.
fn detection_ms(seed: u64, permille: u16) -> f64 {
    phoenix_telemetry::reset();
    let (mut w, cluster) = boot(seed, permille);
    w.run_for(SimDuration::from_secs(2));
    let victim = cluster.directory.nodes[6].wd;
    let victim_node = cluster.directory.nodes[6].node;
    let t_kill = w.now();
    w.kill_process(victim);
    w.run_for(SimDuration::from_secs(10));
    let hit = w
        .trace()
        .records()
        .iter()
        .find(|r| {
            r.at >= t_kill
                && match r.event {
                    TraceEvent::FaultDiagnosed {
                        target: FaultTarget::Process(p),
                        ..
                    } => p == victim,
                    TraceEvent::FaultDiagnosed {
                        target: FaultTarget::Node(n),
                        ..
                    } => n == victim_node,
                    _ => false,
                }
        })
        .unwrap_or_else(|| panic!("seed {seed}: WD kill never diagnosed at {permille}‰"));
    hit.at.since(t_kill).as_nanos() as f64 / 1e6
}

/// Detection with one 10%-lossy NIC stays within 25% of the clean
/// baseline: suspicion is fed by the two clean interfaces, and probes are
/// routed over the healthiest path instead of re-rolling the sick one.
#[test]
fn detection_time_within_25_percent_of_clean_baseline() {
    let seeds = [1u64, 2, 3];
    let mean = |permille: u16| {
        seeds.iter().map(|&s| detection_ms(s, permille)).sum::<f64>() / seeds.len() as f64
    };
    let clean = mean(0);
    let degraded = mean(100);
    assert!(
        degraded <= clean * 1.25,
        "detection degraded past the bar: {degraded:.1} ms vs clean {clean:.1} ms"
    );
}
