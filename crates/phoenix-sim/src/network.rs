//! The simulated interconnect.
//!
//! The cluster has `k` parallel networks; NIC `i` of every node attaches to
//! network `i` (mirroring the Dawning 4000A, where each node had three
//! networks). A message travels over exactly one network, chosen either
//! explicitly by the sender (heartbeats probe every interface) or by default
//! routing (first interface healthy on both endpoints).
//!
//! Failures modelled here:
//! * NIC down — messages over that interface are dropped in either direction;
//! * node crash — handled by the world (all NICs effectively gone);
//! * link partition — ordered node pairs that cannot exchange messages.

use crate::ids::{NicId, NodeId};
use crate::rng::SimRng;
use crate::time::SimDuration;
use std::collections::HashSet;

/// Latency parameters of the interconnect.
#[derive(Clone, Debug)]
pub struct NetParams {
    /// One-way latency for messages between actors on the same node.
    pub local_latency: SimDuration,
    /// Base one-way latency across the LAN.
    pub lan_latency: SimDuration,
    /// Uniform jitter added on top of `lan_latency` (0..=jitter).
    pub jitter: SimDuration,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            // Loopback / unix socket cost.
            local_latency: SimDuration::from_micros(5),
            // Typical 2005-era cluster ethernet one-way latency.
            lan_latency: SimDuration::from_micros(120),
            jitter: SimDuration::from_micros(30),
        }
    }
}

/// Reasons a message could not be carried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    SenderNicDown,
    ReceiverNicDown,
    Partitioned,
    NodeDown,
    DeadProcess,
    NoRoute,
}

/// Connectivity state of the interconnect (partitions between node pairs).
#[derive(Debug, Default)]
pub struct Network {
    pub params: NetParams,
    /// Unordered blocked pairs, stored with min id first.
    blocked: HashSet<(NodeId, NodeId)>,
}

impl Network {
    pub fn new(params: NetParams) -> Network {
        Network {
            params,
            blocked: HashSet::new(),
        }
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Block all traffic between `a` and `b` (both directions, all networks).
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.blocked.insert(Self::key(a, b));
    }

    /// Restore traffic between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.blocked.remove(&Self::key(a, b));
    }

    /// Remove every partition.
    pub fn heal_all(&mut self) {
        self.blocked.clear();
    }

    /// Is the pair currently partitioned?
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.blocked.contains(&Self::key(a, b))
    }

    /// Draw the one-way latency for a message from `src` to `dst`.
    pub fn latency(&self, src: NodeId, dst: NodeId, rng: &mut SimRng) -> SimDuration {
        if src == dst {
            self.params.local_latency
        } else {
            let jitter_ns = if self.params.jitter.as_nanos() == 0 {
                0
            } else {
                rng.gen_range(0..=self.params.jitter.as_nanos())
            };
            self.params.lan_latency + SimDuration::from_nanos(jitter_ns)
        }
    }

    /// Decide whether a message may travel from (`src`, `src_nic`) to
    /// (`dst`, same network). Same-node messages never touch the wire.
    pub fn route(
        &self,
        src: NodeId,
        dst: NodeId,
        nic: NicId,
        src_nic_up: bool,
        dst_nic_up: bool,
    ) -> Result<(), DropReason> {
        if src == dst {
            return Ok(());
        }
        if !src_nic_up {
            return Err(DropReason::SenderNicDown);
        }
        if !dst_nic_up {
            return Err(DropReason::ReceiverNicDown);
        }
        let _ = nic;
        if self.is_partitioned(src, dst) {
            return Err(DropReason::Partitioned);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_symmetric() {
        let mut net = Network::new(NetParams::default());
        net.partition(NodeId(3), NodeId(1));
        assert!(net.is_partitioned(NodeId(1), NodeId(3)));
        assert!(net.is_partitioned(NodeId(3), NodeId(1)));
        net.heal(NodeId(1), NodeId(3));
        assert!(!net.is_partitioned(NodeId(1), NodeId(3)));
    }

    #[test]
    fn heal_all_clears_everything() {
        let mut net = Network::new(NetParams::default());
        net.partition(NodeId(0), NodeId(1));
        net.partition(NodeId(2), NodeId(3));
        net.heal_all();
        assert!(!net.is_partitioned(NodeId(0), NodeId(1)));
        assert!(!net.is_partitioned(NodeId(2), NodeId(3)));
    }

    #[test]
    fn local_latency_is_constant() {
        let net = Network::new(NetParams::default());
        let mut rng = SimRng::seed_from_u64(1);
        let l = net.latency(NodeId(0), NodeId(0), &mut rng);
        assert_eq!(l, NetParams::default().local_latency);
    }

    #[test]
    fn lan_latency_within_bounds() {
        let p = NetParams::default();
        let net = Network::new(p.clone());
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            let l = net.latency(NodeId(0), NodeId(1), &mut rng);
            assert!(l >= p.lan_latency);
            assert!(l <= p.lan_latency + p.jitter);
        }
    }

    #[test]
    fn route_drops_on_nic_failure() {
        let net = Network::new(NetParams::default());
        assert_eq!(
            net.route(NodeId(0), NodeId(1), NicId(0), false, true),
            Err(DropReason::SenderNicDown)
        );
        assert_eq!(
            net.route(NodeId(0), NodeId(1), NicId(0), true, false),
            Err(DropReason::ReceiverNicDown)
        );
        assert_eq!(net.route(NodeId(0), NodeId(1), NicId(0), true, true), Ok(()));
    }

    #[test]
    fn route_same_node_ignores_nics() {
        let net = Network::new(NetParams::default());
        assert_eq!(
            net.route(NodeId(0), NodeId(0), NicId(0), false, false),
            Ok(())
        );
    }

    #[test]
    fn route_respects_partition() {
        let mut net = Network::new(NetParams::default());
        net.partition(NodeId(0), NodeId(1));
        assert_eq!(
            net.route(NodeId(0), NodeId(1), NicId(0), true, true),
            Err(DropReason::Partitioned)
        );
    }
}
