//! # phoenix-sim — deterministic cluster simulator
//!
//! The hardware substrate for the Fire Phoenix reproduction. The paper
//! evaluated the Phoenix kernel on the Dawning 4000A (640 nodes, three
//! networks per node); this crate provides the equivalent simulated
//! machine: virtual time, nodes with multiple network interfaces, a
//! latency-modelled interconnect, and the fault-injection operations used
//! in the paper's Section 5.1 (process kill, node crash, NIC failure).
//!
//! Everything is deterministic: the event queue breaks ties FIFO and the
//! only randomness comes from a seeded RNG, so every experiment is exactly
//! reproducible.
//!
//! ```
//! use phoenix_sim::{ClusterBuilder, NodeSpec, NodeId, SimDuration, Actor, Ctx, Pid};
//!
//! struct Hello;
//! impl Actor<u64> for Hello {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: Pid, msg: u64) {
//!         ctx.send(from, msg * 2);
//!     }
//! }
//!
//! let mut world = ClusterBuilder::new().nodes(4, NodeSpec::default()).build::<u64>();
//! let pid = world.spawn(NodeId(0), Box::new(Hello));
//! world.inject(pid, 21);
//! world.run_for(SimDuration::from_millis(1));
//! assert_eq!(world.metrics().total.delivered, 1);
//! ```

pub mod actor;
pub mod arena;
pub mod fault;
pub mod ids;
pub mod message;
pub mod metrics;
pub mod network;
pub mod node;
pub mod rng;
pub mod sched;
pub mod time;
pub mod trace;
pub mod world;

pub use actor::{Actor, Ctx};
pub use arena::{ArenaStats, EventArena};
pub use fault::Fault;
pub use ids::{NicId, NodeId, Pid, TimerId};
pub use message::Message;
pub use metrics::{LabelStats, Metrics};
pub use network::{DropReason, NetParams, Network};
pub use node::{NodeSpec, NodeState, ResourceUsage};
pub use rng::SimRng;
pub use sched::{HeapScheduler, Scheduler, SchedulerKind, WheelScheduler};
pub use time::{SimDuration, SimTime};
pub use trace::{Diagnosis, FaultTarget, RecoveryAction, TraceEvent, TraceLog, TraceRecord};
pub use world::{ClusterBuilder, SchedulePastError, World};
