//! # phoenix-biz — the business application runtime environment
//!
//! The fourth user environment the paper names (Sec 3): "Business
//! application runtime environment is the core of the business
//! application hosting environment. It manages multi-tier business
//! applications and guarantees their high-availability and
//! load-balancing." The paper evaluates the other environments; this one
//! demonstrates the same kernel interfaces carrying a 7×24 hosting
//! workload:
//!
//! * tiers are deployed through the kernel's **PPM** (tree fan-out);
//! * instance health arrives **event-driven** (the application-state
//!   detector publishes `AppStateChange`);
//! * failed instances are **re-placed** on the least-loaded healthy node
//!   (load balancing via the data bulletin's cluster-wide view);
//! * the runtime itself registers with the **group service** and is
//!   restarted by the GSD if it dies, restoring its deployment from the
//!   **checkpoint service**.

use phoenix_kernel::params::KernelParams;
use phoenix_proto::{
    BulletinKey, BulletinQuery, BulletinValue, CheckpointData, ConsumerReg, EventFilter,
    EventPayload, EventType, JobId, KernelMsg, PartitionId, RequestId, ServiceDirectory,
    ServiceKind, TaskSpec,
};
use phoenix_sim::{Actor, Ctx, NodeId, Pid, ResourceUsage, TraceEvent};
use std::collections::{BTreeMap, HashMap};

const TOK_HB: u64 = 1;
const TOK_RECONCILE: u64 = 2;

/// One tier of a multi-tier business application.
#[derive(Clone, Debug)]
pub struct TierSpec {
    pub name: &'static str,
    /// Job id namespace for this tier's instances (instance i runs as
    /// `JobId(base + i)`).
    pub job_base: u64,
    pub replicas: u32,
    pub task: TaskSpec,
}

impl TierSpec {
    pub fn new(name: &'static str, job_base: u64, replicas: u32, cpu_load: f64) -> TierSpec {
        TierSpec {
            name,
            job_base,
            replicas,
            task: TaskSpec {
                cpus: 1,
                cpu_load,
                mem_load: 0.15,
                duration_ns: None, // services run until stopped
            },
        }
    }
}

/// A deployed tier instance.
#[derive(Clone, Debug, PartialEq)]
struct Instance {
    job: JobId,
    node: NodeId,
    up: bool,
}

/// The business application runtime actor.
pub struct BizRuntime {
    partition: PartitionId,
    params: KernelParams,
    directory: ServiceDirectory,
    tiers: Vec<TierSpec>,
    /// Nodes the application may use.
    pool: Vec<NodeId>,

    gsd: Pid,
    event: Pid,
    bulletin: Pid,
    checkpoint: Pid,

    instances: BTreeMap<JobId, Instance>,
    /// Latest resource view per pool node (from the bulletin).
    usage: HashMap<NodeId, ResourceUsage>,
    next_req: u64,
    hb_seq: u64,
    restoring: bool,
    recovery: Option<phoenix_sim::RecoveryAction>,
}

impl BizRuntime {
    pub fn new(
        partition: PartitionId,
        params: KernelParams,
        directory: ServiceDirectory,
        tiers: Vec<TierSpec>,
        pool: Vec<NodeId>,
    ) -> Self {
        let member = directory.partition(partition).copied().unwrap();
        BizRuntime {
            gsd: member.gsd,
            event: member.event,
            bulletin: member.bulletin,
            checkpoint: member.checkpoint,
            partition,
            params,
            directory,
            tiers,
            pool,
            instances: BTreeMap::new(),
            usage: HashMap::new(),
            next_req: 0,
            hb_seq: 0,
            restoring: false,
            recovery: None,
        }
    }

    /// Respawned runtime: restores its deployment map from checkpoint.
    pub fn respawn(
        partition: PartitionId,
        params: KernelParams,
        directory: ServiceDirectory,
        tiers: Vec<TierSpec>,
        pool: Vec<NodeId>,
        gsd: Pid,
        checkpoint: Pid,
        event: Pid,
        action: phoenix_sim::RecoveryAction,
    ) -> Self {
        let mut s = Self::new(partition, params, directory, tiers, pool);
        s.gsd = gsd;
        s.checkpoint = checkpoint;
        s.event = event;
        s.restoring = true;
        s.recovery = Some(action);
        s
    }

    fn req(&mut self) -> RequestId {
        self.next_req += 1;
        RequestId(self.next_req)
    }

    /// Load balancing: pick the healthy pool node with the lowest CPU,
    /// breaking ties toward fewer of our own instances.
    fn pick_node(&self, ctx: &Ctx<'_, KernelMsg>, avoid: Option<NodeId>) -> Option<NodeId> {
        let mut best: Option<(f64, usize, NodeId)> = None;
        for &node in &self.pool {
            if Some(node) == avoid || !ctx.node_is_up(node) {
                continue;
            }
            let cpu = self.usage.get(&node).map(|u| u.cpu).unwrap_or(0.0);
            let mine = self.instances.values().filter(|i| i.node == node && i.up).count();
            let cand = (cpu, mine, node);
            best = match best {
                None => Some(cand),
                Some(b) if (cand.0, cand.1) < (b.0, b.1) => Some(cand),
                Some(b) => Some(b),
            };
        }
        best.map(|(_, _, n)| n)
    }

    fn launch(&mut self, ctx: &mut Ctx<'_, KernelMsg>, job: JobId, task: TaskSpec, node: NodeId) {
        let req = self.req();
        if let Some(ns) = self.directory.node(node) {
            ctx.send(
                ns.ppm,
                KernelMsg::PpmExec {
                    req,
                    job,
                    task,
                    targets: vec![node],
                    reply_to: ctx.pid(),
                },
            );
            self.instances.insert(
                job,
                Instance {
                    job,
                    node,
                    up: true,
                },
            );
        }
    }

    fn deploy_all(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        let tiers = self.tiers.clone();
        for tier in &tiers {
            for r in 0..tier.replicas {
                let job = JobId(tier.job_base + r as u64);
                if self.instances.contains_key(&job) {
                    continue;
                }
                if let Some(node) = self.pick_node(ctx, None) {
                    self.launch(ctx, job, tier.task.clone(), node);
                }
            }
        }
        self.save_state(ctx);
    }

    fn tier_of(&self, job: JobId) -> Option<&TierSpec> {
        self.tiers
            .iter()
            .find(|t| job.0 >= t.job_base && job.0 < t.job_base + t.replicas as u64)
    }

    /// An instance went down: re-place it ("guarantees their
    /// high-availability").
    fn heal(&mut self, ctx: &mut Ctx<'_, KernelMsg>, job: JobId, failed_node: Option<NodeId>) {
        let Some(tier) = self.tier_of(job).cloned() else {
            return;
        };
        if let Some(inst) = self.instances.get_mut(&job) {
            inst.up = false;
        }
        if let Some(node) = self.pick_node(ctx, failed_node) {
            ctx.trace(TraceEvent::Milestone {
                label: "biz-instance-replaced",
                value: job.0 as f64,
            });
            self.launch(ctx, job, tier.task, node);
            self.save_state(ctx);
        }
    }

    fn save_state(&self, ctx: &mut Ctx<'_, KernelMsg>) {
        // Reuse the scheduler checkpoint shape: jobs + their nodes.
        let running: Vec<(JobId, Vec<NodeId>)> = self
            .instances
            .values()
            .filter(|i| i.up)
            .map(|i| (i.job, vec![i.node]))
            .collect();
        ctx.send(
            self.checkpoint,
            KernelMsg::CkSave {
                service: ServiceKind::UserEnvironment,
                partition: self.partition,
                data: CheckpointData::Scheduler {
                    queued: vec![],
                    running,
                },
            },
        );
    }

    /// Current endpoints per tier (the "router table" a front end would
    /// use); read by tests and examples through `EndpointsReport`.
    fn endpoints(&self) -> BTreeMap<&'static str, Vec<NodeId>> {
        let mut out: BTreeMap<&'static str, Vec<NodeId>> = BTreeMap::new();
        for tier in &self.tiers {
            let nodes: Vec<NodeId> = self
                .instances
                .values()
                .filter(|i| {
                    i.up && i.job.0 >= tier.job_base
                        && i.job.0 < tier.job_base + tier.replicas as u64
                })
                .map(|i| i.node)
                .collect();
            out.insert(tier.name, nodes);
        }
        out
    }

    fn heartbeat(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        self.hb_seq += 1;
        ctx.send(
            self.gsd,
            KernelMsg::SvcHeartbeat {
                kind: ServiceKind::UserEnvironment,
                pid: ctx.pid(),
                seq: self.hb_seq,
            },
        );
        ctx.set_timer(self.params.ft.hb_interval, TOK_HB);
    }

    /// Periodic reconcile: refresh the load view from the bulletin and
    /// report endpoints as a trace milestone (observability hook).
    fn reconcile(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        let req = self.req();
        ctx.send(
            self.bulletin,
            KernelMsg::DbQuery {
                req,
                query: BulletinQuery::Resources,
            },
        );
        let up = self.instances.values().filter(|i| i.up).count();
        ctx.trace(TraceEvent::Milestone {
            label: "biz-endpoints-up",
            value: up as f64,
        });
        ctx.set_timer(self.params.detector_sample, TOK_RECONCILE);
    }
}

impl Actor<KernelMsg> for BizRuntime {
    fn on_start(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        ctx.trace(TraceEvent::ServiceUp {
            pid: ctx.pid(),
            service: "biz-runtime",
            node: ctx.node(),
        });
        ctx.send(
            self.gsd,
            KernelMsg::SvcRegister {
                kind: ServiceKind::UserEnvironment,
                pid: ctx.pid(),
                factory: "biz-runtime".to_string(),
            },
        );
        self.heartbeat(ctx);
        ctx.send(
            self.event,
            KernelMsg::EsRegisterConsumer {
                req: RequestId(0),
                reg: ConsumerReg {
                    consumer: ctx.pid(),
                    filter: EventFilter::types(&[
                        EventType::AppStateChange,
                        EventType::NodeFault,
                    ]),
                },
            },
        );
        if self.restoring {
            ctx.send(
                self.checkpoint,
                KernelMsg::CkLoad {
                    req: RequestId(0),
                    service: ServiceKind::UserEnvironment,
                    partition: self.partition,
                },
            );
        } else {
            self.deploy_all(ctx);
        }
        ctx.set_timer(self.params.detector_sample, TOK_RECONCILE);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, KernelMsg>, _from: Pid, msg: KernelMsg) {
        match msg {
            KernelMsg::EsNotify { event } => match event.payload {
                EventPayload::AppLifecycle {
                    job,
                    node,
                    up: false,
                } => {
                    // Only our jobs, and only if we believe it is up
                    // (deletion echoes are filtered by the up flag).
                    let known_up = self
                        .instances
                        .get(&job)
                        .map(|i| i.up && i.node == node)
                        .unwrap_or(false);
                    if known_up && self.tier_of(job).is_some() {
                        self.heal(ctx, job, Some(node));
                    }
                }
                EventPayload::Node(node) if event.etype == EventType::NodeFault => {
                    let affected: Vec<JobId> = self
                        .instances
                        .values()
                        .filter(|i| i.up && i.node == node)
                        .map(|i| i.job)
                        .collect();
                    for job in affected {
                        self.heal(ctx, job, Some(node));
                    }
                }
                _ => {}
            },
            KernelMsg::DbResp { entries, .. } => {
                for e in entries.iter() {
                    if let (BulletinKey::Resource(n), BulletinValue::Resource(u)) =
                        (&e.key, &e.value)
                    {
                        self.usage.insert(*n, *u);
                    }
                }
            }
            KernelMsg::PartitionView { local, .. } => {
                self.gsd = local.gsd;
                self.event = local.event;
                self.bulletin = local.bulletin;
                self.checkpoint = local.checkpoint;
                ctx.send(
                    self.gsd,
                    KernelMsg::SvcRegister {
                        kind: ServiceKind::UserEnvironment,
                        pid: ctx.pid(),
                        factory: "biz-runtime".to_string(),
                    },
                );
            }
            KernelMsg::CkLoadResp { data, .. } => {
                if self.restoring {
                    self.restoring = false;
                    if let Some(CheckpointData::Scheduler { running, .. }) = data {
                        for (job, nodes) in running {
                            if let Some(&node) = nodes.first() {
                                self.instances.insert(job, Instance { job, node, up: true });
                            }
                        }
                    }
                    if let Some(action) = self.recovery.take() {
                        ctx.trace(TraceEvent::Recovered {
                            target: phoenix_sim::FaultTarget::Process(ctx.pid()),
                            action,
                        });
                    }
                    // Fill any gaps (instances that died while we were down
                    // get re-deployed by deploy_all's contains_key check —
                    // dead ones are still in the map, so reconcile via
                    // liveness events going forward).
                    self.deploy_all(ctx);
                }
            }
            // Queue-status style introspection: reuse PwsQueueStatus as the
            // endpoints query (the console asks "what's serving where").
            KernelMsg::PwsQueueStatus { req, .. } => {
                let rows: Vec<phoenix_proto::QueueRow> = self
                    .endpoints()
                    .into_iter()
                    .flat_map(|(tier, nodes)| {
                        let tier_spec = self.tiers.iter().find(|t| t.name == tier).unwrap();
                        nodes.into_iter().enumerate().map(move |(i, n)| {
                            phoenix_proto::QueueRow {
                                job: JobId(tier_spec.job_base + i as u64),
                                pool: tier.to_string(),
                                user: phoenix_proto::UserId::new("webapp"),
                                state: phoenix_proto::JobState::Running,
                                nodes: vec![n],
                            }
                        })
                    })
                    .collect();
                ctx.send(_from, KernelMsg::PwsQueueStatusResp { req, rows });
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, KernelMsg>, token: u64) {
        match token {
            TOK_HB => self.heartbeat(ctx),
            TOK_RECONCILE => self.reconcile(ctx),
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "biz-runtime"
    }
}

/// Install a business runtime on a partition server, with a respawn
/// factory registered so the GSD keeps it available.
pub fn install_biz(
    world: &mut phoenix_sim::World<KernelMsg>,
    cluster: &phoenix_kernel::PhoenixCluster,
    partition: PartitionId,
    tiers: Vec<TierSpec>,
    pool: Vec<NodeId>,
) -> Pid {
    {
        let tiers = tiers.clone();
        let pool = pool.clone();
        let directory = cluster.directory.clone();
        cluster.registry.borrow_mut().register(
            "biz-runtime",
            Box::new(move |args| {
                Box::new(BizRuntime::respawn(
                    args.partition,
                    args.params.clone(),
                    directory.clone(),
                    tiers.clone(),
                    pool.clone(),
                    args.gsd,
                    args.checkpoint,
                    args.members
                        .iter()
                        .find(|m| m.partition == args.partition)
                        .map(|m| m.event)
                        .unwrap_or(Pid(0)),
                    args.action,
                ))
            }),
        );
    }
    let server = cluster.topology.partitions[partition.index()].server;
    let rt = BizRuntime::new(
        partition,
        cluster.params.clone(),
        cluster.directory.clone(),
        tiers,
        pool,
    );
    world.spawn(server, Box::new(rt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_kernel::boot::boot_and_stabilize;
    use phoenix_kernel::client::ClientHandle;
    use phoenix_kernel::KernelParams;
    use phoenix_proto::ClusterTopology;
    use phoenix_sim::{Fault, SimDuration};

    fn app() -> Vec<TierSpec> {
        vec![
            TierSpec::new("web", 1_000, 2, 0.3),
            TierSpec::new("app", 2_000, 2, 0.4),
            TierSpec::new("db", 3_000, 1, 0.5),
        ]
    }

    fn endpoints(
        w: &mut phoenix_sim::World<KernelMsg>,
        client: &ClientHandle,
        rt: Pid,
    ) -> Vec<phoenix_proto::QueueRow> {
        client.send(
            w,
            rt,
            KernelMsg::PwsQueueStatus {
                req: RequestId(555),
                pool: None,
            },
        );
        w.run_for(SimDuration::from_millis(10));
        client
            .drain()
            .into_iter()
            .find_map(|(_, m)| match m {
                KernelMsg::PwsQueueStatusResp { rows, .. } => Some(rows),
                _ => None,
            })
            .unwrap_or_default()
    }

    #[test]
    fn deploys_all_tiers_spread_across_pool() {
        let (mut w, cluster) =
            boot_and_stabilize(ClusterTopology::uniform(2, 5, 1), KernelParams::fast(), 61);
        let pool: Vec<NodeId> = cluster
            .topology
            .partitions
            .iter()
            .flat_map(|p| p.compute.iter().copied())
            .collect();
        let rt = install_biz(&mut w, &cluster, PartitionId(0), app(), pool.clone());
        w.run_for(SimDuration::from_secs(3));
        let client = ClientHandle::spawn(&mut w, pool[0]);
        let rows = endpoints(&mut w, &client, rt);
        assert_eq!(rows.len(), 5, "2 web + 2 app + 1 db instances: {rows:?}");
        // Load balancing: 5 instances over 6 nodes → no node hosts 3+.
        let mut per_node: HashMap<NodeId, usize> = HashMap::new();
        for r in &rows {
            *per_node.entry(r.nodes[0]).or_default() += 1;
        }
        assert!(per_node.values().all(|&c| c <= 2), "{per_node:?}");
    }

    #[test]
    fn instance_process_failure_is_replaced() {
        let (mut w, cluster) =
            boot_and_stabilize(ClusterTopology::uniform(2, 5, 1), KernelParams::fast(), 62);
        let pool: Vec<NodeId> = cluster
            .topology
            .partitions
            .iter()
            .flat_map(|p| p.compute.iter().copied())
            .collect();
        let rt = install_biz(&mut w, &cluster, PartitionId(0), app(), pool.clone());
        w.run_for(SimDuration::from_secs(3));
        let client = ClientHandle::spawn(&mut w, pool[0]);
        let before = endpoints(&mut w, &client, rt);
        assert_eq!(before.len(), 5);

        // Kill one tier instance's process (the app proc is the newest
        // pid on its node beyond the three daemons).
        let victim_node = before[0].nodes[0];
        let victim = w.pids_on(victim_node).into_iter().max().unwrap();
        w.kill_process(victim);
        // The detector notices on its next scan, publishes the event, the
        // runtime re-places the instance.
        w.run_for(SimDuration::from_secs(4));
        let after = endpoints(&mut w, &client, rt);
        assert_eq!(after.len(), 5, "instance replaced: {after:?}");
        let replaced = w
            .trace()
            .count(|e| matches!(e, TraceEvent::Milestone { label: "biz-instance-replaced", .. }));
        assert!(replaced >= 1);
    }

    #[test]
    fn node_fault_relocates_instances() {
        let (mut w, cluster) =
            boot_and_stabilize(ClusterTopology::uniform(2, 5, 1), KernelParams::fast(), 63);
        let pool: Vec<NodeId> = cluster
            .topology
            .partitions
            .iter()
            .flat_map(|p| p.compute.iter().copied())
            .collect();
        let rt = install_biz(&mut w, &cluster, PartitionId(0), app(), pool.clone());
        w.run_for(SimDuration::from_secs(3));
        let client = ClientHandle::spawn(&mut w, cluster.topology.partitions[0].server);
        let before = endpoints(&mut w, &client, rt);
        let victim_node = before[0].nodes[0];
        w.apply_fault(Fault::CrashNode(victim_node));
        w.run_for(SimDuration::from_secs(6));
        let after = endpoints(&mut w, &client, rt);
        assert_eq!(after.len(), 5, "all tiers serving again: {after:?}");
        assert!(
            after.iter().all(|r| r.nodes[0] != victim_node),
            "no endpoint on the dead node"
        );
    }

    #[test]
    fn runtime_itself_is_highly_available() {
        let (mut w, cluster) =
            boot_and_stabilize(ClusterTopology::uniform(2, 5, 1), KernelParams::fast(), 64);
        let pool: Vec<NodeId> = cluster
            .topology
            .partitions
            .iter()
            .flat_map(|p| p.compute.iter().copied())
            .collect();
        let rt = install_biz(&mut w, &cluster, PartitionId(0), app(), pool.clone());
        w.run_for(SimDuration::from_secs(3));
        // Kill the runtime; the GSD restarts it from the factory and it
        // restores its deployment map from the checkpoint service.
        w.kill_process(rt);
        w.run_for(SimDuration::from_secs(4));
        // Find the replacement via ServiceUp traces.
        let new_rt = w
            .trace()
            .records()
            .iter()
            .rev()
            .find_map(|r| match r.event {
                TraceEvent::ServiceUp {
                    pid,
                    service: "biz-runtime",
                    ..
                } if pid != rt => Some(pid),
                _ => None,
            })
            .expect("runtime restarted");
        assert!(w.is_alive(new_rt));
        let client = ClientHandle::spawn(&mut w, pool[0]);
        let rows = endpoints(&mut w, &client, new_rt);
        assert_eq!(rows.len(), 5, "deployment restored from checkpoint");
    }
}
