//! Regenerates **Figure 4 — Event Service Group based on GSD**: the
//! supervision story of Sec 4.4. "If one member of event service group
//! fails, GSD on the same host will notify all members of GSD group and
//! then restart the failed service. Recovered event service daemon will
//! retrieve its state data from the checkpoint service. If the node on
//! which event service daemon running fails, GSD member next to it in the
//! ring structure will select a new node for migrating GSD and then
//! recovering event service."

use phoenix_kernel::boot::boot_and_stabilize;
use phoenix_kernel::client::ClientHandle;
use phoenix_kernel::KernelParams;
use phoenix_proto::{
    ClusterTopology, ConsumerReg, EventFilter, EventType, KernelMsg, RequestId,
};
use phoenix_sim::{Fault, NodeId, SimDuration, TraceEvent};

fn main() {
    let topo = ClusterTopology::uniform(3, 4, 1);
    let (mut w, cluster) = boot_and_stabilize(topo, KernelParams::fast(), 34);

    // A consumer registered at partition 1's ES; its registration is the
    // state that must survive both failure modes.
    let es1 = cluster.directory.partitions[1].event;
    let consumer = ClientHandle::spawn(&mut w, NodeId(2));
    consumer.send(
        &mut w,
        es1,
        KernelMsg::EsRegisterConsumer {
            req: RequestId(0),
            reg: ConsumerReg {
                consumer: consumer.pid,
                filter: EventFilter::types(&[EventType::NodeFault, EventType::NodeRecovery]),
            },
        },
    );
    w.run_for(SimDuration::from_secs(2));

    println!("== phase 1: ES process failure → restart in place + checkpoint restore ==");
    w.kill_process(es1);
    w.run_for(SimDuration::from_secs(3));
    let restarted = w.trace().count(|e| {
        matches!(
            e,
            TraceEvent::Recovered {
                action: phoenix_sim::RecoveryAction::RestartedInPlace,
                ..
            }
        )
    });
    println!("   in-place service recoveries so far: {restarted}");

    // Prove the restored registration still works.
    let _ = consumer.drain();
    w.apply_fault(Fault::CrashNode(NodeId(7))); // some compute node
    w.run_for(SimDuration::from_secs(3));
    let notified = consumer
        .drain()
        .iter()
        .any(|(_, m)| matches!(m, KernelMsg::EsNotify { event } if event.etype == EventType::NodeFault));
    println!("   consumer notified after restart: {notified}");

    println!("\n== phase 2: server-node failure → GSD migrates, ES recovered on backup ==");
    let server1 = cluster.topology.partitions[1].server;
    let backup1 = cluster.topology.partitions[1].backups[0];
    w.apply_fault(Fault::CrashNode(server1));
    w.run_for(SimDuration::from_secs(8));
    let migrated = w.trace().count(|e| {
        matches!(e, TraceEvent::Recovered { action: phoenix_sim::RecoveryAction::Migrated(to), .. } if *to == backup1)
    });
    println!("   services migrated to backup {backup1}: {migrated}");

    let _ = consumer.drain();
    w.apply_fault(Fault::CrashNode(NodeId(11)));
    w.run_for(SimDuration::from_secs(3));
    let notified2 = consumer
        .drain()
        .iter()
        .any(|(_, m)| matches!(m, KernelMsg::EsNotify { event } if event.etype == EventType::NodeFault));
    println!("   consumer notified after migration: {notified2}");

    println!("\n== phase 3: island split → minority freeze → regroup → heal (post-mortem) ==");
    // A fresh cluster with the quorum-regroup layer enabled: cut the five
    // nodes of partition 0 (config service + meta leader) onto a minority
    // island, let the majority regroup, heal, and then read the episode
    // back out of the flight recorder as a parent/child span waterfall.
    phoenix_telemetry::reset();
    let topo = ClusterTopology::uniform(3, 4, 1);
    let (mut w, _cluster) = boot_and_stabilize(topo, KernelParams::fast_partition(), 34);
    let cut_ns = w.now().as_nanos();
    w.apply_fault(Fault::Partition { island: 0b1111 });
    w.run_for(SimDuration::from_secs(6));
    w.apply_fault(Fault::Heal);
    w.run_for(SimDuration::from_secs(12));
    let end_ns = w.now().as_nanos();
    let frozen_episodes = phoenix_telemetry::with(|r| {
        r.recorder().iter().filter(|s| s.path == "gsd.regroup.frozen").count()
    });
    let rounds = phoenix_telemetry::with(|r| r.counter("gsd.regroup.rounds"));
    println!("   frozen episodes recorded: {frozen_episodes} ({rounds} regroup rounds)");
    println!("   span waterfall, cut → post-heal (regroup spans only):");
    let full = phoenix_telemetry::with(|r| r.recorder().waterfall(cut_ns, end_ns, 48));
    for line in full.lines().filter(|l| l.contains("regroup")) {
        println!("   {line}");
    }
    println!("\nFig 4 reproduced: restart-in-place and migrate-with-GSD paths both keep");
    println!("the event service group serving its consumers, and a split-brain episode");
    println!("reads back as a freeze span with its heal-probing rounds nested inside.");
}
