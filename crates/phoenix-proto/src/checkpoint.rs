//! Checkpoint-service payloads.
//!
//! Paper Sec 4.2: "upper-layer services themselves are responsible for
//! saving and deleting system state by calling interface of checkpoint
//! service." Each upper-layer service has a typed state snapshot here; a
//! raw-bytes variant serves ad-hoc users.

use crate::bulletin::BulletinEntry;
use crate::event::ConsumerReg;
use crate::ids::JobId;
use crate::job::JobSpec;
use phoenix_sim::{NodeId, Pid};

/// State snapshots the kernel services save through the checkpoint service.
#[derive(Clone, PartialEq, Debug)]
pub enum CheckpointData {
    /// Event service: live consumer registrations and the publish cursor.
    EventService {
        consumers: Vec<ConsumerReg>,
        next_seq: u64,
    },
    /// Data bulletin: current entries of the partition.
    Bulletin { entries: Vec<BulletinEntry> },
    /// PWS scheduler: queue and placements.
    Scheduler {
        queued: Vec<JobSpec>,
        running: Vec<(JobId, Vec<NodeId>)>,
    },
    /// GSD supervision roster: factory keys and pids of the supervised
    /// user-environment services, so a migrated GSD can respawn them.
    Supervision { entries: Vec<(String, Pid)> },
    /// Anything else.
    Raw(Vec<u8>),
}

impl CheckpointData {
    /// Human label for traces.
    pub fn label(&self) -> &'static str {
        match self {
            CheckpointData::EventService { .. } => "event-state",
            CheckpointData::Bulletin { .. } => "bulletin-state",
            CheckpointData::Scheduler { .. } => "scheduler-state",
            CheckpointData::Supervision { .. } => "supervision",
            CheckpointData::Raw(_) => "raw",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(
            CheckpointData::EventService {
                consumers: vec![],
                next_seq: 0
            }
            .label(),
            "event-state"
        );
        assert_eq!(CheckpointData::Raw(vec![1, 2]).label(), "raw");
    }
}
