//! Operations scenario: a system administrator's day. GridView monitoring
//! at a realistic scale, a resource alarm when a node saturates, and
//! start/shutdown node operations through the configuration service
//! (paper Figs 6 and 9 combined).
//!
//! ```sh
//! cargo run --example operations_console
//! ```

use phoenix::gridview::GridView;
use phoenix::kernel::boot::boot_and_stabilize;
use phoenix::kernel::client::ClientHandle;
use phoenix::kernel::KernelParams;
use phoenix::proto::{
    ClusterTopology, JobId, KernelMsg, NodeOp, RequestId, TaskSpec,
};
use phoenix::pws::ui;
use phoenix::sim::{NodeId, SimDuration};

fn main() {
    // 4 partitions × 9 nodes = 36 nodes.
    let topology = ClusterTopology::uniform(4, 9, 1);
    let (mut world, cluster) = boot_and_stabilize(topology, KernelParams::fast(), 13);
    let console_node = cluster.topology.partitions[0].compute[0];
    let gv = GridView::spawn(
        &mut world,
        console_node,
        cluster.bulletin(),
        cluster.event(),
        SimDuration::from_millis(800),
    );
    world.run_for(SimDuration::from_secs(3));
    println!("{}", gv.render());

    // A tenant saturates a node → ResourceAlarm reaches the console.
    println!(">> tenant workload saturates node20...");
    let client = ClientHandle::spawn(&mut world, console_node);
    let ppm20 = cluster.directory.node(NodeId(20)).unwrap().ppm;
    client.send(
        &mut world,
        ppm20,
        KernelMsg::PpmExec {
            req: RequestId(1),
            job: JobId(7),
            task: TaskSpec {
                cpus: 4,
                cpu_load: 0.99,
                mem_load: 0.6,
                duration_ns: None,
            },
            targets: vec![NodeId(20)],
            reply_to: client.pid,
        },
    );
    world.run_for(SimDuration::from_secs(3));
    println!("{}", gv.render());

    // The admin drains the node: delete the job, shut the node down.
    println!(">> admin deletes the job and shuts node20 down for service...");
    client.send(
        &mut world,
        ppm20,
        KernelMsg::PpmDelete {
            req: RequestId(2),
            job: JobId(7),
            targets: vec![NodeId(20)],
            reply_to: client.pid,
        },
    );
    world.run_for(SimDuration::from_millis(500));
    client.send(
        &mut world,
        cluster.config(),
        KernelMsg::CfgNodeOp {
            req: RequestId(3),
            node: NodeId(20),
            op: NodeOp::Shutdown,
        },
    );
    world.run_for(SimDuration::from_secs(4));
    println!("{}", ui::render_node_board(world.nodes(), 12));

    println!(">> maintenance done, node returns...");
    client.send(
        &mut world,
        cluster.config(),
        KernelMsg::CfgNodeOp {
            req: RequestId(4),
            node: NodeId(20),
            op: NodeOp::Start,
        },
    );
    world.run_for(SimDuration::from_secs(3));
    println!("{}", ui::render_node_board(world.nodes(), 12));
    println!("{}", gv.render());
    println!(
        "console saw {} kernel events in total",
        gv.events_received()
    );
}
