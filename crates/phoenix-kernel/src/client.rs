//! Test/driver client: an actor that collects everything sent to it.
//!
//! Experiments and examples interact with the kernel the way the paper's
//! user environments do — by exchanging messages. `ClientHandle` spawns a
//! collector actor on a node and exposes its inbox to the driving code.

use phoenix_proto::KernelMsg;
use phoenix_sim::{Actor, Ctx, NodeId, Pid, World};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

type Inbox = Rc<RefCell<VecDeque<(Pid, KernelMsg)>>>;

struct Collector {
    inbox: Inbox,
}

impl Actor<KernelMsg> for Collector {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, KernelMsg>, from: Pid, msg: KernelMsg) {
        self.inbox.borrow_mut().push_back((from, msg));
    }
    fn name(&self) -> &str {
        "client"
    }
}

/// Handle to a spawned collector actor.
#[derive(Clone)]
pub struct ClientHandle {
    /// The collector's pid — use as the reply-to address.
    pub pid: Pid,
    inbox: Inbox,
}

impl ClientHandle {
    /// Spawn a client on `node`.
    pub fn spawn(world: &mut World<KernelMsg>, node: NodeId) -> ClientHandle {
        let inbox: Inbox = Rc::new(RefCell::new(VecDeque::new()));
        let pid = world.spawn(
            node,
            Box::new(Collector {
                inbox: inbox.clone(),
            }),
        );
        ClientHandle { pid, inbox }
    }

    /// Send `msg` to `to` with this client as the sender, so responses
    /// come back to the inbox.
    pub fn send(&self, world: &mut World<KernelMsg>, to: Pid, msg: KernelMsg) {
        world.send_from(self.pid, to, msg);
    }

    /// Take all received messages.
    pub fn drain(&self) -> Vec<(Pid, KernelMsg)> {
        self.inbox.borrow_mut().drain(..).collect()
    }

    /// Number of messages waiting.
    pub fn len(&self) -> usize {
        self.inbox.borrow().len()
    }

    /// True if no messages are waiting.
    pub fn is_empty(&self) -> bool {
        self.inbox.borrow().is_empty()
    }

    /// Pop the first waiting message, if any.
    pub fn pop(&self) -> Option<(Pid, KernelMsg)> {
        self.inbox.borrow_mut().pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_sim::{ClusterBuilder, NodeSpec, SimDuration};

    struct EchoReq;
    impl Actor<KernelMsg> for EchoReq {
        fn on_message(&mut self, ctx: &mut Ctx<'_, KernelMsg>, from: Pid, msg: KernelMsg) {
            ctx.send(from, msg);
        }
    }

    #[test]
    fn client_round_trip() {
        let mut w = ClusterBuilder::new()
            .nodes(2, NodeSpec::default())
            .build::<KernelMsg>();
        let echo = w.spawn(NodeId(1), Box::new(EchoReq));
        let client = ClientHandle::spawn(&mut w, NodeId(0));
        client.send(
            &mut w,
            echo,
            KernelMsg::ProbeReq {
                req: phoenix_proto::RequestId(5),
            },
        );
        w.run_for(SimDuration::from_millis(5));
        let got = client.drain();
        assert_eq!(got.len(), 1);
        assert!(matches!(
            got[0].1,
            KernelMsg::ProbeReq {
                req: phoenix_proto::RequestId(5)
            }
        ));
        assert!(client.is_empty());
    }
}
