//! Protocol-level identifiers (on top of the simulator's hardware ids).

use std::fmt;

/// A cluster partition: one server node, at least one backup server node,
/// and a set of computing nodes (paper Sec 4.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartitionId(pub u32);

impl PartitionId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "part{}", self.0)
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "part{}", self.0)
    }
}

/// The kinds of kernel service the paper's Figure 2 stacks on group service.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ServiceKind {
    Configuration,
    Security,
    ParallelProcessManagement,
    Detector,
    Group,
    Checkpoint,
    Event,
    DataBulletin,
    WatchDaemon,
    /// User-environment services built on the kernel (PWS scheduler, ...).
    UserEnvironment,
}

impl ServiceKind {
    /// Short label used in traces and traffic tables.
    pub fn label(self) -> &'static str {
        match self {
            ServiceKind::Configuration => "config",
            ServiceKind::Security => "security",
            ServiceKind::ParallelProcessManagement => "ppm",
            ServiceKind::Detector => "detector",
            ServiceKind::Group => "group",
            ServiceKind::Checkpoint => "checkpoint",
            ServiceKind::Event => "event",
            ServiceKind::DataBulletin => "bulletin",
            ServiceKind::WatchDaemon => "wd",
            ServiceKind::UserEnvironment => "userenv",
        }
    }
}

/// A batch job handled by PPM / PWS.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct JobId(pub u64);

impl fmt::Debug for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// A user principal known to the security service.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UserId(pub String);

impl UserId {
    pub fn new(name: impl Into<String>) -> UserId {
        UserId(name.into())
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Correlates a request with its response across the simulated network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct RequestId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_labels_are_unique() {
        use ServiceKind::*;
        let all = [
            Configuration,
            Security,
            ParallelProcessManagement,
            Detector,
            Group,
            Checkpoint,
            Event,
            DataBulletin,
            WatchDaemon,
            UserEnvironment,
        ];
        let mut labels: Vec<&str> = all.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }

    #[test]
    fn display_forms() {
        assert_eq!(PartitionId(3).to_string(), "part3");
        assert_eq!(JobId(12).to_string(), "job12");
        assert_eq!(UserId::new("alice").to_string(), "alice");
    }
}
