//! Regenerates **Table 4 — Phoenix's Impact on Linpack Benchmark
//! Performance**.
//!
//! The paper ran HPL on 4/16/64/128 CPUs of the Dawning 4000A with and
//! without the Phoenix kernel daemons, finding 97–102 % of baseline
//! performance ("Phoenix kernel has little impact on scientific
//! computing"). We reproduce the *measurement* at laptop scale: a real
//! blocked LU factorization on real threads, with background threads
//! exercising the duty cycle of the per-node Phoenix daemons (WD
//! heartbeats + detector sampling). The column to compare is the ratio.

use phoenix_hpl::{measure_impact, DaemonLoad};

fn main() {
    let load = DaemonLoad::phoenix_default();
    println!(
        "Phoenix daemon model: {} daemons, {:?} interval, {:?} busy → {:.2}% duty cycle",
        load.daemons,
        load.interval,
        load.busy,
        load.duty_cycle() * 100.0
    );
    println!("\nTable 4: Phoenix's Impact on Linpack Benchmark Performance (laptop scale)");
    println!(
        "{:>8} {:>6} {:>16} {:>16} {:>8}",
        "threads", "n", "GFLOPS w/o", "GFLOPS with", "ratio"
    );
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    for threads in [1usize, 2, 4] {
        if threads > host * 4 {
            break;
        }
        let n = 512;
        let row = measure_impact(n, threads, &load, 4);
        println!(
            "{:>8} {:>6} {:>16.3} {:>16.3} {:>7.1}%",
            row.threads, row.n, row.gflops_without, row.gflops_with, row.ratio_pct
        );
    }
    println!("\nPaper reference (CPUs → ratio): 4→99.0%, 16→99.0%, 64→99.1%, 128→97.8%");
    println!("(paper numbers are Rmax ratios on the Dawning 4000A; ours are the same");
    println!(" with/without-daemons ratio measured on this machine's cores)");
}
