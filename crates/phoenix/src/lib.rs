//! # phoenix — the Fire Phoenix cluster operating system (reproduction)
//!
//! One-stop facade over the workspace:
//!
//! * [`sim`] — deterministic cluster simulator (the "hardware");
//! * [`proto`] — the kernel wire protocol;
//! * [`kernel`] — the Phoenix kernel itself (group service & meta-group
//!   ring, event service, data bulletin, checkpoint, configuration,
//!   security, detectors, parallel process management, boot);
//! * [`pws`] — the Phoenix-PWS job-management user environment and the
//!   PBS baseline;
//! * [`gridview`] — the monitoring user environment;
//! * [`hpl`] — the Linpack-class workload for the Table 4 experiment.
//!
//! Start with `examples/quickstart.rs`.

pub use phoenix_biz as biz;
pub use phoenix_chaos as chaos;
pub use phoenix_telemetry as telemetry;
pub use phoenix_gridview as gridview;
pub use phoenix_hpl as hpl;
pub use phoenix_kernel as kernel;
pub use phoenix_proto as proto;
pub use phoenix_pws as pws;
pub use phoenix_sim as sim;
