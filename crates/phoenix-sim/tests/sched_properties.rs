//! Property tests for the event-core schedulers.
//!
//! The determinism contract: for any interleaving of pushes and pops (with
//! `at` never below the last popped time — the only pattern the simulator
//! generates), the wheel scheduler must pop *exactly* the `(time, seq)`
//! stream of the reference `BinaryHeap` scheduler. These tests drive both
//! through long seeded random op sequences spanning every wheel region
//! (same-tick ties, sub-slot times, every level, the overflow heap) plus
//! cancellation patterns, and compare the streams element by element.

use phoenix_sim::sched::{HeapScheduler, Scheduler, WheelScheduler};
use phoenix_sim::{
    Actor, ArenaStats, ClusterBuilder, Ctx, NodeId, NodeSpec, Pid, SchedulerKind, SimDuration,
    SimRng, SimTime,
};
use std::collections::HashSet;

/// Both schedulers under identical op streams.
struct Pair {
    heap: HeapScheduler<u64>,
    wheel: WheelScheduler<u64>,
    seq: u64,
    clock: u64,
    live: usize,
}

impl Pair {
    fn new() -> Pair {
        Pair {
            heap: HeapScheduler::new(),
            wheel: WheelScheduler::new(),
            seq: 0,
            clock: 0,
            live: 0,
        }
    }

    fn push(&mut self, at: u64) -> u64 {
        let at = at.max(self.clock);
        self.seq += 1;
        self.heap.push(SimTime(at), self.seq, self.seq);
        self.wheel.push(SimTime(at), self.seq, self.seq);
        self.live += 1;
        self.seq
    }

    /// Pop from both; assert agreement; advance the virtual clock.
    fn pop(&mut self) -> Option<(u64, u64)> {
        let a = self.heap.pop();
        let b = self.wheel.pop();
        assert_eq!(a, b, "heap and wheel diverged at pop {}", self.seq);
        if let Some((at, seq, item)) = a {
            assert_eq!(seq, item);
            assert!(at.0 >= self.clock, "time went backwards");
            self.clock = at.0;
            self.live -= 1;
            Some((at.0, seq))
        } else {
            None
        }
    }

    fn pop_before(&mut self, deadline: u64) -> Option<(u64, u64)> {
        let a = self.heap.pop_before(SimTime(deadline));
        let b = self.wheel.pop_before(SimTime(deadline));
        assert_eq!(a, b, "pop_before({deadline}) diverged");
        if let Some((at, seq, _)) = a {
            self.clock = at.0;
            self.live -= 1;
            Some((at.0, seq))
        } else {
            // Neither scheduler had an event by the deadline: the clock
            // advances to the deadline, exactly like World::run_until.
            self.clock = self.clock.max(deadline);
            None
        }
    }

    fn check_len(&self) {
        assert_eq!(self.heap.len(), self.live);
        assert_eq!(self.wheel.len(), self.live);
        assert_eq!(self.heap.earliest(), self.wheel.earliest());
    }

    fn drain(&mut self) {
        while self.pop().is_some() {}
        assert_eq!(self.wheel.arena_stats().live, 0, "arena must drain");
    }
}

/// Draw a time offset spanning every region of the wheel: sub-slot (<65 µs),
/// level 0-1 (ms), level 2-3 (tens of ms to seconds), level 4 (~minutes to
/// hours), and past the 19.5 h horizon into the overflow heap.
fn draw_offset(rng: &mut SimRng) -> u64 {
    match rng.gen_range(0..100u64) {
        0..=29 => rng.gen_range(0..65_536u64),              // same/adjacent slot
        30..=54 => rng.gen_range(0..4_200_000u64),          // level 0-1
        55..=74 => rng.gen_range(0..270_000_000u64),        // level 2
        75..=89 => rng.gen_range(0..17_000_000_000u64),     // level 3
        90..=96 => rng.gen_range(0..1_100_000_000_000u64),  // level 4
        _ => rng.gen_range(0..200_000_000_000_000u64),      // overflow
    }
}

#[test]
fn random_push_pop_streams_are_identical() {
    for seed in 0..20u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut p = Pair::new();
        for _ in 0..3_000 {
            match rng.gen_range(0..10u64) {
                // Pushes outweigh pops so the structure stays populated.
                0..=5 => {
                    let at = p.clock + draw_offset(&mut rng);
                    p.push(at);
                }
                6 => {
                    // Same-tick tie burst: several events at one instant.
                    let at = p.clock + draw_offset(&mut rng);
                    for _ in 0..rng.gen_range(2..6u64) {
                        p.push(at);
                    }
                }
                7..=8 => {
                    p.pop();
                }
                _ => {
                    let deadline = p.clock + draw_offset(&mut rng);
                    while p.pop_before(deadline).is_some() {}
                }
            }
        }
        p.check_len();
        p.drain();
    }
}

#[test]
fn zero_delay_pushes_interleave_correctly() {
    // Handlers scheduling follow-ups at the current instant (local
    // latency 0 edge case): new events at exactly the popped time must
    // sort after already-pending same-tick events by seq.
    let mut p = Pair::new();
    let mut rng = SimRng::seed_from_u64(99);
    p.push(1_000);
    for _ in 0..500 {
        if p.live == 0 {
            p.push(p.clock + 1_000);
        }
        let (at, _) = p.pop().unwrap();
        // Push a few at the same instant and a few later.
        for _ in 0..rng.gen_range(1..4u64) {
            p.push(at);
        }
        p.push(at + rng.gen_range(1..100_000u64));
        // Drain a couple to keep the population bounded.
        p.pop();
        p.pop();
    }
    p.drain();
}

#[test]
fn cancellation_by_skip_set_matches_reference() {
    // The world cancels timers lazily: cancelled ids are skipped at pop
    // time. Model that on both schedulers with an identical skip set and
    // verify the surviving streams agree.
    for seed in 0..10u64 {
        let mut rng = SimRng::seed_from_u64(0xCA11 ^ seed);
        let mut p = Pair::new();
        let mut cancelled: HashSet<u64> = HashSet::new();
        let mut pending: Vec<u64> = Vec::new();
        for _ in 0..2_000 {
            match rng.gen_range(0..10u64) {
                0..=5 => {
                    let at = p.clock + draw_offset(&mut rng);
                    pending.push(p.push(at));
                }
                6 => {
                    if !pending.is_empty() {
                        let i = rng.gen_range(0..pending.len() as u64) as usize;
                        cancelled.insert(pending.swap_remove(i));
                    }
                }
                _ => {
                    // Pop through cancellations exactly like World::dispatch.
                    while let Some((_, seq)) = p.pop() {
                        if !cancelled.remove(&seq) {
                            pending.retain(|&s| s != seq);
                            break;
                        }
                    }
                }
            }
        }
        p.drain();
    }
}

#[test]
fn far_future_overflow_promotes_in_order() {
    // Events far past the wheel horizon must surface from the overflow
    // heap in global order even when near-term events keep arriving.
    let mut p = Pair::new();
    let mut rng = SimRng::seed_from_u64(7);
    let day = 86_400u64 * 1_000_000_000;
    for i in 0..50u64 {
        p.push(day + i * 7_919_111);
        p.push(day); // ties inside overflow
    }
    // Interleave near-term churn while overflow entries wait.
    for _ in 0..500 {
        p.push(p.clock + rng.gen_range(0..2_000_000_000u64));
        p.pop();
    }
    p.drain();
}

#[test]
fn big_time_jumps_cascade_correctly() {
    // Sparse far-apart events force multi-level cursor jumps and cascades.
    let mut p = Pair::new();
    let mut rng = SimRng::seed_from_u64(13);
    for _ in 0..300 {
        // Exponentially distributed gaps: many tiny, some enormous.
        let shift = rng.gen_range(0..47u64);
        p.push(p.clock + rng.gen_range(0..(2u64 << shift)));
        if rng.gen_range(0..3u64) == 0 {
            p.pop();
        }
    }
    p.drain();
}

// ---------------------------------------------------------------------------
// Sim-level differential: a full actor workload under both schedulers
// ---------------------------------------------------------------------------

/// Actor driving a mixed timer + messaging load: periodic timers at a
/// pid-derived interval, each firing a message to a peer.
struct Worker {
    peer: Pid,
    interval: SimDuration,
    fires: u64,
}

impl Actor<u64> for Worker {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.set_timer(self.interval, 1);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _token: u64) {
        self.fires += 1;
        ctx.send(self.peer, self.fires);
        if self.fires < 200 {
            ctx.set_timer(self.interval, 1);
        }
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: Pid, msg: u64) {
        // Occasionally bounce back, creating message chains.
        if msg % 17 == 0 {
            ctx.send(from, msg + 1);
        }
    }
}

fn run_workload(kind: SchedulerKind) -> (String, u64, u64, ArenaStats) {
    let mut w = ClusterBuilder::new()
        .nodes(8, NodeSpec::default())
        .seed(0xD1FF)
        .scheduler(kind)
        .record_events(true)
        .build::<u64>();
    let mut pids = Vec::new();
    for i in 0..32u64 {
        // Mixed intervals spread timers across wheel levels.
        let interval = match i % 4 {
            0 => SimDuration::from_micros(800),
            1 => SimDuration::from_millis(7),
            2 => SimDuration::from_millis(130),
            _ => SimDuration::from_secs(2),
        };
        let pid = w.spawn(
            NodeId((i % 8) as u32),
            Box::new(Worker {
                peer: Pid(1 + (i + 1) % 32),
                interval,
                fires: 0,
            }),
        );
        pids.push(pid);
    }
    // Long enough for every worker to hit its 200-fire cap (the slowest
    // reschedules every 2 s → 400 s), so the queue fully drains and the
    // arena must end empty.
    w.run_for(SimDuration::from_secs(450));
    assert_eq!(w.queue_len(), 0, "workload must drain completely");
    (
        w.take_event_log(),
        w.metrics().events_processed,
        w.metrics().total.delivered,
        w.scheduler_stats(),
    )
}

#[test]
fn full_actor_workload_is_byte_identical_across_schedulers() {
    let (heap_log, heap_events, heap_delivered, _) = run_workload(SchedulerKind::Heap);
    let (wheel_log, wheel_events, wheel_delivered, wheel_pool) =
        run_workload(SchedulerKind::Wheel);
    assert!(heap_events > 5_000, "workload too small to be meaningful");
    assert_eq!(heap_events, wheel_events);
    assert_eq!(heap_delivered, wheel_delivered);
    if heap_log != wheel_log {
        let line = heap_log
            .lines()
            .zip(wheel_log.lines())
            .position(|(a, b)| a != b);
        panic!(
            "event streams diverge at line {:?}:\n  heap:  {:?}\n  wheel: {:?}",
            line,
            line.map(|l| heap_log.lines().nth(l).unwrap()),
            line.map(|l| wheel_log.lines().nth(l).unwrap()),
        );
    }
    // Arena leak check after the full run: every slot returned.
    assert_eq!(wheel_pool.live, 0);
    assert_eq!(wheel_pool.allocs, wheel_pool.frees);
    assert!(wheel_pool.capacity > 0, "the pool was actually exercised");
}
