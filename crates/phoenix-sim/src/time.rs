//! Virtual time for the discrete-event simulation.
//!
//! All simulation timestamps are [`SimTime`] values: nanoseconds since the
//! start of the run. Durations are [`SimDuration`]. Both are thin wrappers
//! over `u64` so they are `Copy`, totally ordered, and cheap to store in the
//! event queue.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Virtual seconds since simulation start, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole virtual seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from whole virtual milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole virtual microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from whole virtual nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from fractional virtual seconds. Negative values clamp to 0.
    pub fn from_secs_f64(s: f64) -> SimDuration {
        if s <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((s * 1e9).round() as u64)
        }
    }

    /// The duration in nanoseconds.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == 0 {
            write!(f, "0s")
        } else if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.2}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::ZERO + SimDuration::from_secs(30);
        assert_eq!(t.as_nanos(), 30_000_000_000);
        assert_eq!(t.as_secs_f64(), 30.0);
    }

    #[test]
    fn subtract_times_yields_duration() {
        let a = SimTime(5_000);
        let b = SimTime(2_000);
        assert_eq!(a - b, SimDuration(3_000));
        // Saturating: earlier - later == 0.
        assert_eq!(b - a, SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_millis(1),
            SimDuration::from_micros(1_000)
        );
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 2, SimDuration::from_secs(5));
        assert_eq!(d - SimDuration::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(
            SimDuration::from_secs(4).saturating_sub(d),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.00us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.00ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.00s");
    }

    #[test]
    fn since_saturates() {
        let a = SimTime(100);
        let b = SimTime(300);
        assert_eq!(b.since(a), SimDuration(200));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }
}
