//! Security-service types: principals, roles, actions, tokens.
//!
//! The paper specifies the *interfaces* — "authorization, authentication
//! and encryption functions for users" — but no algorithms; the types here
//! plus the keyed-MAC implementation in `phoenix-kernel::security` are our
//! stand-in (documented in DESIGN.md).

use crate::ids::UserId;

/// The four user roles Phoenix defines (paper Sec 3) plus a guest.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// "System constructor configures, deploys and boots cluster system."
    SystemConstructor,
    /// "System administrators perform daily system management."
    SystemAdministrator,
    /// "Science computing users submit their jobs."
    ScientificUser,
    /// "Business computing user" of the hosting runtime.
    BusinessUser,
    /// Unauthenticated / unknown.
    Guest,
}

/// Actions subject to authorization.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    SubmitJob,
    CancelJob,
    QueryState,
    Reconfigure,
    StartNode,
    ShutdownNode,
    PublishEvent,
    ManageUsers,
}

impl Role {
    /// The static role→action policy matrix.
    pub fn may(self, action: Action) -> bool {
        use Action::*;
        use Role::*;
        match self {
            SystemConstructor => true,
            SystemAdministrator => !matches!(action, ManageUsers),
            ScientificUser => matches!(action, SubmitJob | CancelJob | QueryState),
            BusinessUser => matches!(action, QueryState | PublishEvent),
            Guest => false,
        }
    }
}

/// A signed authentication token. `mac` is a keyed hash over the user and
/// expiry computed by the security service; services verify it without a
/// round trip.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AuthToken {
    pub user: UserId,
    pub role: Role,
    pub expires_ns: u64,
    pub mac: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_can_do_anything() {
        for a in [
            Action::SubmitJob,
            Action::Reconfigure,
            Action::ManageUsers,
            Action::ShutdownNode,
        ] {
            assert!(Role::SystemConstructor.may(a));
        }
    }

    #[test]
    fn admin_cannot_manage_users() {
        assert!(Role::SystemAdministrator.may(Action::ShutdownNode));
        assert!(!Role::SystemAdministrator.may(Action::ManageUsers));
    }

    #[test]
    fn scientific_user_scope() {
        assert!(Role::ScientificUser.may(Action::SubmitJob));
        assert!(Role::ScientificUser.may(Action::QueryState));
        assert!(!Role::ScientificUser.may(Action::Reconfigure));
        assert!(!Role::ScientificUser.may(Action::ShutdownNode));
    }

    #[test]
    fn guest_can_do_nothing() {
        assert!(!Role::Guest.may(Action::QueryState));
    }
}
