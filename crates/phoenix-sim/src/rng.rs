//! Seeded, dependency-free PRNG for the simulator.
//!
//! The workspace must build with no network access, so `rand` is out; the
//! simulator only ever needed a deterministic seeded stream, not
//! cryptographic quality. `SimRng` is xoshiro256++ seeded via splitmix64
//! — fast, well-distributed, and fully reproducible from a `u64` seed.
//!
//! The API mirrors the subset of `rand` the codebase used:
//! `seed_from_u64`, `gen_range(lo..hi)` / `gen_range(lo..=hi)` for the
//! integer and float types in use, plus raw `next_u64`/`next_f64`.

use std::ops::{Range, RangeInclusive};

#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Deterministically expand a `u64` seed into the full state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 uniformly distributed bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range; panics on an empty range, like
    /// `rand::Rng::gen_range`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Ranges `SimRng::gen_range` accepts. Implemented for the exact range
/// types the codebase draws from.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut SimRng) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SimRng) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Modulo bias is negligible for simulation spans (<< 2^64).
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SimRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as u128 - lo as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    // Full u64 domain: every draw is in range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize);

// Signed ranges: shift into unsigned space, sample, shift back.
impl SampleRange for Range<i32> {
    type Output = i32;
    fn sample(self, rng: &mut SimRng) -> i32 {
        assert!(self.start < self.end, "gen_range on empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

impl SampleRange for RangeInclusive<i32> {
    type Output = i32;
    fn sample(self, rng: &mut SimRng) -> i32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        let span = (hi as i64 - lo as i64 + 1) as u64;
        (lo as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SimRng) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SimRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(0u64..=5);
            assert!(v <= 5);
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let f = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&f));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
            let b = rng.gen_range(0u8..3);
            assert!(b < 3);
        }
    }

    #[test]
    fn degenerate_inclusive_range_returns_endpoint() {
        let mut rng = SimRng::seed_from_u64(9);
        assert_eq!(rng.gen_range(4u32..=4), 4);
        assert_eq!(rng.gen_range(0u64..=0), 0);
        assert_eq!(rng.gen_range(2.0f64..=2.0), 2.0);
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} suspiciously far from 0.5");
    }
}
