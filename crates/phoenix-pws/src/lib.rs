//! # phoenix-pws — the Phoenix-PWS job management user environment
//!
//! Paper Sec 5.4: PWS (Partitioned Workload Solution) is the job
//! management system rebuilt on the Phoenix kernel: multi-pool scheduling
//! with customized per-pool policies, dynamic leasing between pools,
//! event-driven resource collection through the data bulletin and event
//! services, and highly available schedulers supervised by the group
//! service. The crate also contains [`pbs`], a faithful model of the
//! PBS-style monolith the paper compares against (central server, polling
//! resource monitor, no HA).

pub mod pbs;
pub mod policy;
pub mod scheduler;
pub mod setup;
pub mod ui;
pub mod workload;

pub use pbs::PbsServer;
pub use policy::{pick, PolicyCtx, PolicyKind};
pub use scheduler::{pool_directory, PoolConfig, PoolDirectory, PwsScheduler};
pub use setup::{install_pbs, install_pws, login, queue_status, submit, PwsHandle};
pub use workload::{generate as generate_workload, Arrival, WorkloadParams};
