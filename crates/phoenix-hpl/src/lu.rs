//! Blocked LU factorization with partial pivoting, parallelized with
//! std scoped threads — the Linpack-class compute kernel used to
//! measure Phoenix's performance impact (paper Table 4).
//!
//! Right-looking algorithm: factor a `nb`-wide panel sequentially, then
//! update every trailing column independently (forward substitution
//! against the panel's L11 followed by a rank-`nb` update), split across
//! worker threads by column chunks. Columns are contiguous in the
//! column-major layout, so the trailing region splits into disjoint
//! `&mut` chunks without any locking.

use crate::matrix::Matrix;
use std::time::Instant;

/// Panel width. 32 balances sequential panel cost against update
/// parallelism for the matrix sizes the benches use.
pub const DEFAULT_NB: usize = 32;

/// Result of a factorization run.
#[derive(Clone, Debug)]
pub struct LuResult {
    /// Row permutation: `pivots[k]` is the row swapped into row `k` at
    /// step `k`.
    pub pivots: Vec<usize>,
    pub seconds: f64,
    pub gflops: f64,
}

/// Factor `a` in place (L below the unit diagonal, U on and above) using
/// `threads` workers. Returns timing and the pivot vector.
pub fn lu_factor(a: &mut Matrix, threads: usize, nb: usize) -> LuResult {
    assert!(threads >= 1);
    let n = a.n;
    let mut pivots: Vec<usize> = (0..n).collect();
    let start = Instant::now();

    let mut k = 0;
    while k < n {
        let kb = nb.min(n - k);

        // ---- panel factorization (sequential, with full-row swaps) ----
        for j in k..k + kb {
            // Find pivot in column j, rows j..n.
            let (mut p, mut best) = (j, a.get(j, j).abs());
            for i in j + 1..n {
                let v = a.get(i, j).abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            pivots[j] = p;
            if p != j {
                for c in 0..n {
                    let t = a.get(j, c);
                    a.set(j, c, a.get(p, c));
                    a.set(p, c, t);
                }
            }
            let d = a.get(j, j);
            if d != 0.0 {
                let inv = 1.0 / d;
                for i in j + 1..n {
                    let v = a.get(i, j) * inv;
                    a.set(i, j, v);
                }
            }
            // Update the remaining panel columns with this elimination.
            for c in j + 1..k + kb {
                let u = a.get(j, c);
                if u != 0.0 {
                    for i in j + 1..n {
                        let v = a.get(i, c) - a.get(i, j) * u;
                        a.set(i, c, v);
                    }
                }
            }
        }

        // ---- trailing update (parallel over column chunks) ----
        let trail_cols = n - (k + kb);
        if trail_cols > 0 {
            let (head, tail) = a.data.split_at_mut((k + kb) * n);
            let panel = &head[k * n..]; // columns k..k+kb, read-only
            let workers = threads.min(trail_cols).max(1);
            let per = trail_cols.div_ceil(workers);
            std::thread::scope(|scope| {
                for chunk in tail.chunks_mut(per * n) {
                    scope.spawn(move || {
                        for col in chunk.chunks_mut(n) {
                            update_column(panel, col, n, k, kb);
                        }
                    });
                }
            });
        }

        k += kb;
    }

    let seconds = start.elapsed().as_secs_f64();
    let flops = 2.0 / 3.0 * (n as f64).powi(3);
    LuResult {
        pivots,
        seconds,
        gflops: flops / seconds / 1e9,
    }
}

/// Update one trailing column against the factored panel:
/// forward-substitute rows `k..k+kb` (unit-lower L11), then subtract
/// `L21 · y` from rows `k+kb..n`.
#[inline]
fn update_column(panel: &[f64], col: &mut [f64], n: usize, k: usize, kb: usize) {
    // Forward substitution with L11 (unit diagonal), in place.
    for jj in 0..kb {
        let y = col[k + jj];
        if y != 0.0 {
            let pcol = &panel[jj * n..(jj + 1) * n];
            for ii in jj + 1..kb {
                col[k + ii] -= pcol[k + ii] * y;
            }
        }
    }
    // Rank-kb update of the lower part.
    for jj in 0..kb {
        let y = col[k + jj];
        if y != 0.0 {
            let pcol = &panel[jj * n..(jj + 1) * n];
            for ii in k + kb..n {
                col[ii] -= pcol[ii] * y;
            }
        }
    }
}

/// Solve `A x = b` given the in-place factorization and pivot vector.
pub fn lu_solve(lu: &Matrix, pivots: &[usize], b: &[f64]) -> Vec<f64> {
    let n = lu.n;
    let mut x = b.to_vec();
    // Apply the permutation.
    for k in 0..n {
        let p = pivots[k];
        if p != k {
            x.swap(k, p);
        }
    }
    // Ly = Pb (unit lower).
    for j in 0..n {
        let y = x[j];
        if y != 0.0 {
            for i in j + 1..n {
                x[i] -= lu.get(i, j) * y;
            }
        }
    }
    // Ux = y.
    for j in (0..n).rev() {
        x[j] /= lu.get(j, j);
        let y = x[j];
        if y != 0.0 {
            for i in 0..j {
                x[i] -= lu.get(i, j) * y;
            }
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::vec_norm_inf;

    fn residual(n: usize, threads: usize, nb: usize) -> f64 {
        let a = Matrix::random(n, 7);
        let x_true: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let b = a.matvec(&x_true);
        let mut lu = a.clone();
        let r = lu_factor(&mut lu, threads, nb);
        let x = lu_solve(&lu, &r.pivots, &b);
        let err: Vec<f64> = x.iter().zip(&x_true).map(|(a, b)| a - b).collect();
        vec_norm_inf(&err) / vec_norm_inf(&x_true).max(1.0)
    }

    #[test]
    fn solves_small_system_exactly_enough() {
        assert!(residual(16, 1, 4) < 1e-9);
    }

    #[test]
    fn blocked_matches_unblocked() {
        // nb == n degenerates to unblocked; results must agree closely.
        let a = Matrix::random(24, 3);
        let mut l1 = a.clone();
        let mut l2 = a.clone();
        let r1 = lu_factor(&mut l1, 1, 24);
        let r2 = lu_factor(&mut l2, 1, 8);
        assert_eq!(r1.pivots, r2.pivots);
        for (x, y) in l1.data.iter().zip(l2.data.iter()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = Matrix::random(64, 9);
        let mut l1 = a.clone();
        let mut l4 = a.clone();
        let r1 = lu_factor(&mut l1, 1, 16);
        let r4 = lu_factor(&mut l4, 4, 16);
        assert_eq!(r1.pivots, r4.pivots);
        for (x, y) in l1.data.iter().zip(l4.data.iter()) {
            assert_eq!(x, y, "bitwise identical: same op order per column");
        }
    }

    #[test]
    fn larger_system_residual_is_small() {
        assert!(residual(96, 2, DEFAULT_NB) < 1e-8);
    }

    #[test]
    fn gflops_reported_positive() {
        let mut a = Matrix::random(48, 5);
        let r = lu_factor(&mut a, 1, 16);
        assert!(r.gflops > 0.0);
        assert!(r.seconds > 0.0);
    }
}
