//! Dynamic reconfiguration (paper Sec 4.2: the configuration service
//! "provides documented interface for dynamic reconfiguration"; Sec 5.1:
//! "the interval for sending heartbeat can be configured as a system
//! parameter"). Changing `hb_interval_ms` at runtime must retune the
//! live watch daemons and GSDs — and with them, the failure-detection
//! latency — without a reboot.

use phoenix_kernel::boot::boot_and_stabilize;
use phoenix_kernel::client::ClientHandle;
use phoenix_kernel::KernelParams;
use phoenix_proto::{ClusterTopology, KernelMsg, RequestId};
use phoenix_sim::{FaultTarget, NodeId, SimDuration, TraceEvent};

#[test]
fn heartbeat_interval_reconfigures_at_runtime() {
    let (mut w, cluster) =
        boot_and_stabilize(ClusterTopology::uniform(2, 4, 1), KernelParams::fast(), 81);
    w.run_for(SimDuration::from_secs(2));

    // Raise the heartbeat interval from 1 s to 3 s cluster-wide.
    let client = ClientHandle::spawn(&mut w, NodeId(2));
    client.send(
        &mut w,
        cluster.config(),
        KernelMsg::CfgSetParam {
            req: RequestId(1),
            key: "hb_interval_ms".into(),
            value: "3000".into(),
        },
    );
    w.run_for(SimDuration::from_millis(100));
    assert!(client
        .drain()
        .iter()
        .any(|(_, m)| matches!(m, KernelMsg::CfgAck { ok: true, .. })));

    // Heartbeat traffic rate drops ~3×: count WD beats over a window.
    // (One more old-cadence beat may still be in flight; allow slack.)
    w.run_for(SimDuration::from_secs(3)); // drain old-cadence timers
    let before = w.metrics().label("hb").sent;
    w.run_for(SimDuration::from_secs(9));
    let beats = w.metrics().label("hb").sent - before;
    // 8 nodes × 3 NICs × (9s / 3s) = 72 expected at the new cadence;
    // the old cadence would have produced ~216.
    assert!(
        beats <= 100,
        "heartbeat cadence must slow to the new interval, got {beats}"
    );
    assert!(beats >= 48, "heartbeats still flowing, got {beats}");

    // And no false failures were diagnosed during or after the switch.
    let faults = w
        .trace()
        .count(|e| matches!(e, TraceEvent::FaultDiagnosed { .. }));
    assert_eq!(faults, 0, "reconfiguration must not trip detectors");

    // Detection latency now tracks the NEW interval. Sync the kill to
    // land just after a heartbeat round (as the paper's fault injection
    // implicitly did: their detection times equal the full interval).
    let mut last = w.metrics().label("hb").sent;
    loop {
        w.run_for(SimDuration::from_millis(50));
        let cur = w.metrics().label("hb").sent;
        if cur > last {
            break;
        }
        last = cur;
    }
    let wd = cluster.directory.node(NodeId(3)).unwrap().wd;
    let t0 = w.now();
    w.kill_process(wd);
    w.run_for(SimDuration::from_secs(8));
    let detected = w
        .trace()
        .find_after(t0, |e| {
            matches!(e, TraceEvent::FaultDetected { target: FaultTarget::Process(p), .. } if *p == wd)
        })
        .map(|r| r.at)
        .expect("detected under new interval");
    let detect = detected.since(t0).as_secs_f64();
    assert!(
        detect > 1.5 && detect < 4.5,
        "detection ({detect:.2}s) should track the new 3s interval"
    );
}
