//! Split-brain survival: island partitions + MSCS-style quorum regroup.
//!
//! `Fault::Partition` severs the cluster into two link-level islands.
//! The regroup layer (`KernelParams::fast_partition()`) must guarantee:
//!
//!   * the minority island freezes (no takeovers, no elections, no
//!     directory churn) — its GSDs report the `"frozen"` pseudo-role;
//!   * only the majority island may keep or elect a meta leader, so no
//!     sampled instant ever shows two live unfrozen leaders;
//!   * directory entries for unreachable partitions are marked stale at
//!     the config service and un-marked once the partition rejoins;
//!   * after `Fault::Heal` the minority thaws (or yields to a rescued
//!     replacement) and the cluster converges back to one live GSD per
//!     partition with a complete directory;
//!   * the whole dance is deterministic: identical seeds replay to
//!     byte-identical traces.

use phoenix_kernel::boot::boot_and_stabilize;
use phoenix_kernel::config::ConfigService;
use phoenix_kernel::group::Gsd;
use phoenix_kernel::{ClientHandle, KernelParams, PhoenixCluster};
use phoenix_proto::{ClusterTopology, KernelMsg, PartitionId};
use phoenix_sim::{Fault, NodeId, Pid, SimDuration, World};

fn boot(seed: u64) -> (World<KernelMsg>, PhoenixCluster) {
    boot_and_stabilize(
        ClusterTopology::uniform(3, 4, 1),
        KernelParams::fast_partition(),
        seed,
    )
}

/// Bitmask of every node belonging to the given topology partitions.
fn island_mask(cluster: &PhoenixCluster, parts: &[usize]) -> u64 {
    let mut mask = 0u64;
    for &p in parts {
        for n in cluster.topology.partitions[p].all_nodes() {
            mask |= 1u64 << n.0;
        }
    }
    mask
}

/// Every live GSD in the world: (pid, partition it serves, role name).
fn gsd_views(w: &World<KernelMsg>) -> Vec<(Pid, PartitionId, &'static str)> {
    let mut out = Vec::new();
    for node in 0..w.node_count() {
        for pid in w.pids_on(NodeId(node as u32)) {
            if let Some(g) = w.actor_as::<Gsd>(pid) {
                out.push((pid, g.partition_id(), g.role_name()));
            }
        }
    }
    out
}

fn leader_count(w: &World<KernelMsg>) -> usize {
    gsd_views(w).iter().filter(|(_, _, r)| *r == "leader").count()
}

/// Advance in small slices, asserting at every sampled instant that at
/// most one live unfrozen GSD claims the meta-leader role.
fn run_sampled_single_leader(w: &mut World<KernelMsg>, total: SimDuration, what: &str) {
    let slice = SimDuration::from_millis(20);
    let mut elapsed = SimDuration::ZERO;
    while elapsed < total {
        w.run_for(slice);
        elapsed = elapsed + slice;
        let leaders = leader_count(w);
        assert!(
            leaders <= 1,
            "{what}: {leaders} simultaneous leaders at {:?}: {:?}",
            w.now(),
            gsd_views(w)
        );
    }
}

fn query_directory(
    w: &mut World<KernelMsg>,
    cluster: &PhoenixCluster,
    req: u64,
) -> phoenix_proto::ServiceDirectory {
    let client = ClientHandle::spawn(w, cluster.topology.partitions[1].server);
    client.send(
        w,
        cluster.config(),
        KernelMsg::CfgQueryDirectory {
            req: phoenix_proto::RequestId(req),
        },
    );
    w.run_for(SimDuration::from_millis(50));
    client
        .drain()
        .into_iter()
        .find_map(|(_, m)| match m {
            KernelMsg::CfgDirectory { directory, .. } => Some(*directory),
            _ => None,
        })
        .expect("config service answers directory queries")
}

/// Post-heal steady state: one live GSD per partition, complete
/// directory, no partitions still marked stale.
fn assert_converged(w: &mut World<KernelMsg>, cluster: &PhoenixCluster, req: u64, what: &str) {
    let views = gsd_views(w);
    for p in 0..cluster.topology.partitions.len() {
        let owners = views
            .iter()
            .filter(|(_, part, _)| part.0 == p as u32)
            .count();
        assert_eq!(owners, 1, "{what}: partition {p} has {owners} live GSDs: {views:?}");
    }
    assert_eq!(leader_count(w), 1, "{what}: exactly one leader: {views:?}");
    assert!(
        views.iter().all(|(_, _, r)| *r != "frozen"),
        "{what}: nobody stays frozen after heal: {views:?}"
    );
    let dir = query_directory(w, cluster, req);
    assert_eq!(dir.partitions.len(), 3, "{what}: directory complete");
    for m in &dir.partitions {
        assert!(w.is_alive(m.gsd), "{what}: {:?} entry is live", m.partition);
    }
    let stale = w
        .actor_as::<ConfigService>(cluster.config())
        .expect("config service introspectable")
        .stale_partitions();
    assert!(stale.is_empty(), "{what}: stale set drained, got {stale:?}");
}

/// Scenario A: the minority island contains the meta *leader* (partition
/// 0, which also hosts the config service). The leader must freeze; the
/// majority must elect a replacement; heal must converge back to one
/// owner per partition.
#[test]
fn minority_leader_freezes_and_majority_elects() {
    let (mut w, cluster) = boot(401);
    w.run_for(SimDuration::from_secs(3));

    let island = island_mask(&cluster, &[0]);
    w.apply_fault(Fault::Partition { island });
    // The partition phase must out-last suspicion (up to ~3.1 s after the
    // cut: 3 missed 1 s beats plus scan jitter) *and* the regroup layer's
    // 1.5 s held-majority takeover delay before the replacement election.
    run_sampled_single_leader(&mut w, SimDuration::from_secs(6), "scenario A partitioned");

    let views = gsd_views(&w);
    let minority: Vec<_> = views.iter().filter(|(_, p, _)| p.0 == 0).collect();
    assert!(
        minority.iter().any(|(_, _, r)| *r == "frozen"),
        "partition 0's GSD froze on the minority island: {views:?}"
    );
    let majority_leader = views
        .iter()
        .find(|(_, p, r)| *r == "leader" && p.0 != 0);
    assert!(
        majority_leader.is_some(),
        "majority island elected a replacement leader: {views:?}"
    );

    w.apply_fault(Fault::Heal);
    w.run_for(SimDuration::from_secs(12));
    assert_converged(&mut w, &cluster, 11, "scenario A healed");
}

/// Scenario B: the minority island is a plain *member* (partition 2) and
/// the config service stays with the majority. The majority keeps its
/// leader, marks the unreachable partition's directory entry stale, and
/// clears the mark when the member rejoins after heal.
#[test]
fn minority_member_freezes_and_directory_goes_stale() {
    let (mut w, cluster) = boot(402);
    w.run_for(SimDuration::from_secs(3));

    let island = island_mask(&cluster, &[2]);
    w.apply_fault(Fault::Partition { island });
    run_sampled_single_leader(&mut w, SimDuration::from_secs(6), "scenario B partitioned");

    let views = gsd_views(&w);
    assert!(
        views.iter().any(|(_, p, r)| p.0 == 2 && *r == "frozen"),
        "partition 2's GSD froze: {views:?}"
    );
    assert!(
        views.iter().any(|(_, p, r)| p.0 == 0 && *r == "leader"),
        "majority kept its leader: {views:?}"
    );
    let stale = w
        .actor_as::<ConfigService>(cluster.config())
        .expect("config service introspectable")
        .stale_partitions();
    assert_eq!(
        stale,
        vec![PartitionId(2)],
        "majority marked the unreachable partition stale"
    );

    w.apply_fault(Fault::Heal);
    w.run_for(SimDuration::from_secs(12));
    assert_converged(&mut w, &cluster, 22, "scenario B healed");
}

/// The regroup layer must not cost determinism: identical seeds replay
/// to byte-identical traces through a partition → regroup → heal cycle.
#[test]
fn partition_cycle_is_deterministic() {
    let run = || {
        let (mut w, cluster) = boot(777);
        w.run_for(SimDuration::from_secs(3));
        w.apply_fault(Fault::Partition {
            island: island_mask(&cluster, &[0]),
        });
        w.run_for(SimDuration::from_secs(6));
        w.apply_fault(Fault::Heal);
        w.run_for(SimDuration::from_secs(10));
        let mut log = String::new();
        for r in w.trace().records() {
            log.push_str(&format!("{r:?}\n"));
        }
        log
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty(), "trace captured something");
    assert_eq!(a, b, "identical seeds replay to byte-identical traces");
}

/// Forty seeded partition/heal cycles (ten worlds x four cycles each,
/// alternating which side of the cluster is severed). Zero sampled
/// double-leader instants; every heal converges.
#[test]
fn forty_partition_heal_cycles_never_double_lead() {
    for seed in 501..511u64 {
        let (mut w, cluster) = boot(seed);
        w.run_for(SimDuration::from_secs(3));
        for cycle in 0..4u64 {
            // Alternate between severing the leader's partition and a
            // member partition; both must stay single-leader.
            let parts: &[usize] = if cycle % 2 == 0 { &[0] } else { &[2] };
            w.apply_fault(Fault::Partition {
                island: island_mask(&cluster, parts),
            });
            run_sampled_single_leader(
                &mut w,
                SimDuration::from_secs(6),
                &format!("seed {seed} cycle {cycle} partitioned"),
            );
            w.apply_fault(Fault::Heal);
            w.run_for(SimDuration::from_secs(12));
            assert_converged(
                &mut w,
                &cluster,
                1000 + seed * 10 + cycle,
                &format!("seed {seed} cycle {cycle} healed"),
            );
        }
    }
}
