//! Regenerates **Table 3 — Three Unhealthy Situations for ES** (the event
//! service) on the paper testbed. ES failures are detected by the local
//! GSD (same host → 12 µs diagnosis); recovery restores state from the
//! checkpoint service; node failure recovers by migrating with the GSD.
//!
//! Paper row shape: process 30 s / 12 µs / 0.12 s; node 30 s / 0.3 s /
//! 2.95 s; network 30 s / 12 µs / 0.

use phoenix_bench::ft::{paper_testbed, print_table, run_table, Component};
use phoenix_bench::report::{exercise_services, table_json, write_report};

fn main() {
    phoenix_telemetry::reset();
    let (topo, params) = paper_testbed();
    println!(
        "Testbed: {} nodes, {} partitions, heartbeat interval {}",
        topo.node_count(),
        topo.partitions.len(),
        params.ft.hb_interval
    );
    let rows = run_table(topo, params, Component::Es);
    print_table("Table 3: Three Unhealthy Situations for ES", &rows);
    println!("\nPaper reference: process 30s/12us/0.12s=30.12s; node 30s/0.3s/2.95s=33.25s; network 30s/12us/0s=30s");
    exercise_services(43);
    write_report("table3_es", vec![("table3", table_json(&rows))]);
}
