//! Data-bulletin types: keys, values, and queries over the in-memory
//! cluster-state database (paper Sec 4.2: "an in-memory database which
//! stores the state of cluster-wide physical resource and application
//! state ... interfaces for non-persistent data storage and data query").

use crate::ids::{JobId, PartitionId};
use phoenix_sim::{NodeId, ResourceUsage};

/// Application liveness as seen by the application-state detector.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppStatus {
    Running,
    Exited,
    Failed,
}

/// Application state exported by the application-state detector: resources
/// consumed by a specific application, its living status, and the SLA flag
/// the paper says business runtimes depend on.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AppState {
    pub job: JobId,
    pub node: NodeId,
    pub cpu: f64,
    pub memory: f64,
    pub status: AppStatus,
    /// Whether the application currently meets its system-level agreement.
    pub sla_ok: bool,
}

/// Key of a bulletin entry.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BulletinKey {
    /// Physical resource gauges of a node.
    Resource(NodeId),
    /// State of one application instance on one node.
    App(NodeId, JobId),
}

impl BulletinKey {
    /// The node the entry describes.
    pub fn node(self) -> NodeId {
        match self {
            BulletinKey::Resource(n) => n,
            BulletinKey::App(n, _) => n,
        }
    }
}

/// Value of a bulletin entry.
#[derive(Clone, PartialEq, Debug)]
pub enum BulletinValue {
    Resource(ResourceUsage),
    App(AppState),
}

/// One row of the bulletin: key, value, and the virtual time (ns) the
/// reading was taken, so consumers can ignore stale data.
#[derive(Clone, PartialEq, Debug)]
pub struct BulletinEntry {
    pub key: BulletinKey,
    pub value: BulletinValue,
    pub stamp_ns: u64,
}

/// Query shapes accepted by the bulletin's single access point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BulletinQuery {
    /// Everything the federation knows (GridView's cluster-wide pull).
    All,
    /// All entries about one node.
    Node(NodeId),
    /// All entries published in one partition.
    Partition(PartitionId),
    /// Only physical-resource entries (cluster-wide).
    Resources,
    /// Only application-state entries (cluster-wide).
    Apps,
}

impl BulletinQuery {
    /// Does the query select entries from `partition` (true unless the
    /// query names a different partition)?
    pub fn wants_partition(self, partition: PartitionId) -> bool {
        match self {
            BulletinQuery::Partition(p) => p == partition,
            _ => true,
        }
    }

    /// Does the query select this entry (ignoring partition scope)?
    pub fn matches(self, entry: &BulletinEntry) -> bool {
        match self {
            BulletinQuery::All | BulletinQuery::Partition(_) => true,
            BulletinQuery::Node(n) => entry.key.node() == n,
            BulletinQuery::Resources => matches!(entry.key, BulletinKey::Resource(_)),
            BulletinQuery::Apps => matches!(entry.key, BulletinKey::App(..)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: BulletinKey) -> BulletinEntry {
        let value = match key {
            BulletinKey::Resource(_) => BulletinValue::Resource(ResourceUsage::IDLE),
            BulletinKey::App(n, j) => BulletinValue::App(AppState {
                job: j,
                node: n,
                cpu: 0.5,
                memory: 0.2,
                status: AppStatus::Running,
                sla_ok: true,
            }),
        };
        BulletinEntry {
            key,
            value,
            stamp_ns: 0,
        }
    }

    #[test]
    fn node_query_filters_by_node() {
        let q = BulletinQuery::Node(NodeId(3));
        assert!(q.matches(&entry(BulletinKey::Resource(NodeId(3)))));
        assert!(q.matches(&entry(BulletinKey::App(NodeId(3), JobId(1)))));
        assert!(!q.matches(&entry(BulletinKey::Resource(NodeId(4)))));
    }

    #[test]
    fn kind_queries_filter_by_kind() {
        assert!(BulletinQuery::Resources.matches(&entry(BulletinKey::Resource(NodeId(0)))));
        assert!(!BulletinQuery::Resources.matches(&entry(BulletinKey::App(NodeId(0), JobId(1)))));
        assert!(BulletinQuery::Apps.matches(&entry(BulletinKey::App(NodeId(0), JobId(1)))));
    }

    #[test]
    fn partition_scope() {
        assert!(BulletinQuery::All.wants_partition(PartitionId(2)));
        assert!(BulletinQuery::Partition(PartitionId(2)).wants_partition(PartitionId(2)));
        assert!(!BulletinQuery::Partition(PartitionId(2)).wants_partition(PartitionId(3)));
    }

    #[test]
    fn key_node_accessor() {
        assert_eq!(BulletinKey::Resource(NodeId(7)).node(), NodeId(7));
        assert_eq!(BulletinKey::App(NodeId(8), JobId(1)).node(), NodeId(8));
    }
}
