//! # phoenix-gridview — the monitoring user environment
//!
//! Paper Sec 5.3: "GridView interacts with Phoenix kernel only through the
//! interfaces of data bulletin service and event service and configuration
//! service. GridView registers its interested event types to event
//! service, including node failure and network failure etc., and GridView
//! can get real-time notifications of these events. GridView collects
//! cluster-wide performance data by calling single interface of data
//! bulletin service federation, and visually displays cluster-wide
//! resources usage with a specific refreshing rate."
//!
//! [`GridView`] is that consumer: a single actor that pulls the bulletin
//! federation at a refresh rate, aggregates cluster-wide usage (the
//! paper's Fig 6 shows average memory / CPU / swap), keeps a rolling event
//! feed, and renders a text dashboard (our stand-in for the GUI).

pub mod dashboard;

use phoenix_proto::{
    BulletinKey, BulletinQuery, BulletinValue, ConsumerReg, EventFilter, EventType, KernelMsg,
    PartitionId, RequestId,
};
use phoenix_sim::{Actor, Ctx, NodeId, Pid, ResourceUsage, SimDuration, SimTime, TraceEvent};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

const TOK_REFRESH: u64 = 1;

/// One dashboard snapshot: what Fig 6 displays.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub at_ns: u64,
    pub nodes_reporting: usize,
    pub avg_cpu: f64,
    pub avg_memory: f64,
    pub avg_swap: f64,
    pub max_cpu: f64,
    pub overloaded_nodes: usize,
    /// Whether the last federation pull was complete.
    pub complete: bool,
    pub running_apps: usize,
}

/// A line in the event feed.
#[derive(Clone, Debug, PartialEq)]
pub struct FeedItem {
    pub at: SimTime,
    pub etype: EventType,
    pub origin: NodeId,
}

/// Shared state the driving code can read while the simulation runs.
#[derive(Default)]
pub struct GvState {
    pub snapshot: Snapshot,
    pub history: Vec<Snapshot>,
    pub feed: Vec<FeedItem>,
    pub refreshes: u64,
    pub events_received: u64,
}

/// Handle to a spawned GridView.
#[derive(Clone)]
pub struct GridViewHandle {
    pub pid: Pid,
    state: Rc<RefCell<GvState>>,
}

impl GridViewHandle {
    /// The latest snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.state.borrow().snapshot.clone()
    }

    /// All snapshots taken so far.
    pub fn history(&self) -> Vec<Snapshot> {
        self.state.borrow().history.clone()
    }

    /// Event-feed copy.
    pub fn feed(&self) -> Vec<FeedItem> {
        self.state.borrow().feed.clone()
    }

    pub fn refreshes(&self) -> u64 {
        self.state.borrow().refreshes
    }

    pub fn events_received(&self) -> u64 {
        self.state.borrow().events_received
    }

    /// Render the current dashboard as text.
    pub fn render(&self) -> String {
        let st = self.state.borrow();
        dashboard::render(&st.snapshot, &st.feed)
    }

    /// Dashboard plus the kernel-telemetry panel (latency histograms and
    /// counters from this thread's `phoenix_telemetry` registry).
    pub fn render_full(&self) -> String {
        format!("{}{}", self.render(), dashboard::render_telemetry())
    }
}

/// The GridView actor.
pub struct GridView {
    bulletin: Pid,
    event: Pid,
    /// Configuration service; consulted to re-resolve bulletin/event pids
    /// when the current ones stop answering (after a service migration).
    config: Pid,
    home_partition: PartitionId,
    refresh: SimDuration,
    alarm_cpu: f64,
    state: Rc<RefCell<GvState>>,
    next_req: u64,
    /// Refresh request currently awaiting a reply.
    awaiting: Option<u64>,
}

impl GridView {
    /// Spawn a GridView on `node`, pulling `bulletin` and subscribing at
    /// `event` with the given refresh rate.
    pub fn spawn(
        world: &mut phoenix_sim::World<KernelMsg>,
        node: NodeId,
        bulletin: Pid,
        event: Pid,
        refresh: SimDuration,
    ) -> GridViewHandle {
        Self::spawn_with_config(world, node, bulletin, event, Pid(0), PartitionId(0), refresh)
    }

    /// Spawn with a configuration-service pid so the console can survive
    /// bulletin/event-service migrations by re-resolving the directory.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn_with_config(
        world: &mut phoenix_sim::World<KernelMsg>,
        node: NodeId,
        bulletin: Pid,
        event: Pid,
        config: Pid,
        home_partition: PartitionId,
        refresh: SimDuration,
    ) -> GridViewHandle {
        let state: Rc<RefCell<GvState>> = Rc::new(RefCell::new(GvState::default()));
        let gv = GridView {
            bulletin,
            event,
            config,
            home_partition,
            refresh,
            alarm_cpu: 0.95,
            state: state.clone(),
            next_req: 0,
            awaiting: None,
        };
        let pid = world.spawn(node, Box::new(gv));
        GridViewHandle { pid, state }
    }

    fn pull(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        // If the previous refresh went unanswered, the bulletin we know is
        // gone (restarting instances answer late but do answer): ask the
        // configuration service for the current directory.
        if self.awaiting.take().is_some() && self.config != Pid(0) {
            self.next_req += 1;
            ctx.send(
                self.config,
                KernelMsg::CfgQueryDirectory {
                    req: RequestId(self.next_req),
                },
            );
        }
        self.next_req += 1;
        self.awaiting = Some(self.next_req);
        phoenix_telemetry::counter_add("gridview.refreshes.requested", 1);
        phoenix_telemetry::mark(
            "gridview.refresh.pull",
            phoenix_telemetry::key(&[ctx.pid().0, self.next_req]),
        );
        ctx.send(
            self.bulletin,
            KernelMsg::DbQuery {
                req: RequestId(self.next_req),
                query: BulletinQuery::All,
            },
        );
        ctx.set_timer(self.refresh, TOK_REFRESH);
    }

    fn register_consumer(&self, ctx: &mut Ctx<'_, KernelMsg>) {
        ctx.send(
            self.event,
            KernelMsg::EsRegisterConsumer {
                req: RequestId(0),
                reg: ConsumerReg {
                    consumer: ctx.pid(),
                    filter: EventFilter::types(&[
                        EventType::NodeFault,
                        EventType::NodeRecovery,
                        EventType::NetworkFault,
                        EventType::NetworkRecovery,
                        EventType::ServiceFault,
                        EventType::ServiceRecovery,
                        EventType::ResourceAlarm,
                    ]),
                },
            },
        );
    }

    fn ingest(
        &mut self,
        ctx: &mut Ctx<'_, KernelMsg>,
        entries: Vec<phoenix_proto::BulletinEntry>,
        complete: bool,
    ) {
        let mut per_node: BTreeMap<NodeId, ResourceUsage> = BTreeMap::new();
        let mut running_apps = 0usize;
        for e in entries {
            match (e.key, e.value) {
                (BulletinKey::Resource(n), BulletinValue::Resource(u)) => {
                    per_node.insert(n, u);
                }
                (BulletinKey::App(..), BulletinValue::App(a)) => {
                    if a.status == phoenix_proto::AppStatus::Running {
                        running_apps += 1;
                    }
                }
                _ => {}
            }
        }
        let n = per_node.len().max(1) as f64;
        let sum = per_node.values().fold((0.0, 0.0, 0.0, 0.0f64), |acc, u| {
            (
                acc.0 + u.cpu,
                acc.1 + u.memory,
                acc.2 + u.swap,
                acc.3.max(u.cpu),
            )
        });
        let snapshot = Snapshot {
            at_ns: ctx.now().as_nanos(),
            nodes_reporting: per_node.len(),
            avg_cpu: sum.0 / n,
            avg_memory: sum.1 / n,
            avg_swap: sum.2 / n,
            max_cpu: sum.3,
            overloaded_nodes: per_node.values().filter(|u| u.cpu >= self.alarm_cpu).count(),
            complete,
            running_apps,
        };
        let mut st = self.state.borrow_mut();
        st.refreshes += 1;
        st.snapshot = snapshot.clone();
        st.history.push(snapshot);
        drop(st);
        ctx.trace(TraceEvent::Milestone {
            label: "gridview-refresh",
            value: n,
        });
    }
}

impl Actor<KernelMsg> for GridView {
    fn on_start(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        ctx.trace(TraceEvent::ServiceUp {
            pid: ctx.pid(),
            service: "gridview",
            node: ctx.node(),
        });
        // Register for the fault/recovery event classes Fig 6 displays.
        self.register_consumer(ctx);
        self.pull(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, KernelMsg>, _from: Pid, msg: KernelMsg) {
        match msg {
            KernelMsg::DbResp {
                req,
                entries,
                complete,
            } => {
                if self.awaiting == Some(req.0) {
                    self.awaiting = None;
                    phoenix_telemetry::measure(
                        "gridview.refresh.pull",
                        "gridview",
                        ctx.node().0,
                        phoenix_telemetry::key(&[ctx.pid().0, req.0]),
                    );
                }
                self.ingest(ctx, entries.unwrap_or_clone(), complete);
            }
            KernelMsg::CfgDirectory { directory, .. } => {
                if let Some(m) = directory.partition(self.home_partition) {
                    if m.bulletin != self.bulletin || m.event != self.event {
                        self.bulletin = m.bulletin;
                        self.event = m.event;
                        self.register_consumer(ctx);
                    }
                }
            }
            KernelMsg::EsNotify { event } => {
                phoenix_telemetry::counter_add("gridview.events.received", 1);
                let mut st = self.state.borrow_mut();
                st.events_received += 1;
                st.feed.push(FeedItem {
                    at: ctx.now(),
                    etype: event.etype,
                    origin: event.origin,
                });
                // Bounded feed, newest kept.
                let overflow = st.feed.len().saturating_sub(256);
                if overflow > 0 {
                    st.feed.drain(..overflow);
                }
            }
            KernelMsg::PartitionView { local, .. } => {
                // Follow bulletin/event migrations.
                self.bulletin = local.bulletin;
                self.event = local.event;
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, KernelMsg>, token: u64) {
        if token == TOK_REFRESH {
            self.pull(ctx);
        }
    }

    fn name(&self) -> &str {
        "gridview"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_kernel::boot::boot_and_stabilize;
    use phoenix_kernel::KernelParams;
    use phoenix_proto::ClusterTopology;

    #[test]
    fn gridview_aggregates_cluster_usage() {
        let (mut w, cluster) =
            boot_and_stabilize(ClusterTopology::uniform(2, 4, 1), KernelParams::fast(), 41);
        let gv = GridView::spawn(
            &mut w,
            NodeId(2),
            cluster.bulletin(),
            cluster.event(),
            SimDuration::from_millis(500),
        );
        // Give detectors time to sample and GridView to refresh a few times.
        w.run_for(SimDuration::from_secs(3));
        let snap = gv.snapshot();
        assert_eq!(snap.nodes_reporting, 8, "all nodes visible");
        assert!(snap.complete);
        assert!(snap.avg_memory > 0.1, "baseline memory visible");
        assert!(snap.avg_cpu < 0.1, "idle cluster");
        assert!(gv.refreshes() >= 3);
    }

    #[test]
    fn gridview_survives_service_migration() {
        let (mut w, cluster) =
            boot_and_stabilize(ClusterTopology::uniform(2, 4, 1), KernelParams::fast(), 43);
        // Watch partition 1's instances; the config service (on partition
        // 0's server) survives the crash — the paper's config/security
        // singletons are single instances whose HA is out of scope.
        let member1 = cluster.directory.partitions[1];
        let gv = GridView::spawn_with_config(
            &mut w,
            NodeId(2), // a compute node, away from the server being crashed
            member1.bulletin,
            member1.event,
            cluster.config(),
            member1.partition,
            SimDuration::from_millis(500),
        );
        w.run_for(SimDuration::from_secs(2));
        let refreshes_before = gv.refreshes();
        assert!(refreshes_before >= 2);

        // Crash partition 1's server: the bulletin/event instances the
        // console was using die and migrate to the backup node.
        w.apply_fault(phoenix_sim::Fault::CrashNode(
            cluster.topology.partitions[1].server,
        ));
        w.run_for(SimDuration::from_secs(10));

        // The console re-resolved the directory and is refreshing again.
        let snap = gv.snapshot();
        assert!(
            gv.refreshes() > refreshes_before + 2,
            "refreshes resumed: {} -> {}",
            refreshes_before,
            gv.refreshes()
        );
        assert!(snap.nodes_reporting >= 7, "monitoring recovered: {snap:?}");
    }

    #[test]
    fn gridview_receives_fault_events() {
        let (mut w, cluster) =
            boot_and_stabilize(ClusterTopology::uniform(2, 4, 1), KernelParams::fast(), 42);
        let gv = GridView::spawn(
            &mut w,
            NodeId(2),
            cluster.bulletin(),
            cluster.event(),
            SimDuration::from_millis(500),
        );
        w.run_for(SimDuration::from_secs(2));
        w.apply_fault(phoenix_sim::Fault::CrashNode(NodeId(7)));
        w.run_for(SimDuration::from_secs(4));
        let feed = gv.feed();
        assert!(
            feed.iter()
                .any(|f| f.etype == EventType::NodeFault && f.origin == NodeId(7)),
            "node fault reached the monitoring console: {feed:?}"
        );
        let rendered = gv.render();
        assert!(rendered.contains("NodeFault"));
    }

    #[test]
    fn telemetry_panel_shows_refresh_latency() {
        phoenix_telemetry::reset();
        let (mut w, cluster) =
            boot_and_stabilize(ClusterTopology::uniform(2, 4, 1), KernelParams::fast(), 44);
        let gv = GridView::spawn(
            &mut w,
            NodeId(2),
            cluster.bulletin(),
            cluster.event(),
            SimDuration::from_millis(500),
        );
        w.run_for(SimDuration::from_secs(3));
        let full = gv.render_full();
        assert!(full.contains("kernel telemetry"));
        assert!(full.contains("gridview.refresh.pull"));
        let count = phoenix_telemetry::with(|r| {
            r.histogram("gridview.refresh.pull").unwrap().summary().count
        });
        assert!(count >= 3, "refresh pulls measured: {count}");
        phoenix_telemetry::reset();
    }
}
