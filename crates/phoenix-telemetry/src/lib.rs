//! # phoenix-telemetry — cluster-wide observability subsystem
//!
//! The paper evaluates Phoenix almost entirely through timing tables
//! (Tables 1–3) and latency figures (Figs 3–6); this crate is the
//! measurement layer that makes those numbers observable from inside the
//! reproduction rather than mined out of ad-hoc counters.
//!
//! Four pieces:
//!
//! * [`MetricsRegistry`] — counters, gauges, and log-bucketed latency
//!   [`Histogram`]s (mergeable, with p50/p90/p99/max summaries).
//! * **Spans** keyed to the simulator's *virtual* clock ([`clock`]), so a
//!   trace taken from a seeded run is bit-identical across repetitions.
//!   Spans nest (parent/child) and carry a service label. Cross-actor
//!   latencies (a heartbeat in flight, a federated query fan-out) use the
//!   keyed [`MetricsRegistry::mark`]/[`MetricsRegistry::measure`] pair.
//! * [`FlightRecorder`] — a bounded per-node ring buffer of recently
//!   completed spans for post-mortem dumps after fault injection.
//! * [`BenchReport`] — serializes a run's registry into
//!   `results/BENCH_kernel.json` with a hand-rolled JSON writer (no serde).
//!
//! The registry is **thread-local**: the simulator is single-threaded and
//! deterministic, and a thread-local global means instrumentation needs no
//! plumbing through actor constructors while parallel `cargo test` threads
//! never observe each other's data.
//!
//! ```
//! phoenix_telemetry::reset();
//! phoenix_telemetry::clock::set_now(1_000);
//! let span = phoenix_telemetry::span_start("gsd.scan", "gsd", 0);
//! phoenix_telemetry::clock::set_now(4_000);
//! phoenix_telemetry::span_end(span);
//! let s = phoenix_telemetry::with(|r| r.histogram("gsd.scan").unwrap().summary());
//! assert_eq!(s.count, 1);
//! assert_eq!(s.max_ns, 3_000);
//! ```

pub mod clock;
pub mod hist;
mod json;
pub mod recorder;
pub mod registry;
pub mod report;

pub use hist::{Histogram, Summary};
pub use json::Json;
pub use recorder::{FlightRecorder, SpanRecord};
pub use registry::{MetricsRegistry, SpanId};
pub use report::BenchReport;

use std::cell::RefCell;

thread_local! {
    static REGISTRY: RefCell<MetricsRegistry> = RefCell::new(MetricsRegistry::new());
}

/// Run `f` against this thread's registry.
pub fn with<R>(f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
    REGISTRY.with(|r| f(&mut r.borrow_mut()))
}

/// Drop all recorded data (between experiment runs).
pub fn reset() {
    with(|r| *r = MetricsRegistry::new());
}

/// A registry shard installed over this thread's registry.
///
/// [`shard_begin`] swaps a fresh [`MetricsRegistry`] into the thread-local
/// slot and stashes the previous one; everything instrumented code records
/// through the convenience functions then lands in the shard. [`take`]
/// extracts the shard's registry and restores the previous one. Dropping a
/// shard without `take` also restores — the shard's data is discarded.
/// Shards nest (a shard begun inside a shard restores to the inner one).
///
/// This is what lets each seeded `World` in a parallel sweep own its own
/// registry: every worker thread begins a shard per work item, runs the
/// world, takes the shard, and the runner merges the taken registries in
/// work-item order ([`MetricsRegistry::merge`]).
///
/// [`shard_begin`]: shard_begin
/// [`take`]: RegistryShard::take
#[must_use = "dropping a shard discards everything recorded in it"]
pub struct RegistryShard {
    prev: Option<MetricsRegistry>,
}

impl RegistryShard {
    /// Extract the shard's registry and restore the previous one.
    pub fn take(mut self) -> MetricsRegistry {
        let prev = self.prev.take().expect("shard already taken");
        with(|r| std::mem::replace(r, prev))
    }
}

impl Drop for RegistryShard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            with(|r| *r = prev);
        }
    }
}

/// Install a fresh registry over this thread's slot; see [`RegistryShard`].
pub fn shard_begin() -> RegistryShard {
    let prev = with(|r| std::mem::replace(r, MetricsRegistry::new()));
    RegistryShard { prev: Some(prev) }
}

/// Increment a named counter.
pub fn counter_add(name: &'static str, by: u64) {
    with(|r| r.counter_add(name, by));
}

/// Set a named gauge.
pub fn gauge_set(name: &'static str, value: f64) {
    with(|r| r.gauge_set(name, value));
}

/// Record a latency observation directly (nanoseconds) under `path`.
pub fn observe(path: &'static str, service: &'static str, nanos: u64) {
    with(|r| r.observe(path, service, nanos));
}

/// Open a root span at the current virtual time.
pub fn span_start(path: &'static str, service: &'static str, node: u32) -> SpanId {
    with(|r| r.span_start(path, service, node, SpanId::NONE))
}

/// Open a child span nested under `parent`.
pub fn span_child(path: &'static str, service: &'static str, node: u32, parent: SpanId) -> SpanId {
    with(|r| r.span_start(path, service, node, parent))
}

/// Close a span: its duration lands in the `path` histogram and the
/// completed record in the flight recorder.
pub fn span_end(id: SpanId) {
    with(|r| r.span_end(id));
}

/// Abandon a span (its node died): recorded in the flight recorder with
/// an `aborted` disposition, no latency observation.
pub fn span_abort(id: SpanId) {
    with(|r| r.span_abort(id));
}

/// Start a keyed cross-actor measurement (e.g. heartbeat leaves the WD).
pub fn mark(path: &'static str, key: u64) {
    with(|r| r.mark(path, key));
}

/// Finish a keyed cross-actor measurement (e.g. heartbeat reaches the
/// GSD); records the elapsed virtual time under `path` and returns it.
pub fn measure(path: &'static str, service: &'static str, node: u32, key: u64) -> Option<u64> {
    with(|r| r.measure(path, service, node, key))
}

/// Retract a keyed measurement without recording it (the flight was
/// cancelled rather than lost); returns whether a mark was outstanding.
pub fn unmark(path: &'static str, key: u64) -> bool {
    with(|r| r.unmark(path, key))
}

/// Mix a set of identifying fields into a single `mark`/`measure` key.
///
/// Both sides of a cross-actor measurement must derive the key from fields
/// present in the message itself (node, nic, sequence number, …); this
/// folds them through a splitmix64-style finalizer so distinct tuples do
/// not collide on simple sums.
pub fn key(parts: &[u64]) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for &p in parts {
        let mut z = h ^ p.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_separate_tuples() {
        assert_ne!(key(&[1, 2]), key(&[2, 1]));
        assert_ne!(key(&[0, 3]), key(&[3, 0]));
        assert_eq!(key(&[4, 5, 6]), key(&[4, 5, 6]));
    }

    #[test]
    fn shards_isolate_and_restore() {
        reset();
        clock::set_now(0);
        counter_add("outer", 1);

        let shard = shard_begin();
        counter_add("inner", 5);
        with(|r| assert_eq!(r.counter("outer"), 0, "shard starts fresh"));
        let taken = shard.take();
        assert_eq!(taken.counter("inner"), 5);

        with(|r| {
            assert_eq!(r.counter("outer"), 1, "previous registry restored");
            assert_eq!(r.counter("inner"), 0, "shard data not leaked back");
        });

        // Dropping without take restores too, discarding the shard.
        {
            let _shard = shard_begin();
            counter_add("dropped", 9);
        }
        with(|r| {
            assert_eq!(r.counter("outer"), 1);
            assert_eq!(r.counter("dropped"), 0);
        });
    }

    #[test]
    fn shards_nest() {
        reset();
        let a = shard_begin();
        counter_add("a", 1);
        let b = shard_begin();
        counter_add("b", 1);
        let rb = b.take();
        with(|r| assert_eq!(r.counter("a"), 1, "inner take restores outer shard"));
        let ra = a.take();
        assert_eq!(rb.counter("b"), 1);
        assert_eq!(ra.counter("a"), 1);
    }

    #[test]
    fn convenience_api_round_trip() {
        reset();
        clock::set_now(0);
        counter_add("x", 2);
        counter_add("x", 3);
        gauge_set("g", 0.5);
        mark("flight", 7);
        clock::set_now(250);
        assert_eq!(measure("flight", "svc", 1, 7), Some(250));
        assert_eq!(measure("flight", "svc", 1, 7), None, "mark consumed");
        with(|r| {
            assert_eq!(r.counter("x"), 5);
            assert_eq!(r.gauge("g"), Some(0.5));
            assert_eq!(r.histogram("flight").unwrap().summary().count, 1);
        });
        reset();
        with(|r| assert_eq!(r.counter("x"), 0));
    }
}
