//! The kernel message set: every message exchanged between Phoenix
//! services, node daemons, user environments and clients.
//!
//! One enum keeps the simulator monomorphic (`World<KernelMsg>`); the
//! [`label`](KernelMsg::label) method buckets variants into traffic classes
//! so the experiments can attribute network load to heartbeats, bulletin
//! queries, polling, and so on.

use crate::bulletin::{BulletinEntry, BulletinQuery};
use crate::checkpoint::CheckpointData;
use crate::event::{ConsumerReg, Event, EventType};
use crate::ids::{JobId, PartitionId, RequestId, ServiceKind, UserId};
use crate::job::{JobSpec, JobState, TaskSpec};
use crate::security::{Action, AuthToken};
use crate::shared::Shared;
use crate::wire::encoded_size;
use crate::topology::ClusterTopology;
use phoenix_sim::{Diagnosis, Message, NicId, NodeId, Pid, ResourceUsage};

/// The per-partition service pids of one meta-group member, as carried in
/// membership broadcasts. Federation peers find each other through this.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemberInfo {
    pub partition: PartitionId,
    /// Node currently hosting the partition services.
    pub node: NodeId,
    pub gsd: Pid,
    pub event: Pid,
    pub bulletin: Pid,
    pub checkpoint: Pid,
    /// PPM agent on the hosting node; ring neighbours probe it to
    /// distinguish a GSD process death from a node death.
    pub host_ppm: Pid,
}

/// Per-node daemon pids (watch daemon, detector, PPM agent).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NodeServices {
    pub node: NodeId,
    pub wd: Pid,
    pub detector: Pid,
    pub ppm: Pid,
}

/// The cluster-wide service directory maintained by the configuration
/// service and distributed at boot.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ServiceDirectory {
    pub config: Pid,
    pub security: Pid,
    pub partitions: Vec<MemberInfo>,
    pub nodes: Vec<NodeServices>,
}

impl ServiceDirectory {
    /// Services of the partition, if known.
    pub fn partition(&self, id: PartitionId) -> Option<&MemberInfo> {
        self.partitions.iter().find(|m| m.partition == id)
    }

    /// Daemons of a node, if known.
    pub fn node(&self, id: NodeId) -> Option<&NodeServices> {
        self.nodes.iter().find(|n| n.node == id)
    }
}

/// A row in a queue-status reply.
#[derive(Clone, PartialEq, Debug)]
pub struct QueueRow {
    pub job: JobId,
    pub pool: String,
    pub user: UserId,
    pub state: JobState,
    pub nodes: Vec<NodeId>,
}

/// Administrative node operations (paper Fig 9: start/shutdown nodes).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NodeOp {
    Start,
    Shutdown,
}

/// Every message in the Phoenix protocol.
#[derive(Clone, PartialEq, Debug)]
pub enum KernelMsg {
    // ---- boot / wiring -------------------------------------------------
    /// Initial wiring: the full service directory, sent to every service
    /// by the boot driver (the paper's "system construction tool").
    /// `Shared`: one directory is fanned out to every kernel process at
    /// boot, so each recipient's copy is a refcount bump, and the encoded
    /// size is computed once for the whole broadcast.
    Boot(Shared<ServiceDirectory>),

    // ---- group service: WD heartbeats and probing ("hb"/"probe") -------
    /// Watch-daemon heartbeat, sent over every NIC each interval.
    WdHeartbeat {
        node: NodeId,
        nic: NicId,
        seq: u64,
    },
    /// Liveness probe used during fault diagnosis.
    ProbeReq { req: RequestId },
    ProbeResp { req: RequestId },
    /// GSD acknowledgement of a WD heartbeat, echoed back over the same
    /// NIC the beat arrived on. Only sent when NIC-health scoring is
    /// enabled: the ack stream gives the WD per-interface delivery
    /// evidence without changing the fan-out-over-all-NICs semantics.
    WdHeartbeatAck { nic: NicId, seq: u64 },

    // ---- group service: meta-group ring ("meta") ------------------------
    /// Ring heartbeat from a GSD to its successor, sent over every NIC so
    /// the observer can tell a network failure from a daemon failure.
    /// `seq` counts beats (per sender) so a lossy network's duplicates and
    /// stragglers can be deduplicated; `epoch` only moves on membership
    /// changes.
    MetaHeartbeat {
        from_partition: PartitionId,
        nic: NicId,
        epoch: u64,
        seq: u64,
    },
    /// A (re)started GSD announces itself to the meta-group leader.
    MetaJoin { member: MemberInfo },
    /// Leader broadcast of the authoritative membership. The member list
    /// is `Shared`: one epoch's list goes to every meta-group peer.
    MetaMembership {
        epoch: u64,
        members: Shared<Vec<MemberInfo>>,
    },
    /// A GSD announces a peer's failure to the whole meta-group.
    MetaMemberDown {
        partition: PartitionId,
        diagnosis: Diagnosis,
    },

    // ---- group service: quorum regroup ("regroup") ----------------------
    /// Reachability probe of a regroup round (MSCS-style): a GSD that
    /// suspects its leader or lost a majority of beats pings every known
    /// peer to compute its connected component.
    RegroupPing {
        from_partition: PartitionId,
        /// Sender's regroup epoch (moves once per concluded round).
        epoch: u64,
        /// Round id, echoed in the ack so stale acks are discarded.
        round: u64,
        /// Sender's current witness partition (vote-table gossip; the
        /// higher `witness_epoch` wins on conflict). `PartitionId(0)` /
        /// epoch 0 when the sender runs without a vote table.
        witness: PartitionId,
        /// Witness generation: bumps on every witness failover.
        witness_epoch: u64,
    },
    /// Answer to a `RegroupPing`: the responder is reachable. Carries the
    /// responder's meta-group epoch and freeze state so a thawing minority
    /// can find the majority's authoritative side.
    RegroupAck {
        from_partition: PartitionId,
        epoch: u64,
        round: u64,
        frozen: bool,
        /// The responder's configured vote weight; the receiver applies
        /// witness doubling against its own witness view. 1 without a
        /// vote table.
        weight: u32,
        /// The responder's witness view (same gossip as `RegroupPing`).
        witness: PartitionId,
        witness_epoch: u64,
    },
    /// GSD → its partition services (bulletin, detectors): enter or leave
    /// the frozen minority state. Frozen services answer queries as stale
    /// and stop publishing.
    RegroupFreeze { frozen: bool },
    /// Regroup round side-channel: a GSD asks the watch daemons on a
    /// silent partition's *configured home nodes* whether the GSD they
    /// track is still alive. Positive death reports from a partition's
    /// own nodes let the quorum math discount that partition from the
    /// denominator (a dead GSD cannot be a rival quorum participant) —
    /// and only its own nodes may testify, because they are exactly the
    /// nodes an in-place respawn would land on, so evidence and rescue
    /// cannot end up on opposite sides of a split.
    RegroupProbe { round: u64 },
    /// WD answer to a `RegroupProbe`: the GSD pid this daemon heartbeats
    /// for its partition, and whether that pid is currently alive (the
    /// sim shortcut for "K consecutive heartbeat acks missing").
    RegroupProbeAck {
        round: u64,
        partition: PartitionId,
        gsd: Pid,
        alive: bool,
    },
    /// Majority-side leader → config service: mark a partition's directory
    /// entry stale (its services sit on an unreachable island) or fresh
    /// again after the heal-time rejoin.
    DirectoryStale { partition: PartitionId, stale: bool },

    // ---- group service: fail-slow detection ("slow ≠ down") -------------
    /// Latency probe for the fail-slow detector. The sender remembers the
    /// send time locally, keyed by `seq`; the echo carries only the seq
    /// back, so measuring RTT needs no clocks on the wire.
    SlowPing { seq: u64 },
    /// Echo of a `SlowPing`, answered by WDs and GSDs alike.
    SlowPong { seq: u64 },
    /// Ring observer → current leader: "your latency profile reads Slow
    /// from here — yield." The leader, alive but degraded, quarantines
    /// itself and hands leadership to the next healthy partition; the
    /// regroup takeover machinery is never involved.
    SlowLeaderYield { from_partition: PartitionId },
    /// Leader broadcast of the authoritative quarantine set: partitions
    /// whose hosting node reads Slow lose leadership / meta-ring
    /// eligibility until reinstated. Epoch-guarded like membership
    /// updates so every view converges to the newest set.
    MetaQuarantine {
        epoch: u64,
        quarantined: Vec<PartitionId>,
    },

    // ---- group service: partition-local supervision ("svc") -------------
    /// A per-partition service registers with its GSD for supervision.
    /// `factory` names the respawn recipe in the GSD's factory registry
    /// ("register policies of how to deal with faults", paper Sec 4.4).
    SvcRegister {
        kind: ServiceKind,
        pid: Pid,
        factory: String,
    },
    /// Supervised-service heartbeat to the local GSD.
    SvcHeartbeat {
        kind: ServiceKind,
        pid: Pid,
        seq: u64,
    },
    /// GSD pushes the current meta-group view to partition services and
    /// node daemons (federation peers + replacement pids flow through it).
    PartitionView {
        members: Vec<MemberInfo>,
        local: MemberInfo,
    },

    // ---- event service ("event") ----------------------------------------
    /// Register a consumer. `req` of zero keeps the legacy fire-and-forget
    /// behaviour; a non-zero `req` asks for an `EsRegisterAck` so the
    /// caller can retry registration over a lossy network.
    EsRegisterConsumer { req: RequestId, reg: ConsumerReg },
    EsUnregisterConsumer { consumer: Pid },
    EsRegisterSupplier {
        supplier: Pid,
        types: Vec<EventType>,
    },
    /// Publish an event (supplier → local ES).
    EsPublish { event: Event },
    /// Notification delivered to a consumer.
    EsNotify { event: Event },
    /// Federation forward to peer ES instances.
    EsFedForward { event: Event },
    /// Acknowledges an `EsRegisterConsumer` carrying a non-zero request id.
    EsRegisterAck { req: RequestId },

    // ---- data bulletin ("bulletin") --------------------------------------
    /// Detector export of fresh readings to its partition bulletin.
    DbPut { entries: Vec<BulletinEntry> },
    /// Client query against any instance (the single access point).
    DbQuery {
        req: RequestId,
        query: BulletinQuery,
    },
    /// Reply to a client. `complete` is false if some partition of the
    /// federation could not answer (paper: "only the state of one
    /// partition can't be obtained").
    DbResp {
        req: RequestId,
        entries: Shared<Vec<BulletinEntry>>,
        complete: bool,
    },
    /// Federation-internal fan-out of a query.
    DbFedQuery {
        req: RequestId,
        query: BulletinQuery,
    },
    DbFedResp {
        req: RequestId,
        partition: PartitionId,
        entries: Vec<BulletinEntry>,
    },

    // ---- checkpoint service ("ckpt") -------------------------------------
    CkSave {
        service: ServiceKind,
        partition: PartitionId,
        data: CheckpointData,
    },
    CkLoad {
        req: RequestId,
        service: ServiceKind,
        partition: PartitionId,
    },
    CkLoadResp {
        req: RequestId,
        data: Option<CheckpointData>,
    },
    CkDelete {
        service: ServiceKind,
        partition: PartitionId,
    },
    /// Replication of a save to federation peers.
    CkReplicate {
        service: ServiceKind,
        partition: PartitionId,
        data: CheckpointData,
    },
    /// A freshly (re)started checkpoint instance pulls state from a peer.
    CkSyncReq { req: RequestId },
    CkSyncResp {
        req: RequestId,
        items: Vec<(ServiceKind, PartitionId, CheckpointData)>,
    },

    // ---- configuration service ("config") --------------------------------
    CfgQueryTopology { req: RequestId },
    CfgTopology {
        req: RequestId,
        topology: Box<ClusterTopology>,
    },
    CfgQueryDirectory { req: RequestId },
    CfgDirectory {
        req: RequestId,
        directory: Box<ServiceDirectory>,
    },
    /// Dynamic reconfiguration: set a named kernel parameter.
    CfgSetParam {
        req: RequestId,
        key: String,
        value: String,
    },
    CfgAck { req: RequestId, ok: bool },
    /// GSD → config service: a service was restarted/migrated.
    DirectoryUpdate {
        partition: PartitionId,
        member: MemberInfo,
    },
    /// Node daemons were (re)spawned (WD restart, node brought back up).
    DirectoryUpdateNode { services: NodeServices },
    /// Administrative node power operation.
    CfgNodeOp {
        req: RequestId,
        node: NodeId,
        op: NodeOp,
    },

    // ---- security service ("security") ------------------------------------
    SecLogin {
        req: RequestId,
        user: UserId,
        secret: String,
    },
    SecLoginResp {
        req: RequestId,
        token: Option<AuthToken>,
    },
    SecCheck {
        req: RequestId,
        token: AuthToken,
        action: Action,
    },
    SecCheckResp { req: RequestId, allowed: bool },

    // ---- parallel process management ("ppm"/"app") -------------------------
    /// Load a task on `targets`; forwarded down a binomial tree.
    PpmExec {
        req: RequestId,
        job: JobId,
        task: TaskSpec,
        targets: Vec<NodeId>,
        reply_to: Pid,
    },
    PpmExecAck {
        req: RequestId,
        job: JobId,
        node: NodeId,
        ok: bool,
    },
    /// Delete a job's task on `targets` (tree-forwarded) and clean up.
    PpmDelete {
        req: RequestId,
        job: JobId,
        targets: Vec<NodeId>,
        reply_to: Pid,
    },
    PpmDeleteAck {
        req: RequestId,
        job: JobId,
        node: NodeId,
    },
    /// Application process announces itself to the node's detector.
    AppStarted {
        job: JobId,
        pid: Pid,
        task: TaskSpec,
    },
    AppExited {
        job: JobId,
        pid: Pid,
        failed: bool,
    },

    // ---- PWS job management ("pws") -----------------------------------------
    PwsSubmit {
        req: RequestId,
        token: AuthToken,
        spec: JobSpec,
    },
    PwsSubmitResp {
        req: RequestId,
        accepted: bool,
        reason: String,
    },
    PwsCancel {
        req: RequestId,
        token: AuthToken,
        job: JobId,
    },
    PwsCancelResp { req: RequestId, ok: bool },
    PwsJobStatus { req: RequestId, job: JobId },
    PwsJobStatusResp {
        req: RequestId,
        state: Option<JobState>,
        nodes: Vec<NodeId>,
    },
    PwsQueueStatus {
        req: RequestId,
        pool: Option<String>,
    },
    PwsQueueStatusResp {
        req: RequestId,
        rows: Vec<QueueRow>,
    },
    /// Dynamic leasing between pool schedulers.
    PoolLeaseReq {
        req: RequestId,
        from_pool: String,
        nodes: u32,
    },
    PoolLeaseResp {
        req: RequestId,
        granted: Vec<NodeId>,
    },
    PoolLeaseReturn { nodes: Vec<NodeId> },

    // ---- PBS baseline ("pbs") -------------------------------------------------
    /// Central-server resource poll (the paper contrasts PBS's continuous
    /// polling with PWS's event-driven collection).
    PbsPoll { req: RequestId },
    PbsPollResp {
        req: RequestId,
        node: NodeId,
        usage: ResourceUsage,
        jobs: Vec<JobId>,
    },
}

impl KernelMsg {
    /// Traffic-class label. Groups variants by the subsystem that owns
    /// them so experiments can break down wire load.
    pub fn traffic_label(&self) -> &'static str {
        use KernelMsg::*;
        match self {
            Boot(_) => "boot",
            WdHeartbeat { .. } | WdHeartbeatAck { .. } => "hb",
            ProbeReq { .. } | ProbeResp { .. } => "probe",
            MetaHeartbeat { .. } | MetaJoin { .. } | MetaMembership { .. }
            | MetaMemberDown { .. } => "meta",
            RegroupPing { .. } | RegroupAck { .. } | RegroupFreeze { .. }
            | RegroupProbe { .. } | RegroupProbeAck { .. } => "regroup",
            SlowPing { .. } | SlowPong { .. } | SlowLeaderYield { .. }
            | MetaQuarantine { .. } => "slow",
            SvcRegister { .. } | SvcHeartbeat { .. } | PartitionView { .. } => "svc",
            EsRegisterConsumer { .. }
            | EsUnregisterConsumer { .. }
            | EsRegisterSupplier { .. }
            | EsPublish { .. }
            | EsNotify { .. }
            | EsFedForward { .. }
            | EsRegisterAck { .. } => "event",
            DbPut { .. } | DbQuery { .. } | DbResp { .. } | DbFedQuery { .. }
            | DbFedResp { .. } => "bulletin",
            CkSave { .. } | CkLoad { .. } | CkLoadResp { .. } | CkDelete { .. }
            | CkReplicate { .. } | CkSyncReq { .. } | CkSyncResp { .. } => "ckpt",
            CfgQueryTopology { .. }
            | CfgTopology { .. }
            | CfgQueryDirectory { .. }
            | CfgDirectory { .. }
            | CfgSetParam { .. }
            | CfgAck { .. }
            | DirectoryUpdate { .. }
            | DirectoryUpdateNode { .. }
            | DirectoryStale { .. }
            | CfgNodeOp { .. } => "config",
            SecLogin { .. } | SecLoginResp { .. } | SecCheck { .. } | SecCheckResp { .. } => {
                "security"
            }
            PpmExec { .. } | PpmExecAck { .. } | PpmDelete { .. } | PpmDeleteAck { .. } => "ppm",
            AppStarted { .. } | AppExited { .. } => "app",
            PwsSubmit { .. }
            | PwsSubmitResp { .. }
            | PwsCancel { .. }
            | PwsCancelResp { .. }
            | PwsJobStatus { .. }
            | PwsJobStatusResp { .. }
            | PwsQueueStatus { .. }
            | PwsQueueStatusResp { .. }
            | PoolLeaseReq { .. }
            | PoolLeaseResp { .. }
            | PoolLeaseReturn { .. } => "pws",
            PbsPoll { .. } | PbsPollResp { .. } => "pbs",
        }
    }
}

impl Message for KernelMsg {
    fn wire_size(&self) -> usize {
        // O(1) for the fixed-shape heartbeat/probe/ping family and for
        // `Shared` broadcast payloads (memoized); only irregular owned
        // shapes pay a tree walk. See `Wire::fixed_size`.
        encoded_size(self)
    }

    fn label(&self) -> &'static str {
        self.traffic_label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_is_small() {
        let hb = KernelMsg::WdHeartbeat {
            node: NodeId(1),
            nic: NicId(0),
            seq: 42,
        };
        // tag + node(4) + nic(1) + seq(8)
        assert_eq!(hb.wire_size(), 4 + 4 + 1 + 8);
        assert_eq!(hb.label(), "hb");
    }

    #[test]
    fn bulletin_resp_size_scales_with_entries() {
        use crate::bulletin::{BulletinKey, BulletinValue};
        let entry = BulletinEntry {
            key: BulletinKey::Resource(NodeId(0)),
            value: BulletinValue::Resource(ResourceUsage::IDLE),
            stamp_ns: 0,
        };
        let small = KernelMsg::DbResp {
            req: RequestId(1),
            entries: vec![entry.clone()].into(),
            complete: true,
        };
        let big = KernelMsg::DbResp {
            req: RequestId(1),
            entries: vec![entry; 100].into(),
            complete: true,
        };
        assert!(big.wire_size() > small.wire_size() * 50);
    }

    #[test]
    fn labels_cover_major_groups() {
        assert_eq!(
            KernelMsg::MetaHeartbeat {
                from_partition: PartitionId(0),
                nic: NicId(0),
                epoch: 0,
                seq: 0
            }
            .label(),
            "meta"
        );
        assert_eq!(KernelMsg::PbsPoll { req: RequestId(0) }.label(), "pbs");
        assert_eq!(
            KernelMsg::CkSyncReq { req: RequestId(0) }.label(),
            "ckpt"
        );
    }

    #[test]
    fn directory_lookup() {
        let m = MemberInfo {
            partition: PartitionId(1),
            node: NodeId(17),
            gsd: Pid(1),
            event: Pid(2),
            bulletin: Pid(3),
            checkpoint: Pid(4),
            host_ppm: Pid(5),
        };
        let n = NodeServices {
            node: NodeId(5),
            wd: Pid(10),
            detector: Pid(11),
            ppm: Pid(12),
        };
        let dir = ServiceDirectory {
            config: Pid(100),
            security: Pid(101),
            partitions: vec![m],
            nodes: vec![n],
        };
        assert_eq!(dir.partition(PartitionId(1)).unwrap().gsd, Pid(1));
        assert!(dir.partition(PartitionId(9)).is_none());
        assert_eq!(dir.node(NodeId(5)).unwrap().ppm, Pid(12));
    }
}
