//! Virtual-time source for spans.
//!
//! The simulator owns time; telemetry must not call wall-clock APIs or
//! determinism dies. `World::dispatch` publishes the virtual clock here
//! (nanoseconds) before every handler runs, and spans/marks read it back.
//! Thread-local for the same reason the registry is: one simulator per
//! thread, zero cross-test pollution.

use std::cell::Cell;

thread_local! {
    static NOW: Cell<u64> = const { Cell::new(0) };
}

/// Publish the current virtual time in nanoseconds. Called by the
/// simulator's dispatch loop; tests may call it directly.
pub fn set_now(nanos: u64) {
    NOW.with(|n| n.set(nanos));
}

/// The most recently published virtual time in nanoseconds.
pub fn now() -> u64 {
    NOW.with(|n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_settable_and_monotone_free() {
        set_now(42);
        assert_eq!(now(), 42);
        // The clock is a plain register: rewinding is allowed (a fresh
        // World restarts at zero on the same thread).
        set_now(7);
        assert_eq!(now(), 7);
    }
}
