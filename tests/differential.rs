//! Differential regression suite: heap vs wheel scheduler, byte for byte.
//!
//! The event core's determinism contract says the scheduler implementation
//! is *unobservable*: for any seed, the heap baseline and the timer wheel
//! must produce the same event stream, the same structured trace, the same
//! flight-recorder spans, and the same telemetry registry — byte for byte.
//! This suite replays every pinned chaos regression scenario (including
//! the shrunk lossy masks) once per scheduler and compares all four
//! surfaces. The serial-vs-parallel `cmp` gate from the sweep runner is
//! the template; here the axis is the scheduler, not the thread count.
//!
//! A divergence report names the first differing line, not the full
//! multi-megabyte streams.

use phoenix::chaos::{flight_recorder_dump, run_schedule, ChaosConfig, RunOutcome};
use phoenix::sim::SchedulerKind;
use phoenix::telemetry::BenchReport;

/// Everything observable from one run: the chaos outcome, the recorded
/// streams, the flight-recorder dump, and the full telemetry registry
/// rendered to its BENCH JSON shape.
struct Observed {
    outcome: RunOutcome,
    flight: String,
    registry: String,
}

fn observe(seed: u64, mask: u64, mut cfg: ChaosConfig, kind: SchedulerKind) -> Observed {
    phoenix::telemetry::reset();
    cfg.scheduler = kind;
    cfg.record_streams = true;
    let outcome = run_schedule(seed, &cfg, mask, false);
    let flight = flight_recorder_dump(usize::MAX);
    let registry = phoenix::telemetry::with(|reg| {
        BenchReport::new("differential").to_json(reg).render()
    });
    phoenix::telemetry::reset();
    Observed {
        outcome,
        flight,
        registry,
    }
}

/// Panic with the first differing line instead of dumping both streams.
fn assert_stream_eq(what: &str, seed: u64, heap: &str, wheel: &str) {
    if heap == wheel {
        return;
    }
    let mut h = heap.lines();
    let mut w = wheel.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (h.next(), w.next()) {
            (Some(a), Some(b)) if a == b => continue,
            (a, b) => panic!(
                "seed {seed}: {what} streams diverge at line {line} \
                 ({} vs {} total lines)\n  heap:  {a:?}\n  wheel: {b:?}",
                heap.lines().count(),
                wheel.lines().count(),
            ),
        }
    }
}

/// Replay `seed` (restricted to `mask`) under both schedulers and require
/// byte-identity on every observable surface.
fn assert_byte_identical(seed: u64, mask: u64, cfg: &ChaosConfig) {
    let heap = observe(seed, mask, cfg.clone(), SchedulerKind::Heap);
    let wheel = observe(seed, mask, cfg.clone(), SchedulerKind::Wheel);

    let hs = heap.outcome.streams.as_ref().expect("heap streams recorded");
    let ws = wheel
        .outcome
        .streams
        .as_ref()
        .expect("wheel streams recorded");
    assert_stream_eq("event", seed, &hs.events, &ws.events);
    assert!(
        !hs.events.is_empty(),
        "seed {seed}: event stream is empty — recording is broken"
    );
    assert_stream_eq("trace", seed, &hs.trace, &ws.trace);
    assert_stream_eq("flight-recorder", seed, &heap.flight, &wheel.flight);
    assert_stream_eq("telemetry-registry", seed, &heap.registry, &wheel.registry);

    // Scalar outcome fields must agree too (violations carry strings).
    assert_eq!(heap.outcome.virtual_ns, wheel.outcome.virtual_ns, "seed {seed}");
    assert_eq!(
        heap.outcome.faults_injected, wheel.outcome.faults_injected,
        "seed {seed}"
    );
    assert_eq!(heap.outcome.quiesced, wheel.outcome.quiesced, "seed {seed}");
    assert_eq!(
        heap.outcome.violations.len(),
        wheel.outcome.violations.len(),
        "seed {seed}: {:?} vs {:?}",
        heap.outcome.violations,
        wheel.outcome.violations
    );
    // These pinned scenarios are green in chaos_regressions; a violation
    // here means the scheduler (not the kernel) broke something.
    assert!(
        wheel.outcome.violations.is_empty(),
        "seed {seed} violated invariants under the wheel: {:?}",
        wheel.outcome.violations
    );
}

/// Pinned shrunk reproducer 8:88 (lossy): the minimal two-step subset of
/// seed 8's schedule that once broke loss tolerance.
#[test]
fn differential_lossy_shrunk_mask_8_88() {
    assert_byte_identical(8, 0x88, &ChaosConfig::small_lossy(20));
}

/// Pinned shrunk reproducer 15:5ee (lossy).
#[test]
fn differential_lossy_shrunk_mask_15_5ee() {
    assert_byte_identical(15, 0x5ee, &ChaosConfig::small_lossy(20));
}

/// Seed 26: island split storm overlapping a GSD kill (partition config).
#[test]
fn differential_partition_island_split_seed_26() {
    assert_byte_identical(26, u64::MAX, &ChaosConfig::small_partition());
}

/// Seed 4: the flapping-NIC storm pin (lossy config).
#[test]
fn differential_nic_flap_seed_4() {
    assert_byte_identical(4, u64::MAX, &ChaosConfig::small_lossy(20));
}

/// Seed 178: loss bursts plus a GSD kill on a 2% lossy network.
#[test]
fn differential_lossy_seed_178() {
    assert_byte_identical(178, u64::MAX, &ChaosConfig::small_lossy(20));
}

/// Seed 21: the quorum profile's overlapping-takeover-plans scenario
/// (diagnose-migrate racing a rescue sweep across an even split) — the
/// pin that once clobbered per-plan takeover telemetry. Regroup probes,
/// home-node testimony and the weighted vote table all ride this replay.
#[test]
fn differential_quorum_even_split_seed_21() {
    assert_byte_identical(21, u64::MAX, &ChaosConfig::small_quorum());
}

/// Seed 1 (slow profile): both member-partition servers gray at once —
/// RTT scoring, quarantine broadcast, drain migration and reinstatement
/// all ride this replay, and every one of them must be byte-identical
/// under either scheduler.
#[test]
fn differential_slow_double_gray_seed_1() {
    assert_byte_identical(1, u64::MAX, &ChaosConfig::small_slow());
}

/// The fail-slow storm stream rides its own salted RNG and is appended
/// after every other stream: turning it off must reproduce the exact
/// remaining schedule, byte for byte, for every seed. This is what keeps
/// all pre-slow pinned seeds (and their recorded streams) valid forever.
#[test]
fn slow_stream_is_rng_neutral() {
    use phoenix::chaos::{generate_schedule, slow_storms, Step, StepAction};
    use phoenix::sim::Fault;
    let mut storms_seen = 0usize;
    for seed in [1u64, 7, 21, 34, 43] {
        let cfg = ChaosConfig::small_slow();
        let (_world, cluster) =
            phoenix::kernel::boot_cluster(cfg.topology(), cfg.params.clone(), seed);
        let with_slow = generate_schedule(seed, &cfg, &cluster);
        let mut base = cfg.clone();
        base.slow_steps = false;
        let without = generate_schedule(seed, &base, &cluster);
        let filtered: Vec<Step> = with_slow
            .iter()
            .copied()
            .filter(|s| {
                !matches!(
                    s.action,
                    StepAction::Fault(Fault::SlowNode { .. } | Fault::SlowClear(_))
                )
            })
            .collect();
        assert_eq!(
            filtered, without,
            "seed {seed}: slow stream bled into the base schedule"
        );
        storms_seen += slow_storms(&with_slow);
    }
    assert!(storms_seen >= 5, "scan seeds no longer draw slow storms");
}
