//! Background "Phoenix daemon" load for the Table 4 interference
//! experiment.
//!
//! On the Dawning 4000A the question was: how many cycles do the Phoenix
//! kernel daemons (WD heartbeats, detectors sampling /proc, GSD analysis)
//! steal from Linpack? This module reproduces the measurement on real
//! threads: each simulated daemon wakes at its interval, does a small
//! burst of bookkeeping-like work, and sleeps again — the duty cycle is
//! the knob. The paper's result (Table 4: 97–102 % of baseline, "little
//! impact") corresponds to a sub-percent duty cycle.

use std::sync::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of the background daemon set.
#[derive(Clone, Debug)]
pub struct DaemonLoad {
    /// Number of daemon threads (WD + detector + share of GSD ≈ 3).
    pub daemons: usize,
    /// Wake-up interval.
    pub interval: Duration,
    /// Busy time per wake-up.
    pub busy: Duration,
}

impl DaemonLoad {
    /// The calibrated default: three daemons waking every 10 ms for
    /// ~40 µs each ≈ 1.2 % aggregate duty cycle — the right order for
    /// heartbeat + sampling daemons. The short period keeps the bursts
    /// fine-grained relative to benchmark run times, like the real
    /// daemons' interrupt-sized work.
    pub fn phoenix_default() -> DaemonLoad {
        DaemonLoad {
            daemons: 3,
            interval: Duration::from_millis(10),
            busy: Duration::from_micros(40),
        }
    }

    /// Aggregate duty cycle (fraction of one CPU).
    pub fn duty_cycle(&self) -> f64 {
        self.daemons as f64 * self.busy.as_secs_f64() / self.interval.as_secs_f64()
    }
}

/// Running daemon set; stops and joins on drop.
pub struct DaemonSet {
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<u64>>,
    /// Total busy-work iterations, for sanity checks.
    pub work_done: Arc<Mutex<u64>>,
}

/// Spin for roughly `busy` doing arithmetic that will not be optimized out.
fn busy_work(busy: Duration) -> u64 {
    let start = Instant::now();
    let mut acc: u64 = 0x9E3779B9;
    while start.elapsed() < busy {
        for _ in 0..64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        }
    }
    acc
}

/// Start the daemon set.
pub fn start(load: &DaemonLoad) -> DaemonSet {
    let stop = Arc::new(AtomicBool::new(false));
    let work_done = Arc::new(Mutex::new(0u64));
    let mut handles = Vec::with_capacity(load.daemons);
    for d in 0..load.daemons {
        let stop = stop.clone();
        let work_done = work_done.clone();
        let interval = load.interval;
        let busy = load.busy;
        handles.push(std::thread::spawn(move || {
            // Stagger daemons so their bursts do not align.
            std::thread::sleep(interval.mul_f64(d as f64 / 3.0));
            let mut acc = 0u64;
            while !stop.load(Ordering::Relaxed) {
                acc = acc.wrapping_add(busy_work(busy));
                *work_done.lock().unwrap() += 1;
                std::thread::sleep(interval);
            }
            acc
        }));
    }
    DaemonSet {
        stop,
        handles,
        work_done,
    }
}

impl DaemonSet {
    /// Stop and join all daemons.
    pub fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        let mut acc = 0u64;
        for h in self.handles.drain(..) {
            acc = acc.wrapping_add(h.join().unwrap_or(0));
        }
        acc
    }
}

impl Drop for DaemonSet {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle_is_small_by_default() {
        let d = DaemonLoad::phoenix_default();
        assert!(d.duty_cycle() < 0.05, "duty {:.3}", d.duty_cycle());
        assert!(d.duty_cycle() > 0.001);
    }

    #[test]
    fn daemons_do_work_and_stop() {
        let set = start(&DaemonLoad {
            daemons: 2,
            interval: Duration::from_millis(5),
            busy: Duration::from_micros(100),
        });
        std::thread::sleep(Duration::from_millis(60));
        let done = *set.work_done.lock().unwrap();
        set.stop();
        assert!(done >= 4, "daemons woke several times, got {done}");
    }
}
