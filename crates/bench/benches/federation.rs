//! Criterion bench for the data-bulletin federation (Fig 5 ablation from
//! DESIGN.md): cost of a cluster-wide query through the single access
//! point as the number of partitions (= federation fan-out) grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phoenix_kernel::boot::boot_and_stabilize;
use phoenix_kernel::client::ClientHandle;
use phoenix_kernel::KernelParams;
use phoenix_proto::{BulletinQuery, ClusterTopology, KernelMsg, RequestId};
use phoenix_sim::{NodeId, SimDuration};

fn bench_federated_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("bulletin_federated_query");
    g.sample_size(10);
    for partitions in [2usize, 4, 8] {
        g.throughput(Throughput::Elements((partitions * 4) as u64));
        g.bench_function(BenchmarkId::from_parameter(partitions), |b| {
            // One warm cluster per configuration; iterate queries inside.
            let topo = ClusterTopology::uniform(partitions, 4, 1);
            let (mut w, cluster) = boot_and_stabilize(topo, KernelParams::fast(), 9);
            w.run_for(SimDuration::from_secs(2)); // detectors fill the DB
            let client = ClientHandle::spawn(&mut w, NodeId(2));
            let mut req = 0u64;
            b.iter(|| {
                req += 1;
                client.send(
                    &mut w,
                    cluster.bulletin(),
                    KernelMsg::DbQuery {
                        req: RequestId(req),
                        query: BulletinQuery::Resources,
                    },
                );
                w.run_for(SimDuration::from_millis(50));
                let got = client.drain();
                assert!(!got.is_empty());
                got
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_federated_query);
criterion_main!(benches);
