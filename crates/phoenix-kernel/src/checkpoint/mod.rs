//! The checkpoint service.
//!
//! Paper Sec 4.2: "Based on group service, it provides interfaces for
//! upper-layer services to save system data, which means that upper-layer
//! services themselves are responsible for saving and deleting system state
//! by calling interface of checkpoint service."
//!
//! One instance runs per partition on the server node. Instances form a
//! federation: every save is replicated to the peers, so a checkpoint
//! instance that migrates to a backup node after a server-node crash can
//! resynchronize the partition's state from any surviving peer
//! (`CkSyncReq` / `CkSyncResp`).

use crate::params::KernelParams;
use phoenix_proto::{CheckpointData, KernelMsg, PartitionId, RequestId, ServiceKind};
use phoenix_sim::{Actor, Ctx, Pid, RecoveryAction, SimDuration, TraceEvent};
use std::collections::BTreeMap;

const TOK_HB: u64 = 1;
const TOK_SYNC_TIMEOUT: u64 = 2;
/// Backoff timer for re-sending `CkSyncReq` while still unsynced.
const TOK_SYNC_RETRY: u64 = 3;

/// Key of a checkpointed snapshot: which service instance saved it.
pub type CkKey = (ServiceKind, PartitionId);

/// The checkpoint-service actor.
pub struct CheckpointService {
    partition: PartitionId,
    params: KernelParams,
    gsd: Pid,
    peers: Vec<Pid>,
    store: BTreeMap<CkKey, CheckpointData>,
    /// Migrated instances must pull state from a peer before answering.
    synced: bool,
    pending_loads: Vec<(Pid, RequestId, CkKey)>,
    hb_seq: u64,
    recovery: Option<RecoveryAction>,
    /// Send attempts for the post-migration sync fan-out (a lost request
    /// or reply is retried with backoff under a retrying policy).
    sync_attempts: u32,
}

impl CheckpointService {
    /// A boot-time instance: wired later by the `Boot` message; starts
    /// synced (there is nothing to recover).
    pub fn new(partition: PartitionId, params: KernelParams) -> Self {
        CheckpointService {
            partition,
            params,
            gsd: Pid(0),
            peers: Vec::new(),
            store: BTreeMap::new(),
            synced: true,
            pending_loads: Vec::new(),
            hb_seq: 0,
            recovery: None,
            sync_attempts: 0,
        }
    }

    /// A respawned instance. `peers` are surviving federation members; if
    /// the restart followed a migration the store starts empty and is
    /// pulled from a peer.
    pub fn respawn(
        partition: PartitionId,
        params: KernelParams,
        gsd: Pid,
        peers: Vec<Pid>,
        action: RecoveryAction,
    ) -> Self {
        let migrated = matches!(action, RecoveryAction::Migrated(_));
        CheckpointService {
            partition,
            params,
            gsd,
            peers,
            store: BTreeMap::new(),
            synced: !migrated,
            pending_loads: Vec::new(),
            hb_seq: 0,
            recovery: Some(action),
            sync_attempts: 0,
        }
    }

    fn answer(&self, ctx: &mut Ctx<'_, KernelMsg>, to: Pid, req: RequestId, key: CkKey) {
        let data = self.store.get(&key).cloned();
        ctx.send(to, KernelMsg::CkLoadResp { req, data });
    }

    fn flush_pending(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        let pending = std::mem::take(&mut self.pending_loads);
        for (to, req, key) in pending {
            self.answer(ctx, to, req, key);
        }
    }

    /// Fan the sync request to every surviving peer. Under a retrying
    /// policy the fan-out re-fires with backoff until a response lands or
    /// the attempt budget is spent; the give-up timer remains the final
    /// fallback either way.
    fn send_sync_reqs(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        for &p in &self.peers.clone() {
            ctx.send(p, KernelMsg::CkSyncReq { req: RequestId(0) });
        }
        self.sync_attempts += 1;
        if self.sync_attempts > 1 {
            phoenix_telemetry::counter_add("rpc.retries", 1);
        }
        if self.params.rpc.retries_enabled() {
            if let Some(delay) = self.params.rpc.delay(self.sync_attempts, ctx.rng()) {
                ctx.set_timer(delay, TOK_SYNC_RETRY);
            }
        }
    }

    fn heartbeat(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        self.hb_seq += 1;
        ctx.send(
            self.gsd,
            KernelMsg::SvcHeartbeat {
                kind: ServiceKind::Checkpoint,
                pid: ctx.pid(),
                seq: self.hb_seq,
            },
        );
        ctx.set_timer(self.params.ft.hb_interval, TOK_HB);
    }
}

impl Actor<KernelMsg> for CheckpointService {
    fn on_start(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        ctx.trace(TraceEvent::ServiceUp {
            pid: ctx.pid(),
            service: "checkpoint",
            node: ctx.node(),
        });
        if self.gsd != Pid(0) {
            ctx.send(
                self.gsd,
                KernelMsg::SvcRegister {
                    kind: ServiceKind::Checkpoint,
                    pid: ctx.pid(),
                    factory: format!("checkpoint:p{}", self.partition.0),
                },
            );
            self.heartbeat(ctx);
        }
        if !self.synced {
            // Pull the federation's replicated state from every peer; the
            // first answer wins, the rest merge idempotently.
            self.send_sync_reqs(ctx);
            // Give up after a bounded wait (all peers dead): serve empty.
            ctx.set_timer(self.params.fed_query_timeout * 4, TOK_SYNC_TIMEOUT);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, KernelMsg>, from: Pid, msg: KernelMsg) {
        match msg {
            KernelMsg::Boot(dir) => {
                if let Some(me) = dir.partition(self.partition) {
                    self.gsd = me.gsd;
                }
                self.peers = dir
                    .partitions
                    .iter()
                    .filter(|m| m.partition != self.partition)
                    .map(|m| m.checkpoint)
                    .collect();
                ctx.send(
                    self.gsd,
                    KernelMsg::SvcRegister {
                        kind: ServiceKind::Checkpoint,
                        pid: ctx.pid(),
                        factory: format!("checkpoint:p{}", self.partition.0),
                    },
                );
                self.heartbeat(ctx);
            }
            KernelMsg::PartitionView { members, local } => {
                let gsd_changed = self.gsd != local.gsd;
                self.gsd = local.gsd;
                self.peers = members
                    .iter()
                    .filter(|m| m.partition != self.partition)
                    .map(|m| m.checkpoint)
                    .collect();
                if gsd_changed {
                    ctx.send(
                        self.gsd,
                        KernelMsg::SvcRegister {
                            kind: ServiceKind::Checkpoint,
                            pid: ctx.pid(),
                            factory: format!("checkpoint:p{}", self.partition.0),
                        },
                    );
                }
            }
            KernelMsg::CkSave {
                service,
                partition,
                data,
            } => {
                self.store.insert((service, partition), data.clone());
                for &p in &self.peers {
                    ctx.send(
                        p,
                        KernelMsg::CkReplicate {
                            service,
                            partition,
                            data: data.clone(),
                        },
                    );
                }
            }
            KernelMsg::CkReplicate {
                service,
                partition,
                data,
            } => {
                self.store.insert((service, partition), data);
            }
            KernelMsg::CkLoad {
                req,
                service,
                partition,
            } => {
                let key = (service, partition);
                if self.synced {
                    self.answer(ctx, from, req, key);
                } else {
                    self.pending_loads.push((from, req, key));
                }
            }
            KernelMsg::CkDelete { service, partition } => {
                self.store.remove(&(service, partition));
                // Forward once; peers recognise each other and stop.
                if !self.peers.contains(&from) {
                    for &p in &self.peers {
                        ctx.send(p, KernelMsg::CkDelete { service, partition });
                    }
                }
            }
            KernelMsg::CkSyncReq { req } => {
                let items: Vec<(ServiceKind, PartitionId, CheckpointData)> = self
                    .store
                    .iter()
                    .map(|(&(s, p), d)| (s, p, d.clone()))
                    .collect();
                ctx.send(from, KernelMsg::CkSyncResp { req, items });
            }
            KernelMsg::CkSyncResp { items, .. } => {
                for (s, p, d) in items {
                    self.store.entry((s, p)).or_insert(d);
                }
                if !self.synced {
                    self.synced = true;
                    self.flush_pending(ctx);
                    if let Some(action) = self.recovery.take() {
                        ctx.trace(TraceEvent::Recovered {
                            target: phoenix_sim::FaultTarget::Process(ctx.pid()),
                            action,
                        });
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, KernelMsg>, token: u64) {
        match token {
            TOK_HB => self.heartbeat(ctx),
            TOK_SYNC_TIMEOUT => {
                if !self.synced {
                    self.synced = true;
                    self.flush_pending(ctx);
                }
            }
            TOK_SYNC_RETRY => {
                if !self.synced {
                    self.send_sync_reqs(ctx);
                }
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "checkpoint"
    }
}

/// Convenience: how long a migrated instance waits for peers at most.
pub fn sync_deadline(params: &KernelParams) -> SimDuration {
    params.fed_query_timeout * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_proto::MemberInfo;
    use phoenix_sim::{ClusterBuilder, NodeSpec, World};

    fn world() -> World<KernelMsg> {
        ClusterBuilder::new()
            .nodes(4, NodeSpec::default())
            .build::<KernelMsg>()
    }

    /// Drives a save and a load through a two-instance federation.
    #[test]
    fn save_replicates_to_peers() {
        let mut w = world();
        let a = w.spawn(
            phoenix_sim::NodeId(0),
            Box::new(CheckpointService::new(PartitionId(0), KernelParams::fast())),
        );
        let b = w.spawn(
            phoenix_sim::NodeId(1),
            Box::new(CheckpointService::new(PartitionId(1), KernelParams::fast())),
        );
        // Wire peers manually (no full boot in a unit test).
        let dir = phoenix_proto::ServiceDirectory {
            config: Pid(0),
            security: Pid(0),
            partitions: vec![
                MemberInfo {
                    partition: PartitionId(0),
                    node: phoenix_sim::NodeId(0),
                    gsd: Pid(0),
                    event: Pid(0),
                    bulletin: Pid(0),
                    checkpoint: a,
                    host_ppm: Pid(0),
                },
                MemberInfo {
                    partition: PartitionId(1),
                    node: phoenix_sim::NodeId(1),
                    gsd: Pid(0),
                    event: Pid(0),
                    bulletin: Pid(0),
                    checkpoint: b,
                    host_ppm: Pid(0),
                },
            ],
            nodes: vec![],
        };
        w.inject(a, KernelMsg::Boot((dir.clone()).into()));
        w.inject(b, KernelMsg::Boot((dir).into()));
        w.run_for(SimDuration::from_millis(10));

        w.inject(
            a,
            KernelMsg::CkSave {
                service: ServiceKind::Event,
                partition: PartitionId(0),
                data: CheckpointData::Raw(vec![1, 2, 3]),
            },
        );
        w.run_for(SimDuration::from_millis(10));

        // Load from the *peer*: replication must have carried it over.
        let client = crate::client::ClientHandle::spawn(&mut w, phoenix_sim::NodeId(2));
        client.send(
            &mut w,
            b,
            KernelMsg::CkLoad {
                req: RequestId(9),
                service: ServiceKind::Event,
                partition: PartitionId(0),
            },
        );
        w.run_for(SimDuration::from_millis(10));
        let msgs = client.drain();
        assert!(matches!(
            &msgs[..],
            [(_, KernelMsg::CkLoadResp { data: Some(CheckpointData::Raw(v)), .. })] if v == &vec![1,2,3]
        ));
    }
}
