//! Zero-copy decode views over encoded [`KernelMsg`] buffers.
//!
//! [`KernelMsgView::parse`] reads the hot wire shapes — the fixed-size
//! heartbeat/probe/ping family plus the two bulk-payload carriers whose
//! bodies dominate network bytes (raw checkpoint replication, federated
//! text events) — straight out of the encode buffer, borrowing strings and
//! byte runs instead of allocating fresh `String`/`Vec` per decode. Every
//! other shape (and a hot tag whose payload turns out not to be the
//! borrowable kind) falls back to [`KernelMsgView::Other`], which keeps the
//! whole buffer and decodes on demand via [`KernelMsgView::to_owned`].
//!
//! The view is strictly canonical, like [`crate::wire::decode`]: hot-shape
//! parses reject trailing bytes and bad flag bytes, so a buffer that parses
//! as a hot view is exactly a buffer `decode` would accept.
//!
//! Tag values below mirror the `wire_enum!` listing for `KernelMsg` in
//! `wire.rs`; `tests/properties.rs` round-trips every variant exemplar
//! through the view, so a drifting tag fails loudly.

use crate::checkpoint::CheckpointData;
use crate::event::{Event, EventPayload, EventType};
use crate::ids::{PartitionId, RequestId, ServiceKind};
use crate::msg::KernelMsg;
use crate::wire::{decode, Reader, Wire, WireError};
use phoenix_sim::{NicId, NodeId};

/// Borrowed decode of the hot `KernelMsg` shapes. Lifetime `'a` is the
/// encode buffer's: no variant owns heap data.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum KernelMsgView<'a> {
    WdHeartbeat {
        node: NodeId,
        nic: NicId,
        seq: u64,
    },
    WdHeartbeatAck {
        nic: NicId,
        seq: u64,
    },
    ProbeReq {
        req: RequestId,
    },
    ProbeResp {
        req: RequestId,
    },
    MetaHeartbeat {
        from_partition: PartitionId,
        nic: NicId,
        epoch: u64,
        seq: u64,
    },
    SlowPing {
        seq: u64,
    },
    SlowPong {
        seq: u64,
    },
    RegroupPing {
        from_partition: PartitionId,
        epoch: u64,
        round: u64,
        witness: PartitionId,
        witness_epoch: u64,
    },
    RegroupAck {
        from_partition: PartitionId,
        epoch: u64,
        round: u64,
        frozen: bool,
        weight: u32,
        witness: PartitionId,
        witness_epoch: u64,
    },
    /// `CkReplicate` carrying `CheckpointData::Raw`: the blob is borrowed
    /// from the encode buffer, not copied.
    CkReplicateRaw {
        service: ServiceKind,
        partition: PartitionId,
        raw: &'a [u8],
    },
    /// `EsFedForward` of a `Text`-payload event: the text is borrowed.
    EsFedForwardText {
        etype: EventType,
        origin: NodeId,
        partition: PartitionId,
        seq: u64,
        text: &'a str,
    },
    /// Anything else: the enum tag plus the untouched full buffer, decoded
    /// only if [`KernelMsgView::to_owned`] is called.
    Other {
        tag: u32,
        full: &'a [u8],
    },
}

// KernelMsg wire tags this module fast-paths (see the wire_enum! listing).
const TAG_WD_HEARTBEAT: u32 = 1;
const TAG_PROBE_REQ: u32 = 2;
const TAG_PROBE_RESP: u32 = 3;
const TAG_META_HEARTBEAT: u32 = 4;
const TAG_ES_FED_FORWARD: u32 = 16;
const TAG_CK_REPLICATE: u32 = 26;
const TAG_WD_HEARTBEAT_ACK: u32 = 62;
const TAG_REGROUP_PING: u32 = 63;
const TAG_REGROUP_ACK: u32 = 64;
const TAG_SLOW_PING: u32 = 69;
const TAG_SLOW_PONG: u32 = 70;
// Payload tags inside the bulk carriers.
const PAYLOAD_TAG_RAW: u32 = 4; // CheckpointData::Raw
const PAYLOAD_TAG_TEXT: u32 = 7; // EventPayload::Text

impl<'a> KernelMsgView<'a> {
    /// Parse an encoded `KernelMsg` without allocating. Hot shapes decode
    /// fully (with the same canonicality checks as [`decode`]); everything
    /// else is held as [`KernelMsgView::Other`] for on-demand decode.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let tag = u32::get(&mut r)?;
        let view = match tag {
            TAG_WD_HEARTBEAT => KernelMsgView::WdHeartbeat {
                node: Wire::get(&mut r)?,
                nic: Wire::get(&mut r)?,
                seq: Wire::get(&mut r)?,
            },
            TAG_PROBE_REQ => KernelMsgView::ProbeReq {
                req: Wire::get(&mut r)?,
            },
            TAG_PROBE_RESP => KernelMsgView::ProbeResp {
                req: Wire::get(&mut r)?,
            },
            TAG_META_HEARTBEAT => KernelMsgView::MetaHeartbeat {
                from_partition: Wire::get(&mut r)?,
                nic: Wire::get(&mut r)?,
                epoch: Wire::get(&mut r)?,
                seq: Wire::get(&mut r)?,
            },
            TAG_WD_HEARTBEAT_ACK => KernelMsgView::WdHeartbeatAck {
                nic: Wire::get(&mut r)?,
                seq: Wire::get(&mut r)?,
            },
            TAG_REGROUP_PING => KernelMsgView::RegroupPing {
                from_partition: Wire::get(&mut r)?,
                epoch: Wire::get(&mut r)?,
                round: Wire::get(&mut r)?,
                witness: Wire::get(&mut r)?,
                witness_epoch: Wire::get(&mut r)?,
            },
            TAG_REGROUP_ACK => KernelMsgView::RegroupAck {
                from_partition: Wire::get(&mut r)?,
                epoch: Wire::get(&mut r)?,
                round: Wire::get(&mut r)?,
                frozen: Wire::get(&mut r)?,
                weight: Wire::get(&mut r)?,
                witness: Wire::get(&mut r)?,
                witness_epoch: Wire::get(&mut r)?,
            },
            TAG_SLOW_PING => KernelMsgView::SlowPing {
                seq: Wire::get(&mut r)?,
            },
            TAG_SLOW_PONG => KernelMsgView::SlowPong {
                seq: Wire::get(&mut r)?,
            },
            TAG_CK_REPLICATE => {
                let service = Wire::get(&mut r)?;
                let partition = Wire::get(&mut r)?;
                if u32::get(&mut r)? != PAYLOAD_TAG_RAW {
                    return Ok(KernelMsgView::Other { tag, full: bytes });
                }
                KernelMsgView::CkReplicateRaw {
                    service,
                    partition,
                    raw: r.get_bytes()?,
                }
            }
            TAG_ES_FED_FORWARD => {
                let etype = Wire::get(&mut r)?;
                let origin = Wire::get(&mut r)?;
                let partition = Wire::get(&mut r)?;
                let seq = Wire::get(&mut r)?;
                if u32::get(&mut r)? != PAYLOAD_TAG_TEXT {
                    return Ok(KernelMsgView::Other { tag, full: bytes });
                }
                KernelMsgView::EsFedForwardText {
                    etype,
                    origin,
                    partition,
                    seq,
                    text: r.get_str()?,
                }
            }
            _ => return Ok(KernelMsgView::Other { tag, full: bytes }),
        };
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes(r.remaining()));
        }
        Ok(view)
    }

    /// Materialize the owned message. Free of re-parsing for hot shapes;
    /// [`KernelMsgView::Other`] runs the ordinary strict [`decode`].
    pub fn to_owned(&self) -> Result<KernelMsg, WireError> {
        Ok(match *self {
            KernelMsgView::WdHeartbeat { node, nic, seq } => {
                KernelMsg::WdHeartbeat { node, nic, seq }
            }
            KernelMsgView::WdHeartbeatAck { nic, seq } => KernelMsg::WdHeartbeatAck { nic, seq },
            KernelMsgView::ProbeReq { req } => KernelMsg::ProbeReq { req },
            KernelMsgView::ProbeResp { req } => KernelMsg::ProbeResp { req },
            KernelMsgView::MetaHeartbeat {
                from_partition,
                nic,
                epoch,
                seq,
            } => KernelMsg::MetaHeartbeat {
                from_partition,
                nic,
                epoch,
                seq,
            },
            KernelMsgView::SlowPing { seq } => KernelMsg::SlowPing { seq },
            KernelMsgView::SlowPong { seq } => KernelMsg::SlowPong { seq },
            KernelMsgView::RegroupPing {
                from_partition,
                epoch,
                round,
                witness,
                witness_epoch,
            } => KernelMsg::RegroupPing {
                from_partition,
                epoch,
                round,
                witness,
                witness_epoch,
            },
            KernelMsgView::RegroupAck {
                from_partition,
                epoch,
                round,
                frozen,
                weight,
                witness,
                witness_epoch,
            } => KernelMsg::RegroupAck {
                from_partition,
                epoch,
                round,
                frozen,
                weight,
                witness,
                witness_epoch,
            },
            KernelMsgView::CkReplicateRaw {
                service,
                partition,
                raw,
            } => KernelMsg::CkReplicate {
                service,
                partition,
                data: CheckpointData::Raw(raw.to_vec()),
            },
            KernelMsgView::EsFedForwardText {
                etype,
                origin,
                partition,
                seq,
                text,
            } => KernelMsg::EsFedForward {
                event: Event {
                    etype,
                    origin,
                    partition,
                    seq,
                    payload: EventPayload::Text(text.to_owned()),
                },
            },
            KernelMsgView::Other { full, .. } => decode(full)?,
        })
    }

    /// True when the parse borrowed everything it needed — no allocation
    /// happened and none is pending except through [`Self::to_owned`].
    pub fn is_hot(&self) -> bool {
        !matches!(self, KernelMsgView::Other { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::encode;

    #[test]
    fn hot_views_round_trip_without_decode() {
        let msgs = [
            KernelMsg::WdHeartbeat {
                node: NodeId(7),
                nic: NicId(1),
                seq: 42,
            },
            KernelMsg::RegroupAck {
                from_partition: PartitionId(3),
                epoch: 9,
                round: 4,
                frozen: true,
                weight: 2,
                witness: PartitionId(1),
                witness_epoch: 8,
            },
            KernelMsg::CkReplicate {
                service: ServiceKind::Checkpoint,
                partition: PartitionId(2),
                data: CheckpointData::Raw(vec![0xAB; 64]),
            },
            KernelMsg::EsFedForward {
                event: Event {
                    etype: EventType::NodeFault,
                    origin: NodeId(5),
                    partition: PartitionId(1),
                    seq: 77,
                    payload: EventPayload::Text("node 5 flaked".into()),
                },
            },
        ];
        for msg in &msgs {
            let bytes = encode(msg);
            let view = KernelMsgView::parse(&bytes).expect("parse");
            assert!(view.is_hot(), "{msg:?} should take the borrowed path");
            assert_eq!(&view.to_owned().expect("to_owned"), msg);
        }
    }

    #[test]
    fn raw_blob_is_borrowed_not_copied() {
        let msg = KernelMsg::CkReplicate {
            service: ServiceKind::Event,
            partition: PartitionId(1),
            data: CheckpointData::Raw(vec![1, 2, 3, 4]),
        };
        let bytes = encode(&msg);
        match KernelMsgView::parse(&bytes).expect("parse") {
            KernelMsgView::CkReplicateRaw { raw, .. } => {
                // The slice points into the encode buffer itself.
                let buf = bytes.as_ptr() as usize;
                let ptr = raw.as_ptr() as usize;
                assert!(ptr >= buf && ptr < buf + bytes.len());
                assert_eq!(raw, &[1, 2, 3, 4]);
            }
            other => panic!("expected raw view, got {other:?}"),
        }
    }

    #[test]
    fn cold_shapes_fall_back_to_other() {
        let msg = KernelMsg::MetaJoin {
            member: crate::msg::MemberInfo {
                partition: PartitionId(1),
                node: NodeId(2),
                gsd: phoenix_sim::Pid(3),
                event: phoenix_sim::Pid(4),
                bulletin: phoenix_sim::Pid(5),
                checkpoint: phoenix_sim::Pid(6),
                host_ppm: phoenix_sim::Pid(7),
            },
        };
        let bytes = encode(&msg);
        let view = KernelMsgView::parse(&bytes).expect("parse");
        assert!(!view.is_hot());
        assert_eq!(view.to_owned().expect("decode"), msg);
    }

    #[test]
    fn hot_view_rejects_trailing_bytes() {
        let mut bytes = encode(&KernelMsg::SlowPing { seq: 1 });
        bytes.push(0);
        assert!(matches!(
            KernelMsgView::parse(&bytes),
            Err(WireError::TrailingBytes(1))
        ));
    }
}
