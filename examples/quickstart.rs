//! Quickstart: boot a Phoenix cluster, watch it run, break it, watch it
//! heal.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use phoenix::kernel::boot::boot_and_stabilize;
use phoenix::kernel::KernelParams;
use phoenix::proto::ClusterTopology;
use phoenix::sim::{Fault, NodeId, SimDuration, TraceEvent};

fn main() {
    // A cluster of 2 partitions × 4 nodes (server + backup + 2 compute),
    // 3 networks per node — a miniature Dawning 4000A.
    let topology = ClusterTopology::uniform(2, 4, 1);
    let params = KernelParams::fast(); // 1 s heartbeats for a quick demo
    let (mut world, cluster) = boot_and_stabilize(topology, params, 42);

    println!(
        "booted {} nodes / {} partitions; {} kernel processes live",
        cluster.topology.node_count(),
        cluster.topology.partitions.len(),
        world.live_processes()
    );

    // Let heartbeats and detector samples flow for a few virtual seconds.
    world.run_for(SimDuration::from_secs(3));
    println!(
        "after 3 virtual seconds: {} messages on the wire ({} bytes)",
        world.metrics().total.sent,
        world.metrics().total.sent_bytes
    );

    // Now the fun part: crash a compute node.
    println!("\ncrashing node3...");
    world.apply_fault(Fault::CrashNode(NodeId(3)));
    world.run_for(SimDuration::from_secs(4));

    // The group service detected, diagnosed, and published the fault.
    for r in world.trace().records() {
        match &r.event {
            TraceEvent::FaultDetected { target, .. } => {
                println!("  {}: detected  {target:?}", r.at)
            }
            TraceEvent::FaultDiagnosed { diagnosis, target, .. } => {
                println!("  {}: diagnosed {target:?} as {diagnosis:?}", r.at)
            }
            TraceEvent::Recovered { target, action } => {
                println!("  {}: recovered {target:?} via {action:?}", r.at)
            }
            _ => {}
        }
    }

    println!("\nper-class traffic:\n{}", world.metrics().traffic_table());
    println!("quickstart done — see examples/hpc_batch_cluster.rs for jobs,");
    println!("examples/business_hosting.rs for the HA story, and");
    println!("examples/operations_console.rs for monitoring + node ops.");
}
