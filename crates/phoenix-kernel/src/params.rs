//! Kernel tuning parameters.
//!
//! The fault-tolerance constants are calibrated so that the default
//! configuration reproduces the timing pipeline of the paper's Tables 1–3:
//! detection ≈ heartbeat interval (30 s configured on the Dawning 4000A
//! testbed), sub-second diagnosis, and restart/migration costs measured on
//! that machine. Every value is a parameter precisely because the paper
//! stresses that "the interval for sending heartbeat can be configured as a
//! system parameter".

use crate::nic_health::NicHealthParams;
use crate::regroup::RegroupParams;
use crate::rpc::RetryPolicy;
use crate::slow_detect::SlowDetectParams;
use phoenix_sim::SimDuration;

/// Fault-tolerance timing parameters (paper Sec 5.1).
#[derive(Clone, Debug)]
pub struct FtParams {
    /// Watch-daemon / meta-group / service heartbeat interval.
    /// 30 s in the paper's testbed.
    pub hb_interval: SimDuration,
    /// Extra slack past the interval before a heartbeat counts as missed
    /// (absorbs network latency and jitter).
    pub hb_grace: SimDuration,
    /// How often a GSD scans its heartbeat deadlines.
    pub check_interval: SimDuration,
    /// Probe rounds used to confirm a process failure (node answers, the
    /// daemon does not).
    pub probe_rounds: u32,
    /// Spacing between probe rounds. `probe_rounds × spacing` reproduces
    /// the paper's ≈0.29 s process-fault diagnosing time.
    pub probe_round_interval: SimDuration,
    /// Silence window after which a WD-monitored node is declared dead
    /// (Table 1 node row: 2 s).
    pub wd_node_probe_timeout: SimDuration,
    /// Silence window for a meta-group neighbour's node (Tables 2–3 node
    /// rows: 0.3 s — the ring observer already has corroborating state).
    pub meta_node_probe_timeout: SimDuration,
    /// Per-NIC heartbeat pattern analysis cost (Tables 1–2 network rows:
    /// 348 µs).
    pub nic_analysis_delay: SimDuration,
    /// Same-host failure classification cost (Table 3 process row: 12 µs).
    pub local_diag_delay: SimDuration,
    /// Cost to restart a watch daemon in place (≈0 in Table 1).
    pub wd_restart_cost: SimDuration,
    /// Cost to restart a GSD in place (Table 2 process row: 2.03 s).
    pub gsd_restart_cost: SimDuration,
    /// Cost to migrate a GSD (and its partition services) to a backup node
    /// (Tables 2–3 node rows: 2.95 s).
    pub gsd_migrate_cost: SimDuration,
    /// Cost to restart the event service in place (Table 3: 0.12 s).
    pub es_restart_cost: SimDuration,
    /// Cost to restart a data-bulletin instance in place.
    pub db_restart_cost: SimDuration,
    /// Cost to restart a checkpoint instance in place.
    pub ck_restart_cost: SimDuration,
    /// Cost to restart a user-environment service (PWS scheduler) in place.
    pub userenv_restart_cost: SimDuration,
    /// How many consecutive heartbeats must go missing (on every NIC)
    /// before the GSD suspects a peer. 1 reproduces the paper's
    /// single-deadline detector exactly; loss-tolerant profiles raise it so
    /// one dropped beat never starts a diagnosis.
    pub suspect_beats: u32,
    /// Re-check heartbeat freshness when a probe concludes and abort the
    /// diagnosis if beats resumed meanwhile (they were merely lost, not
    /// stopped). Off by default to keep the paper pipeline byte-identical.
    pub probe_abort_on_fresh: bool,
    /// Per-NIC health scoring and adaptive routing (heartbeat acks, EWMA
    /// scores, best-NIC preference for probes/meta-ring traffic). Disabled
    /// by default so the paper pipeline stays byte-identical.
    pub nic: NicHealthParams,
    /// MSCS-style quorum regroup (epochs, majority quorum, minority
    /// freeze). Disabled by default so the paper pipeline stays
    /// byte-identical; partition-tolerant profiles opt in.
    pub regroup: RegroupParams,
    /// Fail-slow detection (per-peer RTT scores, three-state verdict,
    /// hysteretic quarantine). Disabled by default so the fail-stop
    /// pipeline stays byte-identical; `fast_slow()` opts in.
    pub slow: SlowDetectParams,
}

impl Default for FtParams {
    fn default() -> Self {
        FtParams {
            hb_interval: SimDuration::from_secs(30),
            hb_grace: SimDuration::from_millis(200),
            check_interval: SimDuration::from_millis(100),
            probe_rounds: 3,
            probe_round_interval: SimDuration::from_millis(95),
            wd_node_probe_timeout: SimDuration::from_secs(2),
            meta_node_probe_timeout: SimDuration::from_millis(295),
            nic_analysis_delay: SimDuration::from_micros(348),
            local_diag_delay: SimDuration::from_micros(12),
            wd_restart_cost: SimDuration::ZERO,
            gsd_restart_cost: SimDuration::from_millis(2020),
            gsd_migrate_cost: SimDuration::from_millis(2930),
            es_restart_cost: SimDuration::from_millis(118),
            db_restart_cost: SimDuration::from_millis(150),
            ck_restart_cost: SimDuration::from_millis(150),
            userenv_restart_cost: SimDuration::from_millis(200),
            suspect_beats: 1,
            probe_abort_on_fresh: false,
            nic: NicHealthParams::default(),
            regroup: RegroupParams::default(),
            slow: SlowDetectParams::default(),
        }
    }
}

impl FtParams {
    /// A fast profile for unit tests: second-scale heartbeats so tests run
    /// through failure→recovery cycles in little virtual time.
    pub fn fast() -> FtParams {
        FtParams {
            hb_interval: SimDuration::from_secs(1),
            hb_grace: SimDuration::from_millis(50),
            check_interval: SimDuration::from_millis(25),
            probe_rounds: 2,
            probe_round_interval: SimDuration::from_millis(20),
            wd_node_probe_timeout: SimDuration::from_millis(200),
            meta_node_probe_timeout: SimDuration::from_millis(100),
            ..FtParams::default()
        }
    }

    /// Fast profile hardened for a lossy network: suspicion only after
    /// several silent beats, and probes that abort when beats resume.
    pub fn fast_lossy() -> FtParams {
        FtParams {
            suspect_beats: 3,
            probe_abort_on_fresh: true,
            nic: NicHealthParams::lossy(),
            ..FtParams::fast()
        }
    }

    /// Fast lossy profile with quorum regroup enabled: the configuration
    /// for every partition-fault scenario. The regroup round must conclude
    /// well before a suspicion ripens into a takeover, so a minority side
    /// freezes before the majority elects a replacement leader.
    pub fn fast_partition() -> FtParams {
        FtParams {
            regroup: RegroupParams::fast(),
            ..FtParams::fast_lossy()
        }
    }

    /// Partition profile plus the weighted/witness vote table and the
    /// adaptive takeover delay: even splits keep exactly one side live.
    pub fn fast_quorum() -> FtParams {
        FtParams {
            regroup: RegroupParams::quorum(),
            ..FtParams::fast_lossy()
        }
    }

    /// Quorum profile plus fail-slow detection: per-peer RTT scoring,
    /// hysteretic quarantine and the slow-leader handoff. Runs with the
    /// full regroup/vote machinery on so "slow ≠ down" is tested against
    /// the takeover licence, not in isolation.
    pub fn fast_slow() -> FtParams {
        FtParams {
            slow: SlowDetectParams::slow(),
            ..FtParams::fast_quorum()
        }
    }
}

/// All kernel parameters.
#[derive(Clone, Debug)]
pub struct KernelParams {
    pub ft: FtParams,
    /// How often detectors sample resources and export to the bulletin.
    pub detector_sample: SimDuration,
    /// How long a bulletin waits for federation peers before answering a
    /// query with `complete = false`.
    pub fed_query_timeout: SimDuration,
    /// CPU fraction above which the detector publishes a ResourceAlarm.
    pub alarm_cpu: f64,
    /// Baseline OS load on an idle node (CPU fraction).
    pub base_cpu_load: f64,
    /// Baseline memory footprint of the OS (fraction).
    pub base_mem_load: f64,
    /// Baseline swap usage (fraction); the paper's Fig 6 snapshot shows
    /// 0.72 % average swap.
    pub base_swap_load: f64,
    /// Retry policy for kernel request/reply paths (config, checkpoint,
    /// bulletin federation, event registration). The default policy makes
    /// no retries, preserving the original single-shot behaviour.
    pub rpc: RetryPolicy,
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams {
            ft: FtParams::default(),
            detector_sample: SimDuration::from_secs(10),
            fed_query_timeout: SimDuration::from_millis(500),
            alarm_cpu: 0.95,
            base_cpu_load: 0.02,
            base_mem_load: 0.15,
            base_swap_load: 0.0072,
            rpc: RetryPolicy::none(),
        }
    }
}

impl KernelParams {
    /// Fast profile for unit tests.
    pub fn fast() -> KernelParams {
        KernelParams {
            ft: FtParams::fast(),
            detector_sample: SimDuration::from_millis(500),
            fed_query_timeout: SimDuration::from_millis(100),
            ..KernelParams::default()
        }
    }

    /// Fast profile hardened for a lossy network: K-of-N suspicion,
    /// probe-freshness aborts and bounded retries with backoff on every
    /// request/reply path.
    pub fn fast_lossy() -> KernelParams {
        KernelParams {
            ft: FtParams::fast_lossy(),
            rpc: RetryPolicy::lossy(),
            ..KernelParams::fast()
        }
    }

    /// Lossy profile plus MSCS-style quorum regroup: partition faults
    /// freeze the minority side instead of letting it elect a leader.
    pub fn fast_partition() -> KernelParams {
        KernelParams {
            ft: FtParams::fast_partition(),
            rpc: RetryPolicy::lossy(),
            ..KernelParams::fast()
        }
    }

    /// Partition profile plus weighted/witness quorum and adaptive
    /// takeover delay: the configuration for every even-split scenario.
    pub fn fast_quorum() -> KernelParams {
        KernelParams {
            ft: FtParams::fast_quorum(),
            rpc: RetryPolicy::lossy(),
            ..KernelParams::fast()
        }
    }

    /// Quorum profile plus fail-slow detection: the configuration for
    /// every gray-failure scenario.
    pub fn fast_slow() -> KernelParams {
        KernelParams {
            ft: FtParams::fast_slow(),
            rpc: RetryPolicy::lossy(),
            ..KernelParams::fast()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let p = FtParams::default();
        assert_eq!(p.hb_interval, SimDuration::from_secs(30));
        assert_eq!(p.wd_node_probe_timeout, SimDuration::from_secs(2));
        // Process diagnosis ≈ probe_rounds × interval ≈ 0.29 s.
        let diag = p.probe_round_interval * p.probe_rounds as u64;
        assert!(diag.as_secs_f64() > 0.25 && diag.as_secs_f64() < 0.33);
    }

    #[test]
    fn fast_profile_is_faster() {
        let f = FtParams::fast();
        assert!(f.hb_interval < FtParams::default().hb_interval);
        assert!(f.wd_node_probe_timeout < FtParams::default().wd_node_probe_timeout);
    }

    #[test]
    fn defaults_disable_loss_hardening() {
        // The paper pipeline must stay byte-identical: no K-of-N widening,
        // no probe aborts, no retries unless a lossy profile opts in.
        let p = KernelParams::default();
        assert_eq!(p.ft.suspect_beats, 1);
        assert!(!p.ft.probe_abort_on_fresh);
        assert!(!p.rpc.retries_enabled());
        assert!(!p.ft.nic.enabled, "NIC-health layer must default off");
        assert!(!p.ft.regroup.enabled, "regroup layer must default off");
        assert!(!KernelParams::fast().ft.nic.enabled);
        assert!(!KernelParams::fast().ft.regroup.enabled);
        let l = KernelParams::fast_lossy();
        assert!(l.ft.suspect_beats > 1);
        assert!(l.ft.probe_abort_on_fresh);
        assert!(l.rpc.retries_enabled());
        assert!(l.ft.nic.enabled);
        assert!(!l.ft.regroup.enabled, "lossy profile stays regroup-free");
        let q = KernelParams::fast_partition();
        assert!(q.ft.regroup.enabled);
        assert!(q.ft.nic.enabled, "partition profile keeps loss hardening");
        assert!(q.rpc.retries_enabled());
        // The vote table and adaptive delay are a further opt-in layer:
        // the partition profile (and every pinned seed that uses it)
        // must stay on plain count majority with the fixed delay.
        assert!(!q.ft.regroup.votes.enabled, "partition profile: no votes");
        assert!(!q.ft.regroup.adaptive_delay, "partition profile: fixed delay");
        let w = KernelParams::fast_quorum();
        assert!(w.ft.regroup.enabled);
        assert!(w.ft.regroup.votes.enabled);
        assert!(w.ft.regroup.adaptive_delay);
        assert!(w.ft.nic.enabled, "quorum profile keeps loss hardening");
        assert!(w.rpc.retries_enabled());
        // The fail-slow layer is a further opt-in: every profile below
        // fast_slow() (and every pinned seed using them) stays fail-stop.
        assert!(!p.ft.slow.enabled, "fail-slow layer must default off");
        assert!(!KernelParams::fast().ft.slow.enabled);
        assert!(!l.ft.slow.enabled);
        assert!(!q.ft.slow.enabled);
        assert!(!w.ft.slow.enabled, "quorum profile stays fail-stop");
        let s = KernelParams::fast_slow();
        assert!(s.ft.slow.enabled);
        assert!(s.ft.regroup.enabled, "slow profile keeps quorum regroup");
        assert!(s.ft.regroup.votes.enabled);
        assert!(s.ft.nic.enabled, "slow profile keeps loss hardening");
        assert!(s.rpc.retries_enabled());
    }
}
