//! Identifiers for simulated hardware and software entities.

use std::fmt;

/// Identifies a physical node in the simulated cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Index of a network interface on a node. The Dawning 4000A nodes in the
/// paper each had three networks, so the default cluster uses NICs 0..3.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NicId(pub u8);

impl fmt::Debug for NicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nic{}", self.0)
    }
}

impl fmt::Display for NicId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nic{}", self.0)
    }
}

/// Identifies a simulated process (an actor instance). Process ids are
/// unique for the lifetime of a simulation and never reused, so a stale
/// `Pid` can never be confused with a restarted service.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(pub u64);

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Token identifying a timer registration; returned by `Ctx::set_timer` and
/// passed back to `Actor::on_timer`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TimerId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(7).to_string(), "node7");
        assert_eq!(NicId(2).to_string(), "nic2");
        assert_eq!(Pid(99).to_string(), "pid99");
    }

    #[test]
    fn node_index_round_trip() {
        assert_eq!(NodeId(41).index(), 41);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId(1) < NodeId(2));
        assert!(Pid(1) < Pid(2));
        assert!(NicId(0) < NicId(1));
    }
}
