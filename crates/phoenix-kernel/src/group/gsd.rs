//! The Group Service Daemon (GSD).
//!
//! Paper Sec 4.3–4.4. One GSD runs per partition (on the partition's
//! server node) and is the keystone of both scalability and fault
//! tolerance:
//!
//! * **WD monitoring** — watch daemons on every partition node heartbeat
//!   over all NICs; the GSD analyzes the per-NIC pattern to detect and
//!   diagnose process, node, and network failures (Table 1).
//! * **Meta-group ring** — the GSDs of all partitions form a ring-structured
//!   meta-group (paper Fig 3). Each member heartbeats its successor over
//!   all NICs; the successor of a failed member diagnoses the failure and
//!   takes over: restarting the GSD in place (process fault) or migrating
//!   it — with its partition services — to a backup node (node fault).
//!   The first member is the Leader, the second the Princess; when the
//!   Leader fails the Princess takes over, and so on down the ring.
//! * **Service supervision** — per-partition services (event, bulletin,
//!   checkpoint, user-environment services) register with their GSD and
//!   heartbeat it; the GSD restarts failed members from the factory
//!   registry, after which they restore state from the checkpoint service
//!   (paper Fig 4).

use crate::group::registry::{kernel_factory_key, RespawnArgs, SharedRegistry};
use crate::group::wd::Wd;
use crate::nic_health::{HealthTransition, NicHealth};
use crate::params::KernelParams;
use crate::regroup::{AckInfo, Regroup, Verdict};
use crate::slow_detect::{SlowDetect, SlowTransition, Verdict as SlowVerdict};
use phoenix_proto::{
    CheckpointData, ClusterTopology, Event, EventPayload, EventType, KernelMsg, MemberInfo,
    NodeServices, PartitionId, RequestId, ServiceKind,
};
use phoenix_sim::{
    Actor, Ctx, Diagnosis, FaultTarget, NicId, NodeId, Pid, RecoveryAction, SimTime, TraceEvent,
};
use std::collections::{BTreeSet, HashMap};

const TOK_SCAN: u64 = 1;
const TOK_TICK: u64 = 2;
/// Retry timer for the directory query a respawned GSD sends to config.
const TOK_DIR_RETRY: u64 = 3;
/// Regroup round window: when it fires, the round concludes with
/// whatever acks arrived.
const TOK_REGROUP: u64 = 4;
/// Heal-probe cadence while frozen: opens a fresh regroup round.
const TOK_REGROUP_RETRY: u64 = 5;
/// Ticks over which a changed directory entry is re-asserted to config
/// under a retrying policy (~2 s at the fast heartbeat interval — enough
/// to straddle any loss burst a chaos schedule can generate).
const DIR_RESEND_TICKS: u32 = 20;

/// Telemetry key for a `gsd.takeover` mark/measure/unmark. Scoped by the
/// observing pid, the partition, AND a per-plan sequence number: one
/// leader can have two takeover plans for the same partition in flight
/// (a diagnosis-driven migrate racing its own rescue sweep), and a plan
/// that aborts its spawn must not retract the other plan's pending mark —
/// that would silently swallow the surviving plan's measure. The mark and
/// its matching measure/unmark always happen on the same actor, so pid
/// scoping is safe; the plan id travels inside `RestartWhat`.
fn takeover_key(observer: Pid, partition: PartitionId, plan: u64) -> u64 {
    phoenix_telemetry::key(&[3, partition.0 as u64, observer.0, plan])
}
const OP_BASE: u64 = 100;

/// A heartbeat seq at or below the last seen one within this window is a
/// duplicate (network-level duplication or reordering) and is dropped. A
/// backward jump of the window or more means the sender restarted and its
/// counter reset — accept and resynchronize.
const SEQ_RESTART_WINDOW: u64 = 64;

/// Duplicate / stale-reorder check shared by WD and meta heartbeats.
fn is_dup_seq(last: u64, seq: u64) -> bool {
    seq <= last && last - seq < SEQ_RESTART_WINDOW
}

/// Per-NIC loss evidence from a heartbeat seq: how many beats on this
/// interface silently died between the previous one and this one. Zero for
/// duplicates, restarts (backward jumps past the window) and absurd
/// forward jumps (a long partition is one fault, not `gap` loss events —
/// the EWMA cap bounds it further, this bounds the loop).
fn seq_gap(last: u64, seq: u64) -> u64 {
    if last == 0 || seq <= last {
        return 0;
    }
    let gap = seq - last - 1;
    if gap >= SEQ_RESTART_WINDOW {
        return 0;
    }
    gap
}

/// Fixed-literal gauge keys (the telemetry registry requires `&'static
/// str`); clusters model up to a handful of parallel networks.
fn nic_health_gauge(nic: NicId) -> &'static str {
    match nic.0 {
        0 => "nic.health.nic0",
        1 => "nic.health.nic1",
        2 => "nic.health.nic2",
        _ => "nic.health.nicN",
    }
}

/// Per-node fail-slow verdict gauges, exported by the meta-group leader
/// (0 = healthy, 1 = slow, 2 = dead). Fixed literals for the same reason
/// as the NIC gauges; simulated clusters use small node ids.
fn slow_verdict_gauge(node: NodeId) -> &'static str {
    match node.0 {
        0 => "slow.verdict.node0",
        1 => "slow.verdict.node1",
        2 => "slow.verdict.node2",
        3 => "slow.verdict.node3",
        4 => "slow.verdict.node4",
        5 => "slow.verdict.node5",
        6 => "slow.verdict.node6",
        7 => "slow.verdict.node7",
        _ => "slow.verdict.nodeN",
    }
}

/// Per-node slowness-score gauges (smoothed RTT over baseline; 1.0 = at
/// baseline), exported alongside the verdicts.
fn slow_score_gauge(node: NodeId) -> &'static str {
    match node.0 {
        0 => "slow.score.node0",
        1 => "slow.score.node1",
        2 => "slow.score.node2",
        3 => "slow.score.node3",
        4 => "slow.score.node4",
        5 => "slow.score.node5",
        6 => "slow.score.node6",
        7 => "slow.score.node7",
        _ => "slow.score.nodeN",
    }
}

/// How this GSD instance came to exist.
enum GsdInit {
    /// Spawned by the boot driver; wiring arrives in the `Boot` message.
    Boot,
    /// Spawned by a ring neighbour taking over a failed member.
    Respawn {
        hint: MemberInfo,
        members: Vec<MemberInfo>,
        /// The rescuer's membership epoch at spawn time. The respawn
        /// adopts it so its own announcements are credible: a rescued
        /// partition that sorts to ring position 0 *is* the leader and
        /// broadcasts directly — from epoch 0 every peer would discard
        /// the broadcast as stale and re-rescue forever.
        epoch: u64,
        action: RecoveryAction,
    },
}

/// Per-node watch-daemon tracking state.
struct WdTrack {
    wd: Pid,
    last: Vec<SimTime>,
    /// Highest heartbeat seq seen per NIC (duplicate suppression).
    last_seq: Vec<u64>,
    nic_down: Vec<bool>,
    node_down: bool,
    probing: Option<u64>,
}

impl WdTrack {
    fn new(wd: Pid, nics: usize, now: SimTime) -> WdTrack {
        WdTrack {
            wd,
            last: vec![now; nics],
            last_seq: vec![0; nics],
            nic_down: vec![false; nics],
            node_down: false,
            probing: None,
        }
    }
}

/// Supervised-service tracking state.
struct SvcTrack {
    kind: ServiceKind,
    factory: String,
    last: SimTime,
}

/// Ring-predecessor tracking state.
struct PredTrack {
    member: MemberInfo,
    last: Vec<SimTime>,
    /// Highest ring-heartbeat seq seen per NIC (duplicate suppression).
    last_seq: Vec<u64>,
    nic_down: Vec<bool>,
    probing: Option<u64>,
    down: bool,
}

/// An in-flight liveness probe session.
struct ProbeSession {
    kind: ProbeKind,
    target_ppm: Pid,
    rounds_sent: u32,
    responses: u32,
    active: bool,
    /// When the most recent probe round was sent; each response consumes
    /// it as an RTT sample for the fail-slow detector.
    last_round_at: Option<SimTime>,
    /// Telemetry span covering the whole session (open → resolution);
    /// aborted (not closed) if this GSD dies mid-probe.
    span: phoenix_telemetry::SpanId,
}

#[derive(Clone, Copy)]
enum ProbeKind {
    /// Diagnosing a silent watch daemon on a partition node.
    Wd(NodeId),
    /// Diagnosing a silent ring predecessor.
    Meta(PartitionId),
}

/// Work scheduled for a later virtual instant.
enum DelayedOp {
    ProbeRound(u64),
    ProbeTimeout(u64),
    /// Network-failure analysis completes (per-NIC heartbeat pattern).
    NicDiag {
        node: NodeId,
        nic: NicId,
    },
    /// Local (same-host) failure classification completes.
    LocalDiagSvc {
        pid: Pid,
        kind: ServiceKind,
        factory: String,
    },
    /// Own-NIC introspection classification completes.
    LocalDiagNic { nic: NicId },
    /// Execute a scheduled restart/migration.
    Restart(RestartWhat),
}

enum RestartWhat {
    Wd(NodeId),
    Svc {
        kind: ServiceKind,
        factory: String,
    },
    GsdInPlace {
        hint: MemberInfo,
        members: Vec<MemberInfo>,
        epoch: u64,
        plan: u64,
    },
    GsdMigrate {
        hint: MemberInfo,
        members: Vec<MemberInfo>,
        epoch: u64,
        to: NodeId,
        plan: u64,
    },
    /// Leader safety net: a partition has had no meta-group member for a
    /// whole tick — whoever planned its takeover died before executing
    /// it. Decide restart-vs-migrate at fire time.
    GsdRescue { partition: PartitionId, plan: u64 },
}

/// The GSD actor.
pub struct Gsd {
    partition: PartitionId,
    params: KernelParams,
    topology: ClusterTopology,
    config: Pid,
    registry: SharedRegistry,
    init: Option<GsdInit>,

    local: MemberInfo,
    members: Vec<MemberInfo>,
    epoch: u64,
    node_daemons: HashMap<NodeId, NodeServices>,
    /// Watch-daemon pids for *every* cluster node (not just our own
    /// partition's): regroup rounds probe a silent partition's home-node
    /// WDs for dead-GSD testimony. Seeded from the boot/respawn
    /// directory; foreign entries refreshed by config's
    /// `DirectoryUpdateNode` fan-out (vote-table profiles only).
    cluster_wds: HashMap<NodeId, Pid>,

    wd_tracks: HashMap<NodeId, WdTrack>,
    svc_tracks: HashMap<Pid, SvcTrack>,
    pred: Option<PredTrack>,
    my_nic_known: Vec<bool>,
    /// EWMA delivery-health per parallel network, fed by heartbeat seq
    /// gaps (WD and meta-ring). Inert unless `params.ft.nic.enabled`.
    nic_health: NicHealth,

    probes: HashMap<u64, ProbeSession>,
    ops: HashMap<u64, DelayedOp>,
    next_id: u64,
    last_role: &'static str,
    monitoring: bool,
    recovery: Option<RecoveryAction>,
    supervision_dirty: bool,
    /// Last known member info per partition (rescue hints).
    last_known: HashMap<PartitionId, MemberInfo>,
    /// Partitions the leader is currently rescuing.
    rescuing: std::collections::HashSet<PartitionId>,
    /// Monotone id for takeover plans; keys their telemetry marks so
    /// overlapping plans for one partition cannot clobber each other.
    takeover_seq: u64,
    /// Re-announce ourselves to the leader at the next tick (set when a
    /// membership broadcast was missing us).
    needs_rejoin: bool,
    /// Ring-heartbeat sequence counter (bumped once per tick; carried in
    /// every `MetaHeartbeat` so successors can discard duplicates).
    hb_seq: u64,
    /// Send attempts for the respawn-time directory query (retried with
    /// backoff when the retry policy allows — a lost query or reply must
    /// not strand the takeover forever).
    dir_attempts: u32,
    /// Node-daemon directory entries this GSD changed (WD restarts),
    /// re-asserted to config for a bounded number of ticks under a
    /// retrying policy: the `DirectoryUpdateNode` push is fire-and-forget,
    /// and a lost one would leave the config directory pointing at a dead
    /// pid forever. Entries are dropped when config pushes a fresher one.
    dir_resend_nodes: HashMap<NodeId, (NodeServices, u32)>,
    /// Remaining ticks over which our own `DirectoryUpdate` (membership
    /// announce after a takeover/migration) is re-asserted to config.
    dir_resend_local: u32,
    /// MSCS-style quorum regroup state (inert unless
    /// `params.ft.regroup.enabled`).
    regroup: Regroup,
    /// Telemetry span covering a frozen episode (freeze → thaw); aborted
    /// if this GSD dies frozen (e.g. yields to its replacement).
    frozen_span: Option<phoenix_telemetry::SpanId>,
    /// Span covering the currently collecting regroup round — a child of
    /// `frozen_span` while frozen, so a post-mortem span tree shows the
    /// heal-probing rounds nested inside the frozen episode.
    round_span: Option<phoenix_telemetry::SpanId>,
    /// Latency-aware fail-slow detector: per-peer RTT EWMA + deviation
    /// scores from slow pings, probe rounds, and heartbeat echoes. Inert
    /// unless `params.ft.slow.enabled`.
    slow: SlowDetect,
    /// Outstanding slow pings: seq → (target node, send time).
    slow_ping_sent: HashMap<u64, (NodeId, SimTime)>,
    slow_ping_seq: u64,
    /// Last time each peer answered *anything* RTT-measurable. A Slow
    /// verdict only vetoes a dead diagnosis while this is fresh — once
    /// pongs stop, the veto lapses and fail-stop diagnosis proceeds.
    slow_last_seen: HashMap<NodeId, SimTime>,
    /// Leader-maintained quarantine set (partitions whose server node is
    /// diagnosed Slow): demoted to the ring tail, skipped for new-service
    /// placement. Adopted by everyone via `MetaQuarantine`.
    quarantined: BTreeSet<PartitionId>,
    /// Epoch guard for `MetaQuarantine` broadcasts (stale ones ignored).
    quarantine_epoch: u64,
    /// Quarantine candidates from the previous maintenance tick. An
    /// addition must survive two consecutive ticks: when this observer is
    /// the degraded one, its Slow verdicts cross their streaks a ping
    /// round apart, so at the first tick the strict-majority `gray_self`
    /// veto can lag the earliest verdicts — one tick later the inversion
    /// is complete and the veto holds. A healthy leader watching a
    /// genuinely slow member sees a stable candidate both ticks.
    slow_pending: BTreeSet<PartitionId>,
    /// Set while this GSD is handing its partition to a healthier node
    /// (slow-drain): suppresses double-spawns and gates orphan-service
    /// cleanup when the replacement's membership arrives.
    draining: bool,
    /// Set on a drain-spawned replacement: this instance is already the
    /// product of a slow-drain, so a quarantine entry that merely has not
    /// warmed out yet must not bounce it to a third node. Cleared when
    /// the partition leaves the quarantine set.
    drained: bool,
}

impl Gsd {
    /// Boot-time GSD.
    pub fn new(
        partition: PartitionId,
        params: KernelParams,
        topology: ClusterTopology,
        config: Pid,
        registry: SharedRegistry,
    ) -> Self {
        Self::build(partition, params, topology, config, registry, GsdInit::Boot)
    }

    /// A GSD spawned by a ring neighbour to replace a failed member.
    /// `hint` is the failed member's info (for an in-place restart its
    /// service pids are still valid); `members` is the takeover-time
    /// membership snapshot (failed member already removed).
    pub fn respawn(
        partition: PartitionId,
        params: KernelParams,
        topology: ClusterTopology,
        config: Pid,
        registry: SharedRegistry,
        hint: MemberInfo,
        members: Vec<MemberInfo>,
        epoch: u64,
        action: RecoveryAction,
    ) -> Self {
        Self::build(
            partition,
            params,
            topology,
            config,
            registry,
            GsdInit::Respawn {
                hint,
                members,
                epoch,
                action,
            },
        )
    }

    fn build(
        partition: PartitionId,
        params: KernelParams,
        topology: ClusterTopology,
        config: Pid,
        registry: SharedRegistry,
        init: GsdInit,
    ) -> Self {
        let nic_health = NicHealth::new(params.ft.nic.clone(), 0);
        let regroup = Regroup::new(params.ft.regroup.clone());
        let slow = SlowDetect::new(params.ft.slow.clone());
        Gsd {
            partition,
            params,
            topology,
            config,
            registry,
            init: Some(init),
            local: MemberInfo {
                partition,
                node: NodeId(0),
                gsd: Pid(0),
                event: Pid(0),
                bulletin: Pid(0),
                checkpoint: Pid(0),
                host_ppm: Pid(0),
            },
            members: Vec::new(),
            epoch: 0,
            node_daemons: HashMap::new(),
            cluster_wds: HashMap::new(),
            wd_tracks: HashMap::new(),
            svc_tracks: HashMap::new(),
            pred: None,
            my_nic_known: Vec::new(),
            nic_health,
            probes: HashMap::new(),
            ops: HashMap::new(),
            next_id: 0,
            last_role: "",
            monitoring: false,
            recovery: None,
            supervision_dirty: false,
            last_known: HashMap::new(),
            rescuing: std::collections::HashSet::new(),
            takeover_seq: 0,
            needs_rejoin: false,
            hb_seq: 0,
            dir_attempts: 0,
            dir_resend_nodes: HashMap::new(),
            dir_resend_local: 0,
            regroup,
            frozen_span: None,
            round_span: None,
            slow,
            slow_ping_sent: HashMap::new(),
            slow_ping_seq: 0,
            slow_last_seen: HashMap::new(),
            quarantined: BTreeSet::new(),
            quarantine_epoch: 0,
            slow_pending: BTreeSet::new(),
            draining: false,
            drained: false,
        }
    }

    // ---- identity & ring geometry ---------------------------------------

    fn sorted(&mut self) {
        // Quarantined partitions sink to the ring tail so they can never
        // hold leader (index 0) or princess (index 1) while degraded.
        // With an empty set this is the classic lowest-partition order.
        let q = self.quarantined.clone();
        self.members
            .sort_by_key(|m| (q.contains(&m.partition), m.partition));
        self.members.dedup_by_key(|m| m.partition);
    }

    fn my_index(&self) -> Option<usize> {
        self.members
            .iter()
            .position(|m| m.partition == self.partition)
    }

    /// The ring successor (whom I heartbeat).
    fn successor(&self) -> Option<MemberInfo> {
        let i = self.my_index()?;
        let n = self.members.len();
        if n < 2 {
            return None;
        }
        Some(self.members[(i + 1) % n])
    }

    /// The ring predecessor (whom I monitor).
    fn predecessor(&self) -> Option<MemberInfo> {
        let i = self.my_index()?;
        let n = self.members.len();
        if n < 2 {
            return None;
        }
        Some(self.members[(i + n - 1) % n])
    }

    /// "Leader" / "princess" / "member" per ring position (paper Fig 3).
    fn role(&self) -> &'static str {
        match self.my_index() {
            Some(0) => "leader",
            Some(1) => "princess",
            Some(_) => "member",
            None => "orphan",
        }
    }

    fn leader(&self) -> Option<MemberInfo> {
        self.members.first().copied()
    }

    // ---- read-only introspection (chaos / invariant harnesses) ----------
    //
    // Reached from outside the simulation through
    // `World::actor_as::<Gsd>(pid)`; nothing here mutates state.

    /// Partition this GSD serves.
    pub fn partition_id(&self) -> PartitionId {
        self.partition
    }

    /// Current ring role: "leader" / "princess" / "member" / "orphan" —
    /// or "frozen" while this GSD sits on a minority island. A frozen
    /// ex-leader is *not* a leader: the whole point of the regroup
    /// protocol is that only the majority side may report one.
    pub fn role_name(&self) -> &'static str {
        if self.regroup.frozen() {
            return "frozen";
        }
        self.role()
    }

    /// Whether this GSD froze itself after losing quorum.
    pub fn quorum_frozen(&self) -> bool {
        self.regroup.frozen()
    }

    /// Regroup epoch (number of concluded regroup rounds).
    pub fn regroup_epoch(&self) -> u64 {
        self.regroup.epoch()
    }

    /// Partitions in this GSD's current membership view, sorted.
    pub fn meta_view(&self) -> Vec<PartitionId> {
        let mut v: Vec<PartitionId> = self.members.iter().map(|m| m.partition).collect();
        v.sort();
        v
    }

    /// The partition this GSD believes leads the meta-group.
    pub fn leader_view(&self) -> Option<PartitionId> {
        self.leader().map(|m| m.partition)
    }

    /// Current membership epoch.
    pub fn meta_epoch(&self) -> u64 {
        self.epoch
    }

    /// Current witness view when the vote table is active:
    /// `(witness partition, witness epoch)`. Chaos invariants and the
    /// quorum bench read it to evaluate the weighted win rule the same
    /// way the GSDs themselves do.
    pub fn witness_view(&self) -> Option<(PartitionId, u64)> {
        self.regroup
            .witness()
            .map(|w| (w, self.regroup.witness_epoch()))
    }

    /// Effective takeover delay currently enforced by the regroup layer.
    pub fn effective_takeover_delay(&self) -> phoenix_sim::SimDuration {
        self.regroup.effective_takeover_delay()
    }

    /// Per-NIC EWMA health scores (all 1.0 when the layer is disabled).
    pub fn nic_health_scores(&self) -> Vec<f64> {
        (0..self.nic_health.nic_count())
            .map(|i| self.nic_health.score(NicId(i as u8)))
            .collect()
    }

    /// Which NICs this GSD has demoted (degraded, not down).
    pub fn nic_demoted(&self) -> Vec<bool> {
        (0..self.nic_health.nic_count())
            .map(|i| self.nic_health.is_demoted(NicId(i as u8)))
            .collect()
    }

    fn refresh_roles(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        self.sorted();
        phoenix_telemetry::gauge_set("gsd.meta_group.members", self.members.len() as f64);
        for m in &self.members {
            self.last_known.insert(m.partition, *m);
        }
        let present: std::collections::HashSet<PartitionId> =
            self.members.iter().map(|m| m.partition).collect();
        self.rescuing.retain(|p| !present.contains(p));
        let role = self.role();
        if role != self.last_role {
            self.last_role = role;
            ctx.trace(TraceEvent::RoleChange {
                pid: ctx.pid(),
                role,
            });
        }
        // Reset predecessor tracking if the predecessor changed.
        let pred = self.predecessor();
        let changed = match (&self.pred, &pred) {
            (Some(t), Some(p)) => t.member.gsd != p.gsd,
            (None, None) => false,
            _ => true,
        };
        if changed {
            self.pred = pred.map(|member| PredTrack {
                member,
                last: vec![ctx.now(); self.my_nic_known.len().max(1)],
                last_seq: vec![0; self.my_nic_known.len().max(1)],
                nic_down: vec![false; self.my_nic_known.len().max(1)],
                probing: None,
                down: false,
            });
        }
    }

    // ---- small utilities -------------------------------------------------

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn schedule(
        &mut self,
        ctx: &mut Ctx<'_, KernelMsg>,
        after: phoenix_sim::SimDuration,
        op: DelayedOp,
    ) {
        let id = self.fresh_id();
        self.ops.insert(id, op);
        ctx.set_timer(after, OP_BASE + id);
    }

    fn publish(&self, ctx: &mut Ctx<'_, KernelMsg>, etype: EventType, origin: NodeId, payload: EventPayload) {
        ctx.send(
            self.local.event,
            KernelMsg::EsPublish {
                event: Event::new(etype, origin, payload),
            },
        );
    }

    /// The healthiest interface usable toward `peer` (up at both ends), or
    /// `None` when the NIC-health layer is disabled — callers then fall
    /// back to `ctx.send`'s default first-up-NIC routing, keeping the
    /// paper pipeline byte-identical.
    fn best_nic_for(&self, ctx: &Ctx<'_, KernelMsg>, peer: NodeId) -> Option<NicId> {
        if !self.nic_health.enabled() {
            return None;
        }
        let own = ctx.node();
        self.nic_health
            .best_where(|nic| ctx.nic_is_up(own, nic) && ctx.nic_is_up(peer, nic))
    }

    /// Single-path control-plane send preferring the healthiest NIC.
    fn send_routed(&self, ctx: &mut Ctx<'_, KernelMsg>, to: Pid, peer: NodeId, msg: KernelMsg) {
        match self.best_nic_for(ctx, peer) {
            Some(nic) => ctx.send_via(to, nic, msg),
            None => ctx.send(to, msg),
        }
    }

    fn broadcast_meta(&self, ctx: &mut Ctx<'_, KernelMsg>, msg: KernelMsg) {
        for m in &self.members {
            if m.partition != self.partition {
                self.send_routed(ctx, m.gsd, m.node, msg.clone());
            }
        }
    }

    fn push_partition_view(&self, ctx: &mut Ctx<'_, KernelMsg>) {
        phoenix_telemetry::counter_add("gsd.partition_view.pushes", 1);
        let view = KernelMsg::PartitionView {
            members: self.members.clone(),
            local: self.local,
        };
        for pid in [self.local.event, self.local.bulletin, self.local.checkpoint] {
            if pid != Pid(0) {
                ctx.send(pid, view.clone());
            }
        }
        // Supervised user-environment services also get the view (in pid
        // order — send order must not follow HashMap order).
        let mut svc_pids: Vec<Pid> = self
            .svc_tracks
            .iter()
            .filter(|(_, t)| t.kind == ServiceKind::UserEnvironment)
            .map(|(&pid, _)| pid)
            .collect();
        svc_pids.sort_unstable();
        for pid in svc_pids {
            ctx.send(pid, view.clone());
        }
        if let Some(spec) = self.topology.partition(self.partition) {
            for node in spec.all_nodes() {
                if let Some(ns) = self.node_daemons.get(&node) {
                    ctx.send(ns.wd, view.clone());
                    ctx.send(ns.detector, view.clone());
                }
            }
        }
    }

    fn announce_membership_change(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        // Route the change through the leader (ourselves, perhaps).
        if let Some(leader) = self.leader() {
            if leader.partition == self.partition {
                self.epoch += 1;
                let msg = KernelMsg::MetaMembership {
                    epoch: self.epoch,
                    members: self.members.clone().into(),
                };
                self.broadcast_meta(ctx, msg);
            } else {
                self.send_routed(
                    ctx,
                    leader.gsd,
                    leader.node,
                    KernelMsg::MetaJoin { member: self.local },
                );
            }
        }
        ctx.send(
            self.config,
            KernelMsg::DirectoryUpdate {
                partition: self.partition,
                member: self.local,
            },
        );
        if self.params.rpc.retries_enabled() {
            self.dir_resend_local = DIR_RESEND_TICKS;
        }
        self.push_partition_view(ctx);
    }

    fn save_supervision(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        let entries: Vec<(String, Pid)> = self
            .svc_tracks
            .iter()
            .filter(|(_, t)| t.kind == ServiceKind::UserEnvironment)
            .map(|(&pid, t)| (t.factory.clone(), pid))
            .collect();
        ctx.send(
            self.local.checkpoint,
            KernelMsg::CkSave {
                service: ServiceKind::Group,
                partition: self.partition,
                data: CheckpointData::Supervision { entries },
            },
        );
        self.supervision_dirty = false;
    }

    // ---- wiring ----------------------------------------------------------

    /// Ask config for the current directory (respawn wiring). Under a
    /// retrying policy a lost query or reply re-sends with backoff —
    /// otherwise the takeover would stall forever on a single lost message.
    fn send_directory_query(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        // Under NIC-health routing each resend rotates one step down the
        // health ranking (same contract as `Retrier::nic_for_attempt`): a
        // query whose preferred path eats packets escapes to an independent
        // network instead of re-rolling the same dice.
        let via = if self.nic_health.enabled() && self.nic_health.nic_count() > 0 {
            let ranked = self.nic_health.ranked();
            Some(ranked[self.dir_attempts as usize % ranked.len()])
        } else {
            None
        };
        let query = KernelMsg::CfgQueryDirectory { req: RequestId(0) };
        match via {
            Some(nic) => ctx.send_via(self.config, nic, query),
            None => ctx.send(self.config, query),
        }
        self.dir_attempts += 1;
        if self.dir_attempts > 1 {
            phoenix_telemetry::counter_add("rpc.retries", 1);
        }
        if self.params.rpc.retries_enabled() {
            if let Some(delay) = self.params.rpc.delay(self.dir_attempts, ctx.rng()) {
                ctx.set_timer(delay, TOK_DIR_RETRY);
            } else if self.regroup.enabled() && self.init.is_some() {
                // Retry budget exhausted while still unwired. An island
                // split can out-last every bounded attempt, and a respawned
                // GSD that gives up on wiring is a permanent orphan — keep
                // asking at heartbeat cadence until the directory answers.
                ctx.set_timer(self.params.ft.hb_interval, TOK_DIR_RETRY);
            }
        }
    }

    fn wire_from_boot(&mut self, ctx: &mut Ctx<'_, KernelMsg>, dir: &phoenix_proto::ServiceDirectory) {
        if let Some(me) = dir.partition(self.partition) {
            self.local = *me;
            self.local.gsd = ctx.pid();
        }
        self.members = dir.partitions.clone();
        // Patch our own entry (directory was built before spawn order).
        for m in &mut self.members {
            if m.partition == self.partition {
                *m = self.local;
            }
        }
        self.ingest_node_daemons(dir.nodes.iter());
        self.finish_wiring(ctx);
    }

    fn ingest_node_daemons<'a, I: Iterator<Item = &'a NodeServices>>(&mut self, nodes: I) {
        let Some(spec) = self.topology.partition(self.partition) else {
            return;
        };
        let mine = spec.all_nodes();
        for ns in nodes {
            self.cluster_wds.insert(ns.node, ns.wd);
            if mine.contains(&ns.node) {
                self.node_daemons.insert(ns.node, *ns);
            }
        }
    }

    fn finish_wiring(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        // Quorum denominator: the *configured* partition set. The live
        // membership must not shrink the bar, or a minority island would
        // promote itself to "majority of what I can still see". This also
        // resolves the initial witness when the vote table is on.
        let parts: Vec<PartitionId> = self.topology.partitions.iter().map(|p| p.id).collect();
        self.regroup.set_partitions(&parts);
        let nics = ctx.nic_count(ctx.node());
        self.my_nic_known = (0..nics)
            .map(|i| ctx.nic_is_up(ctx.node(), NicId(i as u8)))
            .collect();
        if self.nic_health.nic_count() != nics {
            self.nic_health = NicHealth::new(self.params.ft.nic.clone(), nics);
        }
        if let Some(ns) = self.node_daemons.get(&ctx.node()) {
            self.local.host_ppm = ns.ppm;
        }
        self.local.node = ctx.node();

        // Initialize WD tracking for every partition node.
        let now = ctx.now();
        if let Some(spec) = self.topology.partition(self.partition).cloned() {
            for node in spec.all_nodes() {
                if let Some(ns) = self.node_daemons.get(&node) {
                    let nics = self.my_nic_known.len();
                    self.wd_tracks
                        .entry(node)
                        .or_insert_with(|| WdTrack::new(ns.wd, nics, now));
                }
            }
        }

        self.refresh_roles(ctx);
        self.monitoring = true;
        ctx.set_timer(self.params.ft.check_interval, TOK_SCAN);
        ctx.set_timer(self.params.ft.hb_interval, TOK_TICK);
        // Register as an event supplier (fault/recovery events).
        ctx.send(
            self.local.event,
            KernelMsg::EsRegisterSupplier {
                supplier: ctx.pid(),
                types: vec![
                    EventType::NodeFault,
                    EventType::NodeRecovery,
                    EventType::NetworkFault,
                    EventType::NetworkRecovery,
                    EventType::NetworkDegraded,
                    EventType::ServiceFault,
                    EventType::ServiceRecovery,
                ],
            },
        );
        // Announce initial ring heartbeat immediately so successors have a
        // fresh baseline.
        self.send_meta_heartbeats(ctx);
    }

    fn wire_from_respawn(&mut self, ctx: &mut Ctx<'_, KernelMsg>, dir: &phoenix_proto::ServiceDirectory) {
        let Some(GsdInit::Respawn {
            hint,
            members,
            epoch,
            action,
        }) = self.init.take()
        else {
            return;
        };
        self.ingest_node_daemons(dir.nodes.iter());
        self.members = members;
        self.local = hint;
        self.local.gsd = ctx.pid();
        self.local.node = ctx.node();
        self.epoch = epoch;
        self.recovery = Some(action);

        // Migrated: the whole server node died, rebuild the partition
        // services here. An *in-place* rescue needs the same treatment
        // when the host crashed and rebooted between diagnosis and this
        // respawn — the old service pids died with the node even though
        // the node reports up again (a liveness check of co-resident
        // pids, not remote omniscience: in-place means they share our
        // node).
        let services_died = [hint.checkpoint, hint.event, hint.bulletin]
            .iter()
            .any(|&p| p == Pid(0) || !ctx.process_is_alive(p));
        let rebuild = matches!(action, RecoveryAction::Migrated(_)) || services_died;
        if rebuild {
            // Checkpoint first so the others can restore from it.
            let mut args = RespawnArgs {
                kind: ServiceKind::Checkpoint,
                partition: self.partition,
                node: ctx.node(),
                gsd: ctx.pid(),
                checkpoint: Pid(0),
                members: self.members.clone(),
                action,
                params: self.params.clone(),
            };
            let reg = self.registry.clone();
            let spawn_kind = |ctx: &mut Ctx<'_, KernelMsg>,
                                  args: &RespawnArgs,
                                  kind: ServiceKind|
             -> Pid {
                let key = kernel_factory_key(kind, args.partition);
                let mut args2 = args.clone();
                args2.kind = kind;
                match reg.borrow_mut().build(&key, &args2) {
                    Some(actor) => ctx.spawn(args2.node, actor),
                    None => Pid(0),
                }
            };
            let ck = spawn_kind(ctx, &args, ServiceKind::Checkpoint);
            args.checkpoint = ck;
            let es = spawn_kind(ctx, &args, ServiceKind::Event);
            let db = spawn_kind(ctx, &args, ServiceKind::DataBulletin);
            self.local.checkpoint = ck;
            self.local.event = es;
            self.local.bulletin = db;
        }

        // Upsert ourselves into the membership and tell the world.
        let old_gsd = hint.gsd;
        self.members.retain(|m| m.partition != self.partition);
        self.members.push(self.local);
        self.finish_wiring(ctx);
        // Adopt the surviving services: they are still bound to the GSD we
        // replace, and if that instance died *frozen* (yielded while a
        // regroup verdict had it suppressed) its last freeze fan-out is
        // stale forever — nobody else will ever thaw them. Rebind them to
        // us and clear the flag; we start unfrozen, and our own regroup
        // will re-freeze them if this island really has lost quorum.
        if !rebuild {
            self.push_partition_view(ctx);
            self.freeze_fanout(ctx, false);
        }
        self.announce_membership_change(ctx);
        // Make sure the instance we replace (if it is somehow still
        // running — false takeover) learns about us and yields.
        if old_gsd != ctx.pid() && old_gsd != Pid(0) {
            ctx.send(
                old_gsd,
                KernelMsg::MetaMembership {
                    epoch: self.epoch + 1,
                    members: self.members.clone().into(),
                },
            );
        }

        // Restore the user-environment supervision roster.
        ctx.send(
            self.local.checkpoint,
            KernelMsg::CkLoad {
                req: RequestId(0),
                service: ServiceKind::Group,
                partition: self.partition,
            },
        );

        if let Some(action) = self.recovery.take() {
            ctx.trace(TraceEvent::Recovered {
                target: FaultTarget::Process(ctx.pid()),
                action,
            });
            self.publish(
                ctx,
                EventType::ServiceRecovery,
                ctx.node(),
                EventPayload::Service(ServiceKind::Group, ctx.node()),
            );
        }
    }

    // ---- scanning --------------------------------------------------------

    fn stale(&self, now: SimTime, last: SimTime) -> bool {
        // K-of-N suspicion: with `suspect_beats` > 1 a peer is only
        // suspected after that many consecutive intervals of silence, so a
        // single heartbeat lost to the network never starts a diagnosis.
        let window = self.params.ft.hb_interval * self.params.ft.suspect_beats as u64
            + self.params.ft.hb_grace;
        now.since(last) > window
    }

    /// Has any (locally reachable) NIC of the probed peer produced a fresh
    /// heartbeat since the probe started? Used by the probe-abort path.
    fn probe_target_fresh(&self, kind: ProbeKind, now: SimTime) -> bool {
        match kind {
            ProbeKind::Wd(node) => self
                .wd_tracks
                .get(&node)
                .map(|t| t.last.iter().any(|&l| !self.stale(now, l)))
                .unwrap_or(false),
            ProbeKind::Meta(partition) => self
                .pred
                .as_ref()
                .filter(|t| t.member.partition == partition)
                .map(|t| t.last.iter().any(|&l| !self.stale(now, l)))
                .unwrap_or(false),
        }
    }

    /// Suspicion cleared: beats resumed while the probe was in flight, so
    /// they were lost in the network, not stopped at the source. Ends the
    /// session without a diagnosis (no trace events — the paper pipeline
    /// never reaches this state, so traces stay byte-identical).
    fn abort_probe(&mut self, kind: ProbeKind) {
        phoenix_telemetry::counter_add("gsd.suspicion.aborted", 1);
        match kind {
            ProbeKind::Wd(node) => {
                if let Some(t) = self.wd_tracks.get_mut(&node) {
                    t.probing = None;
                }
                // Retract the detect→diagnose mark stamped at suspicion
                // time — the suspicion was false, so there is no diagnose
                // latency to measure and the mark must not leak.
                phoenix_telemetry::unmark(
                    "gsd.detect_to_diagnose",
                    phoenix_telemetry::key(&[1, node.0 as u64]),
                );
            }
            ProbeKind::Meta(partition) => {
                if let Some(t) = &mut self.pred {
                    if t.member.partition == partition {
                        t.probing = None;
                    }
                }
                phoenix_telemetry::unmark(
                    "gsd.detect_to_diagnose",
                    phoenix_telemetry::key(&[2, partition.0 as u64]),
                );
            }
        }
    }

    fn scan(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        let now = ctx.now();
        self.scan_wds(ctx, now);
        self.scan_pred(ctx, now);
        self.scan_svcs(ctx, now);
    }

    fn scan_wds(&mut self, ctx: &mut Ctx<'_, KernelMsg>, now: SimTime) {
        let own_node = ctx.node();
        // Sorted: `wd_tracks` is a HashMap, and the scan order decides the
        // order probes are sent (and suspicion marks stamped) in — the
        // event queue and the seeded network draws must not depend on
        // hash-iteration order.
        let mut nodes: Vec<NodeId> = self.wd_tracks.keys().copied().collect();
        nodes.sort_unstable();
        for node in nodes {
            // Split-borrow dance: compute the decision, then mutate.
            let decision = {
                let t = &self.wd_tracks[&node];
                if t.node_down || t.probing.is_some() {
                    continue;
                }
                let mut stale_nics = Vec::new();
                let mut fresh = 0usize;
                for (i, &last) in t.last.iter().enumerate() {
                    if t.nic_down[i] {
                        continue;
                    }
                    // Skip NICs that are down on our own side: the
                    // introspection path owns those.
                    if !ctx.nic_is_up(own_node, NicId(i as u8)) {
                        continue;
                    }
                    if self.stale(now, last) {
                        stale_nics.push(i);
                    } else {
                        fresh += 1;
                    }
                }
                (stale_nics, fresh)
            };
            let (stale_nics, fresh) = decision;
            if stale_nics.is_empty() {
                continue;
            }
            if fresh == 0 {
                // Every interface silent: process or node failure; probe
                // the node's PPM agent to find out.
                let wd_pid = self.wd_tracks[&node].wd;
                ctx.trace(TraceEvent::FaultDetected {
                    observer: ctx.pid(),
                    target: FaultTarget::Process(wd_pid),
                });
                phoenix_telemetry::counter_add("gsd.faults.detected", 1);
                phoenix_telemetry::counter_add("gsd.suspicion.raised", 1);
                phoenix_telemetry::mark(
                    "gsd.detect_to_diagnose",
                    phoenix_telemetry::key(&[1, node.0 as u64]),
                );
                let session = self.start_probe(
                    ctx,
                    ProbeKind::Wd(node),
                    self.node_daemons.get(&node).map(|n| n.ppm).unwrap_or(Pid(0)),
                    self.params.ft.wd_node_probe_timeout,
                );
                self.wd_tracks.get_mut(&node).unwrap().probing = Some(session);
            } else {
                // Partial silence: network failure on those interfaces.
                for i in stale_nics {
                    ctx.trace(TraceEvent::FaultDetected {
                        observer: ctx.pid(),
                        target: FaultTarget::Nic(node, NicId(i as u8)),
                    });
                    self.wd_tracks.get_mut(&node).unwrap().nic_down[i] = true;
                    self.schedule(
                        ctx,
                        self.params.ft.nic_analysis_delay,
                        DelayedOp::NicDiag {
                            node,
                            nic: NicId(i as u8),
                        },
                    );
                }
            }
        }
    }

    fn scan_pred(&mut self, ctx: &mut Ctx<'_, KernelMsg>, now: SimTime) {
        let own_node = ctx.node();
        let Some(t) = &self.pred else { return };
        if t.down || t.probing.is_some() {
            return;
        }
        let member = t.member;
        let mut stale_nics = Vec::new();
        let mut fresh = 0usize;
        for (i, &last) in t.last.iter().enumerate() {
            if t.nic_down[i] {
                continue;
            }
            if !ctx.nic_is_up(own_node, NicId(i as u8)) {
                continue;
            }
            if self.stale(now, last) {
                stale_nics.push(i);
            } else {
                fresh += 1;
            }
        }
        if stale_nics.is_empty() {
            return;
        }
        if fresh == 0 {
            ctx.trace(TraceEvent::FaultDetected {
                observer: ctx.pid(),
                target: FaultTarget::Process(member.gsd),
            });
            phoenix_telemetry::counter_add("gsd.faults.detected", 1);
            phoenix_telemetry::counter_add("gsd.suspicion.raised", 1);
            phoenix_telemetry::mark(
                "gsd.detect_to_diagnose",
                phoenix_telemetry::key(&[2, member.partition.0 as u64]),
            );
            let session = self.start_probe(
                ctx,
                ProbeKind::Meta(member.partition),
                member.host_ppm,
                self.params.ft.meta_node_probe_timeout,
            );
            if let Some(t) = &mut self.pred {
                t.probing = Some(session);
            }
            // A silent ring predecessor is exactly what a partition looks
            // like from here: open a regroup round alongside the probe.
            // The round concludes before the probe pipeline can ripen
            // into a takeover, so the quorum verdict is in first.
            self.start_regroup_round(ctx);
        } else {
            for i in stale_nics {
                ctx.trace(TraceEvent::FaultDetected {
                    observer: ctx.pid(),
                    target: FaultTarget::Nic(member.node, NicId(i as u8)),
                });
                if let Some(t) = &mut self.pred {
                    t.nic_down[i] = true;
                }
                self.schedule(
                    ctx,
                    self.params.ft.nic_analysis_delay,
                    DelayedOp::NicDiag {
                        node: member.node,
                        nic: NicId(i as u8),
                    },
                );
            }
        }
    }

    fn scan_svcs(&mut self, ctx: &mut Ctx<'_, KernelMsg>, now: SimTime) {
        let mut stale: Vec<(Pid, ServiceKind, String)> = self
            .svc_tracks
            .iter()
            .filter(|(_, t)| self.stale(now, t.last))
            .map(|(&pid, t)| (pid, t.kind, t.factory.clone()))
            .collect();
        // Sorted: diagnosis scheduling order must not follow HashMap order.
        stale.sort_unstable_by_key(|(pid, ..)| *pid);
        for (pid, kind, factory) in stale {
            self.svc_tracks.remove(&pid);
            ctx.trace(TraceEvent::FaultDetected {
                observer: ctx.pid(),
                target: FaultTarget::Process(pid),
            });
            self.schedule(
                ctx,
                self.params.ft.local_diag_delay,
                DelayedOp::LocalDiagSvc { pid, kind, factory },
            );
        }
    }

    // ---- probes ----------------------------------------------------------

    fn start_probe(
        &mut self,
        ctx: &mut Ctx<'_, KernelMsg>,
        kind: ProbeKind,
        target_ppm: Pid,
        timeout: phoenix_sim::SimDuration,
    ) -> u64 {
        let id = self.fresh_id();
        let span = phoenix_telemetry::span_start("gsd.probe.session", "gsd", ctx.node().0);
        self.probes.insert(
            id,
            ProbeSession {
                kind,
                target_ppm,
                rounds_sent: 0,
                responses: 0,
                active: true,
                last_round_at: None,
                span,
            },
        );
        // First probe round fires after one spacing; the paper's process
        // diagnosing time ≈ rounds × spacing.
        let spacing = self.params.ft.probe_round_interval;
        self.schedule_probe_round(ctx, id, spacing);
        self.schedule(ctx, timeout, DelayedOp::ProbeTimeout(id));
        id
    }

    fn schedule_probe_round(
        &mut self,
        ctx: &mut Ctx<'_, KernelMsg>,
        session: u64,
        after: phoenix_sim::SimDuration,
    ) {
        let id = self.fresh_id();
        self.ops.insert(id, DelayedOp::ProbeRound(session));
        ctx.set_timer(after, OP_BASE + id);
    }

    fn probe_round(&mut self, ctx: &mut Ctx<'_, KernelMsg>, session: u64) {
        let Some(s) = self.probes.get_mut(&session) else {
            return;
        };
        if !s.active || s.rounds_sent >= self.params.ft.probe_rounds {
            return;
        }
        s.rounds_sent += 1;
        s.last_round_at = Some(ctx.now());
        let target = s.target_ppm;
        let kind = s.kind;
        phoenix_telemetry::counter_add("gsd.probes.sent", 1);
        phoenix_telemetry::mark("gsd.probe.rtt", phoenix_telemetry::key(&[session]));
        // Probes are single-path: route them over the healthiest usable
        // interface so a degraded NIC cannot eat the very traffic that
        // decides whether a silent peer is dead.
        let peer = match kind {
            ProbeKind::Wd(node) => Some(node),
            ProbeKind::Meta(partition) => self
                .pred
                .as_ref()
                .filter(|t| t.member.partition == partition)
                .map(|t| t.member.node),
        };
        let req = KernelMsg::ProbeReq { req: RequestId(session) };
        match peer.and_then(|p| self.best_nic_for(ctx, p)) {
            Some(nic) => ctx.send_via(target, nic, req),
            None => ctx.send(target, req),
        }
        let spacing = self.params.ft.probe_round_interval;
        self.schedule_probe_round(ctx, session, spacing);
    }

    fn on_probe_resp(&mut self, ctx: &mut Ctx<'_, KernelMsg>, session: u64) {
        let Some(s) = self.probes.get_mut(&session) else {
            return;
        };
        if !s.active {
            return;
        }
        phoenix_telemetry::measure(
            "gsd.probe.rtt",
            "gsd",
            ctx.node().0,
            phoenix_telemetry::key(&[session]),
        );
        s.responses += 1;
        // One RTT sample per probe round (take() so a duplicate response
        // in the same round cannot double-count).
        let sent_at = s.last_round_at.take();
        let kind = s.kind;
        let done = s.responses >= self.params.ft.probe_rounds;
        if done {
            s.active = false;
            phoenix_telemetry::span_end(s.span);
        }
        if self.slow.enabled() {
            let peer = match kind {
                ProbeKind::Wd(node) => Some(node),
                ProbeKind::Meta(partition) => self
                    .pred
                    .as_ref()
                    .filter(|t| t.member.partition == partition)
                    .map(|t| t.member.node),
            };
            if let (Some(node), Some(at)) = (peer, sent_at) {
                self.observe_peer_rtt(ctx, node, (ctx.now() - at).as_nanos());
            }
        }
        if !done {
            return;
        }
        if self.params.ft.probe_abort_on_fresh && self.probe_target_fresh(kind, ctx.now()) {
            self.abort_probe(kind);
            return;
        }
        // Node is alive, daemon silent: process failure.
        match kind {
            ProbeKind::Wd(node) => self.diagnose_wd_process(ctx, node),
            ProbeKind::Meta(partition) => self.diagnose_gsd_process(ctx, partition),
        }
    }

    fn on_probe_timeout(&mut self, ctx: &mut Ctx<'_, KernelMsg>, session: u64) {
        let Some(s) = self.probes.get_mut(&session) else {
            return;
        };
        if !s.active {
            return;
        }
        s.active = false;
        let kind = s.kind;
        let responses = s.responses;
        phoenix_telemetry::span_end(s.span);
        if self.params.ft.probe_abort_on_fresh && self.probe_target_fresh(kind, ctx.now()) {
            self.abort_probe(kind);
            return;
        }
        if responses > 0 {
            // The target's PPM answered at least one round before the
            // deadline: the node is provably reachable, so the missing
            // rounds are packet loss, not a dead machine. Diagnosing node
            // death here would strand a live node without a WD (the node
            // path never restarts daemons). On a clean network all rounds
            // complete long before the timeout, so this arm never fires.
            phoenix_telemetry::counter_add("gsd.probes.partial", 1);
            match kind {
                ProbeKind::Wd(node) => self.diagnose_wd_process(ctx, node),
                ProbeKind::Meta(partition) => self.diagnose_gsd_process(ctx, partition),
            }
            return;
        }
        match kind {
            ProbeKind::Wd(node) => self.diagnose_wd_node(ctx, node),
            ProbeKind::Meta(partition) => self.diagnose_gsd_node(ctx, partition),
        }
    }

    // ---- diagnoses & recovery ---------------------------------------------

    fn diagnose_wd_process(&mut self, ctx: &mut Ctx<'_, KernelMsg>, node: NodeId) {
        let Some(t) = self.wd_tracks.get_mut(&node) else {
            return;
        };
        let wd_pid = t.wd;
        t.probing = None;
        phoenix_telemetry::measure(
            "gsd.detect_to_diagnose",
            "gsd",
            ctx.node().0,
            phoenix_telemetry::key(&[1, node.0 as u64]),
        );
        ctx.trace(TraceEvent::FaultDiagnosed {
            observer: ctx.pid(),
            target: FaultTarget::Process(wd_pid),
            diagnosis: Diagnosis::ProcessFailure,
        });
        self.publish(
            ctx,
            EventType::ServiceFault,
            node,
            EventPayload::Service(ServiceKind::WatchDaemon, node),
        );
        // Restart in place (cost ≈ 0: Table 1 reports 0 µs).
        let cost = self.params.ft.wd_restart_cost;
        if cost == phoenix_sim::SimDuration::ZERO {
            self.restart_wd(ctx, node);
        } else {
            self.schedule(ctx, cost, DelayedOp::Restart(RestartWhat::Wd(node)));
        }
    }

    fn restart_wd(&mut self, ctx: &mut Ctx<'_, KernelMsg>, node: NodeId) {
        let wd = Wd::respawn(
            node,
            self.partition,
            self.params.ft.clone(),
            ctx.pid(),
            RecoveryAction::RestartedInPlace,
        );
        let new_pid = ctx.spawn(node, Box::new(wd));
        if let Some(ns) = self.node_daemons.get_mut(&node) {
            ns.wd = new_pid;
            let updated = *ns;
            ctx.send(self.config, KernelMsg::DirectoryUpdateNode { services: updated });
            if self.params.rpc.retries_enabled() {
                self.dir_resend_nodes.insert(node, (updated, DIR_RESEND_TICKS));
            }
        }
        let now = ctx.now();
        let nics = self.my_nic_known.len();
        self.wd_tracks.insert(node, WdTrack::new(new_pid, nics, now));
        self.publish(
            ctx,
            EventType::ServiceRecovery,
            node,
            EventPayload::Service(ServiceKind::WatchDaemon, node),
        );
    }

    fn diagnose_wd_node(&mut self, ctx: &mut Ctx<'_, KernelMsg>, node: NodeId) {
        // Slow ≠ down: a node whose RTT evidence says "alive but degraded"
        // must never be declared dead while that evidence is fresh. Once
        // its pongs stop, the veto lapses and fail-stop diagnosis resumes.
        if self.slow_alive_veto(ctx.now(), node) {
            if let Some(t) = self.wd_tracks.get_mut(&node) {
                t.probing = None;
            }
            phoenix_telemetry::counter_add("gsd.slow.dead_vetoed", 1);
            ctx.trace(TraceEvent::Milestone {
                label: "slow-not-dead",
                value: node.0 as f64,
            });
            return;
        }
        if let Some(t) = self.wd_tracks.get_mut(&node) {
            t.probing = None;
            t.node_down = true;
        }
        self.slow.mark_dead(node);
        phoenix_telemetry::measure(
            "gsd.detect_to_diagnose",
            "gsd",
            ctx.node().0,
            phoenix_telemetry::key(&[1, node.0 as u64]),
        );
        ctx.trace(TraceEvent::FaultDiagnosed {
            observer: ctx.pid(),
            target: FaultTarget::Node(node),
            diagnosis: Diagnosis::NodeFailure,
        });
        // "for WD, in case of node failure, the recovery time is 0,
        // because ... migrating WD means nothing."
        ctx.trace(TraceEvent::Recovered {
            target: FaultTarget::Node(node),
            action: RecoveryAction::NoneNeeded,
        });
        self.publish(ctx, EventType::NodeFault, node, EventPayload::Node(node));
    }

    fn diagnose_gsd_process(&mut self, ctx: &mut Ctx<'_, KernelMsg>, partition: PartitionId) {
        if !self.regroup_licenses_takeover(ctx, partition) {
            return;
        }
        let Some(t) = &mut self.pred else { return };
        if t.member.partition != partition {
            return;
        }
        t.probing = None;
        t.down = true;
        let failed = t.member;
        phoenix_telemetry::measure(
            "gsd.detect_to_diagnose",
            "gsd",
            ctx.node().0,
            phoenix_telemetry::key(&[2, partition.0 as u64]),
        );
        self.takeover_seq += 1;
        let plan = self.takeover_seq;
        phoenix_telemetry::mark("gsd.takeover", takeover_key(ctx.pid(), partition, plan));
        ctx.trace(TraceEvent::FaultDiagnosed {
            observer: ctx.pid(),
            target: FaultTarget::Process(failed.gsd),
            diagnosis: Diagnosis::ProcessFailure,
        });
        self.publish(
            ctx,
            EventType::ServiceFault,
            failed.node,
            EventPayload::Service(ServiceKind::Group, failed.node),
        );
        self.remove_member(ctx, partition, Diagnosis::ProcessFailure);
        let members = self.members.clone();
        self.schedule(
            ctx,
            self.params.ft.gsd_restart_cost,
            DelayedOp::Restart(RestartWhat::GsdInPlace {
                hint: failed,
                members,
                epoch: self.epoch,
                plan,
            }),
        );
    }

    fn diagnose_gsd_node(&mut self, ctx: &mut Ctx<'_, KernelMsg>, partition: PartitionId) {
        if !self.regroup_licenses_takeover(ctx, partition) {
            return;
        }
        let Some(failed) = self
            .pred
            .as_ref()
            .map(|t| t.member)
            .filter(|m| m.partition == partition)
        else {
            return;
        };
        // Slow ≠ down: fresh RTT evidence of life vetoes the dead verdict
        // (the quarantine path handles degraded-but-alive predecessors).
        if self.slow_alive_veto(ctx.now(), failed.node) {
            if let Some(t) = &mut self.pred {
                t.probing = None;
            }
            phoenix_telemetry::counter_add("gsd.slow.dead_vetoed", 1);
            ctx.trace(TraceEvent::Milestone {
                label: "slow-not-dead",
                value: failed.node.0 as f64,
            });
            return;
        }
        let Some(t) = &mut self.pred else { return };
        t.probing = None;
        t.down = true;
        self.slow.mark_dead(failed.node);
        phoenix_telemetry::measure(
            "gsd.detect_to_diagnose",
            "gsd",
            ctx.node().0,
            phoenix_telemetry::key(&[2, partition.0 as u64]),
        );
        self.takeover_seq += 1;
        let plan = self.takeover_seq;
        phoenix_telemetry::mark("gsd.takeover", takeover_key(ctx.pid(), partition, plan));
        ctx.trace(TraceEvent::FaultDiagnosed {
            observer: ctx.pid(),
            target: FaultTarget::Node(failed.node),
            diagnosis: Diagnosis::NodeFailure,
        });
        self.publish(ctx, EventType::NodeFault, failed.node, EventPayload::Node(failed.node));
        self.remove_member(ctx, partition, Diagnosis::NodeFailure);
        // Choose a backup node of the failed partition to migrate to,
        // preferring nodes the fail-slow detector considers healthy
        // (falling back to a degraded one over not migrating at all).
        let target = self
            .topology
            .partition(partition)
            .map(|spec| {
                let up: Vec<NodeId> = spec
                    .backups
                    .iter()
                    .chain(spec.compute.iter())
                    .copied()
                    .filter(|&n| n != failed.node && ctx.node_is_up(n))
                    .collect();
                up.iter()
                    .copied()
                    .find(|&n| !self.placement_degraded(n))
                    .or_else(|| up.first().copied())
            })
            .unwrap_or(None);
        match target {
            Some(to) => {
                let members = self.members.clone();
                self.schedule(
                    ctx,
                    self.params.ft.gsd_migrate_cost,
                    DelayedOp::Restart(RestartWhat::GsdMigrate {
                        hint: failed,
                        members,
                        epoch: self.epoch,
                        to,
                        plan,
                    }),
                );
            }
            None => {
                phoenix_telemetry::unmark("gsd.takeover", takeover_key(ctx.pid(), partition, plan));
                ctx.trace(TraceEvent::Milestone {
                    label: "no-backup-node",
                    value: partition.0 as f64,
                });
            }
        }
    }

    fn remove_member(
        &mut self,
        ctx: &mut Ctx<'_, KernelMsg>,
        partition: PartitionId,
        diagnosis: Diagnosis,
    ) {
        self.members.retain(|m| m.partition != partition);
        self.broadcast_meta(
            ctx,
            KernelMsg::MetaMemberDown {
                partition,
                diagnosis,
            },
        );
        self.refresh_roles(ctx);
    }

    /// A replacement GSD can only be started on a machine we can route to:
    /// remote exec across a severed island is a connection failure, not a
    /// silent success. Retracts the takeover mark stamped at diagnosis /
    /// rescue time so the skipped spawn does not leak a pending measure;
    /// the rescue sweep retries once the partition heals.
    fn spawn_target_reachable(
        &mut self,
        ctx: &mut Ctx<'_, KernelMsg>,
        partition: PartitionId,
        node: NodeId,
        plan: u64,
    ) -> bool {
        if ctx.node_reachable(node) {
            return true;
        }
        phoenix_telemetry::unmark("gsd.takeover", takeover_key(ctx.pid(), partition, plan));
        ctx.trace(TraceEvent::Milestone {
            label: "gsd-spawn-unreachable",
            value: partition.0 as f64,
        });
        false
    }

    fn execute_restart(&mut self, ctx: &mut Ctx<'_, KernelMsg>, what: RestartWhat) {
        match what {
            RestartWhat::Wd(node) => self.restart_wd(ctx, node),
            RestartWhat::Svc { kind, factory } => {
                let args = RespawnArgs {
                    kind,
                    partition: self.partition,
                    node: ctx.node(),
                    gsd: ctx.pid(),
                    checkpoint: self.local.checkpoint,
                    members: self.members.clone(),
                    action: RecoveryAction::RestartedInPlace,
                    params: self.params.clone(),
                };
                let built = self.registry.borrow_mut().build(&factory, &args);
                match built {
                    Some(actor) => {
                        ctx.spawn(ctx.node(), actor);
                        // The replacement registers itself (SvcRegister),
                        // which updates `local` and broadcasts.
                    }
                    None => ctx.trace(TraceEvent::Milestone {
                        label: "no-factory",
                        value: 0.0,
                    }),
                }
            }
            RestartWhat::GsdInPlace {
                hint,
                members,
                epoch,
                plan,
            } => {
                if self.members.iter().any(|m| m.partition == hint.partition) {
                    // Already rejoined (rescued by someone else); retract the
                    // abandoned plan's mark so it cannot linger.
                    phoenix_telemetry::unmark(
                        "gsd.takeover",
                        takeover_key(ctx.pid(), hint.partition, plan),
                    );
                    return;
                }
                if !self.spawn_target_reachable(ctx, hint.partition, hint.node, plan) {
                    return;
                }
                phoenix_telemetry::counter_add("gsd.takeovers", 1);
                phoenix_telemetry::measure(
                    "gsd.takeover",
                    "gsd",
                    ctx.node().0,
                    takeover_key(ctx.pid(), hint.partition, plan),
                );
                let gsd = Gsd::respawn(
                    hint.partition,
                    self.params.clone(),
                    self.topology.clone(),
                    self.config,
                    self.registry.clone(),
                    hint,
                    members,
                    epoch.max(self.epoch),
                    RecoveryAction::RestartedInPlace,
                );
                ctx.spawn(hint.node, Box::new(gsd));
            }
            RestartWhat::GsdMigrate {
                hint,
                members,
                epoch,
                to,
                plan,
            } => {
                if self.members.iter().any(|m| m.partition == hint.partition) {
                    phoenix_telemetry::unmark(
                        "gsd.takeover",
                        takeover_key(ctx.pid(), hint.partition, plan),
                    );
                    return;
                }
                if !self.spawn_target_reachable(ctx, hint.partition, to, plan) {
                    return;
                }
                phoenix_telemetry::counter_add("gsd.takeovers", 1);
                phoenix_telemetry::measure(
                    "gsd.takeover",
                    "gsd",
                    ctx.node().0,
                    takeover_key(ctx.pid(), hint.partition, plan),
                );
                let gsd = Gsd::respawn(
                    hint.partition,
                    self.params.clone(),
                    self.topology.clone(),
                    self.config,
                    self.registry.clone(),
                    hint,
                    members,
                    epoch.max(self.epoch),
                    RecoveryAction::Migrated(to),
                );
                ctx.spawn(to, Box::new(gsd));
            }
            RestartWhat::GsdRescue { partition, plan } => {
                self.rescuing.remove(&partition);
                if self.members.iter().any(|m| m.partition == partition) {
                    phoenix_telemetry::unmark(
                        "gsd.takeover",
                        takeover_key(ctx.pid(), partition, plan),
                    );
                    return;
                }
                let Some(hint) = self.last_known.get(&partition).copied() else {
                    phoenix_telemetry::unmark(
                        "gsd.takeover",
                        takeover_key(ctx.pid(), partition, plan),
                    );
                    return;
                };
                let members = self.members.clone();
                let epoch = self.epoch;
                // Restart in place if the old host is up, else migrate.
                if ctx.node_is_up(hint.node) {
                    self.execute_restart(
                        ctx,
                        RestartWhat::GsdInPlace {
                            hint,
                            members,
                            epoch,
                            plan,
                        },
                    );
                } else if let Some(to) = self
                    .topology
                    .partition(partition)
                    .and_then(|spec| {
                        let up: Vec<NodeId> = spec
                            .backups
                            .iter()
                            .chain(spec.compute.iter())
                            .copied()
                            .filter(|&n| n != hint.node && ctx.node_is_up(n))
                            .collect();
                        up.iter()
                            .copied()
                            .find(|&n| !self.placement_degraded(n))
                            .or_else(|| up.first().copied())
                    })
                {
                    self.execute_restart(
                        ctx,
                        RestartWhat::GsdMigrate {
                            hint,
                            members,
                            epoch,
                            to,
                            plan,
                        },
                    );
                } else {
                    phoenix_telemetry::unmark(
                        "gsd.takeover",
                        takeover_key(ctx.pid(), partition, plan),
                    );
                }
            }
        }
    }

    // ---- tick (ring heartbeats + introspection) ----------------------------

    fn send_meta_heartbeats(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        if let Some(succ) = self.successor() {
            self.hb_seq += 1;
            phoenix_telemetry::counter_add(
                "gsd.meta_heartbeats.sent",
                self.my_nic_known.len() as u64,
            );
            for i in 0..self.my_nic_known.len() {
                // Keyed on (partition, nic, seq): the successor measures the
                // same tuple from the message fields, and the per-beat seq
                // keeps duplicated deliveries from re-measuring a stale mark.
                phoenix_telemetry::mark(
                    "meta.heartbeat.flight",
                    phoenix_telemetry::key(&[self.partition.0 as u64, i as u64, self.hb_seq]),
                );
                ctx.send_via(
                    succ.gsd,
                    NicId(i as u8),
                    KernelMsg::MetaHeartbeat {
                        from_partition: self.partition,
                        nic: NicId(i as u8),
                        epoch: self.epoch,
                        seq: self.hb_seq,
                    },
                );
            }
        }
    }

    fn introspect_own_nics(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        let own = ctx.node();
        for i in 0..self.my_nic_known.len() {
            let up = ctx.nic_is_up(own, NicId(i as u8));
            let was = self.my_nic_known[i];
            if was && !up {
                ctx.trace(TraceEvent::FaultDetected {
                    observer: ctx.pid(),
                    target: FaultTarget::Nic(own, NicId(i as u8)),
                });
                self.schedule(
                    ctx,
                    self.params.ft.local_diag_delay,
                    DelayedOp::LocalDiagNic { nic: NicId(i as u8) },
                );
            } else if !was && up {
                self.publish(
                    ctx,
                    EventType::NetworkRecovery,
                    own,
                    EventPayload::Nic(own, NicId(i as u8)),
                );
            }
            self.my_nic_known[i] = up;
        }
    }

    /// Re-assert recently changed directory entries to config. Only active
    /// under a retrying policy; a bounded number of repeats per change.
    fn directory_anti_entropy(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        if self.dir_resend_local > 0 {
            self.dir_resend_local -= 1;
            ctx.send(
                self.config,
                KernelMsg::DirectoryUpdate {
                    partition: self.partition,
                    member: self.local,
                },
            );
        }
        if self.dir_resend_nodes.is_empty() {
            return;
        }
        // Sorted so send order (and thus the event queue) is deterministic.
        let mut nodes: Vec<NodeId> = self.dir_resend_nodes.keys().copied().collect();
        nodes.sort_by_key(|n| n.0);
        for node in nodes {
            let Some((ns, left)) = self.dir_resend_nodes.get_mut(&node) else {
                continue;
            };
            let services = *ns;
            *left -= 1;
            let done = *left == 0;
            ctx.send(self.config, KernelMsg::DirectoryUpdateNode { services });
            if done {
                self.dir_resend_nodes.remove(&node);
            }
        }
    }

    fn tick(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        self.send_meta_heartbeats(ctx);
        self.introspect_own_nics(ctx);
        if self.nic_health.enabled() {
            for i in 0..self.nic_health.nic_count() {
                let nic = NicId(i as u8);
                phoenix_telemetry::gauge_set(nic_health_gauge(nic), self.nic_health.score(nic));
            }
        }
        // A frozen GSD keeps beating (so its same-island successor never
        // mistakes the freeze for a death) but performs no authoritative
        // work: no directory writes, no checkpoints, no rescues, no
        // rejoin toward a leader view that predates the partition.
        if !self.regroup.frozen() {
            self.directory_anti_entropy(ctx);
            if self.supervision_dirty {
                self.save_supervision(ctx);
            }
            self.rescue_sweep(ctx);
            if self.slow.enabled() {
                self.slow_probe_round(ctx);
                self.slow_maintenance(ctx);
            }
            if self.needs_rejoin {
                self.needs_rejoin = false;
                if let Some(leader) = self.leader() {
                    if leader.partition != self.partition {
                        self.send_routed(
                            ctx,
                            leader.gsd,
                            leader.node,
                            KernelMsg::MetaJoin { member: self.local },
                        );
                    }
                }
            }
        }
        ctx.set_timer(self.params.ft.hb_interval, TOK_TICK);
    }

    /// Leader safety net: if a topology partition has no meta-group member
    /// (its takeover plan died with the daemon that scheduled it), the
    /// leader schedules a rescue. Executed with a still-missing guard, so
    /// a concurrent normal takeover wins harmlessly.
    fn rescue_sweep(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        if self.role() != "leader" {
            return;
        }
        let missing: Vec<PartitionId> = self
            .topology
            .partitions
            .iter()
            .map(|p| p.id)
            .filter(|p| {
                self.members.iter().all(|m| m.partition != *p) && !self.rescuing.contains(p)
            })
            .collect();
        for partition in missing {
            self.rescuing.insert(partition);
            self.takeover_seq += 1;
            let plan = self.takeover_seq;
            phoenix_telemetry::mark("gsd.takeover", takeover_key(ctx.pid(), partition, plan));
            ctx.trace(TraceEvent::Milestone {
                label: "gsd-rescue-scheduled",
                value: partition.0 as f64,
            });
            self.schedule(
                ctx,
                self.params.ft.gsd_restart_cost,
                DelayedOp::Restart(RestartWhat::GsdRescue { partition, plan }),
            );
        }
    }

    // ---- fail-slow detection (latency-aware suspicion & quarantine) --------

    /// A node is a poor placement target while the detector reads it Slow.
    /// Callers always keep a degraded fallback: quarantine must never turn
    /// "migrate somewhere imperfect" into "migrate nowhere".
    fn placement_degraded(&self, node: NodeId) -> bool {
        self.slow.enabled() && self.slow.is_slow(node)
    }

    /// "It's not everyone else — it's me": when a strict majority of this
    /// observer's warmed peers read Slow, the common element in every one
    /// of those stretched RTTs is this node itself. While that holds, the
    /// verdicts must not be used *against* peers (no quarantine additions,
    /// no yield requests, no placement vetoes) — a degraded node handing
    /// out quarantines would decapitate a healthy cluster.
    fn gray_self(&self) -> bool {
        let mut warmed = 0u32;
        let mut slow = 0u32;
        for (node, v) in self.slow.verdicts() {
            if v != SlowVerdict::Dead && self.slow.warmed(node) {
                warmed += 1;
                if v == SlowVerdict::Slow {
                    slow += 1;
                }
            }
        }
        warmed >= 2 && slow * 2 > warmed
    }

    /// Slow ≠ down: a Slow verdict plus *fresh* RTT evidence vetoes a dead
    /// diagnosis. The freshness gate keeps the veto from becoming a
    /// livelock — a slow node that later genuinely dies stops answering,
    /// the evidence goes stale within one suspicion window, and the
    /// fail-stop pipeline proceeds as if the veto never existed.
    fn slow_alive_veto(&self, now: SimTime, node: NodeId) -> bool {
        self.slow.enabled()
            && self.slow.is_slow(node)
            && self
                .slow_last_seen
                .get(&node)
                .map(|&l| !self.stale(now, l))
                .unwrap_or(false)
    }

    /// One RTT sample for a peer node, from any source (slow pong, probe
    /// response). Feeds the detector and refreshes the evidence-of-life
    /// stamp the dead-veto consults.
    fn observe_peer_rtt(&mut self, ctx: &mut Ctx<'_, KernelMsg>, node: NodeId, rtt_ns: u64) {
        if !self.slow.enabled() {
            return;
        }
        self.slow_last_seen.insert(node, ctx.now());
        if let Some(tr) = self.slow.observe_rtt(node, rtt_ns) {
            self.apply_slow_transition(ctx, tr);
        }
    }

    fn apply_slow_transition(&mut self, ctx: &mut Ctx<'_, KernelMsg>, tr: SlowTransition) {
        match tr {
            SlowTransition::Quarantined(node) => {
                phoenix_telemetry::counter_add("gsd.slow.suspected", 1);
                ctx.trace(TraceEvent::Milestone {
                    label: "slow-suspected",
                    value: node.0 as f64,
                });
            }
            SlowTransition::Reinstated(node) => {
                phoenix_telemetry::counter_add("gsd.slow.reinstated", 1);
                ctx.trace(TraceEvent::Milestone {
                    label: "slow-reinstated",
                    value: node.0 as f64,
                });
            }
        }
    }

    fn send_slow_ping(&mut self, ctx: &mut Ctx<'_, KernelMsg>, node: NodeId, to: Pid) {
        self.slow_ping_seq += 1;
        let seq = self.slow_ping_seq;
        self.slow_ping_sent.insert(seq, (node, ctx.now()));
        self.send_routed(ctx, to, node, KernelMsg::SlowPing { seq });
    }

    /// One slow-ping round per tick. Everyone samples its ring
    /// predecessor (the node it must judge before ever suspecting it —
    /// and for the princess, the predecessor *is* the leader); the leader
    /// additionally samples every member and its own partition's
    /// placement-candidate nodes via their watch daemons.
    fn slow_probe_round(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        let now = ctx.now();
        // Expire pings past the horizon: a pong that took 8 beats is not
        // a latency sample, and the map must stay bounded under loss.
        let horizon = self.params.ft.hb_interval * 8;
        self.slow_ping_sent.retain(|_, (_, at)| now.since(*at) <= horizon);
        let mut targets: Vec<(NodeId, Pid)> = Vec::new();
        if let Some(p) = self.predecessor() {
            if p.gsd != Pid(0) {
                targets.push((p.node, p.gsd));
            }
        }
        if self.role() == "leader" {
            for m in &self.members {
                if m.partition != self.partition && m.gsd != Pid(0) {
                    targets.push((m.node, m.gsd));
                }
            }
            // Placement candidates: this partition's own nodes, via their
            // watch daemons (sorted node order for determinism).
            let mut wds: Vec<(NodeId, Pid)> = self
                .node_daemons
                .iter()
                .map(|(&n, s)| (n, s.wd))
                .collect();
            wds.sort_by_key(|&(n, _)| n);
            targets.extend(wds.into_iter().filter(|&(_, wd)| wd != Pid(0)));
        }
        let own = ctx.node();
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        for (node, to) in targets {
            if node == own || !seen.insert(node) {
                continue;
            }
            self.send_slow_ping(ctx, node, to);
        }
    }

    /// Health-ranked witness candidates: healthy partitions before
    /// quarantined/slow ones, then by slowness score, ties by partition
    /// id — so with no slowness observed this is exactly the legacy
    /// lowest-id order.
    fn witness_preference(&self) -> Vec<PartitionId> {
        let mut pref: Vec<(bool, f64, PartitionId)> = self
            .members
            .iter()
            .map(|m| {
                let degraded =
                    self.quarantined.contains(&m.partition) || self.slow.is_slow(m.node);
                (degraded, self.slow.score(m.node), m.partition)
            })
            .collect();
        pref.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)).then(a.2.cmp(&b.2)));
        pref.into_iter().map(|(_, _, p)| p).collect()
    }

    /// Per-tick fail-slow duties beyond pinging: the princess asks a
    /// degraded leader to yield, any licensed node refreshes the witness
    /// preference, and the leader converges the quarantine set.
    fn slow_maintenance(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        let now = ctx.now();
        // Princess duty: the leader has no ring successor judging it for
        // takeover purposes, but the princess (whose predecessor it is)
        // holds a live RTT profile — a degraded leader is asked to shed
        // leadership *without* any takeover machinery firing.
        if self.role() == "princess" && !self.gray_self() {
            if let Some(l) = self.leader() {
                if l.partition != self.partition
                    && self.slow.is_slow(l.node)
                    && !self.quarantined.contains(&l.partition)
                {
                    phoenix_telemetry::counter_add("gsd.slow.yield_requests", 1);
                    self.send_routed(
                        ctx,
                        l.gsd,
                        l.node,
                        KernelMsg::SlowLeaderYield {
                            from_partition: self.partition,
                        },
                    );
                }
            }
        }
        // Witness preference is only consulted when a failover fires
        // under a ripened licence; refresh it on the same licence so a
        // minority island can never install a ranking, and never from a
        // gray-self observer whose ranking is its own slowness.
        if self.regroup.votes_enabled() && !self.gray_self() && self.regroup.takeover_licensed(now)
        {
            let pref = self.witness_preference();
            self.regroup.set_witness_preference(pref);
        }
        if self.role() != "leader" {
            return;
        }
        for (node, v) in self.slow.verdicts() {
            let val = match v {
                SlowVerdict::Healthy => 0.0,
                SlowVerdict::Slow => 1.0,
                SlowVerdict::Dead => 2.0,
            };
            phoenix_telemetry::gauge_set(slow_verdict_gauge(node), val);
            phoenix_telemetry::gauge_set(slow_score_gauge(node), self.slow.score(node));
        }
        phoenix_telemetry::gauge_set("gsd.slow.quarantined", self.quarantined.len() as f64);
        // Converge the quarantine set from member-server-node verdicts.
        // Removal requires a *warmed* Healthy verdict, not the absence of
        // a Slow one: a fresh leader whose detector never saw the node
        // slow must re-earn the reinstatement, not inherit it.
        let gray = self.gray_self();
        let mut cand: BTreeSet<PartitionId> = BTreeSet::new();
        let mut next = self.quarantined.clone();
        for m in &self.members {
            if m.partition == self.partition {
                continue; // the leader's own health is the princess's call
            }
            if self.slow.is_slow(m.node) {
                if !gray {
                    cand.insert(m.partition);
                    if self.slow_pending.contains(&m.partition) {
                        next.insert(m.partition);
                    }
                }
            } else if self.slow.warmed(m.node) && self.slow.verdict(m.node) == SlowVerdict::Healthy
            {
                next.remove(&m.partition);
            }
        }
        self.slow_pending = cand;
        // A partition that left the membership entirely is the fail-stop
        // pipeline's problem, not quarantine's.
        next.retain(|p| self.members.iter().any(|m| m.partition == *p));
        if next != self.quarantined {
            self.set_quarantine(ctx, next);
        } else if !self.quarantined.is_empty() {
            // Same-epoch refresh: late joiners (empty set, epoch 0) adopt
            // the ring order within one tick; everyone else no-ops.
            let msg = KernelMsg::MetaQuarantine {
                epoch: self.quarantine_epoch,
                quarantined: self.quarantined.iter().copied().collect(),
            };
            self.broadcast_meta(ctx, msg);
        }
    }

    /// Install a new quarantine set, broadcast it under a bumped epoch,
    /// and re-derive the ring order locally. Called by the leader's
    /// convergence pass and by a leader self-quarantining on yield.
    fn set_quarantine(&mut self, ctx: &mut Ctx<'_, KernelMsg>, next: BTreeSet<PartitionId>) {
        self.quarantined = next;
        self.quarantine_epoch += 1;
        phoenix_telemetry::gauge_set("gsd.slow.quarantined", self.quarantined.len() as f64);
        ctx.trace(TraceEvent::Milestone {
            label: "slow-quarantine",
            value: self.quarantined.len() as f64,
        });
        let msg = KernelMsg::MetaQuarantine {
            epoch: self.quarantine_epoch,
            quarantined: self.quarantined.iter().copied().collect(),
        };
        self.broadcast_meta(ctx, msg);
        self.refresh_roles(ctx);
        self.push_partition_view(ctx);
        self.maybe_drain(ctx);
    }

    /// Quarantined-and-on-the-degraded-node: hand the partition to a
    /// healthier home node by spawning our own replacement there — the
    /// existing Migrate/duplicate-resolution machinery does the rest (the
    /// replacement joins, the leader replaces our entry, the membership
    /// naming the newer pid makes us yield). No `FaultDiagnosed`, no
    /// takeover marks: nothing died.
    fn maybe_drain(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        if self.draining || self.drained || !self.quarantined.contains(&self.partition) {
            return;
        }
        let own = ctx.node();
        // A gray-self observer's placement vetoes are its own slowness
        // reflected back — ignore them, or the drain could never fire.
        let gray = self.gray_self();
        let Some(to) = self.topology.partition(self.partition).and_then(|spec| {
            spec.backups
                .iter()
                .chain(spec.compute.iter())
                .copied()
                .find(|&n| n != own && ctx.node_is_up(n) && (gray || !self.placement_degraded(n)))
        }) else {
            return; // no healthy home node: stay put, keep serving
        };
        self.draining = true;
        phoenix_telemetry::counter_add("gsd.slow.drains", 1);
        ctx.trace(TraceEvent::Milestone {
            label: "slow-drain",
            value: self.partition.0 as f64,
        });
        let hint = self.local;
        let members: Vec<MemberInfo> = self
            .members
            .iter()
            .copied()
            .filter(|m| m.partition != self.partition)
            .collect();
        let mut gsd = Gsd::respawn(
            self.partition,
            self.params.clone(),
            self.topology.clone(),
            self.config,
            self.registry.clone(),
            hint,
            members,
            self.epoch,
            RecoveryAction::Migrated(to),
        );
        // The clone must share our quarantine view (ring order!) and must
        // not re-drain off its fresh node on a not-yet-warmed-out entry.
        gsd.quarantined = self.quarantined.clone();
        gsd.quarantine_epoch = self.quarantine_epoch;
        gsd.drained = true;
        ctx.spawn(to, Box::new(gsd));
    }

    /// Test/introspection: per-peer fail-slow verdicts as this GSD sees
    /// them.
    pub fn slow_verdicts(&self) -> Vec<(NodeId, SlowVerdict)> {
        self.slow.verdicts()
    }

    /// Test/introspection: the adopted quarantine view.
    pub fn quarantine_view(&self) -> (u64, Vec<PartitionId>) {
        (
            self.quarantine_epoch,
            self.quarantined.iter().copied().collect(),
        )
    }

    /// Test/introspection: ring membership order as currently sorted.
    pub fn ring_order(&self) -> Vec<PartitionId> {
        self.members.iter().map(|m| m.partition).collect()
    }

    /// Test/introspection: whether a slow-drain handoff is in flight.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    // ---- quorum regroup (MSCS-style; paper-adjacent split-brain cure) ------

    /// Open a regroup round: ping the best-known GSD of every configured
    /// partition and arm the round-window timer. No-op when the layer is
    /// disabled or a round is already collecting.
    fn start_regroup_round(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        if !self.regroup.enabled() || self.regroup.round_active() {
            return;
        }
        let round = self.regroup.begin_round(ctx.now());
        phoenix_telemetry::counter_add("gsd.regroup.rounds", 1);
        self.round_span = Some(match self.frozen_span {
            Some(parent) => phoenix_telemetry::span_child(
                "gsd.regroup.round",
                "gsd",
                ctx.node().0,
                parent,
            ),
            None => phoenix_telemetry::span_start("gsd.regroup.round", "gsd", ctx.node().0),
        });
        let ping = KernelMsg::RegroupPing {
            from_partition: self.partition,
            epoch: self.epoch,
            round,
            witness: self.regroup.witness().unwrap_or(PartitionId(0)),
            witness_epoch: self.regroup.witness_epoch(),
        };
        // Every *configured* partition, not just current members: a
        // frozen side keeps pinging partitions its stale membership may
        // have lost, and a majority side pings the minority it removed
        // (`last_known` keeps the pre-removal coordinates).
        for p in self.topology.partitions.iter().map(|p| p.id) {
            if p == self.partition {
                continue;
            }
            let target = self
                .members
                .iter()
                .find(|m| m.partition == p)
                .copied()
                .or_else(|| self.last_known.get(&p).copied());
            if let Some(m) = target {
                if m.gsd != Pid(0) {
                    self.send_routed(ctx, m.gsd, m.node, ping.clone());
                }
            }
        }
        // Vote-table profiles also collect home-node testimony: each
        // peer partition's own watch daemons are asked whether the GSD
        // they track is alive. A partition that never acks but whose own
        // nodes unanimously report its GSD dead is discounted from the
        // quorum denominator — the escape hatch from the all-dark state
        // where enough GSDs (witness included) died that every island
        // is a strict weighted minority. Only home nodes may testify:
        // they are the nodes an in-place respawn lands on, so the
        // evidence cannot sit on the far side of a split from a rescued
        // replacement.
        if self.regroup.votes_enabled() {
            let mut probe_targets: Vec<(Pid, NodeId)> = Vec::new();
            for spec in &self.topology.partitions {
                if spec.id == self.partition {
                    continue;
                }
                for node in spec.all_nodes() {
                    if let Some(&wd) = self.cluster_wds.get(&node) {
                        if wd != Pid(0) {
                            probe_targets.push((wd, node));
                        }
                    }
                }
            }
            for (wd, node) in probe_targets {
                self.send_routed(ctx, wd, node, KernelMsg::RegroupProbe { round });
            }
        }
        ctx.set_timer(self.params.ft.regroup.round_window, TOK_REGROUP);
    }

    /// The round window closed: compute the connected component and act
    /// on the quorum verdict.
    fn conclude_regroup(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        let Some(c) = self.regroup.conclude(self.partition, ctx.now()) else {
            return;
        };
        if let Some(span) = self.round_span.take() {
            phoenix_telemetry::span_end(span);
        }
        phoenix_telemetry::gauge_set("gsd.regroup.epoch", self.regroup.epoch() as f64);
        if let Some(lat) = self.regroup.round_latency_ewma() {
            phoenix_telemetry::gauge_set(
                "gsd.regroup.round_latency",
                lat.as_secs_f64() * 1e3,
            );
            phoenix_telemetry::gauge_set(
                "gsd.regroup.takeover_delay",
                self.regroup.effective_takeover_delay().as_secs_f64() * 1e3,
            );
        }
        if let Some(w) = self.regroup.witness() {
            phoenix_telemetry::gauge_set("gsd.regroup.witness", w.0 as f64);
            phoenix_telemetry::gauge_set(
                "gsd.regroup.witness_epoch",
                self.regroup.witness_epoch() as f64,
            );
        }
        if !c.dead.is_empty() {
            // Quorum denominator shrank on home-node dead testimony.
            phoenix_telemetry::counter_add(
                "gsd.regroup.dead_discounts",
                c.dead.len() as u64,
            );
        }
        if let Some(w) = c.witness_failover {
            // The held majority moved the witness off an unreachable
            // partition; record it and tell the config service so an
            // operator (and GridView) can see the new quorum anchor.
            phoenix_telemetry::counter_add("gsd.regroup.witness_failover", 1);
            ctx.trace(TraceEvent::Milestone {
                label: "witness-failover",
                value: w.0 as f64,
            });
            if c.reachable.first() == Some(&self.partition) {
                ctx.send(
                    self.config,
                    KernelMsg::CfgSetParam {
                        req: RequestId(0),
                        key: "regroup_witness".to_string(),
                        value: format!("{}:{}", w.0, self.regroup.witness_epoch()),
                    },
                );
            }
        }
        match c.verdict {
            Verdict::Majority if !self.regroup.frozen() => {
                // We hold quorum: normal operation (the concluded round
                // is the takeover licence `majority_confirmed` checks).
                // The lowest reachable partition flags the unreachable
                // side's directory entries stale so clients stop routing
                // to daemons nobody can vouch for.
                if c.reachable.first() == Some(&self.partition) {
                    for p in self.topology.partitions.iter().map(|p| p.id) {
                        if !c.reachable.contains(&p) {
                            ctx.send(
                                self.config,
                                KernelMsg::DirectoryStale {
                                    partition: p,
                                    stale: true,
                                },
                            );
                        }
                    }
                }
                if self.regroup.witness_lost() {
                    ctx.set_timer(self.params.ft.regroup.frozen_retry, TOK_REGROUP_RETRY);
                }
            }
            Verdict::Majority => {
                // Frozen, but a majority answered: the partition healed.
                // Ask the freshest unfrozen peer to take us back in; thaw
                // happens only when the majority's broadcast names us.
                // If *everyone* reachable is frozen (the whole cluster
                // fragmented and re-healed), one partition re-seeds the
                // group by thawing and announcing itself: the witness's
                // partition when the vote table is on and the witness is
                // reachable (it anchors the quorum, so the rebuilt group
                // forms around it), else the lowest reachable.
                match c.rejoin_target {
                    Some((gsd, _)) => ctx.send(gsd, KernelMsg::MetaJoin { member: self.local }),
                    None => {
                        let reseed = self
                            .regroup
                            .witness()
                            .filter(|w| c.reachable.contains(w))
                            .or_else(|| c.reachable.first().copied());
                        // A majority that leans on dead-partition
                        // discounts is testimony, not reachability:
                        // out-wait a full takeover-delay chain of such
                        // verdicts before re-seeding, as hysteresis
                        // against a transient or one-sided view.
                        let licensed = c.dead.is_empty()
                            || self.regroup.takeover_licensed(ctx.now());
                        if reseed == Some(self.partition) && licensed {
                            // Re-seed as a *singleton* group. Our
                            // pre-fragmentation member list still names
                            // frozen peers, so ring leadership would point
                            // at one of them — a leader that drops every
                            // MetaJoin while frozen, wedging the rebuild.
                            // Shrinking to ourselves makes us the leader;
                            // peers' retry rounds find us unfrozen, join,
                            // and thaw when our broadcast names them.
                            self.members.retain(|m| m.partition == self.partition);
                            self.leave_frozen(ctx);
                            self.refresh_roles(ctx);
                            self.announce_membership_change(ctx);
                        }
                    }
                }
                ctx.set_timer(self.params.ft.regroup.frozen_retry, TOK_REGROUP_RETRY);
            }
            Verdict::Minority => {
                self.enter_frozen(ctx);
                ctx.set_timer(self.params.ft.regroup.frozen_retry, TOK_REGROUP_RETRY);
            }
        }
    }

    /// Lost quorum: freeze. The GSD stays alive and answers pings, but
    /// every membership-changing action (diagnosis, takeover, rescue,
    /// rejoin, directory writes) is suppressed until a majority-side
    /// membership broadcast names us again.
    fn enter_frozen(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        if !self.regroup.freeze() {
            return;
        }
        phoenix_telemetry::counter_add("gsd.regroup.freezes", 1);
        phoenix_telemetry::gauge_set("gsd.regroup.frozen", 1.0);
        self.frozen_span =
            Some(phoenix_telemetry::span_start("gsd.regroup.frozen", "gsd", ctx.node().0));
        ctx.trace(TraceEvent::Milestone {
            label: "gsd-frozen",
            value: self.partition.0 as f64,
        });
        ctx.trace(TraceEvent::RoleChange {
            pid: ctx.pid(),
            role: "frozen",
        });
        self.last_role = "frozen";
        // Abort in-flight probe sessions: a pending diagnosis must not
        // ripen into a takeover after we lost quorum. `abort_probe`
        // retracts the suspicion marks so they cannot leak.
        let mut active: Vec<(u64, ProbeKind)> = self
            .probes
            .iter()
            .filter(|(_, s)| s.active)
            .map(|(&id, s)| (id, s.kind))
            .collect();
        active.sort_unstable_by_key(|(id, _)| *id);
        for (id, kind) in active {
            if let Some(s) = self.probes.get_mut(&id) {
                s.active = false;
                phoenix_telemetry::span_end(s.span);
            }
            self.abort_probe(kind);
        }
        self.freeze_fanout(ctx, true);
    }

    /// Quorum regained and the majority named us: thaw.
    fn leave_frozen(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        if !self.regroup.thaw() {
            return;
        }
        phoenix_telemetry::gauge_set("gsd.regroup.frozen", 0.0);
        if let Some(span) = self.frozen_span.take() {
            phoenix_telemetry::span_end(span);
        }
        ctx.trace(TraceEvent::Milestone {
            label: "gsd-thawed",
            value: self.partition.0 as f64,
        });
        let role = self.role();
        ctx.trace(TraceEvent::RoleChange {
            pid: ctx.pid(),
            role,
        });
        self.last_role = role;
        self.freeze_fanout(ctx, false);
    }

    /// Tell the partition's services they are (no longer) on a minority
    /// island: a frozen bulletin answers queries `complete = false`, a
    /// frozen detector stops exporting.
    fn freeze_fanout(&self, ctx: &mut Ctx<'_, KernelMsg>, frozen: bool) {
        let msg = KernelMsg::RegroupFreeze { frozen };
        for pid in [self.local.event, self.local.bulletin, self.local.checkpoint] {
            if pid != Pid(0) {
                ctx.send(pid, msg.clone());
            }
        }
        if let Some(spec) = self.topology.partition(self.partition) {
            for node in spec.all_nodes() {
                if let Some(ns) = self.node_daemons.get(&node) {
                    ctx.send(ns.detector, msg.clone());
                }
            }
        }
    }

    /// Gate a ripened meta diagnosis on quorum. Returns true when the
    /// takeover may proceed. On false the probe session is unwound
    /// (suspicion mark retracted, probing flag cleared) so the next scan
    /// re-suspects — by which time our own round has concluded and the
    /// verdict is in.
    fn regroup_licenses_takeover(
        &mut self,
        ctx: &mut Ctx<'_, KernelMsg>,
        partition: PartitionId,
    ) -> bool {
        if !self.regroup.enabled() {
            return true;
        }
        if self.regroup.frozen() {
            phoenix_telemetry::counter_add("gsd.regroup.suppressed", 1);
            self.abort_probe(ProbeKind::Meta(partition));
            return false;
        }
        // Reachability veto: if the suspected partition acked the last
        // concluded regroup round it is alive and routable — the stale
        // beats are a transient (e.g. just-healed links), not a failure.
        if self.regroup.recently_reachable(partition, ctx.now()) {
            phoenix_telemetry::counter_add("gsd.regroup.vetoed", 1);
            self.abort_probe(ProbeKind::Meta(partition));
            return false;
        }
        // MSCS-style regroup period: a takeover needs an unbroken chain
        // of majority verdicts held for at least `takeover_delay`, long
        // enough for any minority islet to have frozen itself.
        if !self.regroup.takeover_licensed(ctx.now()) {
            phoenix_telemetry::counter_add("gsd.regroup.deferred", 1);
            self.abort_probe(ProbeKind::Meta(partition));
            self.start_regroup_round(ctx);
            return false;
        }
        true
    }

    /// Adopt a gossiped witness view (regroup ping/ack traffic) and keep
    /// the telemetry gauges current when it changes.
    fn observe_witness(&mut self, witness: PartitionId, witness_epoch: u64) {
        if self.regroup.observe_witness(witness, witness_epoch) {
            phoenix_telemetry::gauge_set("gsd.regroup.witness", witness.0 as f64);
            phoenix_telemetry::gauge_set("gsd.regroup.witness_epoch", witness_epoch as f64);
        }
    }

    // ---- heartbeat ingestion -----------------------------------------------

    fn on_wd_heartbeat(
        &mut self,
        ctx: &mut Ctx<'_, KernelMsg>,
        from: Pid,
        node: NodeId,
        nic: NicId,
        seq: u64,
    ) {
        // Duplicate suppression before any bookkeeping: a beat already seen
        // on this NIC (network duplication, or an old reordered copy) must
        // not refresh liveness or count in telemetry. A seq far below the
        // window means the WD restarted and its counter reset — accept it.
        let mut transitions: Vec<HealthTransition> = Vec::new();
        if let Some(t) = self.wd_tracks.get_mut(&node) {
            if let Some(last_seq) = t.last_seq.get_mut(nic.0 as usize) {
                if is_dup_seq(*last_seq, seq) {
                    phoenix_telemetry::counter_add("gsd.dedup.dropped", 1);
                    return;
                }
                // The seq jump on this interface is per-NIC loss evidence;
                // the arrival itself is delivery evidence.
                let gap = seq_gap(*last_seq, seq);
                if gap > 0 {
                    transitions.extend(self.nic_health.observe_misses(nic, gap));
                }
                transitions.extend(self.nic_health.observe_delivery(nic));
                *last_seq = seq;
            }
        }
        if self.nic_health.enabled() {
            // Echo the beat over the same interface — the WD's only window
            // onto its per-NIC round trips (it sends, we receive).
            ctx.send_via(from, nic, KernelMsg::WdHeartbeatAck { nic, seq });
        }
        self.apply_health_transitions(ctx, transitions);
        phoenix_telemetry::counter_add("gsd.wd_heartbeats.received", 1);
        phoenix_telemetry::measure(
            "wd.heartbeat.flight",
            "wd",
            node.0,
            phoenix_telemetry::key(&[node.0 as u64, nic.0 as u64, seq]),
        );
        let now = ctx.now();
        let mut recovered_node = false;
        let mut recovered_nic = false;
        if let Some(t) = self.wd_tracks.get_mut(&node) {
            if let Some(last) = t.last.get_mut(nic.0 as usize) {
                *last = now;
            }
            if t.node_down {
                t.node_down = false;
                recovered_node = true;
            }
            if t.nic_down.get(nic.0 as usize).copied().unwrap_or(false) {
                t.nic_down[nic.0 as usize] = false;
                recovered_nic = true;
            }
        }
        if recovered_node {
            self.publish(ctx, EventType::NodeRecovery, node, EventPayload::Node(node));
        }
        if recovered_nic {
            self.publish(
                ctx,
                EventType::NetworkRecovery,
                node,
                EventPayload::Nic(node, nic),
            );
        }
    }

    fn on_meta_heartbeat(
        &mut self,
        ctx: &mut Ctx<'_, KernelMsg>,
        from_partition: PartitionId,
        nic: NicId,
        seq: u64,
    ) {
        // Duplicate suppression, same contract as WD beats: a replayed seq
        // must not refresh the predecessor's liveness window.
        let mut transitions: Vec<HealthTransition> = Vec::new();
        if let Some(t) = &mut self.pred {
            if t.member.partition == from_partition {
                if let Some(last_seq) = t.last_seq.get_mut(nic.0 as usize) {
                    if is_dup_seq(*last_seq, seq) {
                        phoenix_telemetry::counter_add("gsd.dedup.dropped", 1);
                        return;
                    }
                    // Ring beats feed the same per-NIC evidence stream as
                    // WD beats: network `i` is shared infrastructure.
                    let gap = seq_gap(*last_seq, seq);
                    if gap > 0 {
                        transitions.extend(self.nic_health.observe_misses(nic, gap));
                    }
                    transitions.extend(self.nic_health.observe_delivery(nic));
                    *last_seq = seq;
                }
            }
        }
        self.apply_health_transitions(ctx, transitions);
        phoenix_telemetry::measure(
            "meta.heartbeat.flight",
            "gsd",
            ctx.node().0,
            phoenix_telemetry::key(&[from_partition.0 as u64, nic.0 as u64, seq]),
        );
        let now = ctx.now();
        let mut recovered_nic = false;
        let mut node = NodeId(0);
        if let Some(t) = &mut self.pred {
            if t.member.partition == from_partition {
                node = t.member.node;
                if let Some(last) = t.last.get_mut(nic.0 as usize) {
                    *last = now;
                }
                if t.nic_down.get(nic.0 as usize).copied().unwrap_or(false) {
                    t.nic_down[nic.0 as usize] = false;
                    recovered_nic = true;
                }
            }
        }
        if recovered_nic {
            self.publish(
                ctx,
                EventType::NetworkRecovery,
                node,
                EventPayload::Nic(node, nic),
            );
        }
    }

    /// Publish a demotion/promotion edge through the event service. A
    /// demoted interface is *degraded* — lossy but not down: WD heartbeats
    /// still fan out over it (paper semantics), but single-path traffic
    /// avoids it until the hysteresis window of clean deliveries closes.
    fn apply_health_transitions(
        &mut self,
        ctx: &mut Ctx<'_, KernelMsg>,
        transitions: Vec<HealthTransition>,
    ) {
        let own = ctx.node();
        for tr in transitions {
            match tr {
                HealthTransition::Demoted(nic) => {
                    phoenix_telemetry::counter_add("gsd.nic.demotions", 1);
                    ctx.trace(TraceEvent::Milestone {
                        label: "nic-degraded",
                        value: nic.0 as f64,
                    });
                    self.publish(
                        ctx,
                        EventType::NetworkDegraded,
                        own,
                        EventPayload::Nic(own, nic),
                    );
                }
                HealthTransition::Promoted(nic) => {
                    phoenix_telemetry::counter_add("gsd.nic.promotions", 1);
                    ctx.trace(TraceEvent::Milestone {
                        label: "nic-repromoted",
                        value: nic.0 as f64,
                    });
                    self.publish(
                        ctx,
                        EventType::NetworkRecovery,
                        own,
                        EventPayload::Nic(own, nic),
                    );
                }
            }
        }
    }

    // ---- delayed-op dispatch -------------------------------------------------

    fn run_op(&mut self, ctx: &mut Ctx<'_, KernelMsg>, op: DelayedOp) {
        match op {
            DelayedOp::ProbeRound(s) => self.probe_round(ctx, s),
            DelayedOp::ProbeTimeout(s) => self.on_probe_timeout(ctx, s),
            DelayedOp::NicDiag { node, nic } => {
                ctx.trace(TraceEvent::FaultDiagnosed {
                    observer: ctx.pid(),
                    target: FaultTarget::Nic(node, nic),
                    diagnosis: Diagnosis::NetworkFailure,
                });
                // One of several redundant networks: no recovery needed.
                ctx.trace(TraceEvent::Recovered {
                    target: FaultTarget::Nic(node, nic),
                    action: RecoveryAction::NoneNeeded,
                });
                self.publish(
                    ctx,
                    EventType::NetworkFault,
                    node,
                    EventPayload::Nic(node, nic),
                );
            }
            DelayedOp::LocalDiagSvc { pid, kind, factory } => {
                ctx.trace(TraceEvent::FaultDiagnosed {
                    observer: ctx.pid(),
                    target: FaultTarget::Process(pid),
                    diagnosis: Diagnosis::ProcessFailure,
                });
                self.publish(
                    ctx,
                    EventType::ServiceFault,
                    ctx.node(),
                    EventPayload::Service(kind, ctx.node()),
                );
                let cost = match kind {
                    ServiceKind::Event => self.params.ft.es_restart_cost,
                    ServiceKind::DataBulletin => self.params.ft.db_restart_cost,
                    ServiceKind::Checkpoint => self.params.ft.ck_restart_cost,
                    _ => self.params.ft.userenv_restart_cost,
                };
                self.schedule(ctx, cost, DelayedOp::Restart(RestartWhat::Svc { kind, factory }));
            }
            DelayedOp::LocalDiagNic { nic } => {
                let own = ctx.node();
                ctx.trace(TraceEvent::FaultDiagnosed {
                    observer: ctx.pid(),
                    target: FaultTarget::Nic(own, nic),
                    diagnosis: Diagnosis::NetworkFailure,
                });
                ctx.trace(TraceEvent::Recovered {
                    target: FaultTarget::Nic(own, nic),
                    action: RecoveryAction::NoneNeeded,
                });
                self.publish(ctx, EventType::NetworkFault, own, EventPayload::Nic(own, nic));
            }
            DelayedOp::Restart(what) => self.execute_restart(ctx, what),
        }
    }
}

impl Actor<KernelMsg> for Gsd {
    fn on_start(&mut self, ctx: &mut Ctx<'_, KernelMsg>) {
        ctx.trace(TraceEvent::ServiceUp {
            pid: ctx.pid(),
            service: "gsd",
            node: ctx.node(),
        });
        self.local.gsd = ctx.pid();
        self.local.node = ctx.node();
        if matches!(self.init, Some(GsdInit::Respawn { .. })) {
            // Need the current node-daemon directory before wiring.
            self.send_directory_query(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, KernelMsg>, from: Pid, msg: KernelMsg) {
        match msg {
            KernelMsg::Boot(dir) => {
                if matches!(self.init, Some(GsdInit::Boot)) {
                    self.init = None;
                    self.wire_from_boot(ctx, &dir);
                }
            }
            KernelMsg::CfgDirectory { directory, .. } => {
                if matches!(self.init, Some(GsdInit::Respawn { .. })) {
                    self.wire_from_respawn(ctx, &directory);
                }
            }
            KernelMsg::WdHeartbeat { node, nic, seq } => {
                self.on_wd_heartbeat(ctx, from, node, nic, seq)
            }
            KernelMsg::MetaHeartbeat {
                from_partition,
                nic,
                seq,
                ..
            } => self.on_meta_heartbeat(ctx, from_partition, nic, seq),
            KernelMsg::MetaJoin { member } => {
                if self.regroup.frozen() {
                    // A frozen GSD must not admit members or bump epochs.
                    phoenix_telemetry::counter_add("gsd.regroup.suppressed", 1);
                    return;
                }
                if self.role() == "leader" {
                    let old_entry = self
                        .members
                        .iter()
                        .find(|m| m.partition == member.partition)
                        .copied();
                    if old_entry == Some(member) {
                        // Idempotent re-join: nothing changed, do not bump
                        // the epoch or rebroadcast (damps membership wars).
                        // Under regroup the joiner may be a frozen peer
                        // asking back in after a heal that required no
                        // takeover — answer it directly with the current
                        // membership so it can thaw.
                        if self.regroup.enabled() {
                            ctx.send(
                                member.gsd,
                                KernelMsg::MetaMembership {
                                    epoch: self.epoch,
                                    members: self.members.clone().into(),
                                },
                            );
                        }
                        return;
                    }
                    if self.regroup.enabled() {
                        if let Some(old) = old_entry {
                            if old.gsd > member.gsd {
                                // The entry we hold is NEWER than the
                                // joiner: a stale pre-partition instance
                                // is asking back in after the majority
                                // already replaced it. Keep the newer
                                // pid authoritative and show the joiner
                                // the membership so it yields and dies.
                                ctx.send(
                                    member.gsd,
                                    KernelMsg::MetaMembership {
                                        epoch: self.epoch,
                                        members: self.members.clone().into(),
                                    },
                                );
                                return;
                            }
                        }
                    }
                    let old_gsd = old_entry.map(|m| m.gsd);
                    self.members.retain(|m| m.partition != member.partition);
                    self.members.push(member);
                    self.refresh_roles(ctx);
                    self.epoch += 1;
                    let msg = KernelMsg::MetaMembership {
                        epoch: self.epoch,
                        members: self.members.clone().into(),
                    };
                    self.broadcast_meta(ctx, msg.clone());
                    // If a still-running instance was replaced (e.g. a
                    // false takeover after a link partition), tell it
                    // directly so it can yield — it is no longer in the
                    // member list and would miss the broadcast.
                    if let Some(old) = old_gsd {
                        if old != member.gsd {
                            ctx.send(old, msg);
                        }
                    }
                    if self.regroup.enabled() {
                        // The partition is vouched-for again: clear any
                        // stale flag a regroup round put on its entry.
                        ctx.send(
                            self.config,
                            KernelMsg::DirectoryStale {
                                partition: member.partition,
                                stale: false,
                            },
                        );
                    }
                    self.push_partition_view(ctx);
                } else if let Some(leader) = self.leader() {
                    self.send_routed(ctx, leader.gsd, leader.node, KernelMsg::MetaJoin { member });
                }
            }
            KernelMsg::MetaMembership { epoch, members } => {
                // Duplicate resolution first, independent of epoch: if the
                // group installed a NEWER GSD for our partition (a rescue
                // or false takeover raced us), yield to it.
                if let Some(other) = members
                    .iter()
                    .find(|m| m.partition == self.partition)
                    .map(|m| m.gsd)
                {
                    if other != ctx.pid() && other > ctx.pid() {
                        if self.draining {
                            // Slow-drain handoff complete: the replacement
                            // runs fresh kernel services on its new node,
                            // and unlike a dead-node takeover this node is
                            // still alive — ours would leak as orphans.
                            let mut orphans: BTreeSet<Pid> = self.svc_tracks.keys().copied().collect();
                            orphans.extend([
                                self.local.event,
                                self.local.bulletin,
                                self.local.checkpoint,
                            ]);
                            for pid in orphans {
                                if pid != Pid(0) && pid != ctx.pid() && ctx.process_is_alive(pid) {
                                    ctx.kill(pid);
                                }
                            }
                        }
                        ctx.trace(TraceEvent::Milestone {
                            label: "gsd-yielded",
                            value: self.partition.0 as f64,
                        });
                        ctx.kill(ctx.pid());
                        return;
                    }
                }
                if epoch >= self.epoch {
                    // A fresh broadcast naming *our* pid is the majority
                    // vouching for us: the only thaw edge a frozen GSD
                    // accepts (self-election on heal would re-split the
                    // brain the moment views diverge).
                    let named_me = members
                        .iter()
                        .any(|m| m.partition == self.partition && m.gsd == ctx.pid());
                    self.epoch = epoch;
                    self.members = members.unwrap_or_clone();
                    // Keep our own entry authoritative.
                    let local = self.local;
                    for m in &mut self.members {
                        if m.partition == local.partition {
                            *m = local;
                        }
                    }
                    if self.my_index().is_none() {
                        self.members.push(local);
                        // Re-join at the next tick, not instantly: a
                        // stale broadcast must not trigger a join →
                        // broadcast → join cycle at network latency.
                        self.needs_rejoin = true;
                    }
                    if named_me && self.regroup.frozen() {
                        self.leave_frozen(ctx);
                    }
                    self.refresh_roles(ctx);
                    self.push_partition_view(ctx);
                }
            }
            KernelMsg::MetaMemberDown { partition, .. } => {
                if partition != self.partition {
                    self.members.retain(|m| m.partition != partition);
                    self.refresh_roles(ctx);
                }
            }
            KernelMsg::SvcRegister { kind, pid, factory } => {
                self.svc_tracks.insert(
                    pid,
                    SvcTrack {
                        kind,
                        factory,
                        last: ctx.now(),
                    },
                );
                // Adopt new kernel-service pids into our MemberInfo.
                let slot = match kind {
                    ServiceKind::Event => Some(&mut self.local.event),
                    ServiceKind::DataBulletin => Some(&mut self.local.bulletin),
                    ServiceKind::Checkpoint => Some(&mut self.local.checkpoint),
                    _ => None,
                };
                if let Some(slot) = slot {
                    if *slot != pid {
                        // Canonical-instance resolution: the NEWER pid is
                        // the legitimate instance; a register from an older
                        // pid is a stale duplicate (e.g. left over from a
                        // false takeover) and is terminated rather than
                        // adopted — otherwise two instances flip-flop the
                        // slot and every flip re-announces cluster-wide.
                        if pid < *slot && ctx.process_is_alive(*slot) {
                            self.svc_tracks.remove(&pid);
                            ctx.kill(pid);
                            return;
                        }
                        let displaced = *slot;
                        *slot = pid;
                        if displaced != Pid(0) && ctx.process_is_alive(displaced) {
                            // Clean up the instance we are replacing.
                            self.svc_tracks.remove(&displaced);
                            ctx.kill(displaced);
                        }
                        // Update membership copy of ourselves.
                        let local = self.local;
                        for m in &mut self.members {
                            if m.partition == local.partition {
                                *m = local;
                            }
                        }
                        self.announce_membership_change(ctx);
                        self.publish(
                            ctx,
                            EventType::ServiceRecovery,
                            ctx.node(),
                            EventPayload::Service(kind, ctx.node()),
                        );
                    }
                }
                if kind == ServiceKind::UserEnvironment {
                    self.supervision_dirty = true;
                }
            }
            KernelMsg::SvcHeartbeat { pid, .. } => {
                if let Some(t) = self.svc_tracks.get_mut(&pid) {
                    t.last = ctx.now();
                }
            }
            KernelMsg::ProbeResp { req } => self.on_probe_resp(ctx, req.0),
            KernelMsg::ProbeReq { req } => {
                ctx.send(from, KernelMsg::ProbeResp { req });
            }
            KernelMsg::SlowPing { seq } => {
                // Echo immediately — the pinger turns the round trip into
                // an RTT sample; a slow node's stretched service time is
                // exactly the signal being measured.
                ctx.send(from, KernelMsg::SlowPong { seq });
            }
            KernelMsg::SlowPong { seq } => {
                if let Some((node, at)) = self.slow_ping_sent.remove(&seq) {
                    self.observe_peer_rtt(ctx, node, ctx.now().since(at).as_nanos());
                }
            }
            KernelMsg::SlowLeaderYield { from_partition } => {
                // Honoured only while actually leading, only from the
                // current ring princess, at most once per degradation —
                // and only when our own detector corroborates: a truly
                // slow leader reads a majority of its peers as Slow (its
                // own stretched latency reflected back, `gray_self`). A
                // healthy leader does not, so a request from a princess
                // that is itself the degraded one (it observes only us,
                // so it cannot tell) is rejected instead of toppling a
                // healthy leader.
                if self.slow.enabled()
                    && !self.regroup.frozen()
                    && self.role() == "leader"
                    && self.members.get(1).map(|m| m.partition) == Some(from_partition)
                    && !self.quarantined.contains(&self.partition)
                    && self.gray_self()
                {
                    phoenix_telemetry::counter_add("gsd.slow.leader_yields", 1);
                    ctx.trace(TraceEvent::Milestone {
                        label: "slow-leader-yield",
                        value: self.partition.0 as f64,
                    });
                    // Self-quarantine: the same broadcast that demotes us
                    // to the ring tail promotes the princess — a 0-leader
                    // gap at worst, never two leaders.
                    let mut next = self.quarantined.clone();
                    next.insert(self.partition);
                    self.set_quarantine(ctx, next);
                }
            }
            KernelMsg::MetaQuarantine { epoch, quarantined } => {
                if !self.slow.enabled() {
                    return;
                }
                let set: BTreeSet<PartitionId> = quarantined.into_iter().collect();
                if epoch < self.quarantine_epoch
                    || (epoch == self.quarantine_epoch && set == self.quarantined)
                {
                    return;
                }
                self.quarantine_epoch = epoch;
                self.quarantined = set;
                if !self.quarantined.contains(&self.partition) {
                    // Reinstated (or never in): a future quarantine may
                    // legitimately drain again.
                    self.draining = false;
                    self.drained = false;
                }
                self.refresh_roles(ctx);
                self.maybe_drain(ctx);
            }
            KernelMsg::RegroupPing {
                round,
                witness,
                witness_epoch,
                ..
            } => {
                // Always answer (even frozen — reachability is
                // reachability; the `frozen` bit tells the pinger whether
                // we can vouch for a membership).
                if self.regroup.enabled() {
                    self.observe_witness(witness, witness_epoch);
                    ctx.send(
                        from,
                        KernelMsg::RegroupAck {
                            from_partition: self.partition,
                            epoch: self.epoch,
                            round,
                            frozen: self.regroup.frozen(),
                            weight: self.regroup.configured_weight(self.partition),
                            witness: self.regroup.witness().unwrap_or(PartitionId(0)),
                            witness_epoch: self.regroup.witness_epoch(),
                        },
                    );
                    // Verdict propagation: a peer opening a round suspects
                    // the topology changed. On an even split the losing
                    // side's leader can have its entire ring neighbourhood
                    // on its own island (predecessor reachable, so no
                    // suspicion ever fires) and would lead until heal —
                    // echo a round of our own so every reachable GSD
                    // concludes a verdict within one window of the first
                    // detector. `start_regroup_round` dedups on an active
                    // round, and echoes only chain while pings keep
                    // arriving, so steady state stays quiet.
                    if self.regroup.votes_enabled() {
                        self.start_regroup_round(ctx);
                    }
                }
            }
            KernelMsg::RegroupAck {
                from_partition,
                epoch,
                round,
                frozen,
                weight,
                witness,
                witness_epoch,
            } => {
                if self.regroup.enabled() {
                    self.observe_witness(witness, witness_epoch);
                    self.regroup.on_ack(
                        round,
                        from_partition,
                        AckInfo {
                            gsd: from,
                            epoch,
                            frozen,
                            weight,
                        },
                        ctx.now(),
                    );
                }
            }
            KernelMsg::RegroupProbeAck {
                round,
                partition,
                alive,
                ..
            } => {
                // Home-node testimony about a peer partition's GSD. Our
                // own partition never needs testifying about.
                if self.regroup.enabled() && partition != self.partition {
                    self.regroup.on_home_report(round, partition, alive);
                }
            }
            KernelMsg::CfgSetParam { key, value, .. } => {
                if key == "hb_interval_ms" {
                    if let Ok(ms) = value.parse::<u64>() {
                        self.params.ft.hb_interval =
                            phoenix_sim::SimDuration::from_millis(ms.max(1));
                        // Reset heartbeat baselines so a *longer* interval
                        // does not trip deadlines computed from beats that
                        // were sent on the old cadence.
                        let now = ctx.now();
                        for t in self.wd_tracks.values_mut() {
                            for l in t.last.iter_mut() {
                                *l = now;
                            }
                        }
                        if let Some(p) = &mut self.pred {
                            for l in p.last.iter_mut() {
                                *l = now;
                            }
                        }
                    }
                }
            }
            KernelMsg::DirectoryUpdateNode { services } => {
                // Config respawned a node's daemons (node brought back up).
                let node = services.node;
                self.cluster_wds.insert(node, services.wd);
                // Vote-table profiles fan this out to *every* GSD so
                // regroup probes reach fresh WD pids; only the owning
                // partition tracks the node for fault monitoring.
                let mine = self
                    .topology
                    .partition(self.partition)
                    .is_some_and(|spec| spec.all_nodes().contains(&node));
                if !mine {
                    return;
                }
                // Config's push supersedes anything we were re-asserting.
                self.dir_resend_nodes.remove(&node);
                self.node_daemons.insert(node, services);
                let was_down = self
                    .wd_tracks
                    .get(&node)
                    .map(|t| t.node_down)
                    .unwrap_or(false);
                let nics = self.my_nic_known.len();
                self.wd_tracks
                    .insert(node, WdTrack::new(services.wd, nics, ctx.now()));
                if was_down {
                    self.publish(ctx, EventType::NodeRecovery, node, EventPayload::Node(node));
                }
            }
            KernelMsg::CkLoadResp { data, .. } => {
                // Supervision roster restore after GSD respawn.
                if let Some(CheckpointData::Supervision { entries }) = data {
                    for (factory, old_pid) in entries {
                        if matches!(self.recovery, None) {
                            // In-place restart: old instances may be alive;
                            // ping them with the view so they re-register.
                            if ctx.process_is_alive(old_pid) {
                                ctx.send(
                                    old_pid,
                                    KernelMsg::PartitionView {
                                        members: self.members.clone(),
                                        local: self.local,
                                    },
                                );
                                continue;
                            }
                        }
                        let args = RespawnArgs {
                            kind: ServiceKind::UserEnvironment,
                            partition: self.partition,
                            node: ctx.node(),
                            gsd: ctx.pid(),
                            checkpoint: self.local.checkpoint,
                            members: self.members.clone(),
                            action: RecoveryAction::Migrated(ctx.node()),
                            params: self.params.clone(),
                        };
                        let built = self.registry.borrow_mut().build(&factory, &args);
                        if let Some(actor) = built {
                            ctx.spawn(ctx.node(), actor);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, KernelMsg>, token: u64) {
        match token {
            TOK_SCAN => {
                if self.monitoring {
                    // Frozen: no suspicion processing at all — the scan
                    // deadline loop is what ripens into takeovers. The
                    // timer stays armed so monitoring resumes on thaw.
                    if !self.regroup.frozen() {
                        self.scan(ctx);
                    }
                    ctx.set_timer(self.params.ft.check_interval, TOK_SCAN);
                }
            }
            TOK_TICK => {
                if self.monitoring {
                    self.tick(ctx);
                }
            }
            TOK_DIR_RETRY => {
                // Still waiting for the respawn directory: the query or its
                // reply was lost — ask again.
                if matches!(self.init, Some(GsdInit::Respawn { .. })) {
                    self.send_directory_query(ctx);
                }
            }
            TOK_REGROUP => self.conclude_regroup(ctx),
            TOK_REGROUP_RETRY => {
                // Heal detection: while frozen, keep opening rounds until
                // a majority answers. An unfrozen majority polls too while
                // the witness is unreachable, so the failover can fire the
                // moment the takeover licence ripens (and so a healed
                // witness is re-observed promptly).
                if self.regroup.frozen() || self.regroup.witness_lost() {
                    self.start_regroup_round(ctx);
                }
            }
            t if t > OP_BASE => {
                if let Some(op) = self.ops.remove(&(t - OP_BASE)) {
                    self.run_op(ctx, op);
                }
            }
            _ => {}
        }
    }

    fn on_kill(&mut self, _now: phoenix_sim::SimTime) {
        // Probe sessions die with this GSD: abandon their spans with an
        // `aborted` disposition so `open_spans()` cannot climb across
        // fault schedules. Deterministic order (BTreeMap-free probes map
        // is a HashMap, so sort by session id first).
        let mut active: Vec<u64> = self
            .probes
            .iter()
            .filter(|(_, s)| s.active)
            .map(|(&id, _)| id)
            .collect();
        active.sort_unstable();
        for id in active {
            if let Some(s) = self.probes.get_mut(&id) {
                s.active = false;
                phoenix_telemetry::span_abort(s.span);
            }
        }
        // A GSD that dies frozen (most often: yielding to the majority's
        // replacement after a heal) abandons its frozen-episode span, and
        // any round still collecting goes with it.
        if let Some(span) = self.round_span.take() {
            phoenix_telemetry::span_abort(span);
        }
        if let Some(span) = self.frozen_span.take() {
            phoenix_telemetry::span_abort(span);
        }
    }

    fn name(&self) -> &str {
        "gsd"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}
