//! Business-computing scenario: the 7×24 hosting story from the paper's
//! introduction ("cluster system software should provide high availability
//! support for business computing which promises delivering 7x24
//! service"). A long-running multi-tier application keeps serving while
//! we kill daemons and crash the server node hosting the partition
//! services — the kernel detects, restarts, migrates, and the
//! application-state view stays available the whole time.
//!
//! ```sh
//! cargo run --example business_hosting
//! ```

use phoenix::kernel::boot::boot_and_stabilize;
use phoenix::kernel::client::ClientHandle;
use phoenix::kernel::KernelParams;
use phoenix::proto::{
    BulletinQuery, ClusterTopology, JobId, KernelMsg, RequestId, TaskSpec,
};
use phoenix::sim::{Fault, NodeId, SimDuration};

/// Count running application instances visible through the bulletin's
/// single access point.
fn visible_apps(
    world: &mut phoenix::sim::World<KernelMsg>,
    client: &ClientHandle,
    bulletin: phoenix::sim::Pid,
    req: u64,
) -> (usize, bool) {
    client.send(
        world,
        bulletin,
        KernelMsg::DbQuery {
            req: RequestId(req),
            query: BulletinQuery::Apps,
        },
    );
    world.run_for(SimDuration::from_millis(300));
    for (_, m) in client.drain() {
        if let KernelMsg::DbResp {
            entries, complete, ..
        } = m
        {
            let up = entries
                .iter()
                .filter(|e| {
                    matches!(
                        &e.value,
                        phoenix::proto::BulletinValue::App(a)
                            if a.status == phoenix::proto::AppStatus::Running
                    )
                })
                .count();
            return (up, complete);
        }
    }
    (0, false)
}

fn main() {
    let topology = ClusterTopology::uniform(2, 5, 1);
    let (mut world, cluster) = boot_and_stabilize(topology, KernelParams::fast(), 99);
    let client = ClientHandle::spawn(&mut world, NodeId(3));

    // Deploy a three-tier "web application" directly through PPM: one
    // long-running tier instance per compute node.
    let tiers: Vec<NodeId> = cluster
        .topology
        .partitions
        .iter()
        .flat_map(|p| p.compute.iter().copied())
        .take(3)
        .collect();
    let first_ppm = cluster.directory.node(tiers[0]).unwrap().ppm;
    client.send(
        &mut world,
        first_ppm,
        KernelMsg::PpmExec {
            req: RequestId(1),
            job: JobId(100),
            task: TaskSpec {
                cpus: 2,
                cpu_load: 0.35,
                mem_load: 0.25,
                duration_ns: None, // runs forever: a service, not a batch job
            },
            targets: tiers.clone(),
            reply_to: client.pid,
        },
    );
    world.run_for(SimDuration::from_secs(2));
    let _ = client.drain();

    let (up, complete) = visible_apps(&mut world, &client, cluster.bulletin(), 10);
    println!("deployed: {up}/3 tiers running (federation complete: {complete})");

    println!("\n>> killing the event service of partition 0 (process fault)...");
    world.kill_process(cluster.event());
    world.run_for(SimDuration::from_secs(4));
    let (up, complete) = visible_apps(&mut world, &client, cluster.bulletin(), 11);
    println!("   app still visible: {up}/3 tiers (complete: {complete}) — ES restarted");

    println!("\n>> crashing partition 1's server node (GSD + services die)...");
    let server1 = cluster.topology.partitions[1].server;
    world.apply_fault(Fault::CrashNode(server1));
    world.run_for(SimDuration::from_secs(8));
    let (up, complete) = visible_apps(&mut world, &client, cluster.bulletin(), 12);
    println!("   after migration to the backup node: {up}/3 tiers (complete: {complete})");

    println!("\n>> killing one application tier (app fault)...");
    // The detector notices the vanished process and flags it failed.
    let tier_node = tiers[1];
    for pid in world.pids_on(tier_node) {
        // The app proc is the one that is not WD/detector/PPM (spawned last).
        if world
            .pids_on(tier_node)
            .iter()
            .max()
            .map(|&m| m == pid)
            .unwrap_or(false)
        {
            world.kill_process(pid);
        }
    }
    world.run_for(SimDuration::from_secs(3));
    let (up, _) = visible_apps(&mut world, &client, cluster.bulletin(), 13);
    println!("   app detector reports {up}/3 tiers running — SLA breach visible");
    println!("\n7×24 story reproduced: every layer failure was absorbed or surfaced");
    println!("through the kernel (supervision, migration, app-state detection).");
}
