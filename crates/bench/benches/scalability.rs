//! Timing benches for Sec 5.3 / Sec 4.3: simulator throughput of the
//! monitoring stack as the cluster grows, and the flat-vs-partitioned
//! membership ablation (the paper's key scalability design decision).

use phoenix_bench::scale::{membership_compare, monitor_run};
use phoenix_bench::timing::bench;
use phoenix_kernel::{FtParams, KernelParams};

fn bench_monitoring() {
    for partitions in [2usize, 4, 8] {
        let nodes = partitions * 16;
        bench("monitoring_scale", &nodes.to_string(), 10, || {
            monitor_run(partitions, 16, 10, KernelParams::default(), 5)
        });
    }
}

fn bench_membership() {
    for nodes in [32usize, 64] {
        bench(
            "membership_ablation",
            &format!("flat_vs_partitioned/{nodes}"),
            10,
            || {
                let p = membership_compare(nodes, FtParams::fast(), 4, 3);
                assert!(p.ratio > 1.0, "partitioned must win: {p:?}");
                p
            },
        );
    }
}

fn main() {
    bench_monitoring();
    bench_membership();
}
