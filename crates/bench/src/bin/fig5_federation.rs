//! Regenerates **Figure 5 — Data Bulletin Service Federation**: the
//! complete-graph federation with a single access point. "The user can
//! query any data bulletin service to obtain cluster-wide information…
//! If one data bulletin service fails, only the state of one partition
//! can't be obtained. With the support of GSD, the failed data bulletin
//! service will be restarted and come to work in a short period of time."

use phoenix_kernel::boot::boot_and_stabilize;
use phoenix_kernel::client::ClientHandle;
use phoenix_kernel::KernelParams;
use phoenix_proto::{BulletinQuery, ClusterTopology, KernelMsg, RequestId};
use phoenix_sim::{NodeId, SimDuration};

fn query(
    w: &mut phoenix_sim::World<KernelMsg>,
    client: &ClientHandle,
    db: phoenix_sim::Pid,
    req: u64,
) -> (usize, bool) {
    client.send(
        w,
        db,
        KernelMsg::DbQuery {
            req: RequestId(req),
            query: BulletinQuery::Resources,
        },
    );
    w.run_for(SimDuration::from_millis(300));
    for (_, m) in client.drain() {
        if let KernelMsg::DbResp {
            entries, complete, ..
        } = m
        {
            return (entries.len(), complete);
        }
    }
    (0, false)
}

fn main() {
    let partitions = 8;
    let topo = ClusterTopology::uniform(partitions, 5, 1);
    let n = topo.node_count();
    let (mut w, cluster) = boot_and_stabilize(topo, KernelParams::fast(), 35);
    w.run_for(SimDuration::from_secs(2)); // detectors populate

    let client = ClientHandle::spawn(&mut w, NodeId(2));
    println!("Federation of {partitions} data-bulletin instances over {n} nodes.\n");
    println!("== single access point: query EVERY instance, expect the same answer ==");
    for (i, member) in cluster.directory.partitions.clone().iter().enumerate() {
        let (rows, complete) = query(&mut w, &client, member.bulletin, 100 + i as u64);
        println!("  instance part{i}: {rows} resource rows, complete={complete}");
    }

    println!("\n== failure: kill partition 3's bulletin ==");
    let db3 = cluster.directory.partitions[3].bulletin;
    w.kill_process(db3);
    let (rows, complete) = query(&mut w, &client, cluster.bulletin(), 200);
    println!("  query via part0: {rows} rows, complete={complete}  (one partition missing)");

    println!("\n== recovery: GSD restarts the bulletin ==");
    w.run_for(SimDuration::from_secs(4));
    let (rows, complete) = query(&mut w, &client, cluster.bulletin(), 201);
    println!("  query via part0: {rows} rows, complete={complete}");
    println!("\nFig 5 reproduced: any instance answers cluster-wide; a failed instance");
    println!("loses only its partition's state until the GSD restarts it.");
}
