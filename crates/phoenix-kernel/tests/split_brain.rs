//! Split-brain scenarios: what happens when the network lies.
//!
//! A link partition between a ring observer and its predecessor makes the
//! predecessor *look* dead (heartbeats and probes both cross the same
//! broken link). The observer migrates the "failed" GSD — producing two
//! live GSDs for one partition. The kernel's duplicate resolution (the
//! older instance yields to the newer one named in a fresher membership
//! broadcast) must converge back to a single-owner state.

use phoenix_kernel::boot::boot_and_stabilize;
use phoenix_kernel::KernelParams;
use phoenix_proto::{ClusterTopology, KernelMsg};
use phoenix_sim::{Fault, SimDuration, TraceEvent, World};

fn cluster() -> (World<KernelMsg>, phoenix_kernel::PhoenixCluster) {
    boot_and_stabilize(ClusterTopology::uniform(3, 4, 1), KernelParams::fast(), 71)
}

#[test]
fn link_partition_causes_false_diagnosis_then_converges() {
    let (mut w, cluster) = cluster();
    w.run_for(SimDuration::from_secs(3));

    // Partition 2's GSD monitors partition 1's. Cut the link between the
    // two *server nodes* only — partition 1's GSD is alive and still
    // reachable by everyone else.
    let server1 = cluster.topology.partitions[1].server;
    let server2 = cluster.topology.partitions[2].server;
    w.apply_fault(Fault::PartitionLink(server1, server2));

    // Give the observer time to mis-diagnose and migrate, and the
    // duplicate-resolution machinery time to settle.
    w.run_for(SimDuration::from_secs(12));
    w.apply_fault(Fault::HealLink(server1, server2));
    w.run_for(SimDuration::from_secs(10));

    // Converged: exactly one live GSD claims partition 1. Count live
    // gsd-service pids announced for partition 1's current node set.
    let yields = w
        .trace()
        .count(|e| matches!(e, TraceEvent::Milestone { label: "gsd-yielded", .. }));
    // Either the false takeover never won (timing) or a duplicate was
    // created and one side yielded; in both cases the system must be
    // quiet and consistent now.
    w.trace_mut().clear();
    w.run_for(SimDuration::from_secs(5));
    let new_faults = w.trace().count(|e| {
        matches!(
            e,
            TraceEvent::FaultDiagnosed {
                diagnosis: phoenix_sim::Diagnosis::NodeFailure,
                ..
            }
        )
    });
    assert_eq!(
        new_faults, 0,
        "no residual node-failure churn after heal (yields seen: {yields})"
    );

    // And the whole cluster still answers queries completely.
    let client = phoenix_kernel::ClientHandle::spawn(&mut w, cluster.topology.partitions[0].server);
    client.send(
        &mut w,
        cluster.config(),
        KernelMsg::CfgQueryDirectory {
            req: phoenix_proto::RequestId(1),
        },
    );
    w.run_for(SimDuration::from_millis(50));
    let dir = client
        .drain()
        .into_iter()
        .find_map(|(_, m)| match m {
            KernelMsg::CfgDirectory { directory, .. } => Some(*directory),
            _ => None,
        })
        .expect("config lives");
    assert_eq!(dir.partitions.len(), 3);
    for m in &dir.partitions {
        assert!(w.is_alive(m.gsd), "{:?} has a live GSD", m.partition);
    }
}

#[test]
fn meta_ring_survives_simultaneous_double_failure() {
    let (mut w, cluster) = cluster();
    w.run_for(SimDuration::from_secs(3));
    // Kill two of the three GSDs at the same instant. The survivors'
    // takeover plans plus the leader rescue sweep must eventually restore
    // all three members.
    w.kill_process(cluster.gsd(0));
    w.kill_process(cluster.gsd(1));
    w.run_for(SimDuration::from_secs(25));

    let client = phoenix_kernel::ClientHandle::spawn(&mut w, cluster.topology.partitions[0].server);
    client.send(
        &mut w,
        cluster.config(),
        KernelMsg::CfgQueryDirectory {
            req: phoenix_proto::RequestId(2),
        },
    );
    w.run_for(SimDuration::from_millis(50));
    let dir = client
        .drain()
        .into_iter()
        .find_map(|(_, m)| match m {
            KernelMsg::CfgDirectory { directory, .. } => Some(*directory),
            _ => None,
        })
        .expect("config lives");
    for m in &dir.partitions {
        assert!(
            w.is_alive(m.gsd),
            "{:?} recovered after double failure",
            m.partition
        );
    }
}
