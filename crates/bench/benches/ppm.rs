//! Timing bench for parallel process management (DESIGN.md ablation 5):
//! tree fan-out vs sequential remote job loading. The virtual-time launch
//! latency is asserted inside the measurement (log-depth vs linear).

use phoenix_bench::timing::bench;
use phoenix_kernel::client::ClientHandle;
use phoenix_kernel::ppm::PpmAgent;
use phoenix_proto::{JobId, KernelMsg, NodeServices, RequestId, ServiceDirectory, TaskSpec};
use phoenix_sim::{ClusterBuilder, NodeId, NodeSpec, Pid, SimDuration, SimTime};

/// Build a world with `n` PPM agents and launch a job on all of them;
/// returns the virtual time until all acks arrive.
fn launch(n: u32, tree: bool) -> SimTime {
    let mut w = ClusterBuilder::new()
        .nodes(n as usize, NodeSpec::default())
        .build::<KernelMsg>();
    let det = ClientHandle::spawn(&mut w, NodeId(0));
    let agents: Vec<Pid> = (0..n)
        .map(|i| w.spawn(NodeId(i), Box::new(PpmAgent::new(NodeId(i)))))
        .collect();
    let dir = ServiceDirectory {
        config: Pid(0),
        security: Pid(0),
        partitions: vec![],
        nodes: (0..n)
            .map(|i| NodeServices {
                node: NodeId(i),
                wd: Pid(0),
                detector: det.pid,
                ppm: agents[i as usize],
            })
            .collect(),
    };
    for &a in &agents {
        w.inject(a, KernelMsg::Boot(dir.clone().into()));
    }
    w.run_for(SimDuration::from_millis(5));

    let client = ClientHandle::spawn(&mut w, NodeId(0));
    let t0 = w.now();
    if tree {
        client.send(
            &mut w,
            agents[0],
            KernelMsg::PpmExec {
                req: RequestId(1),
                job: JobId(1),
                task: TaskSpec::default(),
                targets: (0..n).map(NodeId).collect(),
                reply_to: client.pid,
            },
        );
    } else {
        // Sequential baseline: one exec message per node from the client.
        for i in 0..n {
            client.send(
                &mut w,
                agents[i as usize],
                KernelMsg::PpmExec {
                    req: RequestId(1),
                    job: JobId(1),
                    task: TaskSpec::default(),
                    targets: vec![NodeId(i)],
                    reply_to: client.pid,
                },
            );
        }
    }
    // Drain until all acks arrive.
    let mut acks = 0usize;
    while acks < n as usize {
        w.run_for(SimDuration::from_millis(1));
        acks += client
            .drain()
            .iter()
            .filter(|(_, m)| matches!(m, KernelMsg::PpmExecAck { .. }))
            .count();
        assert!(
            w.now().since(t0) < SimDuration::from_secs(10),
            "launch never completed"
        );
    }
    SimTime(w.now().since(t0).as_nanos())
}

fn main() {
    for n in [64u32, 256] {
        bench("ppm_launch", &format!("tree/{n}"), 10, || launch(n, true));
        bench("ppm_launch", &format!("sequential/{n}"), 10, || {
            launch(n, false)
        });
    }
}
