//! The group service (paper Sec 4.3–4.4).
//!
//! "Group service is the kernel one to solve scalability and high
//! availability at the same time. The key functions of group service are
//! guaranteeing the high availability of its meta-group; providing
//! interfaces for upper-layer service group's creating, joining and
//! leaving; and guaranteeing upper-layer service group's high
//! availability."
//!
//! * [`wd`] — the watch daemon on every node (heartbeats over all NICs);
//! * [`gsd`] — the per-partition Group Service Daemon and the ring-shaped
//!   meta-group with Leader/Princess takeover;
//! * [`registry`] — respawn-policy registration for supervised services;
//! * [`flat`] — the flat all-to-all membership baseline the paper argues
//!   against, kept for the scalability ablation.

pub mod flat;
pub mod gsd;
pub mod registry;
pub mod wd;

pub use flat::FlatMember;
pub use gsd::Gsd;
pub use registry::{
    kernel_factory_key, shared_registry, Factory, FactoryRegistry, RespawnArgs, SharedRegistry,
};
pub use wd::Wd;
