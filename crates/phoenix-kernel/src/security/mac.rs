//! Keyed hashing and the stream-cipher stand-in.
//!
//! The paper specifies the security service's *interfaces* (authentication,
//! authorization, encryption) but no algorithms. We implement a small
//! keyed hash (an FNV-1a chain mixed with a 64-bit key and a finalizer) for
//! token MACs, and an xorshift keystream for the encryption interface.
//! These are stand-ins with the right *shape* — deterministic, keyed,
//! tamper-evident for honest-but-curious simulation purposes — and are NOT
//! cryptographically secure (documented in DESIGN.md).

/// 64-bit keyed hash over arbitrary bytes.
pub fn keyed_hash(key: u64, data: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET ^ key;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    // splitmix64 finalizer for avalanche.
    h = h.wrapping_add(0x9e3779b97f4a7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// Keyed hash over several fields without concatenation allocations.
pub fn keyed_hash_fields(key: u64, fields: &[&[u8]]) -> u64 {
    let mut h = key;
    for f in fields {
        h = keyed_hash(h, f);
        // Domain-separate fields so ("ab","c") != ("a","bc").
        h = keyed_hash(h, &[0xff]);
    }
    h
}

/// Xorshift64* keystream generator.
fn keystream_next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Symmetric stream "encryption": XOR with a keyed keystream. Applying it
/// twice with the same key restores the plaintext.
pub fn xor_stream(key: u64, data: &mut [u8]) {
    let mut state = key | 1; // xorshift state must be nonzero
    let mut buf = [0u8; 8];
    for chunk in data.chunks_mut(8) {
        let word = keystream_next(&mut state);
        buf.copy_from_slice(&word.to_le_bytes());
        for (b, k) in chunk.iter_mut().zip(buf.iter()) {
            *b ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(keyed_hash(1, b"hello"), keyed_hash(1, b"hello"));
    }

    #[test]
    fn hash_depends_on_key_and_data() {
        assert_ne!(keyed_hash(1, b"hello"), keyed_hash(2, b"hello"));
        assert_ne!(keyed_hash(1, b"hello"), keyed_hash(1, b"hellp"));
    }

    #[test]
    fn field_hash_domain_separation() {
        let a = keyed_hash_fields(7, &[b"ab", b"c"]);
        let b = keyed_hash_fields(7, &[b"a", b"bc"]);
        assert_ne!(a, b);
    }

    #[test]
    fn xor_stream_round_trips() {
        let mut data = b"the quick brown fox jumps".to_vec();
        let orig = data.clone();
        xor_stream(0xDEAD_BEEF, &mut data);
        assert_ne!(data, orig);
        xor_stream(0xDEAD_BEEF, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn xor_stream_wrong_key_garbles() {
        let mut data = b"secret".to_vec();
        xor_stream(1, &mut data);
        xor_stream(2, &mut data);
        assert_ne!(data, b"secret".to_vec());
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert_ne!(keyed_hash(0, b""), 0);
        let mut empty: Vec<u8> = vec![];
        xor_stream(5, &mut empty);
    }
}
