//! Parallel multi-seed sweep runner with deterministic telemetry merge.
//!
//! The simulator is single-threaded and deterministic; a sweep over seeds
//! (or `(seed, rate)` pairs) is embarrassingly parallel as long as each run
//! owns its own telemetry. This runner gives every work item a fresh
//! registry shard ([`phoenix_telemetry::shard_begin`]) on whatever worker
//! thread picks it up, runs the caller's job, and takes the shard back.
//! After the join the shards are merged **in work-item order** — not
//! completion order — into one [`MetricsRegistry`], which makes the merged
//! report byte-identical to a `--serial` run of the same items:
//!
//! * each job starts from `clock::set_now(0)` + an empty shard, so nothing
//!   about scheduling (which thread, what the previous item was) can leak
//!   into what it records;
//! * `MetricsRegistry::merge` is deterministic given merge order, and the
//!   merge order is the item order in both modes;
//! * wall-clock numbers are returned to the caller but never written into
//!   the report by this module.
//!
//! Worker count: `PHOENIX_SWEEP_THREADS` if set (useful to force real
//! sharding on a single-core CI box, or `1` to serialize without changing
//! code paths), else [`std::thread::available_parallelism`], capped at the
//! item count. `--serial` in the bench bins maps to [`run_sweep`] with
//! `serial: true`, which runs the identical per-item wrapper on the
//! calling thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use phoenix_telemetry::MetricsRegistry;

/// What a sweep returns: per-item results in item order, the shard-merged
/// registry, and scheduling facts for the caller's stdout (never for the
/// report).
pub struct SweepOutcome<R> {
    /// One result per input item, in input order.
    pub results: Vec<R>,
    /// All shards merged in input order; hand this to `BenchReport`.
    pub merged: MetricsRegistry,
    /// Worker threads actually used (1 for serial).
    pub threads: usize,
    /// Wall-clock time for the whole sweep.
    pub wall: Duration,
}

/// Resolve the worker-thread count for `n_items` parallel jobs.
pub fn thread_count(n_items: usize) -> usize {
    let configured = std::env::var("PHOENIX_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
    configured.min(n_items).max(1)
}

/// Run `job` over every item, each under a fresh registry shard with the
/// virtual clock rewound to 0, and merge the shards in item order.
///
/// `serial: true` runs the items on the calling thread (the escape hatch
/// behind the bins' `--serial` flag); otherwise a scoped thread pool pulls
/// items off a shared index. The per-item wrapper is the same closure in
/// both modes, so the only difference between them is scheduling — which
/// the in-order merge erases.
pub fn run_sweep<I, R, F>(items: &[I], serial: bool, job: F) -> SweepOutcome<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync,
{
    let start = Instant::now();
    let run_one = |item: &I| -> (R, MetricsRegistry) {
        let shard = phoenix_telemetry::shard_begin();
        phoenix_telemetry::clock::set_now(0);
        let result = job(item);
        (result, shard.take())
    };

    let threads = if serial { 1 } else { thread_count(items.len()) };
    let mut slots: Vec<Option<(R, MetricsRegistry)>> = Vec::new();
    if serial || threads == 1 {
        slots.extend(items.iter().map(|item| Some(run_one(item))));
    } else {
        let cells: Vec<Mutex<Option<(R, MetricsRegistry)>>> =
            items.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = run_one(&items[i]);
                    *cells[i].lock().unwrap() = Some(out);
                });
            }
        });
        slots.extend(cells.into_iter().map(|c| c.into_inner().unwrap()));
    }

    let mut merged = MetricsRegistry::new();
    let mut results = Vec::with_capacity(items.len());
    for slot in slots {
        let (result, shard) = slot.expect("sweep worker left an item unfinished");
        merged.merge(&shard);
        results.push(result);
    }
    SweepOutcome { results, merged, threads, wall: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(item: &u64) -> u64 {
        phoenix_telemetry::counter_add("sweep.jobs", 1);
        phoenix_telemetry::observe("sweep.latency", "test", item * 100);
        phoenix_telemetry::gauge_set("sweep.last_item", *item as f64);
        *item * 2
    }

    #[test]
    fn serial_and_parallel_agree_exactly() {
        let items: Vec<u64> = (1..=16).collect();
        let serial = run_sweep(&items, true, job);
        // Force real multi-threading even on a 1-core box.
        std::env::set_var("PHOENIX_SWEEP_THREADS", "4");
        let parallel = run_sweep(&items, false, job);
        std::env::remove_var("PHOENIX_SWEEP_THREADS");

        assert_eq!(serial.results, parallel.results);
        assert_eq!(serial.threads, 1);
        let rep = |reg: &MetricsRegistry| {
            phoenix_telemetry::BenchReport::new("t").to_json(reg).render()
        };
        assert_eq!(
            rep(&serial.merged),
            rep(&parallel.merged),
            "merged parallel report must be byte-identical to serial"
        );
        assert_eq!(serial.merged.counter("sweep.jobs"), 16);
        assert_eq!(
            serial.merged.gauge("sweep.last_item"),
            Some(16.0),
            "gauges resolve by item order: last item wins"
        );
    }

    #[test]
    fn jobs_do_not_touch_the_callers_registry() {
        phoenix_telemetry::reset();
        phoenix_telemetry::counter_add("outer", 1);
        let out = run_sweep(&[1u64, 2], true, job);
        assert_eq!(out.merged.counter("outer"), 0, "shards start empty");
        phoenix_telemetry::with(|r| {
            assert_eq!(r.counter("outer"), 1, "caller registry restored");
            assert_eq!(r.counter("sweep.jobs"), 0, "sweep data stayed in shards");
        });
    }
}
