//! Workspace-level telemetry integration tests: the observability
//! subsystem measured against the live kernel rather than synthetic
//! inputs — shard-merge associativity of the histograms, bit-identical
//! span streams across identically seeded runs, and flight-recorder
//! eviction behaviour at capacity.

use phoenix::kernel::boot::boot_and_stabilize;
use phoenix::kernel::KernelParams;
use phoenix::proto::ClusterTopology;
use phoenix::sim::{Fault, SimDuration, SimRng};
use phoenix::telemetry::{FlightRecorder, Histogram, SpanRecord, SpanId};

/// Merging per-shard histograms must equal the histogram of the whole
/// stream: the property that makes per-node registries aggregatable.
#[test]
fn histogram_merge_of_shards_equals_whole() {
    let mut rng = SimRng::seed_from_u64(0x7E1E_0001);
    let samples: Vec<u64> = (0..4096).map(|_| rng.gen_range(1u64..100_000_000)).collect();

    let mut whole = Histogram::new();
    for &s in &samples {
        whole.record(s);
    }

    let mut shards = vec![Histogram::new(); 4];
    for (i, &s) in samples.iter().enumerate() {
        shards[i % 4].record(s);
    }
    let mut merged = Histogram::new();
    for sh in &shards {
        merged.merge(sh);
    }

    let (w, m) = (whole.summary(), merged.summary());
    assert_eq!(w.count, m.count);
    assert_eq!(w.sum_ns, m.sum_ns);
    assert_eq!(w.min_ns, m.min_ns);
    assert_eq!(w.max_ns, m.max_ns);
    assert_eq!(w.p50_ns, m.p50_ns);
    assert_eq!(w.p90_ns, m.p90_ns);
    assert_eq!(w.p99_ns, m.p99_ns);
}

/// One boot + fault + recovery scenario, returning the completed span
/// stream (path, node, start, end) the kernel instrumentation produced.
fn span_stream(seed: u64) -> Vec<(&'static str, u32, u64, u64)> {
    phoenix::telemetry::reset();
    let (mut w, cluster) = boot_and_stabilize(
        ClusterTopology::uniform(2, 4, 1),
        KernelParams::fast(),
        seed,
    );
    w.run_for(SimDuration::from_secs(2));
    let node = cluster.topology.partitions[0].compute[0];
    let wd = cluster.directory.node(node).unwrap().wd;
    w.apply_fault(Fault::KillProcess(wd));
    w.run_for(SimDuration::from_secs(5));
    let spans = phoenix::telemetry::with(|r| {
        r.recorder()
            .iter()
            .map(|rec| (rec.path, rec.node, rec.start_ns, rec.end_ns))
            .collect::<Vec<_>>()
    });
    phoenix::telemetry::reset();
    spans
}

/// The simulator is deterministic and spans are keyed to virtual time, so
/// two identically seeded runs must produce bit-identical span streams —
/// and a different seed must not (the stream carries real information).
#[test]
fn span_stream_is_deterministic_across_runs() {
    let a = span_stream(71);
    let b = span_stream(71);
    assert!(!a.is_empty(), "scenario produced spans");
    assert!(
        a.iter().any(|(p, ..)| *p == "wd.heartbeat.flight"),
        "heartbeat spans present: {:?}",
        &a[..a.len().min(5)]
    );
    assert_eq!(a, b, "identical seeds → identical span streams");
    let c = span_stream(72);
    assert_ne!(a, c, "different seed → different span stream");
}

/// The ring keeps the newest `capacity` records per node and counts what
/// it dropped.
#[test]
fn flight_recorder_evicts_oldest_at_capacity() {
    let mut ring = FlightRecorder::with_capacity(8);
    for i in 0..20u64 {
        ring.push(SpanRecord {
            id: SpanId(i),
            parent: SpanId::NONE,
            path: "test.path",
            service: "test",
            node: (i % 2) as u32,
            start_ns: i * 100,
            end_ns: i * 100 + 50,
        });
    }
    // 20 spans over 2 nodes: each node saw 10, keeps 8, evicted 2.
    assert_eq!(ring.len(), 16);
    assert_eq!(ring.evicted(), 4);
    let kept: Vec<u64> = ring.iter().map(|r| r.id.0).collect();
    assert!(
        !kept.contains(&0) && !kept.contains(&1),
        "oldest spans evicted: {kept:?}"
    );
    assert!(
        kept.contains(&18) && kept.contains(&19),
        "newest spans kept: {kept:?}"
    );
}
