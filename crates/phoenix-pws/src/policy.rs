//! Per-pool scheduling policies.
//!
//! Paper Sec 5.4: "PWS supports multi-pools with customized scheduling
//! policies for different pools." A policy picks which queued job to
//! dispatch next given the pool's free capacity and per-user usage
//! accounting.

use phoenix_proto::{JobSpec, UserId};
use std::collections::HashMap;

/// The policies a pool can be configured with.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PolicyKind {
    /// Strict first-come-first-served: only the queue head may start.
    #[default]
    Fifo,
    /// Highest priority first (ties: earliest submission).
    Priority,
    /// Pick the job whose user has consumed the least node-time.
    FairShare,
    /// FIFO with backfill: the first job that fits starts.
    Backfill,
}

/// Inputs a policy may consult.
pub struct PolicyCtx<'a> {
    /// Nodes currently free in the pool.
    pub free_nodes: usize,
    /// Accumulated node-seconds per user (completed + running work).
    pub usage: &'a HashMap<UserId, f64>,
}

/// Choose the index of the next job to dispatch, or `None` if nothing
/// should start now.
pub fn pick(kind: PolicyKind, queued: &[JobSpec], ctx: &PolicyCtx<'_>) -> Option<usize> {
    if queued.is_empty() {
        return None;
    }
    let fits = |j: &JobSpec| (j.nodes as usize) <= ctx.free_nodes;
    match kind {
        PolicyKind::Fifo => {
            // Strict: the head runs or nothing does.
            fits(&queued[0]).then_some(0)
        }
        PolicyKind::Backfill => queued.iter().position(fits),
        PolicyKind::Priority => {
            let mut best: Option<usize> = None;
            for (i, j) in queued.iter().enumerate() {
                if !fits(j) {
                    continue;
                }
                best = match best {
                    None => Some(i),
                    Some(b) => {
                        let cur = &queued[b];
                        if (j.priority, std::cmp::Reverse(j.submitted_ns))
                            > (cur.priority, std::cmp::Reverse(cur.submitted_ns))
                        {
                            Some(i)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            best
        }
        PolicyKind::FairShare => {
            let mut best: Option<(f64, u64, usize)> = None; // (usage, submit, idx)
            for (i, j) in queued.iter().enumerate() {
                if !fits(j) {
                    continue;
                }
                let u = ctx.usage.get(&j.user).copied().unwrap_or(0.0);
                let cand = (u, j.submitted_ns, i);
                best = match best {
                    None => Some(cand),
                    Some(b) => {
                        if (cand.0, cand.1) < (b.0, b.1) {
                            Some(cand)
                        } else {
                            Some(b)
                        }
                    }
                };
            }
            best.map(|(_, _, i)| i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, user: &str, nodes: u32, prio: i32, at: u64) -> JobSpec {
        let mut j = JobSpec::simple(id, user, "default", nodes);
        j.priority = prio;
        j.submitted_ns = at;
        j
    }

    #[test]
    fn fifo_is_strict() {
        let q = vec![job(1, "a", 8, 0, 0), job(2, "b", 1, 0, 1)];
        let usage = HashMap::new();
        let ctx = PolicyCtx {
            free_nodes: 4,
            usage: &usage,
        };
        // Head needs 8 nodes; strict FIFO blocks even though job 2 fits.
        assert_eq!(pick(PolicyKind::Fifo, &q, &ctx), None);
        assert_eq!(pick(PolicyKind::Backfill, &q, &ctx), Some(1));
    }

    #[test]
    fn priority_breaks_ties_by_submission() {
        let q = vec![
            job(1, "a", 1, 5, 10),
            job(2, "b", 1, 9, 20),
            job(3, "c", 1, 9, 5),
        ];
        let usage = HashMap::new();
        let ctx = PolicyCtx {
            free_nodes: 4,
            usage: &usage,
        };
        // Both 2 and 3 have priority 9; 3 submitted earlier.
        assert_eq!(pick(PolicyKind::Priority, &q, &ctx), Some(2));
    }

    #[test]
    fn fair_share_prefers_light_users() {
        let q = vec![job(1, "heavy", 1, 0, 0), job(2, "light", 1, 0, 1)];
        let mut usage = HashMap::new();
        usage.insert(UserId::new("heavy"), 1000.0);
        usage.insert(UserId::new("light"), 1.0);
        let ctx = PolicyCtx {
            free_nodes: 4,
            usage: &usage,
        };
        assert_eq!(pick(PolicyKind::FairShare, &q, &ctx), Some(1));
    }

    #[test]
    fn nothing_fits_nothing_starts() {
        let q = vec![job(1, "a", 9, 0, 0)];
        let usage = HashMap::new();
        let ctx = PolicyCtx {
            free_nodes: 2,
            usage: &usage,
        };
        for k in [
            PolicyKind::Fifo,
            PolicyKind::Priority,
            PolicyKind::FairShare,
            PolicyKind::Backfill,
        ] {
            assert_eq!(pick(k, &q, &ctx), None);
        }
    }

    #[test]
    fn empty_queue() {
        let usage = HashMap::new();
        let ctx = PolicyCtx {
            free_nodes: 2,
            usage: &usage,
        };
        assert_eq!(pick(PolicyKind::Fifo, &[], &ctx), None);
    }

    #[test]
    fn unknown_user_counts_as_zero_usage() {
        let q = vec![job(1, "known", 1, 0, 0), job(2, "new", 1, 0, 5)];
        let mut usage = HashMap::new();
        usage.insert(UserId::new("known"), 10.0);
        let ctx = PolicyCtx {
            free_nodes: 4,
            usage: &usage,
        };
        assert_eq!(pick(PolicyKind::FairShare, &q, &ctx), Some(1));
    }
}
