//! Traffic and event accounting.
//!
//! Several of the paper's claims are about *message load* (PBS polling vs
//! PWS event-driven collection, flat vs partitioned membership), so the
//! simulator counts every send, delivery, and drop, bucketed by the
//! message-class label reported by [`Message::label`](crate::Message::label).

use crate::network::DropReason;
use std::collections::BTreeMap;

/// Per-label traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LabelStats {
    pub sent: u64,
    pub sent_bytes: u64,
    pub delivered: u64,
    pub delivered_bytes: u64,
    pub dropped: u64,
}

/// Whole-simulation counters.
#[derive(Debug, Default)]
pub struct Metrics {
    pub by_label: BTreeMap<&'static str, LabelStats>,
    pub total: LabelStats,
    pub drops_by_reason: BTreeMap<&'static str, u64>,
    pub events_processed: u64,
    pub timers_fired: u64,
    pub spawns: u64,
    pub kills: u64,
}

impl Metrics {
    pub(crate) fn on_send(&mut self, label: &'static str, bytes: usize) {
        let e = self.by_label.entry(label).or_default();
        e.sent += 1;
        e.sent_bytes += bytes as u64;
        self.total.sent += 1;
        self.total.sent_bytes += bytes as u64;
    }

    pub(crate) fn on_deliver(&mut self, label: &'static str, bytes: usize) {
        let e = self.by_label.entry(label).or_default();
        e.delivered += 1;
        e.delivered_bytes += bytes as u64;
        self.total.delivered += 1;
        self.total.delivered_bytes += bytes as u64;
    }

    pub(crate) fn on_drop(&mut self, label: &'static str, reason: DropReason) {
        self.by_label.entry(label).or_default().dropped += 1;
        self.total.dropped += 1;
        let key = match reason {
            DropReason::SenderNicDown => "sender_nic_down",
            DropReason::ReceiverNicDown => "receiver_nic_down",
            DropReason::Partitioned => "partitioned",
            DropReason::NodeDown => "node_down",
            DropReason::DeadProcess => "dead_process",
            DropReason::NoRoute => "no_route",
            DropReason::RandomLoss => "random_loss",
        };
        *self.drops_by_reason.entry(key).or_default() += 1;
    }

    /// Stats for one message class (zero stats if the label never appeared).
    pub fn label(&self, label: &str) -> LabelStats {
        self.by_label.get(label).copied().unwrap_or_default()
    }

    /// Total bytes put on the wire (sent, whether or not delivered).
    pub fn wire_bytes(&self) -> u64 {
        self.total.sent_bytes
    }

    /// Render a compact table of per-label traffic, sorted by label.
    pub fn traffic_table(&self) -> String {
        let mut out = String::from(
            "label                       sent     bytes  delivered   dropped\n",
        );
        for (label, s) in &self.by_label {
            out.push_str(&format!(
                "{label:<24} {sent:>8} {bytes:>9} {del:>10} {drop:>9}\n",
                sent = s.sent,
                bytes = s.sent_bytes,
                del = s.delivered,
                drop = s.dropped,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::default();
        m.on_send("hb", 32);
        m.on_send("hb", 32);
        m.on_deliver("hb", 32);
        m.on_drop("hb", DropReason::NodeDown);
        let s = m.label("hb");
        assert_eq!(s.sent, 2);
        assert_eq!(s.sent_bytes, 64);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.dropped, 1);
        assert_eq!(m.total.sent, 2);
        assert_eq!(m.drops_by_reason["node_down"], 1);
        assert_eq!(m.wire_bytes(), 64);
    }

    #[test]
    fn random_loss_has_its_own_drop_bucket() {
        let mut m = Metrics::default();
        m.on_drop("hb", DropReason::RandomLoss);
        m.on_drop("hb", DropReason::RandomLoss);
        m.on_drop("hb", DropReason::Partitioned);
        assert_eq!(m.drops_by_reason["random_loss"], 2);
        assert_eq!(m.drops_by_reason["partitioned"], 1);
        assert_eq!(m.label("hb").dropped, 3);
    }

    #[test]
    fn unknown_label_is_zero() {
        let m = Metrics::default();
        assert_eq!(m.label("nope"), LabelStats::default());
    }

    #[test]
    fn traffic_table_lists_labels() {
        let mut m = Metrics::default();
        m.on_send("query", 100);
        let table = m.traffic_table();
        assert!(table.contains("query"));
        assert!(table.contains("100"));
    }
}
