//! The message abstraction the simulator routes between actors.
//!
//! The simulator is generic over the payload type so the substrate stays
//! independent of the Phoenix kernel's protocol. A payload only needs to
//! report its wire size (for traffic accounting) and a coarse label (so
//! experiments can break traffic down by message class, e.g. heartbeats vs
//! bulletin queries).

/// Payload type routed by the simulated network.
///
/// `Clone` is the fan-out/duplication path: a duplicating link and every
/// multi-recipient broadcast clone the payload, so implementations should
/// keep bulk data behind cheap-to-clone handles (the kernel message type
/// routes broadcast payloads through `Arc`-backed wrappers).
pub trait Message: Clone + std::fmt::Debug + 'static {
    /// Approximate encoded size in bytes, charged to network counters.
    /// Called once per send on the hot path, so it should be O(1) for the
    /// high-rate shapes — derived from a fixed-size fast path or memoized,
    /// never a per-call walk over bulk payload data.
    fn wire_size(&self) -> usize;

    /// Coarse message-class label used to bucket traffic statistics.
    fn label(&self) -> &'static str {
        "msg"
    }
}

/// A trivial payload for tests and micro-examples.
impl Message for u64 {
    fn wire_size(&self) -> usize {
        8
    }
    fn label(&self) -> &'static str {
        "u64"
    }
}

impl Message for String {
    fn wire_size(&self) -> usize {
        self.len()
    }
    fn label(&self) -> &'static str {
        "string"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_wire_size() {
        assert_eq!(42u64.wire_size(), 8);
        assert_eq!(42u64.label(), "u64");
    }

    #[test]
    fn string_wire_size_tracks_len() {
        assert_eq!("hello".to_string().wire_size(), 5);
    }
}
