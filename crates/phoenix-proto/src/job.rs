//! Job and task descriptions shared by PPM (kernel) and PWS (user env).

use crate::ids::{JobId, UserId};

/// What one task of a job does on a node, in simulation terms: how many
//  CPUs it pins and what resource load it generates while it runs.
#[derive(Clone, PartialEq, Debug)]
pub struct TaskSpec {
    /// CPUs the task occupies on its node.
    pub cpus: u32,
    /// Fraction of node CPU the task drives while running (0..=1).
    pub cpu_load: f64,
    /// Fraction of node memory the task occupies (0..=1).
    pub mem_load: f64,
    /// Virtual run time in nanoseconds; `None` runs until deleted.
    pub duration_ns: Option<u64>,
}

impl Default for TaskSpec {
    fn default() -> Self {
        TaskSpec {
            cpus: 1,
            cpu_load: 0.9,
            mem_load: 0.3,
            duration_ns: Some(60_000_000_000), // 60 virtual seconds
        }
    }
}

/// A job submitted to the PWS job-management system.
#[derive(Clone, PartialEq, Debug)]
pub struct JobSpec {
    pub id: JobId,
    pub user: UserId,
    /// Scheduling pool the job targets (PWS supports multiple pools with
    /// customized policies, paper Sec 5.4).
    pub pool: String,
    /// Number of nodes requested.
    pub nodes: u32,
    pub task: TaskSpec,
    /// Scheduling priority (higher runs first under the priority policy).
    pub priority: i32,
    /// Virtual submission time (ns), stamped by the scheduler.
    pub submitted_ns: u64,
}

impl JobSpec {
    /// A small test job.
    pub fn simple(id: u64, user: &str, pool: &str, nodes: u32) -> JobSpec {
        JobSpec {
            id: JobId(id),
            user: UserId::new(user),
            pool: pool.to_string(),
            nodes,
            task: TaskSpec::default(),
            priority: 0,
            submitted_ns: 0,
        }
    }
}

/// Lifecycle of a job in the scheduler.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobState {
    Queued,
    Running,
    Completed,
    Failed,
    Cancelled,
}

impl JobState {
    /// Terminal states never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_states() {
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }

    #[test]
    fn simple_job_defaults() {
        let j = JobSpec::simple(1, "alice", "default", 4);
        assert_eq!(j.id, JobId(1));
        assert_eq!(j.nodes, 4);
        assert_eq!(j.task.cpus, 1);
    }
}
