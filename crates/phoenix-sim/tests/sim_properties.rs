//! Property tests of the simulator substrate: conservation of messages,
//! FIFO delivery without jitter, and crash-safety of the world under
//! arbitrary fault sequences.
//!
//! Formerly proptest-based; the workspace now builds with no external
//! crates, so each property is exercised over a deterministic, seeded
//! sweep of inputs drawn from `SimRng` — same coverage intent, fully
//! reproducible, zero dependencies.

use phoenix_sim::{
    Actor, ClusterBuilder, Ctx, Fault, Message, NetParams, NicId, NodeId, NodeSpec, Pid, SimDuration,
    SimRng,
};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Clone, Debug)]
struct Seq(u64);
impl Message for Seq {
    fn wire_size(&self) -> usize {
        8
    }
    fn label(&self) -> &'static str {
        "seq"
    }
}

struct Recorder {
    got: Rc<RefCell<Vec<u64>>>,
}
impl Actor<Seq> for Recorder {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Seq>, _from: Pid, msg: Seq) {
        self.got.borrow_mut().push(msg.0);
    }
}

struct Burst {
    to: Pid,
    count: u64,
}
impl Actor<Seq> for Burst {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Seq>) {
        for i in 0..self.count {
            ctx.send(self.to, Seq(i));
        }
    }
    fn on_message(&mut self, _ctx: &mut Ctx<'_, Seq>, _from: Pid, _msg: Seq) {}
}

/// Without jitter, a burst from one sender arrives in FIFO order.
#[test]
fn fifo_without_jitter() {
    let mut gen = SimRng::seed_from_u64(0xF1F0);
    for case in 0..64 {
        let count = if case < 4 { case + 1 } else { gen.gen_range(1u64..64) };
        let mut net = NetParams::default();
        net.jitter = SimDuration::ZERO;
        let mut w = ClusterBuilder::new()
            .nodes(2, NodeSpec::default())
            .net(net)
            .build::<Seq>();
        let got = Rc::new(RefCell::new(Vec::new()));
        let sink = w.spawn(NodeId(1), Box::new(Recorder { got: got.clone() }));
        w.spawn(NodeId(0), Box::new(Burst { to: sink, count }));
        w.run_for(SimDuration::from_secs(1));
        let got = got.borrow();
        assert_eq!(got.len() as u64, count);
        assert!(got.windows(2).all(|p| p[0] < p[1]), "order (count={count}): {:?}", &*got);
    }
}

/// Message conservation: sent == delivered + dropped, and a dead receiver
/// or a fully dark NIC set means zero deliveries.
#[test]
fn messages_are_conserved() {
    let mut gen = SimRng::seed_from_u64(0xC0_15E2);
    for case in 0..64 {
        let count = gen.gen_range(1u64..50);
        let kill_receiver = case % 2 == 0;
        let nic_down = (case / 2) % 2 == 0;
        let mut w = ClusterBuilder::new().nodes(2, NodeSpec::default()).build::<Seq>();
        let got = Rc::new(RefCell::new(Vec::new()));
        let sink = w.spawn(NodeId(1), Box::new(Recorder { got: got.clone() }));
        if nic_down {
            for i in 0..3 {
                w.apply_fault(Fault::NicDown(NodeId(1), NicId(i)));
            }
        }
        if kill_receiver {
            w.kill_process(sink);
        }
        w.spawn(NodeId(0), Box::new(Burst { to: sink, count }));
        w.run_for(SimDuration::from_secs(1));
        let m = w.metrics();
        assert_eq!(m.total.sent, count);
        assert_eq!(m.total.delivered + m.total.dropped, count);
        if kill_receiver || nic_down {
            assert_eq!(m.total.delivered, 0);
        } else {
            assert_eq!(m.total.delivered, count);
        }
    }
}

/// The world never panics and stays consistent under arbitrary fault
/// sequences.
#[test]
fn world_survives_arbitrary_faults() {
    let mut gen = SimRng::seed_from_u64(0xFA17);
    for _case in 0..32 {
        let mut w = ClusterBuilder::new().nodes(4, NodeSpec::default()).build::<Seq>();
        let got = Rc::new(RefCell::new(Vec::new()));
        let sink = w.spawn(NodeId(0), Box::new(Recorder { got: got.clone() }));
        for n in 1..4u32 {
            w.spawn(NodeId(n), Box::new(Burst { to: sink, count: 5 }));
        }
        let ops = gen.gen_range(0usize..40);
        for _ in 0..ops {
            let op = gen.gen_range(0u8..6);
            let node = NodeId(gen.gen_range(0u32..4));
            let nic = gen.gen_range(0u8..3);
            match op {
                0 => w.apply_fault(Fault::CrashNode(node)),
                1 => w.apply_fault(Fault::RestartNode(node)),
                2 => w.apply_fault(Fault::NicDown(node, NicId(nic))),
                3 => w.apply_fault(Fault::NicUp(node, NicId(nic))),
                4 => w.apply_fault(Fault::PartitionLink(node, NodeId((node.0 + 1) % 4))),
                _ => w.apply_fault(Fault::HealLink(node, NodeId((node.0 + 1) % 4))),
            }
            w.run_for(SimDuration::from_millis(10));
        }
        w.run_for(SimDuration::from_secs(1));
        let m = w.metrics();
        assert!(m.total.delivered + m.total.dropped <= m.total.sent);
        for n in w.nodes() {
            assert_eq!(n.nic_up.len(), 3);
        }
    }
}

/// Same seed ⇒ bit-identical metrics; different seeds are allowed to differ.
#[test]
fn seeded_runs_are_reproducible() {
    let run = |seed: u64| {
        let mut w = ClusterBuilder::new()
            .nodes(3, NodeSpec::default())
            .seed(seed)
            .build::<Seq>();
        let got = Rc::new(RefCell::new(Vec::new()));
        let sink = w.spawn(NodeId(0), Box::new(Recorder { got }));
        for n in 1..3u32 {
            w.spawn(NodeId(n), Box::new(Burst { to: sink, count: 10 }));
        }
        w.run_for(SimDuration::from_secs(1));
        (w.metrics().events_processed, w.metrics().total.delivered)
    };
    let mut gen = SimRng::seed_from_u64(0x5EED5);
    for _ in 0..16 {
        let seed = gen.next_u64();
        assert_eq!(run(seed), run(seed), "seed {seed} not reproducible");
    }
}
