//! Actors: the unit of simulated software.
//!
//! Every daemon in the Phoenix reproduction (WD, GSD, event service, data
//! bulletin, schedulers, ...) is an [`Actor`] spawned on a simulated node.
//! Actors interact with the world exclusively through [`Ctx`], which batches
//! side effects into commands that the [`World`](crate::World) applies after
//! the handler returns — the classic command-buffer pattern that keeps the
//! borrow checker happy and the semantics deterministic.

use crate::ids::{NicId, NodeId, Pid, TimerId};
use crate::message::Message;
use crate::node::{NodeState, ResourceUsage};
use crate::time::{SimDuration, SimTime};
use crate::rng::SimRng;
use crate::trace::TraceEvent;

/// A simulated process. Handlers run to completion at a virtual instant.
pub trait Actor<M: Message> {
    /// Called once, immediately after the actor is spawned.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Called when a message addressed to this actor is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: Pid, msg: M);

    /// Called when a timer set by this actor fires. `token` is the value
    /// passed to [`Ctx::set_timer`].
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _token: u64) {}

    /// Called when the actor is killed or its node crashes. Must not
    /// schedule new work (the process is already dead); useful for tests.
    fn on_kill(&mut self, _now: SimTime) {}

    /// Short human-readable name used in traces.
    fn name(&self) -> &str {
        "actor"
    }

    /// Downcast hook for read-only introspection from outside the
    /// simulation (invariant checkers, chaos harnesses). Actors that want
    /// to expose state return `Some(self)`; the default opts out. See
    /// [`World::actor_as`](crate::World::actor_as).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Side effects an actor may request; applied by the world after the
/// handler returns, in order.
pub enum Command<M: Message> {
    Send {
        to: Pid,
        via: Option<NicId>,
        msg: M,
    },
    SetTimer {
        id: TimerId,
        after: SimDuration,
        token: u64,
    },
    CancelTimer(TimerId),
    Spawn {
        node: NodeId,
        actor: Box<dyn Actor<M>>,
        pid: Pid,
    },
    Kill(Pid),
    SetUsage(NodeId, ResourceUsage),
    /// Power a node on or off (off kills its processes, like a crash).
    NodePower {
        node: NodeId,
        up: bool,
    },
    Trace(TraceEvent),
}

/// Read-only view of the world plus a command buffer, handed to actor
/// handlers.
pub struct Ctx<'a, M: Message> {
    pub(crate) now: SimTime,
    pub(crate) self_pid: Pid,
    pub(crate) self_node: NodeId,
    pub(crate) commands: &'a mut Vec<Command<M>>,
    pub(crate) next_timer: &'a mut u64,
    pub(crate) next_pid: &'a mut u64,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) view: WorldView<'a>,
}

/// Immutable facts about the world that actors may consult.
pub struct WorldView<'a> {
    pub(crate) nodes: &'a [NodeState],
    pub(crate) live: &'a std::collections::HashMap<Pid, NodeId>,
    /// Active island-split mask (`Fault::Partition`), 0 when whole.
    pub(crate) island: u64,
}

impl<'a, M: Message> Ctx<'a, M> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The pid of the running actor.
    #[inline]
    pub fn pid(&self) -> Pid {
        self.self_pid
    }

    /// The node the running actor lives on.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.self_node
    }

    /// Send `msg` to `to` over the default route (first healthy NIC).
    pub fn send(&mut self, to: Pid, msg: M) {
        self.commands.push(Command::Send {
            to,
            via: None,
            msg,
        });
    }

    /// Send `msg` to `to` pinned to a specific network interface. Used by
    /// watch daemons, which heartbeat over *all* interfaces so the GSD can
    /// tell a NIC failure from a node failure.
    pub fn send_via(&mut self, to: Pid, nic: NicId, msg: M) {
        self.commands.push(Command::Send {
            to,
            via: Some(nic),
            msg,
        });
    }

    /// Schedule `on_timer(token)` after `after`. Returns a handle that can
    /// cancel the timer.
    pub fn set_timer(&mut self, after: SimDuration, token: u64) -> TimerId {
        *self.next_timer += 1;
        let id = TimerId(*self.next_timer);
        self.commands.push(Command::SetTimer { id, after, token });
        id
    }

    /// Cancel a previously set timer. Harmless if already fired.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.commands.push(Command::CancelTimer(id));
    }

    /// Spawn a new actor on `node`; returns its pid immediately. The actor's
    /// `on_start` runs at the current virtual instant, after this handler.
    /// Spawning on a crashed node is a no-op (the pid will never be live).
    pub fn spawn(&mut self, node: NodeId, actor: Box<dyn Actor<M>>) -> Pid {
        *self.next_pid += 1;
        let pid = Pid(*self.next_pid);
        self.commands.push(Command::Spawn { node, actor, pid });
        pid
    }

    /// Kill a process (possibly self).
    pub fn kill(&mut self, pid: Pid) {
        self.commands.push(Command::Kill(pid));
    }

    /// Overwrite the resource usage readings of a node (used by workload
    /// models and the physical-resource detector's self-introspection).
    pub fn set_usage(&mut self, node: NodeId, usage: ResourceUsage) {
        self.commands.push(Command::SetUsage(node, usage));
    }

    /// Record a structured trace event for later analysis.
    pub fn trace(&mut self, ev: TraceEvent) {
        self.commands.push(Command::Trace(ev));
    }

    /// Power a node off (killing its processes) or back on. This is the
    /// mechanism behind administrative start/shutdown-node operations.
    pub fn set_node_power(&mut self, node: NodeId, up: bool) {
        self.commands.push(Command::NodePower { node, up });
    }

    /// Can this actor's node exchange traffic with `node` right now —
    /// i.e. `node` is up and no island split (`Fault::Partition`) severs
    /// the pair? Remote operations (process spawn, remote exec) should
    /// consult this: a real cluster cannot start a process on a machine
    /// it cannot route to. Pairwise link cuts are not reflected here;
    /// they only drop individual messages.
    pub fn node_reachable(&self, node: NodeId) -> bool {
        self.node_is_up(node) && self.node_same_island(node)
    }

    /// Is `node` on this actor's side of any active island split
    /// (`Fault::Partition`), regardless of its power state? Administrative
    /// power-on consults this instead of [`Ctx::node_reachable`]: a down
    /// node can legitimately be started, but not across a split the start
    /// command cannot traverse.
    pub fn node_same_island(&self, node: NodeId) -> bool {
        let island = self.view.island;
        let side = |n: NodeId| n.0 < 64 && (island >> n.0) & 1 == 1;
        island == 0 || side(self.self_node) == side(node)
    }

    /// Is `node` powered and running?
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.view
            .nodes
            .get(node.index())
            .map(|n| n.up)
            .unwrap_or(false)
    }

    /// Is a specific NIC of `node` healthy (node up, NIC up)?
    pub fn nic_is_up(&self, node: NodeId, nic: NicId) -> bool {
        self.view
            .nodes
            .get(node.index())
            .map(|n| n.nic_healthy(nic))
            .unwrap_or(false)
    }

    /// Current resource usage of a node, if it exists.
    pub fn node_usage(&self, node: NodeId) -> Option<ResourceUsage> {
        self.view.nodes.get(node.index()).map(|n| n.usage)
    }

    /// Number of NICs configured on `node`.
    pub fn nic_count(&self, node: NodeId) -> usize {
        self.view
            .nodes
            .get(node.index())
            .map(|n| n.nic_up.len())
            .unwrap_or(0)
    }

    /// Number of CPUs on `node` (0 if unknown).
    pub fn node_cpus(&self, node: NodeId) -> u32 {
        self.view
            .nodes
            .get(node.index())
            .map(|n| n.spec.cpus)
            .unwrap_or(0)
    }

    /// Is the given process currently alive? (Models OS-level process
    /// liveness checks such as the application-state detector's scan.)
    pub fn process_is_alive(&self, pid: Pid) -> bool {
        self.view.live.contains_key(&pid)
    }

    /// Node a live process runs on.
    pub fn node_of(&self, pid: Pid) -> Option<NodeId> {
        self.view.live.get(&pid).copied()
    }

    /// Deterministic per-world random source.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}
