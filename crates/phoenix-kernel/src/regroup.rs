//! MSCS-style quorum regroup: split-brain survival for the meta-group.
//!
//! Fire Phoenix's meta-group ring (paper Sec 4.4) diagnoses a silent
//! predecessor as *dead* and takes over. Under a network partition that
//! diagnosis is wrong on both sides at once: each island sees the other
//! silent, each elects a leader, and the cluster splits its brain. The
//! classical cure — Microsoft Cluster Service's *regroup* protocol
//! (Vogels et al., "The Design and Architecture of the Microsoft Cluster
//! Service") — is implemented here:
//!
//! * On suspicion (or periodically while frozen) a GSD opens a **regroup
//!   round**: it pings every member it knows and collects acks for a
//!   bounded window.
//! * The round concludes with a **connected-component** view: itself plus
//!   every acker. A side holding a **strict majority** of the configured
//!   partitions keeps operating (elections, takeovers, migrations); a
//!   minority side **freezes** — it stays alive and answers pings, but
//!   suppresses every membership-changing action and marks itself
//!   non-authoritative.
//! * A frozen GSD keeps probing. When acks from a fresher epoch appear
//!   (the partition healed), it rejoins via `MetaJoin` and thaws only
//!   when the majority's membership broadcast names it — or yields and
//!   dies if the majority already replaced it.
//!
//! The module holds the pure protocol state machine (no actor plumbing):
//! round bookkeeping, quorum math, and freeze/thaw edges. The GSD drives
//! it and owns all message traffic. Everything is gated behind
//! [`RegroupParams::enabled`] so the paper pipeline stays byte-identical.

use phoenix_proto::PartitionId;
use phoenix_sim::{Pid, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Tuning for the regroup protocol. Disabled by default.
#[derive(Clone, Debug)]
pub struct RegroupParams {
    /// Master switch. Off ⇒ the GSD never sends or reacts to regroup
    /// traffic and the paper pipeline is byte-identical to a build
    /// without this module.
    pub enabled: bool,
    /// How long a round collects acks before concluding. Must be shorter
    /// than the suspicion→diagnosis pipeline (probe rounds + node
    /// timeout) so a minority freezes *before* the majority elects a
    /// replacement leader.
    pub round_window: SimDuration,
    /// Spacing between heal-probe rounds while frozen.
    pub frozen_retry: SimDuration,
    /// How long a concluded majority verdict stays valid as a takeover
    /// licence. A diagnosis may only ripen into a takeover if a round
    /// concluded with majority within this window (a suspicion always
    /// opens a fresh round, so the licence is at most one round old by
    /// the time the probe pipeline completes).
    pub verdict_validity: SimDuration,
    /// How long an *unbroken chain* of majority verdicts must stand
    /// before a takeover is licensed. This is MSCS's "wait out the
    /// regroup period": the two sides of a split suspect at different
    /// times (their heartbeat streams were cut mid-phase, so suspicion
    /// skew is up to one `hb_interval` plus scan jitter), and the
    /// majority must out-wait the minority's worst-case freeze or both a
    /// frozen ex-leader and a fresh election could briefly coexist. Must
    /// exceed `hb_interval + round_window + check_interval`.
    pub takeover_delay: SimDuration,
}

impl Default for RegroupParams {
    fn default() -> Self {
        RegroupParams {
            enabled: false,
            round_window: SimDuration::from_millis(60),
            frozen_retry: SimDuration::from_millis(400),
            verdict_validity: SimDuration::from_secs(1),
            // Default FtParams heartbeat every 30 s: out-wait a full beat
            // plus the round window and scan jitter.
            takeover_delay: SimDuration::from_secs(31),
        }
    }
}

impl RegroupParams {
    /// Profile matched to `FtParams::fast_lossy()` timing (1 s beats,
    /// 25 ms scans, 3-beat suspicion): a 60 ms round concludes well
    /// inside the probe pipeline, and 1.5 s of held majority out-waits
    /// the ≤ ~1.1 s worst-case skew between the majority's takeover
    /// licence and the minority's freeze.
    pub fn fast() -> RegroupParams {
        RegroupParams {
            enabled: true,
            takeover_delay: SimDuration::from_millis(1500),
            ..RegroupParams::default()
        }
    }
}

/// What a concluded round decided.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// This side holds a strict majority of configured partitions.
    Majority,
    /// This side is a minority island: freeze.
    Minority,
}

/// An acker's state, as carried in its `RegroupAck`.
#[derive(Clone, Copy, Debug)]
pub struct AckInfo {
    /// The acker's GSD pid (rejoin target).
    pub gsd: Pid,
    /// The acker's membership epoch.
    pub epoch: u64,
    /// Whether the acker itself is frozen.
    pub frozen: bool,
}

/// The outcome handed back to the GSD when a round concludes.
#[derive(Clone, Debug)]
pub struct Conclusion {
    pub verdict: Verdict,
    /// Partitions reachable this round (self included), sorted.
    pub reachable: Vec<PartitionId>,
    /// Best rejoin target among the ackers: the unfrozen member with the
    /// highest (epoch, pid). `None` means every reachable peer is frozen
    /// too (or nobody acked) — with majority, the lowest reachable
    /// partition must then self-thaw to re-seed the group.
    pub rejoin_target: Option<(Pid, u64)>,
}

/// Pure regroup state machine. The GSD owns one and drives it from its
/// message/timer handlers.
pub struct Regroup {
    params: RegroupParams,
    /// Quorum denominator: number of partitions in the configured
    /// topology (not the live membership — a shrunken membership must
    /// not shrink the bar for "majority").
    total: u32,
    /// Regroup epoch: bumps on every concluded round. Telemetry-visible.
    epoch: u64,
    /// Current round id; `None` when idle.
    round: Option<u64>,
    next_round: u64,
    /// Acks collected for the current round, keyed by partition (sorted
    /// iteration for determinism).
    acks: BTreeMap<PartitionId, AckInfo>,
    frozen: bool,
    /// When the last majority verdict concluded (takeover licence).
    last_majority_at: Option<SimTime>,
    /// Start of the current unbroken chain of majority verdicts; `None`
    /// when the last conclusion was a minority or the chain lapsed.
    majority_since: Option<SimTime>,
    /// When any round last concluded, and the connected component it saw
    /// — the reachability veto consults these.
    last_concluded_at: Option<SimTime>,
    last_reachable: Vec<PartitionId>,
    rounds_concluded: u64,
    freezes: u64,
}

impl Regroup {
    pub fn new(params: RegroupParams) -> Regroup {
        Regroup {
            params,
            total: 0,
            epoch: 0,
            round: None,
            next_round: 0,
            acks: BTreeMap::new(),
            frozen: false,
            last_majority_at: None,
            majority_since: None,
            last_concluded_at: None,
            last_reachable: Vec::new(),
            rounds_concluded: 0,
            freezes: 0,
        }
    }

    pub fn enabled(&self) -> bool {
        self.params.enabled
    }

    pub fn params(&self) -> &RegroupParams {
        &self.params
    }

    /// Fix the quorum denominator (configured partition count).
    pub fn set_total(&mut self, total: u32) {
        self.total = total;
    }

    pub fn total(&self) -> u32 {
        self.total
    }

    pub fn frozen(&self) -> bool {
        self.frozen
    }

    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn rounds_concluded(&self) -> u64 {
        self.rounds_concluded
    }

    pub fn freezes(&self) -> u64 {
        self.freezes
    }

    pub fn round_active(&self) -> bool {
        self.round.is_some()
    }

    /// Strict-majority test over the configured partition count.
    pub fn is_majority(&self, reachable: u32) -> bool {
        2 * reachable > self.total
    }

    /// Open a new round; returns its id. No-op (returns the live round's
    /// id) if one is already collecting.
    pub fn begin_round(&mut self) -> u64 {
        if let Some(r) = self.round {
            return r;
        }
        self.next_round += 1;
        self.round = Some(self.next_round);
        self.acks.clear();
        self.next_round
    }

    /// Record an ack for the current round. Stale/foreign round ids are
    /// ignored.
    pub fn on_ack(&mut self, round: u64, from: PartitionId, info: AckInfo) {
        if self.round == Some(round) {
            self.acks.insert(from, info);
        }
    }

    /// Conclude the current round (the round-window timer fired).
    /// Returns `None` if no round was active (stale timer).
    pub fn conclude(&mut self, me: PartitionId, now: SimTime) -> Option<Conclusion> {
        self.round.take()?;
        self.rounds_concluded += 1;
        self.epoch += 1;
        let mut reachable: Vec<PartitionId> = self.acks.keys().copied().collect();
        if !reachable.contains(&me) {
            reachable.push(me);
        }
        reachable.sort();
        let verdict = if self.is_majority(reachable.len() as u32) {
            // A lapsed chain (no majority within the validity window)
            // restarts the takeover-delay clock.
            if self.majority_since.is_none() || !self.majority_confirmed(now) {
                self.majority_since = Some(now);
            }
            self.last_majority_at = Some(now);
            Verdict::Majority
        } else {
            self.majority_since = None;
            Verdict::Minority
        };
        self.last_concluded_at = Some(now);
        self.last_reachable = reachable.clone();
        // Rejoin target: the freshest unfrozen acker. Not restricted to
        // epochs above our own — a partition that heals before the
        // majority performed any takeover leaves every epoch unchanged,
        // and the frozen side must still be able to rejoin.
        let rejoin_target = self
            .acks
            .values()
            .filter(|a| !a.frozen)
            .max_by_key(|a| (a.epoch, a.gsd))
            .map(|a| (a.gsd, a.epoch));
        self.acks.clear();
        Some(Conclusion {
            verdict,
            reachable,
            rejoin_target,
        })
    }

    /// Enter the frozen state. Returns true on the freeze *edge* (was
    /// unfrozen), so callers fire side effects exactly once.
    pub fn freeze(&mut self) -> bool {
        if self.frozen {
            return false;
        }
        self.frozen = true;
        self.freezes += 1;
        true
    }

    /// Leave the frozen state (majority named us in a fresh membership).
    /// Returns true on the thaw edge.
    pub fn thaw(&mut self) -> bool {
        let was = self.frozen;
        self.frozen = false;
        was
    }

    /// Takeover licence, part 1: a round concluded with majority recently
    /// enough that the verdict still reflects post-fault connectivity.
    pub fn majority_confirmed(&self, now: SimTime) -> bool {
        match self.last_majority_at {
            Some(at) => now.since(at) <= self.params.verdict_validity,
            None => false,
        }
    }

    /// Takeover licence, part 2: the majority verdict has been held in an
    /// unbroken chain for at least `takeover_delay` — long enough that a
    /// minority on the other side of a split has certainly concluded its
    /// own round and frozen.
    pub fn takeover_licensed(&self, now: SimTime) -> bool {
        self.majority_confirmed(now)
            && self
                .majority_since
                .is_some_and(|s| now.since(s) >= self.params.takeover_delay)
    }

    /// Reachability veto: the suspected partition *acked the last
    /// concluded round*, so it is alive and routable — the heartbeat
    /// staleness is a heal artifact (beats resume on their own cadence),
    /// not a death. A takeover of such a partition must be refused.
    pub fn recently_reachable(&self, p: PartitionId, now: SimTime) -> bool {
        match self.last_concluded_at {
            Some(at) => {
                now.since(at) <= self.params.verdict_validity && self.last_reachable.contains(&p)
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_nanos(ns)
    }

    fn ack(pid: u64, epoch: u64, frozen: bool) -> AckInfo {
        AckInfo {
            gsd: Pid(pid),
            epoch,
            frozen,
        }
    }

    #[test]
    fn quorum_is_strict_majority() {
        let mut rg = Regroup::new(RegroupParams::fast());
        rg.set_total(3);
        assert!(!rg.is_majority(1));
        assert!(rg.is_majority(2));
        rg.set_total(4);
        assert!(!rg.is_majority(2), "even split: neither side wins");
        assert!(rg.is_majority(3));
        rg.set_total(8);
        assert!(!rg.is_majority(4));
        assert!(rg.is_majority(5));
    }

    #[test]
    fn round_collects_acks_and_concludes() {
        let mut rg = Regroup::new(RegroupParams::fast());
        rg.set_total(3);
        let r = rg.begin_round();
        assert!(rg.round_active());
        assert_eq!(rg.begin_round(), r, "re-entrant begin keeps the round");
        rg.on_ack(r, PartitionId(1), ack(10, 0, false));
        rg.on_ack(r + 7, PartitionId(2), ack(11, 0, false)); // stale round id
        let c = rg.conclude(PartitionId(0), t(0)).unwrap();
        assert_eq!(c.verdict, Verdict::Majority);
        assert_eq!(c.reachable, vec![PartitionId(0), PartitionId(1)]);
        assert!(!rg.round_active());
        assert_eq!(rg.epoch(), 1);
        assert!(rg.conclude(PartitionId(0), t(0)).is_none(), "stale timer");
    }

    #[test]
    fn minority_concludes_and_freezes_once() {
        let mut rg = Regroup::new(RegroupParams::fast());
        rg.set_total(3);
        let _ = rg.begin_round();
        let c = rg.conclude(PartitionId(2), t(0)).unwrap();
        assert_eq!(c.verdict, Verdict::Minority);
        assert_eq!(c.reachable, vec![PartitionId(2)]);
        assert!(rg.freeze(), "freeze edge fires once");
        assert!(!rg.freeze(), "already frozen");
        assert_eq!(rg.freezes(), 1);
        assert!(rg.thaw());
        assert!(!rg.thaw());
    }

    #[test]
    fn rejoin_target_prefers_fresh_unfrozen_acker() {
        let mut rg = Regroup::new(RegroupParams::fast());
        rg.set_total(3);
        let r = rg.begin_round();
        rg.on_ack(r, PartitionId(0), ack(20, 9, false));
        rg.on_ack(r, PartitionId(1), ack(21, 12, true)); // frozen: not a target
        let c = rg.conclude(PartitionId(2), t(0)).unwrap();
        assert_eq!(c.rejoin_target, Some((Pid(20), 9)));
        // An unfrozen acker is a target even at a lower epoch (the
        // majority may never have bumped it); only all-frozen → None.
        let r = rg.begin_round();
        rg.on_ack(r, PartitionId(0), ack(20, 2, false));
        let c = rg.conclude(PartitionId(2), t(0)).unwrap();
        assert_eq!(c.rejoin_target, Some((Pid(20), 2)));
        let r = rg.begin_round();
        rg.on_ack(r, PartitionId(0), ack(20, 2, true));
        let c = rg.conclude(PartitionId(2), t(0)).unwrap();
        assert_eq!(c.rejoin_target, None, "all reachable peers frozen");
    }

    #[test]
    fn majority_verdict_expires() {
        let mut rg = Regroup::new(RegroupParams::fast());
        rg.set_total(3);
        assert!(!rg.majority_confirmed(t(0)), "no round yet");
        let r = rg.begin_round();
        rg.on_ack(r, PartitionId(1), ack(10, 0, false));
        rg.conclude(PartitionId(0), t(1_000)).unwrap();
        assert!(rg.majority_confirmed(t(1_000)));
        let validity = RegroupParams::fast().verdict_validity;
        // Within the window it holds; past it, it expires.
        let inside = SimTime::ZERO + SimDuration::from_nanos(1_000) + validity;
        let outside = inside + SimDuration::from_nanos(1);
        assert!(rg.majority_confirmed(inside));
        assert!(!rg.majority_confirmed(outside));
        // A minority conclusion does not refresh the licence.
        let _ = rg.begin_round();
        rg.conclude(PartitionId(0), outside).unwrap();
        assert!(!rg.majority_confirmed(outside));
    }

    #[test]
    fn disabled_params_by_default() {
        assert!(!RegroupParams::default().enabled);
        assert!(RegroupParams::fast().enabled);
    }

    #[test]
    fn takeover_needs_majority_held_for_delay() {
        let mut rg = Regroup::new(RegroupParams::fast());
        rg.set_total(3);
        let delay = RegroupParams::fast().takeover_delay;
        let t0 = t(0);
        let r = rg.begin_round();
        rg.on_ack(r, PartitionId(1), ack(10, 0, false));
        rg.conclude(PartitionId(0), t0).unwrap();
        assert!(rg.majority_confirmed(t0));
        assert!(
            !rg.takeover_licensed(t0),
            "a fresh majority is not yet a takeover licence"
        );
        // Keep the chain alive with rounds every 500 ms until the delay
        // has been out-waited.
        let mut now = t0;
        while now.since(t0) < delay {
            now = now + SimDuration::from_millis(500);
            let r = rg.begin_round();
            rg.on_ack(r, PartitionId(1), ack(10, 0, false));
            rg.conclude(PartitionId(0), now).unwrap();
        }
        assert!(rg.takeover_licensed(now), "held majority licenses takeover");
        // A minority conclusion breaks the chain immediately.
        let _ = rg.begin_round();
        rg.conclude(PartitionId(0), now).unwrap();
        assert!(!rg.takeover_licensed(now));
    }

    #[test]
    fn lapsed_majority_chain_restarts_delay_clock() {
        let mut rg = Regroup::new(RegroupParams::fast());
        rg.set_total(3);
        let p = RegroupParams::fast();
        let r = rg.begin_round();
        rg.on_ack(r, PartitionId(1), ack(10, 0, false));
        rg.conclude(PartitionId(0), t(0)).unwrap();
        // Silence past the validity window, then a new majority: the
        // delay clock must restart, not credit the stale chain.
        let later = t(0) + p.verdict_validity + p.takeover_delay + SimDuration::from_millis(1);
        let r = rg.begin_round();
        rg.on_ack(r, PartitionId(1), ack(10, 0, false));
        rg.conclude(PartitionId(0), later).unwrap();
        assert!(!rg.takeover_licensed(later), "chain lapsed; clock restarted");
    }

    #[test]
    fn acked_partition_is_recently_reachable() {
        let mut rg = Regroup::new(RegroupParams::fast());
        rg.set_total(3);
        assert!(!rg.recently_reachable(PartitionId(1), t(0)), "no round yet");
        let r = rg.begin_round();
        rg.on_ack(r, PartitionId(1), ack(10, 0, false));
        rg.conclude(PartitionId(0), t(0)).unwrap();
        assert!(rg.recently_reachable(PartitionId(1), t(0)));
        assert!(rg.recently_reachable(PartitionId(0), t(0)), "self counts");
        assert!(
            !rg.recently_reachable(PartitionId(2), t(0)),
            "the silent partition stays takeover-eligible"
        );
        let expired = t(0) + RegroupParams::fast().verdict_validity + SimDuration::from_nanos(1);
        assert!(
            !rg.recently_reachable(PartitionId(1), expired),
            "the veto expires with the verdict"
        );
    }
}
