#!/usr/bin/env sh
# Repo verification: tier-1 (build + tests) plus telemetry and chaos smoke
# runs.
#
#   sh scripts/verify.sh
#
# The telemetry smoke drives table1_wd on the tiny testbed and asserts that
# the export landed in results/BENCH_kernel.json with latency percentiles
# for the instrumented kernel paths, and that the service-exercise pass
# shares a single booted world (it used to boot four).
#
# The chaos smoke runs 25 seeded random fault schedules against the kernel
# and fails on any invariant violation. Every violation the chaos binary
# reports comes with a shrunk reproducer and a ready-to-paste replay
# command of the form:
#
#   cargo run --release -p phoenix-chaos --bin chaos -- --small --replay SEED:MASKHEX
#
# which re-runs exactly the minimal failing subset of that seed's schedule
# (verbose, with a flight-recorder dump). Seeds are deterministic: the same
# seed generates the same schedule on every machine. A second chaos pass
# re-runs 25 seeds on a 2% random-loss network (--lossy 20: baseline loss
# plus generated loss bursts) with the loss-tolerant kernel profile.
#
# The loss_sweep smoke sweeps loss rates on a fault-free and a WD-kill
# cluster; the bin exits non-zero if any spurious takeover fires, and the
# export is asserted to land in results/BENCH_loss.json. It runs twice:
# once --serial and once through the parallel sweep runner (4 forced
# worker threads); the two BENCH_loss.json files must be byte-identical
# (sharded-telemetry determinism gate), and on multi-core machines the
# parallel run must be >1.5x faster.
#
# The nic_asymmetry smoke degrades NIC 0 only (NICs 1-2 clean) and gates
# the adaptive multi-NIC routing acceptance criteria: zero spurious
# takeovers and detection within 25% of the clean baseline
# (results/BENCH_nic.json); the flapping-NIC pin replays chaos seed 4's
# NIC degrade/restore storms end-to-end first.
#
# The partition chaos pass re-runs 25 seeds with island-storm schedules
# (--partition: whole-partition splits + heals layered on the usual fault
# mix) and the split-brain invariants sampled *during* the splits; the
# partition_sweep smoke then gates zero double-leader instants, every
# minority frozen, and post-heal convergence (results/BENCH_partition.json).
#
# The fail-slow chaos pass re-runs 25 seeds on the 3x5 fail-slow testbed
# (--slow: slow-node episodes layered on the usual fault mix) under the
# slow-not-dead and quarantine-convergence invariants; the slow_sweep
# smoke then gates zero false-dead diagnoses, every member-gray episode
# drained, every leader-gray episode yielded, and every reinstatement
# converged (results/BENCH_slow.json), serial vs parallel byte-identical.
#
# The event_core smoke benches the raw event loop: the heap baseline vs the
# hierarchical timer-wheel scheduler on an identical seeded timer
# population (results/BENCH_events.json). The bin replays pinned chaos
# scenarios under both schedulers and digests every observable stream; the
# two digest files must be byte-identical (scheduler determinism gate), and
# on multi-core machines the wheel must be >1.5x faster than the heap.

set -eu

cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release --offline

echo "== tier-1: cargo test -q =="
cargo test -q --offline

echo "== smoke: table1_wd (--small) writes results/BENCH_kernel.json =="
rm -f results/BENCH_kernel.json
cargo run --release --offline -p phoenix-bench --bin table1_wd -- --small \
    | tee /tmp/table1_wd.out

test -s results/BENCH_kernel.json || {
    echo "FAIL: results/BENCH_kernel.json missing or empty" >&2
    exit 1
}
for needle in '"p50_ns"' '"p99_ns"' '"wd.heartbeat.flight"' '"counters"' '"table1"'; do
    grep -q "$needle" results/BENCH_kernel.json || {
        echo "FAIL: $needle not found in results/BENCH_kernel.json" >&2
        exit 1
    }
done

# The trace-mined table rows must agree with the kernel's own histograms
# (the bin panics on divergence, but assert the check actually ran).
grep -q 'telemetry cross-check' /tmp/table1_wd.out || {
    echo "FAIL: telemetry cross-check did not run" >&2
    exit 1
}

# The service-exercise pass must share ONE world (the pre-refactor pass
# booted four for the same path coverage) and stay fast: generous 10 s
# bound vs ~tens of ms observed.
grep -q 'exercise pass: 1 world' /tmp/table1_wd.out || {
    echo "FAIL: exercise pass no longer shares a single world" >&2
    exit 1
}
wall_ms=$(sed -n 's/.*exercise pass: 1 world.*, \([0-9]*\) ms wall/\1/p' /tmp/table1_wd.out)
[ -n "$wall_ms" ] && [ "$wall_ms" -lt 10000 ] || {
    echo "FAIL: exercise pass took ${wall_ms:-?} ms (speedup regressed)" >&2
    exit 1
}

echo "== smoke: chaos, 25 seeded fault schedules =="
cargo run --release --offline -p phoenix-chaos --bin chaos -- --seeds 25 --small

echo "== smoke: chaos, 25 seeded fault schedules on a 2% lossy network =="
cargo run --release --offline -p phoenix-chaos --bin chaos -- --seeds 25 --lossy 20

echo "== smoke: loss_sweep (--small --serial) writes results/BENCH_loss.json =="
rm -f results/BENCH_loss.json
# The bin itself exits non-zero on any spurious takeover, so this line is
# the zero-spurious gate; the greps below assert the export landed.
cargo run --release --offline -p phoenix-bench --bin loss_sweep -- --small --serial \
    | tee /tmp/loss_serial.out

test -s results/BENCH_loss.json || {
    echo "FAIL: results/BENCH_loss.json missing or empty" >&2
    exit 1
}
for needle in '"loss_curve"' '"spurious_takeovers"' '"detect_ms_mean"' '"net_loss_dropped"'; do
    grep -q "$needle" results/BENCH_loss.json || {
        echo "FAIL: $needle not found in results/BENCH_loss.json" >&2
        exit 1
    }
done

echo "== determinism gate: parallel loss_sweep must be byte-identical to serial =="
cp results/BENCH_loss.json /tmp/BENCH_loss_serial.json
rm -f results/BENCH_loss.json
# Force 4 worker threads so shard hand-off and the in-order merge are
# genuinely exercised even on a single-core runner.
PHOENIX_SWEEP_THREADS=4 \
    cargo run --release --offline -p phoenix-bench --bin loss_sweep -- --small \
    | tee /tmp/loss_parallel.out
cmp results/BENCH_loss.json /tmp/BENCH_loss_serial.json || {
    echo "FAIL: parallel BENCH_loss.json differs from serial (determinism gate)" >&2
    exit 1
}
serial_ms=$(sed -n 's/.*sweep: [0-9]* runs on [0-9]* thread(s), \([0-9]*\) ms wall/\1/p' /tmp/loss_serial.out)
par_ms=$(sed -n 's/.*sweep: [0-9]* runs on [0-9]* thread(s), \([0-9]*\) ms wall/\1/p' /tmp/loss_parallel.out)
cores=$(nproc 2>/dev/null || echo 1)
[ -n "$serial_ms" ] && [ -n "$par_ms" ] || {
    echo "FAIL: sweep wall-clock lines missing from loss_sweep output" >&2
    exit 1
}
speedup=$(awk "BEGIN { printf \"%.2f\", $serial_ms / ($par_ms + 0.001) }")
echo "loss_sweep wall-clock: serial ${serial_ms} ms, parallel ${par_ms} ms, speedup x${speedup} (${cores} core(s))"
if [ "$cores" -ge 2 ]; then
    awk "BEGIN { exit !($serial_ms / ($par_ms + 0.001) > 1.5) }" || {
        echo "FAIL: parallel speedup x${speedup} <= 1.5 on a ${cores}-core machine" >&2
        exit 1
    }
else
    echo "(single-core runner: speedup gate skipped, determinism gate enforced)"
fi

echo "== smoke: flapping-NIC chaos pin (seed 4, lossy) =="
# Replays the pinned flapping-NIC storm end-to-end (exit 1 on violation).
cargo run --release --offline -p phoenix-chaos --bin chaos -- --lossy 20 --replay 4 \
    > /tmp/chaos_flap.out || {
    cat /tmp/chaos_flap.out >&2
    echo "FAIL: flapping-NIC replay (seed 4) violated invariants" >&2
    exit 1
}
grep -q 'NicDegrade' /tmp/chaos_flap.out || {
    echo "FAIL: seed 4 schedule no longer contains NIC flaps — re-pin" >&2
    exit 1
}

echo "== smoke: nic_asymmetry (--small) writes results/BENCH_nic.json =="
rm -f results/BENCH_nic.json
# The bin exits non-zero on any spurious takeover or a detection mean more
# than 25% above the clean baseline — the adaptive-routing acceptance gate.
cargo run --release --offline -p phoenix-bench --bin nic_asymmetry -- --small

test -s results/BENCH_nic.json || {
    echo "FAIL: results/BENCH_nic.json missing or empty" >&2
    exit 1
}
for needle in '"nic_curve"' '"spurious_takeovers"' '"detect_ratio_vs_clean"' '"worst_detect_ratio"' '"nic0_routed_share"'; do
    grep -q "$needle" results/BENCH_nic.json || {
        echo "FAIL: $needle not found in results/BENCH_nic.json" >&2
        exit 1
    }
done

echo "== smoke: chaos, 25 seeded partition-storm schedules =="
cargo run --release --offline -p phoenix-chaos --bin chaos -- --seeds 25 --partition

echo "== smoke: partition_sweep (--small) writes results/BENCH_partition.json =="
rm -f results/BENCH_partition.json
# The bin exits non-zero on any sampled double-leader instant, an
# unfrozen minority, or an episode that fails to re-converge after heal.
cargo run --release --offline -p phoenix-bench --bin partition_sweep -- --small

test -s results/BENCH_partition.json || {
    echo "FAIL: results/BENCH_partition.json missing or empty" >&2
    exit 1
}
for needle in '"episodes"' '"double_leader_instants"' '"freeze_ms"' '"dir_converge_ms"' '"unfrozen_minorities"'; do
    grep -q "$needle" results/BENCH_partition.json || {
        echo "FAIL: $needle not found in results/BENCH_partition.json" >&2
        exit 1
    }
done

echo "== smoke: chaos_sweep writes results/BENCH_chaos.json =="
rm -f results/BENCH_chaos.json
cargo run --release --offline -p phoenix-bench --bin chaos_sweep -- --seeds 25 --small

test -s results/BENCH_chaos.json || {
    echo "FAIL: results/BENCH_chaos.json missing or empty" >&2
    exit 1
}
for needle in '"schedules_run"' '"faults_injected"' '"violating_schedules"' '"shrink"' '"schedules"'; do
    grep -q "$needle" results/BENCH_chaos.json || {
        echo "FAIL: $needle not found in results/BENCH_chaos.json" >&2
        exit 1
    }
done

echo "== smoke: chaos, 25 seeded even-split quorum schedules =="
# The even 4x3 testbed with a witness: split-heavy schedules under the
# weighted sampled invariants (exactly one live side of an even split,
# no double leader, no frozen weighted-winner).
cargo run --release --offline -p phoenix-chaos --bin chaos -- --seeds 25 --quorum

echo "== smoke: quorum_sweep (--small --serial) writes results/BENCH_quorum.json =="
rm -f results/BENCH_quorum.json
# The bin exits non-zero on a double-leader or both-sides-frozen instant,
# an undecided split, a failed re-convergence, or an adaptive-delay
# episode that never recovers the killed GSD.
cargo run --release --offline -p phoenix-bench --bin quorum_sweep -- --small --serial

test -s results/BENCH_quorum.json || {
    echo "FAIL: results/BENCH_quorum.json missing or empty" >&2
    exit 1
}
for needle in '"double_leader_instants"' '"both_frozen_instants"' '"undecided_splits"' \
    '"availability_mean"' '"takeover_adaptive_ms_mean"' '"takeover_fixed31_ms_mean"'; do
    grep -q "$needle" results/BENCH_quorum.json || {
        echo "FAIL: $needle not found in results/BENCH_quorum.json" >&2
        exit 1
    }
done

echo "== determinism gate: parallel quorum_sweep must be byte-identical to serial =="
cp results/BENCH_quorum.json /tmp/BENCH_quorum_serial.json
PHOENIX_SWEEP_THREADS=4 \
    cargo run --release --offline -p phoenix-bench --bin quorum_sweep -- --small
cmp results/BENCH_quorum.json /tmp/BENCH_quorum_serial.json || {
    echo "FAIL: parallel quorum_sweep report differs from serial (determinism gate)" >&2
    exit 1
}

echo "== smoke: chaos, 25 seeded fail-slow schedules =="
# The 3x5 testbed with the fail-slow profile: slow-node episodes riding a
# salt-separated RNG stream, under the slow-not-dead invariant (zero dead
# diagnoses of a slow-but-alive node) and post-heal quarantine convergence.
cargo run --release --offline -p phoenix-chaos --bin chaos -- --seeds 25 --slow

echo "== smoke: slow_sweep (--small --serial) writes results/BENCH_slow.json =="
rm -f results/BENCH_slow.json
# The bin exits non-zero on any dead diagnosis of a slow-but-alive node,
# an unsuspected/unquarantined episode, an undrained member-gray episode,
# an unyielded leader-gray episode, or a failed reinstatement.
cargo run --release --offline -p phoenix-bench --bin slow_sweep -- --small --serial

test -s results/BENCH_slow.json || {
    echo "FAIL: results/BENCH_slow.json missing or empty" >&2
    exit 1
}
for needle in '"false_dead_diagnoses"' '"unyielded_leader_episodes"' '"unreinstated_episodes"' \
    '"suspect_ms_mean"' '"factor_permille"' '"curve"'; do
    grep -q "$needle" results/BENCH_slow.json || {
        echo "FAIL: $needle not found in results/BENCH_slow.json" >&2
        exit 1
    }
done

echo "== determinism gate: parallel slow_sweep must be byte-identical to serial =="
cp results/BENCH_slow.json /tmp/BENCH_slow_serial.json
PHOENIX_SWEEP_THREADS=4 \
    cargo run --release --offline -p phoenix-bench --bin slow_sweep -- --small
cmp results/BENCH_slow.json /tmp/BENCH_slow_serial.json || {
    echo "FAIL: parallel slow_sweep report differs from serial (determinism gate)" >&2
    exit 1
}

echo "== smoke: event_core (--small) writes results/BENCH_events.json =="
rm -f results/BENCH_events.json results/event_core_heap.trace results/event_core_wheel.trace
# The bin exits non-zero if the heap and wheel schedulers diverge on any
# pinned chaos scenario, or if the wheel's raw speedup drops below x1.2.
cargo run --release --offline -p phoenix-bench --bin event_core -- --small \
    | tee /tmp/event_core.out

test -s results/BENCH_events.json || {
    echo "FAIL: results/BENCH_events.json missing or empty" >&2
    exit 1
}
for needle in '"heap_events_per_sec"' '"wheel_events_per_sec"' '"speedup"' '"identical": true'; do
    grep -q "$needle" results/BENCH_events.json || {
        echo "FAIL: $needle not found in results/BENCH_events.json" >&2
        exit 1
    }
done

echo "== determinism gate: wheel scheduler must be byte-identical to heap =="
cmp results/event_core_heap.trace results/event_core_wheel.trace || {
    echo "FAIL: wheel digest stream differs from heap (scheduler determinism gate)" >&2
    exit 1
}
heap_ms=$(sed -n 's/.*event_core wall-clock: heap \([0-9]*\) ms.*/\1/p' /tmp/event_core.out)
wheel_ms=$(sed -n 's/.*event_core wall-clock: heap [0-9]* ms, wheel \([0-9]*\) ms.*/\1/p' /tmp/event_core.out)
[ -n "$heap_ms" ] && [ -n "$wheel_ms" ] || {
    echo "FAIL: event_core wall-clock line missing from output" >&2
    exit 1
}
ev_speedup=$(awk "BEGIN { printf \"%.2f\", $heap_ms / ($wheel_ms + 0.001) }")
echo "event_core wall-clock: heap ${heap_ms} ms, wheel ${wheel_ms} ms, speedup x${ev_speedup} (${cores} core(s))"
if [ "$cores" -ge 2 ]; then
    awk "BEGIN { exit !($heap_ms / ($wheel_ms + 0.001) > 1.5) }" || {
        echo "FAIL: wheel speedup x${ev_speedup} <= 1.5 on a ${cores}-core machine" >&2
        exit 1
    }
else
    echo "(single-core runner: speedup gate skipped, determinism gate enforced)"
fi

echo "== perf gate: wheel events/sec >= 1.10x committed baseline =="
# results/BENCH_events_baseline.json pins the wheel throughput of the last
# PR that claimed a scheduler perf win; it only advances with such a PR, so
# this gate is a regression floor, not a ratchet.
base_eps=$(sed -n 's/.*"wheel_events_per_sec": \([0-9.]*\).*/\1/p' results/BENCH_events_baseline.json)
fresh_eps=$(sed -n 's/.*"wheel_events_per_sec": \([0-9.]*\).*/\1/p' results/BENCH_events.json)
[ -n "$base_eps" ] && [ -n "$fresh_eps" ] || {
    echo "FAIL: wheel_events_per_sec missing from baseline or fresh results" >&2
    exit 1
}
echo "wheel events/sec: fresh ${fresh_eps} vs baseline ${base_eps} (need >= 1.10x)"
awk "BEGIN { exit !($fresh_eps >= 1.10 * $base_eps) }" || {
    echo "FAIL: wheel events/sec ${fresh_eps} < 1.10 * baseline ${base_eps}" >&2
    exit 1
}

echo "verify: OK"
